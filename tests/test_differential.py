"""Differential verification subsystem tests.

Property-based cross-checks of the three simulation engines (compiled
bit-parallel, event-driven, reference oracle) over fuzzed circuits, the
metamorphic injector-vs-brute-force check, deterministic shrinking, and the
fault-detection power of the harness (a corrupted cell template must be
caught).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.compiled as compiled_mod
from repro.netlist import DEFAULT_LIBRARY
from repro.sim.compiled import _TEMPLATES
from repro.verify import (
    FUZZ_SCALES,
    FuzzSpec,
    OracleSimulator,
    brute_force_seu,
    generate_netlist,
    generate_schedule,
    generate_testbench,
    rebuild_netlist,
    run_event_differential,
    run_injector_check,
    run_lane_differential,
    shrink_netlist,
    verify_seed,
    verify_seeds,
)

# ------------------------------------------------------------- strategies

fuzz_specs = st.builds(
    FuzzSpec,
    seed=st.integers(0, 2**32 - 1),
    n_gates=st.integers(4, 32),
    n_ffs=st.integers(1, 6),
    n_inputs=st.integers(2, 5),
    n_outputs=st.integers(1, 5),
    max_depth=st.integers(2, 7),
    max_fanout=st.integers(2, 8),
    n_ties=st.integers(0, 2),
    p_dffr=st.floats(0.0, 1.0),
    p_loopback=st.floats(0.0, 1.0),
    n_cycles=st.integers(8, 24),
)


# ------------------------------------------------------------------ fuzzer


@given(spec=fuzz_specs)
@settings(max_examples=40, deadline=None)
def test_fuzzed_netlists_are_valid_and_deterministic(spec):
    netlist = generate_netlist(spec)
    netlist.validate()
    stats = netlist.stats()
    assert stats.n_sequential >= 1
    assert stats.n_combinational == spec.n_gates
    assert stats.max_logic_depth <= spec.max_depth
    assert 1 <= stats.n_outputs <= spec.n_outputs
    # Same spec, same structure.
    again = generate_netlist(spec)
    assert [
        (c.name, c.type_name, sorted(c.connections.items()))
        for c in netlist.iter_cells()
    ] == [
        (c.name, c.type_name, sorted(c.connections.items()))
        for c in again.iter_cells()
    ]
    assert generate_schedule(netlist, spec) == generate_schedule(again, spec)


def test_fuzzer_covers_entire_template_library():
    """Across seeds, every compiled-simulator template gets instantiated."""
    seen = set()
    for seed in range(30):
        netlist = generate_netlist(FuzzSpec(seed=seed, n_gates=60, n_ties=2))
        seen.update(c.ctype.name for c in netlist.iter_cells())
        if set(_TEMPLATES) <= seen:
            break
    assert set(_TEMPLATES) <= seen, f"never generated: {set(_TEMPLATES) - seen}"


def test_fuzzer_rejects_non_combinational_restriction():
    with pytest.raises(ValueError):
        generate_netlist(FuzzSpec(seed=0, cell_types=("DFF",)))


def test_fuzz_scales_exist_and_generate():
    for scale, spec in FUZZ_SCALES.items():
        netlist = generate_netlist(spec)
        assert len(netlist) > 0, scale


# ------------------------------------------------------------------ oracle


def test_oracle_matches_library_truth_tables():
    """The independent oracle functions agree with the cell library on every
    binary input combination (they share no code, so this is a real check)."""
    from repro.verify.oracle import ORACLE_FUNCTIONS

    for name, fn in ORACLE_FUNCTIONS.items():
        ctype = DEFAULT_LIBRARY[name]
        if ctype.function is None:
            continue
        for bits in itertools.product((0, 1), repeat=len(ctype.inputs)):
            assert fn(bits) == ctype.evaluate(list(bits), mask=1), (name, bits)


def test_oracle_template_key_sets_match():
    from repro.verify.oracle import ORACLE_FUNCTIONS

    assert set(ORACLE_FUNCTIONS) == set(_TEMPLATES)


def test_oracle_detects_combinational_cycle():
    from repro.netlist import Netlist

    netlist = Netlist("cyc")
    netlist.add_input("clk", is_clock=True)
    netlist.add_cell("i0", "INV", {"A": "a", "Z": "b"})
    netlist.add_cell("i1", "INV", {"A": "b", "Z": "a"})
    netlist.add_cell("ff", "DFF", {"D": "a", "CK": "clk", "Q": "q"})
    netlist.add_output("q")
    with pytest.raises(Exception):
        OracleSimulator(netlist)  # validate() already rejects the cycle


# ------------------------------------------------- cross-backend agreement


@given(spec=fuzz_specs)
@settings(max_examples=15, deadline=None)
def test_compiled_lanes_agree_with_oracle(spec):
    netlist = generate_netlist(spec)
    divergences, comparisons = run_lane_differential(netlist, spec)
    assert comparisons > 0
    assert not divergences, [str(d) for d in divergences]


@given(spec=fuzz_specs)
@settings(max_examples=10, deadline=None)
def test_event_sim_agrees_with_oracle_once_resolved(spec):
    netlist = generate_netlist(spec)
    divergences, _comparisons = run_event_differential(netlist, spec)
    assert not divergences, [str(d) for d in divergences]


@given(spec=fuzz_specs)
@settings(max_examples=8, deadline=None)
def test_injector_verdicts_match_brute_force(spec):
    netlist = generate_netlist(spec)
    divergences, checked = run_injector_check(netlist, spec, n_injection_cycles=2)
    assert checked > 0
    assert not divergences, [str(d) for d in divergences]


def test_verify_seed_full_stack_and_sweep():
    report = verify_seed(FUZZ_SCALES["tiny"].with_seed(11))
    assert report.ok and report.comparisons > 0 and report.injections_checked > 0
    summary = verify_seeds(3, scale="tiny")
    assert summary.ok
    assert summary.n_seeds == 3
    assert summary.n_comparisons > 0


def test_verify_seeds_unknown_scale():
    with pytest.raises(ValueError):
        verify_seeds(1, scale="nope")


# --------------------------------------------------- fault-detection power


def _seed_containing(cell_name: str) -> FuzzSpec:
    for seed in range(200):
        spec = FuzzSpec(seed=seed)
        netlist = generate_netlist(spec)
        cone = rebuild_netlist(netlist)  # only logic that can reach an output
        if any(c.ctype.name == cell_name for c in cone.iter_cells()):
            return spec
    raise AssertionError(f"no fuzz seed produced an observable {cell_name}")


def test_corrupted_template_is_caught(monkeypatch):
    """Acceptance check: a deliberately wrong cell template diverges."""
    spec = _seed_containing("NAND2")
    netlist = generate_netlist(spec)
    monkeypatch.setitem(
        compiled_mod._TEMPLATES, "NAND2", "v[{o}] = (v[{i0}] & v[{i1}]) & m"
    )
    divergences, _ = run_lane_differential(netlist, spec)
    assert divergences, "corrupted NAND2 template went undetected"
    first = divergences[0]
    assert first.kind == "compiled-vs-oracle"
    assert first.net is not None and first.cycle >= 0
    assert first.values["compiled"] != first.values["oracle"]


def test_corrupted_oracle_model_is_caught(monkeypatch):
    """Symmetry: the harness also catches a wrong *oracle* model, so a
    template bug cannot hide behind an identical oracle bug."""
    from repro.verify import oracle as oracle_mod

    spec = _seed_containing("XOR2")
    netlist = generate_netlist(spec)
    monkeypatch.setitem(
        oracle_mod.ORACLE_FUNCTIONS, "XOR2", lambda a: 1 if a[0] == a[1] else 0
    )
    divergences, _ = run_lane_differential(netlist, spec)
    assert divergences


# -------------------------------------------------------------- shrinking


def test_shrink_is_deterministic_and_minimizing():
    spec = _seed_containing("NAND2")
    netlist = generate_netlist(spec)

    def contains_nand2(candidate):
        return any(c.ctype.name == "NAND2" for c in candidate.iter_cells())

    small = shrink_netlist(netlist, contains_nand2)
    small.validate()
    assert contains_nand2(small)
    assert len(small) < len(netlist)
    again = shrink_netlist(netlist, contains_nand2)
    assert [
        (c.name, c.type_name) for c in small.iter_cells()
    ] == [(c.name, c.type_name) for c in again.iter_cells()]


def test_shrink_reduces_a_real_divergence(monkeypatch):
    """Shrinking an actual corrupted-template failure keeps it failing."""
    spec = _seed_containing("NOR2")
    netlist = generate_netlist(spec)
    monkeypatch.setitem(
        compiled_mod._TEMPLATES, "NOR2", "v[{o}] = (v[{i0}] | v[{i1}]) & m"
    )

    def diverges(candidate):
        found, _ = run_lane_differential(candidate, spec, n_lanes=2)
        return bool(found)

    assert diverges(netlist)
    small = shrink_netlist(netlist, diverges)
    assert diverges(small)
    assert len(small) <= len(netlist)
    assert any(c.ctype.name == "NOR2" for c in small.iter_cells())


def test_shrink_rejects_passing_predicate():
    netlist = generate_netlist(FuzzSpec(seed=3))
    with pytest.raises(ValueError):
        shrink_netlist(netlist, lambda nl: False)


def test_rebuild_sweeps_dead_logic():
    spec = FuzzSpec(seed=5)
    netlist = generate_netlist(spec)
    cone = rebuild_netlist(netlist, outputs=[netlist.outputs[0]])
    cone.validate()
    assert len(cone) <= len(netlist)
    assert cone.outputs == [netlist.outputs[0]]
    # Every surviving cell must reach the kept output (no dead cells).
    from repro.faultinjection import relevant_flip_flops

    live_ffs = relevant_flip_flops(cone, cone.outputs)
    assert {ff.name for ff in cone.flip_flops()} == live_ffs


# ------------------------------------------------ brute force corner cases


def test_brute_force_benign_fault():
    """A fault injected into an FF with no path to outputs never fails."""
    spec = FuzzSpec(seed=9, p_loopback=0.0)
    netlist = generate_netlist(spec)
    testbench = generate_testbench(netlist, spec)
    golden = testbench.run_golden()
    from repro.faultinjection import relevant_flip_flops

    relevant = relevant_flip_flops(netlist, list(netlist.outputs))
    ffs = netlist.flip_flops()
    benign = [i for i, ff in enumerate(ffs) if ff.name not in relevant]
    if not benign:
        pytest.skip("seed 9 has no benign flip-flop")
    failed, latency = brute_force_seu(netlist, testbench, golden, 4, benign[0])
    assert failed is False and latency is None
