"""Adaptive injection scheduler: equivalence, boundaries, lane algebra.

The scheduler's contract is that scheduling is *invisible*: whatever lane a
request lands in, however often the batch is compacted, repacked or
cone-gated, every injection's verdict and error latency must equal a naive
:meth:`FaultInjector.run_batch` replay of the same ``(cycle, ff)`` pair.
"""

from __future__ import annotations

import random
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinjection import (
    AdaptiveScheduler,
    AnyOutputCriterion,
    FaultInjector,
    PacketInterfaceCriterion,
)
from repro.netlist.levelize import ff_spread_masks, levelize
from repro.sim import BACKEND_NAMES, ScheduleBuilder, Testbench, create_backend


@pytest.fixture(scope="module")
def tiny_parts(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    return tiny_mac, tiny_workload, tiny_golden, criterion


def naive_verdicts(injector, requests, horizon=None):
    """Per-request verdicts via one run_batch lane per (cycle, ff) bucket."""
    buckets = defaultdict(list)
    for key, (cycle, ff_idx) in enumerate(requests):
        buckets[cycle].append((key, ff_idx))
    verdicts = [None] * len(requests)
    for cycle in sorted(buckets):
        keys = [k for k, _ in buckets[cycle]]
        ffs = [f for _, f in buckets[cycle]]
        outcome = injector.run_batch(cycle, ffs, horizon=horizon)
        for lane, key in enumerate(keys):
            failed = bool((outcome.failed_mask >> lane) & 1)
            verdicts[key] = (failed, outcome.latencies.get(lane) if failed else None)
    return verdicts


# --------------------------------------------------------------- equivalence


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_scheduled_matches_naive_per_backend(tiny_parts, backend):
    netlist, workload, golden, criterion = tiny_parts
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, backend=backend
    )
    first, last = workload.active_window
    rng = random.Random(42)
    n_ffs = injector.sim.n_flip_flops
    requests = [(rng.randrange(first, last), rng.randrange(n_ffs)) for _ in range(150)]
    expected = naive_verdicts(injector, requests)
    outcome = injector.run_scheduled(requests, max_lanes=32)
    assert outcome.verdicts == expected
    assert outcome.stats.activations == len(requests)


@pytest.mark.parametrize("cone_gating", ["on", "auto", "off"])
def test_cone_gating_modes_are_invisible(tiny_parts, cone_gating):
    netlist, workload, golden, criterion = tiny_parts
    injector = FaultInjector(netlist, workload.testbench, golden, criterion)
    first, last = workload.active_window
    rng = random.Random(7)
    n_ffs = injector.sim.n_flip_flops
    requests = [(rng.randrange(first, last), rng.randrange(n_ffs)) for _ in range(60)]
    expected = naive_verdicts(injector, requests)
    scheduler = AdaptiveScheduler(injector, max_lanes=6, cone_gating=cone_gating)
    assert scheduler.run(requests).verdicts == expected


# ----------------------------------------------------------------- boundaries


def test_injection_on_last_workload_cycle(tiny_parts):
    """A lane activated on the final trace cycle simulates exactly one cycle."""
    netlist, workload, golden, criterion = tiny_parts
    injector = FaultInjector(netlist, workload.testbench, golden, criterion)
    last_cycle = golden.n_cycles - 1
    requests = [(last_cycle, ff) for ff in range(12)]
    expected = naive_verdicts(injector, requests)
    outcome = injector.run_scheduled(requests, max_lanes=4)
    assert outcome.verdicts == expected


def test_check_interval_larger_than_remaining_horizon(tiny_parts):
    """Retirement checks sparser than the whole observation window still
    retire every lane with the correct verdict."""
    netlist, workload, golden, criterion = tiny_parts
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, check_interval=10_000
    )
    first, _last = workload.active_window
    requests = [(first + offset, ff) for offset in (0, 3, 9) for ff in range(10)]
    for horizon in (4, None):
        expected = naive_verdicts(injector, requests, horizon=horizon)
        outcome = injector.run_scheduled(requests, horizon=horizon, max_lanes=8)
        assert outcome.verdicts == expected


def test_all_lanes_failing_in_the_injection_cycle():
    """Output-register SEUs on a counter fail with latency 0 on every lane
    and free the whole batch at the first check."""
    from repro.synth import Module, synthesize, wordlib

    module = Module("counter4")
    enable = module.input("en")
    count = module.reg_bus("cnt", 4)
    module.next_en(count, enable, wordlib.inc(count))
    module.output_bus("count", count)
    netlist = synthesize(module)

    sb = ScheduleBuilder(netlist.inputs)
    sb.drive(0, "en", 1)
    testbench = Testbench(netlist, sb.compile(40))
    golden = testbench.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    injector = FaultInjector(netlist, testbench, golden, criterion)
    # The count register drives the outputs combinationally: every flip is
    # visible in its own injection cycle.
    count_ffs = [
        i
        for i, ff in enumerate(injector.sim.flip_flops)
        if ff.output_net().startswith("cnt")
    ]
    requests = [(cycle, ff) for cycle in (5, 6, 20) for ff in count_ffs]
    outcome = injector.run_scheduled(requests, max_lanes=len(requests))
    assert all(failed and latency == 0 for failed, latency in outcome.verdicts)
    assert outcome.verdicts == naive_verdicts(injector, requests)


def test_deferred_requests_roll_over_to_later_passes(tiny_parts):
    """More same-cycle injections than lanes: the overflow keeps its verdicts."""
    netlist, workload, golden, criterion = tiny_parts
    injector = FaultInjector(netlist, workload.testbench, golden, criterion)
    first, _last = workload.active_window
    requests = [(first + 2, ff) for ff in range(30)]
    expected = naive_verdicts(injector, requests)
    scheduler = AdaptiveScheduler(injector, max_lanes=7)
    outcome = scheduler.run(requests)
    assert outcome.verdicts == expected
    assert outcome.stats.n_passes >= 5  # ceil(30 / 7) passes of 7 lanes
    assert outcome.stats.deferred > 0


# -------------------------------------------------------------- property test


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_compaction_refill_never_changes_verdict_or_latency(tiny_parts, data):
    """Property: for random request sets, lane budgets, backends and gating
    modes, scheduled verdicts/latencies equal the naive replay."""
    netlist, workload, golden, criterion = tiny_parts
    backend = data.draw(st.sampled_from(list(BACKEND_NAMES)))
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, backend=backend
    )
    first, last = workload.active_window
    n_ffs = injector.sim.n_flip_flops
    requests = data.draw(
        st.lists(
            st.tuples(
                st.integers(first, last - 1), st.integers(0, n_ffs - 1)
            ),
            min_size=1,
            max_size=40,
        )
    )
    max_lanes = data.draw(st.integers(1, 24))
    cone_gating = data.draw(st.sampled_from(["auto", "on", "off"]))
    horizon = data.draw(st.one_of(st.none(), st.integers(1, 30)))
    expected = naive_verdicts(injector, requests, horizon=horizon)
    scheduler = AdaptiveScheduler(
        injector, max_lanes=max_lanes, cone_gating=cone_gating
    )
    assert scheduler.run(requests, horizon=horizon).verdicts == expected


# ------------------------------------------------------------- lane algebra


@pytest.mark.parametrize("backend", ["compiled", "numpy"])
def test_gather_scatter_roundtrip(tiny_mac, backend):
    sim = create_backend(backend, tiny_mac, n_lanes=70)
    rng = random.Random(1)
    packed = rng.getrandbits(70)
    vec = sim.scatter_lanes(sim.broadcast(0), range(70), packed)
    lanes = sorted(rng.sample(range(70), 23))
    gathered = sim.gather_lanes(vec, lanes)
    assert gathered == sum(((packed >> lane) & 1) << j for j, lane in enumerate(lanes))
    # Scatter into a fresh narrow batch preserves each selected lane.
    sim.resize_lanes(23)
    narrow = sim.scatter_lanes(sim.broadcast(0), range(23), gathered)
    assert sim.vec_to_int(narrow) == gathered


@pytest.mark.parametrize("backend", ["compiled", "numpy"])
def test_diverging_rows_probe(tiny_mac, backend):
    sim = create_backend(backend, tiny_mac, n_lanes=5)
    sim.reset()
    q0 = sim._ff_q[0]
    q1 = sim._ff_q[1]
    sim.values[q0] = sim.scatter_lanes(sim.broadcast(0), [2], 1)  # lane 2 high
    diff, rows = sim.diverging_rows(
        [(q0, 0), (q1, 0)], sim.broadcast(1)
    )
    assert sim.vec_to_int(diff) == 0b00100
    assert rows == 0b01
    # Inactive lanes are masked out of the probe.
    diff, rows = sim.diverging_rows([(q0, 0)], sim.lane_vec(0))
    assert sim.vec_to_int(diff) == 0
    assert rows == 0


def test_levelize_covers_and_orders_all_cells(tiny_mac):
    design = levelize(tiny_mac, target_cells=64)
    cells = [c for p in design.partitions for c in p.cells]
    assert sorted(cells) == sorted(tiny_mac.topological_comb_order())
    # Every partition only reads nets produced by earlier partitions,
    # flip-flops or primary inputs.
    for partition in design.partitions:
        for cell_name in partition.cells:
            for net in tiny_mac.cells[cell_name].input_nets():
                producer = design.net_partition.get(net)
                assert producer is None or producer <= partition.index
        assert partition.closure_mask & (1 << partition.index)
    spread = ff_spread_masks(tiny_mac, design)
    assert len(spread) == len(tiny_mac.flip_flops())
