"""ML base machinery, metrics and preprocessing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    LinearLeastSquares,
    MinMaxScaler,
    Pipeline,
    RidgeRegression,
    StandardScaler,
    all_metrics,
    clone,
    explained_variance,
    max_absolute_error,
    mean_absolute_error,
    r2_score,
    root_mean_squared_error,
)
from repro.ml.base import check_X, check_X_y


# ----------------------------------------------------------------- base


def test_get_set_params():
    model = RidgeRegression(alpha=2.0)
    assert model.get_params() == {"alpha": 2.0, "fit_intercept": True}
    model.set_params(alpha=5.0)
    assert model.alpha == 5.0
    with pytest.raises(ValueError):
        model.set_params(bogus=1)


def test_clone_resets_fitted_state(regression_data):
    X, y = regression_data
    model = RidgeRegression(alpha=0.5).fit(X, y)
    copy = clone(model)
    assert copy.alpha == 0.5
    assert not hasattr(copy, "coef_")


def test_check_X_y_validation():
    with pytest.raises(ValueError):
        check_X(np.zeros(3))  # 1-D
    with pytest.raises(ValueError):
        check_X(np.array([[np.nan]]))
    with pytest.raises(ValueError):
        check_X_y(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))


def test_unfitted_predict_raises(regression_data):
    X, _ = regression_data
    with pytest.raises(RuntimeError):
        LinearLeastSquares().predict(X)


# -------------------------------------------------------------- metrics


def test_metrics_perfect_prediction():
    y = np.array([0.1, 0.5, 0.9, 0.3])
    scores = all_metrics(y, y)
    assert scores["mae"] == 0.0
    assert scores["max"] == 0.0
    assert scores["rmse"] == 0.0
    assert scores["ev"] == 1.0
    assert scores["r2"] == 1.0


def test_metrics_known_values():
    y_true = np.array([0.0, 1.0])
    y_pred = np.array([0.5, 0.5])
    assert mean_absolute_error(y_true, y_pred) == 0.5
    assert max_absolute_error(y_true, y_pred) == 0.5
    assert root_mean_squared_error(y_true, y_pred) == 0.5
    assert r2_score(y_true, y_pred) == 0.0  # predicting the mean
    assert explained_variance(y_true, y_pred) == 0.0  # residuals vary fully
    # EV ignores a constant bias that R2 penalizes.
    biased = y_true + 0.5
    assert explained_variance(y_true, biased) == 1.0
    assert r2_score(y_true, biased) < 1.0


def test_constant_target_edge_cases():
    y = np.array([0.3, 0.3, 0.3])
    assert r2_score(y, y) == 1.0
    assert r2_score(y, y + 0.1) == 0.0
    assert explained_variance(y, y) == 1.0


@given(
    arrays(np.float64, 12, elements=st.floats(-5, 5)),
    arrays(np.float64, 12, elements=st.floats(-5, 5)),
)
@settings(max_examples=50, deadline=None)
def test_metric_invariants(y_true, y_pred):
    mae = mean_absolute_error(y_true, y_pred)
    mx = max_absolute_error(y_true, y_pred)
    rmse = root_mean_squared_error(y_true, y_pred)
    tol = 1e-12 + 1e-9 * mx  # one-ULP slack from the float mean
    assert 0 <= mae <= mx + tol
    assert mae <= rmse + tol
    assert rmse <= mx + tol
    assert r2_score(y_true, y_pred) <= explained_variance(y_true, y_pred) + 1e-9


def test_metric_shape_mismatch():
    with pytest.raises(ValueError):
        mean_absolute_error([1, 2], [1, 2, 3])
    with pytest.raises(ValueError):
        r2_score([], [])


# --------------------------------------------------------- preprocessing


def test_standard_scaler(regression_data):
    X, _ = regression_data
    scaler = StandardScaler()
    Z = scaler.fit_transform(X)
    assert np.allclose(Z.mean(axis=0), 0, atol=1e-9)
    assert np.allclose(Z.std(axis=0), 1, atol=1e-9)
    assert np.allclose(scaler.inverse_transform(Z), X)


def test_standard_scaler_constant_column():
    X = np.column_stack([np.ones(5), np.arange(5.0)])
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    assert np.allclose(Z[:, 0], 0.0)


def test_minmax_scaler():
    X = np.array([[1.0, 10.0], [3.0, 30.0], [2.0, 20.0]])
    scaler = MinMaxScaler()
    Z = scaler.fit_transform(X)
    assert Z.min() == 0.0 and Z.max() == 1.0
    assert np.allclose(scaler.inverse_transform(Z), X)
    with pytest.raises(ValueError):
        MinMaxScaler(feature_range=(1, 0)).fit(X)


@given(arrays(np.float64, (8, 3), elements=st.floats(-100, 100)))
@settings(max_examples=40, deadline=None)
def test_scaler_round_trip_property(X):
    scaler = StandardScaler().fit(X)
    assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6)


# --------------------------------------------------------------- linear


def test_lls_recovers_exact_linear_model():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(80, 3))
    coef = np.array([2.0, -1.0, 0.5])
    y = X @ coef + 3.0
    model = LinearLeastSquares().fit(X, y)
    assert np.allclose(model.coef_, coef, atol=1e-8)
    assert model.intercept_ == pytest.approx(3.0, abs=1e-8)
    assert r2_score(y, model.predict(X)) == pytest.approx(1.0)


def test_lls_without_intercept():
    X = np.array([[1.0], [2.0], [3.0]])
    y = np.array([2.0, 4.0, 6.0])
    model = LinearLeastSquares(fit_intercept=False).fit(X, y)
    assert model.intercept_ == 0.0
    assert model.coef_[0] == pytest.approx(2.0)


def test_lls_handles_collinear_features():
    rng = np.random.default_rng(1)
    x = rng.normal(size=60)
    X = np.column_stack([x, x, 1 - x])  # exactly collinear
    y = 2 * x + 1
    model = LinearLeastSquares().fit(X, y)
    pred = model.predict(X)
    assert np.allclose(pred, y, atol=1e-8)


def test_ridge_shrinks_towards_zero(regression_data):
    X, y = regression_data
    small = RidgeRegression(alpha=1e-8).fit(X, y)
    large = RidgeRegression(alpha=1e6).fit(X, y)
    assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)
    with pytest.raises(ValueError):
        RidgeRegression(alpha=-1).fit(X, y)


def test_ridge_matches_lls_at_zero_alpha(regression_data):
    X, y = regression_data
    ridge = RidgeRegression(alpha=0.0).fit(X, y)
    lls = LinearLeastSquares().fit(X, y)
    assert np.allclose(ridge.predict(X), lls.predict(X), atol=1e-6)
