"""Backend parity: the pluggable simulation substrate is an execution detail.

Every engine registered in :mod:`repro.sim.backend` must produce identical
cycle-level net values, per-flip-flop failure verdicts and error latencies
on the seed circuits — campaigns, caches and the paper's numbers may never
depend on which substrate executed them.  (The fuzzed cross-checks live in
``repro.verify``; these tests pin the real workloads.)
"""

from __future__ import annotations

import random

import pytest

from repro.campaigns import CampaignSpec
from repro.circuits import get_circuit
from repro.faultinjection import (
    AnyOutputCriterion,
    FaultInjector,
    PacketInterfaceCriterion,
    StatisticalFaultCampaign,
)
from repro.sim import (
    BACKEND_NAMES,
    CYCLE_BACKENDS,
    NumPyWideSimulator,
    ScheduleBuilder,
    Testbench,
    create_backend,
)
from repro.sim.vectorized import int_to_words, words_to_int

NEW_BACKENDS = [b for b in BACKEND_NAMES if b != "compiled"]


# ------------------------------------------------------------ cycle parity


@pytest.mark.parametrize("circuit", ["counter16", "lfsr16", "gray8"])
def test_cycle_parity_random_stimulus(circuit):
    """compiled and numpy backends agree net-for-net under random stimulus."""
    netlist = get_circuit(circuit)
    n_lanes = 5
    sims = {name: create_backend(name, netlist, n_lanes=n_lanes) for name in CYCLE_BACKENDS}
    for sim in sims.values():
        sim.reset()
    rng = random.Random(2024)
    inputs = list(netlist.inputs)
    for _cycle in range(24):
        drives = {name: rng.getrandbits(n_lanes) for name in inputs}
        for sim in sims.values():
            for name, lanes in drives.items():
                sim.set_input_lanes(name, lanes)
            sim.eval_comb()
        reference = sims["compiled"]
        for other_name in CYCLE_BACKENDS:
            if other_name == "compiled":
                continue
            other = sims[other_name]
            for net in netlist.nets:
                assert other.get(net) == reference.get(net), (net, other_name)
        for sim in sims.values():
            sim.tick()


def test_numpy_multiword_lanes():
    """Lane counts beyond one 64-bit word stay lane-independent."""
    netlist = get_circuit("counter8")
    n_lanes = 130  # 3 words, partial tail
    wide = NumPyWideSimulator(netlist, n_lanes=n_lanes)
    narrow = create_backend("compiled", netlist, n_lanes=n_lanes)
    for sim in (wide, narrow):
        sim.reset()
    rng = random.Random(7)
    for _ in range(12):
        for name in netlist.inputs:
            lanes = rng.getrandbits(n_lanes)
            wide.set_input_lanes(name, lanes)
            narrow.set_input_lanes(name, lanes)
        wide.eval_comb()
        narrow.eval_comb()
        for net in netlist.outputs:
            assert wide.get(net) == narrow.get(net)
        assert wide.ff_state_packed(lane=129) == narrow.ff_state_packed(lane=129)
        wide.tick()
        narrow.tick()


def test_numpy_lane_algebra_and_words():
    netlist = get_circuit("counter8")
    sim = NumPyWideSimulator(netlist, n_lanes=70)
    assert words_to_int(int_to_words(0x5A5A5A5A5A5A5A5A5A, 2)) == 0x5A5A5A5A5A5A5A5A5A
    assert sim.vec_to_int(sim.broadcast(1)) == (1 << 70) - 1
    assert sim.vec_to_int(sim.broadcast(0)) == 0
    assert sim.vec_to_int(sim.lane_vec(69)) == 1 << 69
    assert sim.vec_any(sim.lane_vec(0))
    assert not sim.vec_any(sim.broadcast(0))
    assert sim.vec_is_full(sim.broadcast(1))
    assert not sim.vec_is_full(sim.lane_vec(3))


def test_create_backend_rejects_fused_and_unknown():
    netlist = get_circuit("counter8")
    with pytest.raises(ValueError, match="fused"):
        create_backend("fused", netlist)
    with pytest.raises(ValueError, match="unknown backend"):
        create_backend("verilator", netlist)


# --------------------------------------------------------- injector parity


def _counter_testbench():
    netlist = get_circuit("counter16")
    builder = ScheduleBuilder(netlist.inputs)
    builder.drive(0, "rst_n", 1)
    rng = random.Random(11)
    for cycle in range(40):
        builder.drive(cycle, "en", rng.getrandbits(1))
        builder.drive(cycle, "clear", 1 if rng.random() < 0.05 else 0)
    return netlist, Testbench(netlist, builder.compile(40))


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_injector_parity_counter(backend):
    """Verdicts, latencies, cycle counts match compiled on an open-loop DUT."""
    netlist, tb = _counter_testbench()
    golden = tb.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    reference = FaultInjector(netlist, tb, golden, criterion, check_interval=4)
    candidate = FaultInjector(
        netlist, tb, golden, criterion, check_interval=4, backend=backend
    )
    lanes = list(range(reference.sim.n_flip_flops))
    for cycle in (2, 17, 33):
        want = reference.run_batch(cycle, lanes)
        got = candidate.run_batch(cycle, lanes)
        assert got.failed_mask == want.failed_mask
        assert got.latencies == want.latencies
        assert got.cycles_simulated == want.cycles_simulated
        assert got.n_lanes == want.n_lanes


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_injector_parity_tiny_mac(backend, tiny_mac, tiny_workload, tiny_golden):
    """Per-FF verdicts and error latencies match on the seed MAC workload
    (packet criterion + XGMII loopback + early retirement)."""
    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    reference = FaultInjector(
        tiny_mac, tiny_workload.testbench, tiny_golden, criterion
    )
    candidate = FaultInjector(
        tiny_mac, tiny_workload.testbench, tiny_golden, criterion, backend=backend
    )
    first, _last = tiny_workload.active_window
    lanes = list(range(reference.sim.n_flip_flops))
    for cycle in (first + 4, first + 11):
        want = reference.run_batch(cycle, lanes)
        got = candidate.run_batch(cycle, lanes)
        assert got.failed_mask == want.failed_mask
        assert got.latencies == want.latencies
        assert got.cycles_simulated == want.cycles_simulated


def test_set_batch_parity_numpy(tiny_mac, tiny_workload, tiny_golden):
    """SET sweeps run on the cycle substrate: numpy must match compiled."""
    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    reference = FaultInjector(tiny_mac, tiny_workload.testbench, tiny_golden, criterion)
    candidate = FaultInjector(
        tiny_mac, tiny_workload.testbench, tiny_golden, criterion, backend="numpy"
    )
    first, _last = tiny_workload.active_window
    nets = [c.output_net() for c in tiny_mac.combinational_cells()[:12]]
    want = reference.run_set_batch(first + 5, nets)
    got = candidate.run_set_batch(first + 5, nets)
    assert got.failed_mask == want.failed_mask
    assert got.latencies == want.latencies


@pytest.mark.parametrize("backend", NEW_BACKENDS)
def test_campaign_parity(backend):
    """A full statistical campaign is bit-identical across substrates."""
    netlist, tb = _counter_testbench()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    results = {}
    for name in ("compiled", backend):
        runner = StatisticalFaultCampaign(
            netlist, tb, criterion, backend=name, max_lanes=8
        )
        result = runner.run(n_injections=6, seed=3)
        results[name] = {
            ff: (r.n_injections, r.n_failures, r.latency_sum)
            for ff, r in result.results.items()
        }
    assert results["compiled"] == results[backend]


def test_injector_rejects_unknown_backend(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    with pytest.raises(ValueError, match="unknown backend"):
        FaultInjector(
            tiny_mac, tiny_workload.testbench, tiny_golden, criterion, backend="gpu"
        )


# ----------------------------------------------------------- campaign spec


def test_spec_backend_excluded_from_cache_identity():
    """Backends share cached results: keys must not depend on the backend."""
    base = CampaignSpec(circuit="xgmac_tiny")
    for backend in BACKEND_NAMES:
        other = CampaignSpec(circuit="xgmac_tiny", backend=backend)
        assert other.cache_key() == base.cache_key()
        assert other.family_key() == base.family_key()
    # ...but real campaign parameters still change the identity.
    assert CampaignSpec(circuit="xgmac_tiny", seed=9).cache_key() != base.cache_key()


def test_spec_backend_validation_and_roundtrip():
    with pytest.raises(ValueError, match="unknown backend"):
        CampaignSpec(backend="verilator")
    spec = CampaignSpec(backend="fused")
    assert CampaignSpec.from_dict(spec.to_dict()) == spec
    # Payloads written before the backend field existed load with the default.
    legacy = spec.to_dict()
    legacy.pop("backend")
    assert CampaignSpec.from_dict(legacy).backend == "compiled"
