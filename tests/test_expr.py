"""Expression AST construction and folding tests."""

import pytest

from repro.synth.expr import And, Const, Mux, Not, ONE, Or, Sig, Xor, ZERO


def test_const_validation():
    with pytest.raises(ValueError):
        Const(2)


def test_not_folding():
    a = Sig("a")
    assert Not.of(ZERO) is ONE
    assert Not.of(ONE) is ZERO
    assert Not.of(Not.of(a)) is a


def test_and_folding():
    a, b = Sig("a"), Sig("b")
    assert isinstance(And.of(a, b), And)
    assert And.of(a, ZERO) is ZERO
    assert And.of(a, ONE) is a
    assert And.of(ONE, ONE) is ONE
    flat = And.of(And.of(a, b), Sig("c"))
    assert len(flat.args) == 3


def test_or_folding():
    a, b = Sig("a"), Sig("b")
    assert Or.of(a, ONE) is ONE
    assert Or.of(a, ZERO) is a
    assert Or.of(ZERO, ZERO) is ZERO
    flat = Or.of(a, Or.of(b, Sig("c")))
    assert len(flat.args) == 3


def test_xor_folding():
    a, b = Sig("a"), Sig("b")
    assert Xor.of(a, ZERO) is a
    inverted = Xor.of(a, ONE)
    assert isinstance(inverted, Not) and inverted.operand is a
    # Two constants fold completely.
    assert Xor.of(ONE, ONE) is ZERO
    assert isinstance(Xor.of(a, b), Xor)


def test_mux_folding():
    a, b, s = Sig("a"), Sig("b"), Sig("s")
    assert Mux.of(ONE, a, b) is a
    assert Mux.of(ZERO, a, b) is b
    assert Mux.of(s, a, a) is a
    assert Mux.of(s, ONE, ZERO) is s
    inv = Mux.of(s, ZERO, ONE)
    assert isinstance(inv, Not) and inv.operand is s
    # One constant arm becomes and/or.
    assert isinstance(Mux.of(s, ONE, b), Or)
    assert isinstance(Mux.of(s, ZERO, b), And)
    assert isinstance(Mux.of(s, a, ZERO), And)
    assert isinstance(Mux.of(s, a, ONE), Or)
    assert isinstance(Mux.of(s, a, b), Mux)


def test_operator_overloads():
    a, b = Sig("a"), Sig("b")
    assert isinstance(a & b, And)
    assert isinstance(a | b, Or)
    assert isinstance(a ^ b, Xor)
    assert isinstance(~a, Not)


def test_signals_collection():
    a, b, c = Sig("a"), Sig("b"), Sig("c")
    expr = Mux.of(a, b & c, ~b)
    assert expr.signals() == {"a", "b", "c"}


def test_depth():
    a, b = Sig("a"), Sig("b")
    assert a.depth() == 0
    assert (a & b).depth() == 1
    assert ((a & b) | a).depth() == 2
