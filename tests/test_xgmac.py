"""MAC core functional tests: frame transport, CRC behaviour, presets."""

import pytest

from repro.circuits import (
    XGMAC_PRESETS,
    build_xgmac_workload,
    decode_rx_stream,
    expected_rx_entries,
    make_xgmac,
)
from repro.sim import CompiledSimulator


def test_presets_synthesize_and_validate():
    for preset, config in XGMAC_PRESETS.items():
        nl = make_xgmac(preset)
        nl.validate()
        assert len(nl.flip_flops()) > 100


def test_unknown_preset_rejected():
    with pytest.raises(KeyError):
        make_xgmac("xgmac_huge")


def test_full_preset_matches_paper_scale():
    nl = make_xgmac("xgmac")
    n_ffs = len(nl.flip_flops())
    # Paper: 1054 flip-flops; our design lands within 10 %.
    assert abs(n_ffs - 1054) / 1054 < 0.10


def test_frames_loop_back_intact(tiny_mac, tiny_workload, tiny_golden):
    received = decode_rx_stream(tiny_golden)
    expected = expected_rx_entries(tiny_workload.frames)
    assert received == expected


def test_mini_frames_loop_back_intact():
    nl = make_xgmac("xgmac_mini")
    workload = build_xgmac_workload(nl, n_frames=5, min_len=4, max_len=7, seed=11)
    trace = workload.testbench.run_golden()
    assert decode_rx_stream(trace) == expected_rx_entries(workload.frames)


def test_status_entries_flag_good_crc(tiny_workload, tiny_golden):
    entries = decode_rx_stream(tiny_golden)
    status = [e for e in entries if e[2] == 1]
    assert len(status) == len(tiny_workload.frames)
    assert all(byte & 0x1 for byte, _sop, _eop in status), "all frames CRC-clean"


def test_sop_marks_first_byte(tiny_workload, tiny_golden):
    entries = decode_rx_stream(tiny_golden)
    frame_start = True
    for byte, sop, eop in entries:
        if frame_start:
            assert sop == 1
            frame_start = False
        else:
            assert sop == 0
        if eop:
            frame_start = True


def test_stats_counters_track_traffic(tiny_mac, tiny_workload):
    tb = tiny_workload.testbench
    sim = CompiledSimulator(tiny_mac)
    sim.reset()
    lb = tb.loopbacks[0]
    out_idx = {n: i for i, n in enumerate(tiny_mac.outputs)}
    in_idx = {n: i for i, n in enumerate(tiny_mac.inputs)}
    taps = [[0] * lb.delay for _ in lb.sources]
    for cycle in range(tb.n_cycles):
        vec = tb.schedule[cycle]
        for i, dst in enumerate(lb.targets):
            k = in_idx[dst]
            vec = (vec & ~(1 << k)) | (taps[i][cycle % lb.delay] << k)
        for i, name in enumerate(tiny_mac.inputs):
            sim.set_input(name, (vec >> i) & 1)
        sim.eval_comb()
        ov = sim.output_vector()
        for i, src in enumerate(lb.sources):
            taps[i][cycle % lb.delay] = (ov >> out_idx[src]) & 1
        sim.tick()
    sim.eval_comb()
    width = XGMAC_PRESETS["xgmac_tiny"].stat_width
    n_frames = len(tiny_workload.frames)
    n_bytes = sum(len(f) for f in tiny_workload.frames)
    assert sim.get_word("stat_tx_frames_o", width) == n_frames
    assert sim.get_word("stat_rx_frames_o", width) == n_frames
    assert sim.get_word("stat_rx_crc_err_o", width) == 0
    assert sim.get_word("stat_rx_aborts_o", width) == 0
    assert sim.get_word("stat_rx_bytes_o", width) == min(n_bytes, (1 << width) - 1)


def test_min_max_len_monitors(tiny_mac, tiny_workload, tiny_golden):
    lengths = [len(f) for f in tiny_workload.frames]
    # Re-simulate and read the monitors at the end via golden outputs.
    out_index = {n: i for i, n in enumerate(tiny_golden.output_names)}
    last = tiny_golden.outputs[-1]
    lw = XGMAC_PRESETS["xgmac_tiny"].len_width

    def read_word(base):
        return sum(((last >> out_index[f"{base}[{i}]"]) & 1) << i for i in range(lw))

    assert read_word("rx_min_len_o") == min(lengths)
    assert read_word("rx_max_len_o") == max(lengths)


def test_oversize_frame_never_transmits():
    """A frame larger than the TX FIFO can never become ready (documented)."""
    nl = make_xgmac("xgmac_tiny")  # depth 4
    workload = build_xgmac_workload(nl, n_frames=2, min_len=6, max_len=6, seed=3)
    trace = workload.testbench.run_golden()
    assert decode_rx_stream(trace) == []
