"""Tests for the documentation example runner (``tools/check_docs.py``).

The heavy work — actually executing every fenced block in ``README.md`` and
``docs/*.md`` — runs as the CI ``docs`` job; here we pin the extractor's
parsing semantics so markup edits cannot silently stop examples from being
checked.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
sys.modules["check_docs"] = check_docs
_spec.loader.exec_module(check_docs)


def write_md(tmp_path: Path, text: str) -> Path:
    path = tmp_path / "doc.md"
    path.write_text(text)
    return path


def test_extracts_python_blocks_in_order(tmp_path):
    path = write_md(
        tmp_path,
        "# Doc\n"
        "```python\na = 1\n```\n"
        "prose\n"
        "```bash\nnot python\n```\n"
        "```python\nb = a + 1\n```\n",
    )
    blocks = check_docs.extract_blocks(path)
    assert [b.start_line for b in blocks] == [2, 9]
    assert blocks[0].source == "a = 1\n"
    assert not any(b.skipped for b in blocks)


def test_skip_marker_applies_to_next_block_only(tmp_path):
    path = write_md(
        tmp_path,
        "<!-- docs-check: skip -->\n"
        "```python\nraise RuntimeError('never run')\n```\n"
        "```python\nran = True\n```\n",
    )
    blocks = check_docs.extract_blocks(path)
    assert [b.skipped for b in blocks] == [True, False]
    assert check_docs.run_file(path, verbose=False) == 1


def test_blocks_share_one_namespace_and_report_md_lines(tmp_path):
    path = write_md(
        tmp_path,
        "```python\nvalue = 21\n```\n"
        "```python\nassert value * 2 == 42\n```\n",
    )
    assert check_docs.run_file(path, verbose=False) == 2

    failing = write_md(tmp_path, "intro\n\n```python\nboom\n```\n")
    with pytest.raises(NameError) as err:
        check_docs.run_file(failing, verbose=False)
    # The traceback points at the Markdown file and the real line number.
    tb = err.traceback[-1]
    assert str(tb.path).endswith("doc.md")
    assert tb.lineno + 1 == 4


def test_unterminated_fence_is_an_error(tmp_path):
    path = write_md(tmp_path, "```python\nx = 1\n")
    with pytest.raises(ValueError, match="unterminated"):
        check_docs.extract_blocks(path)


def test_repo_docs_have_runnable_examples():
    """The real docs keep at least one executable example each."""
    for name in ("README.md", "docs/simulators.md", "docs/architecture.md"):
        blocks = check_docs.extract_blocks(REPO_ROOT / name)
        assert any(not b.skipped for b in blocks), f"{name} lost its examples"
