"""Testbench framework tests: schedules, loopback, golden traces, activity."""

import io

import pytest

from repro.sim import (
    ActivityTrace,
    GoldenTrace,
    LoopbackPath,
    ScheduleBuilder,
    Testbench,
    write_vcd,
)


def test_schedule_builder_level_semantics():
    sb = ScheduleBuilder(["a", "b"])
    sb.drive(0, "a", 1)
    sb.drive(3, "a", 0)
    sb.pulse(1, "b")
    packed = sb.compile(5)
    a_bits = [(v >> 0) & 1 for v in packed]
    b_bits = [(v >> 1) & 1 for v in packed]
    assert a_bits == [1, 1, 1, 0, 0]
    assert b_bits == [0, 1, 0, 0, 0]


def test_schedule_builder_word_drive():
    sb = ScheduleBuilder([f"d[{i}]" for i in range(4)])
    sb.drive_word(2, "d", 4, 0b1010)
    packed = sb.compile(3)
    assert packed[2] == 0b1010
    assert packed[1] == 0


def test_schedule_builder_unknown_input():
    sb = ScheduleBuilder(["a"])
    with pytest.raises(KeyError):
        sb.drive(0, "zzz", 1)


def test_loopback_validation():
    with pytest.raises(ValueError):
        LoopbackPath(sources=("a",), targets=("b", "c"))
    with pytest.raises(ValueError):
        LoopbackPath(sources=("a",), targets=("b",), delay=0)


def test_golden_trace_shapes(tiny_workload, tiny_golden):
    trace = tiny_golden
    assert trace.n_cycles == tiny_workload.testbench.n_cycles
    assert len(trace.ff_state) == trace.n_cycles + 1
    assert len(trace.outputs) == trace.n_cycles
    assert len(trace.applied_inputs) == trace.n_cycles


def test_golden_trace_counts_consistent(tiny_golden):
    ones = tiny_golden.ff_ones_counts()
    toggles = tiny_golden.ff_toggle_counts()
    n = tiny_golden.n_cycles
    for i, name in enumerate(tiny_golden.ff_names):
        assert 0 <= ones[i] <= n
        assert 0 <= toggles[i] <= n
        # Parity argument: starting and ending at the recorded states, the
        # number of toggles has the parity of start ^ end.
        start = tiny_golden.ff_bit(i, 0)
        end = tiny_golden.ff_bit(i, n)
        assert toggles[i] % 2 == (start ^ end)


def test_activity_ratios_sum_to_one(tiny_golden):
    activity = ActivityTrace.from_golden(tiny_golden)
    for z, o in zip(activity.at_zero, activity.at_one):
        assert abs(z + o - 1.0) < 1e-12
        assert 0.0 <= z <= 1.0


def test_activity_as_dict(tiny_golden):
    activity = ActivityTrace.from_golden(tiny_golden)
    table = activity.as_dict()
    name = tiny_golden.ff_names[0]
    assert set(table[name]) == {"at_zero", "at_one", "state_changes"}


def test_loopback_targets_must_be_inputs(tiny_mac):
    with pytest.raises(ValueError, match="not a primary output"):
        Testbench(
            tiny_mac,
            [0] * 4,
            [LoopbackPath(sources=("pkt_tx_val",), targets=("xgmii_rxc",))],
        )


def test_golden_run_is_deterministic(tiny_workload):
    a = tiny_workload.testbench.run_golden()
    b = tiny_workload.testbench.run_golden()
    assert a.ff_state == b.ff_state
    assert a.outputs == b.outputs
    assert a.applied_inputs == b.applied_inputs


def test_vcd_export(tiny_golden):
    buffer = io.StringIO()
    write_vcd(tiny_golden, buffer)
    text = buffer.getvalue()
    assert text.startswith("$timescale")
    assert "$enddefinitions" in text
    assert "#0" in text
    # Every flip-flop is declared.
    assert text.count("$var reg 1 ") == len(tiny_golden.ff_names)
