"""Word-level operator tests: expression results vs integer arithmetic."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.expr import And, Const, Expr, Mux, Not, Or, Sig, Xor
from repro.synth import wordlib


def evaluate(expr: Expr, env: dict) -> int:
    """Directly interpret an expression tree over an environment."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sig):
        return env[expr.name]
    if isinstance(expr, Not):
        return 1 - evaluate(expr.operand, env)
    if isinstance(expr, And):
        return int(all(evaluate(a, env) for a in expr.args))
    if isinstance(expr, Or):
        return int(any(evaluate(a, env) for a in expr.args))
    if isinstance(expr, Xor):
        value = 0
        for a in expr.args:
            value ^= evaluate(a, env)
        return value
    if isinstance(expr, Mux):
        if evaluate(expr.sel, env):
            return evaluate(expr.if_one, env)
        return evaluate(expr.if_zero, env)
    raise TypeError(expr)


def word_value(word, env) -> int:
    return sum(evaluate(bit, env) << i for i, bit in enumerate(word))


def make_word(prefix: str, width: int, value: int):
    word = [Sig(f"{prefix}{i}") for i in range(width)]
    env = {f"{prefix}{i}": (value >> i) & 1 for i in range(width)}
    return word, env


WIDTH = 5
MASK = (1 << WIDTH) - 1


@given(a=st.integers(0, MASK), b=st.integers(0, MASK), cin=st.integers(0, 1))
@settings(max_examples=60, deadline=None)
def test_add_matches_integers(a, b, cin):
    wa, env_a = make_word("a", WIDTH, a)
    wb, env_b = make_word("b", WIDTH, b)
    env = {**env_a, **env_b}
    total, carry = wordlib.add(wa, wb, Const(cin))
    assert word_value(total, env) == (a + b + cin) & MASK
    assert evaluate(carry, env) == ((a + b + cin) >> WIDTH) & 1


@given(a=st.integers(0, MASK), b=st.integers(0, MASK))
@settings(max_examples=60, deadline=None)
def test_sub_matches_integers(a, b):
    wa, env_a = make_word("a", WIDTH, a)
    wb, env_b = make_word("b", WIDTH, b)
    env = {**env_a, **env_b}
    diff, no_borrow = wordlib.sub(wa, wb)
    assert word_value(diff, env) == (a - b) & MASK
    assert evaluate(no_borrow, env) == int(a >= b)


@given(a=st.integers(0, MASK), en=st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_inc_matches_integers(a, en):
    wa, env = make_word("a", WIDTH, a)
    result = wordlib.inc(wa, Const(en))
    assert word_value(result, env) == (a + en) & MASK


@given(a=st.integers(0, MASK), b=st.integers(0, MASK))
@settings(max_examples=60, deadline=None)
def test_comparisons(a, b):
    wa, env_a = make_word("a", WIDTH, a)
    wb, env_b = make_word("b", WIDTH, b)
    env = {**env_a, **env_b}
    assert evaluate(wordlib.eq(wa, wb), env) == int(a == b)
    assert evaluate(wordlib.ne(wa, wb), env) == int(a != b)
    assert evaluate(wordlib.lt(wa, wb), env) == int(a < b)


@given(a=st.integers(0, MASK), k=st.integers(0, MASK))
@settings(max_examples=40, deadline=None)
def test_eq_const(a, k):
    wa, env = make_word("a", WIDTH, a)
    assert evaluate(wordlib.eq_const(wa, k), env) == int(a == k)


@pytest.mark.parametrize("width", [1, 2, 3])
def test_decode_is_exact_onehot(width):
    sel, _ = make_word("s", width, 0)
    outputs = wordlib.decode(sel)
    assert len(outputs) == 1 << width
    for value in range(1 << width):
        env = {f"s{i}": (value >> i) & 1 for i in range(width)}
        pattern = [evaluate(o, env) for o in outputs]
        assert pattern == [int(i == value) for i in range(1 << width)]


def test_onehot_mux_selects_word():
    words = [wordlib.const_word(v, 4) for v in (3, 9, 12)]
    selects = [Sig("s0"), Sig("s1"), Sig("s2")]
    out = wordlib.onehot_mux(selects, words)
    for hot, expected in [(0, 3), (1, 9), (2, 12)]:
        env = {f"s{i}": int(i == hot) for i in range(3)}
        assert word_value(out, env) == expected


def test_mux_word_and_bitops():
    a, env_a = make_word("a", 4, 0b1010)
    b, env_b = make_word("b", 4, 0b0110)
    env = {**env_a, **env_b, "s": 1}
    sel = Sig("s")
    assert word_value(wordlib.mux_word(sel, a, b), env) == 0b1010
    env["s"] = 0
    assert word_value(wordlib.mux_word(sel, a, b), env) == 0b0110
    assert word_value(wordlib.and_word(a, b), env) == 0b0010
    assert word_value(wordlib.or_word(a, b), env) == 0b1110
    assert word_value(wordlib.xor_word(a, b), env) == 0b1100
    assert word_value(wordlib.not_word(a), env) == 0b0101


def test_resize():
    word = wordlib.const_word(0b101, 3)
    assert len(wordlib.resize(word, 6)) == 6
    assert len(wordlib.resize(word, 2)) == 2


def test_reduce_helpers():
    bits, env = make_word("a", 3, 0b000)
    assert evaluate(wordlib.reduce_or(bits), env) == 0
    assert evaluate(wordlib.reduce_and(bits), env) == 0
    env = {f"a{i}": 1 for i in range(3)}
    assert evaluate(wordlib.reduce_or(bits), env) == 1
    assert evaluate(wordlib.reduce_and(bits), env) == 1


def test_width_mismatch_errors():
    a = [Sig("x")]
    b = [Sig("y"), Sig("z")]
    with pytest.raises(ValueError):
        wordlib.add(a, b)
    with pytest.raises(ValueError):
        wordlib.eq(a, b)
    with pytest.raises(ValueError):
        wordlib.mux_word(Sig("s"), a, b)
