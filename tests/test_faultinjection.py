"""Fault-injection tests: criteria, injector semantics, campaigns, FDR stats."""

import json
import math

import pytest

from repro.faultinjection import (
    AnyOutputCriterion,
    CampaignResult,
    FdrEstimate,
    FlipFlopResult,
    PacketInterfaceCriterion,
    SeuFault,
    StatisticalFaultCampaign,
    relevant_flip_flops,
    required_sample_size,
    wilson_interval,
)
from repro.faultinjection.injector import BatchOutcome, FaultInjector
from repro.netlist import Netlist
from repro.sim import ScheduleBuilder, Testbench
from repro.synth import Module, Sig, synthesize, wordlib


# ------------------------------------------------------------- fdr stats


def test_fdr_estimate_basics():
    est = FdrEstimate(n_injections=170, n_failures=85)
    assert est.fdr == 0.5
    low, high = est.interval
    assert low < 0.5 < high
    assert est.margin < 0.08
    # Zero injections means *unknown* FDR, not a claim of perfect
    # reliability.
    assert math.isnan(FdrEstimate(0, 0).fdr)
    assert math.isnan(FlipFlopResult("ff", n_injections=0).fdr)


def test_wilson_interval_properties():
    low, high = wilson_interval(0, 100)
    assert low == pytest.approx(0.0, abs=1e-12) and high < 0.05
    low, high = wilson_interval(100, 100)
    assert high == pytest.approx(1.0, abs=1e-12) and low > 0.95
    assert wilson_interval(0, 0) == (0.0, 1.0)
    with pytest.raises(ValueError):
        wilson_interval(1, 10, confidence=1.5)


def test_required_sample_size_matches_paper():
    """~170 injections at 95 % confidence and 7.5 % margin (paper's count)."""
    n = required_sample_size(None, margin=0.075, confidence=0.95)
    assert 165 <= n <= 175
    # Finite universe shrinks the requirement.
    assert required_sample_size(1000, margin=0.075) < n
    with pytest.raises(ValueError):
        required_sample_size(None, margin=0.0)
    with pytest.raises(ValueError):
        required_sample_size(0)


def test_required_sample_size_edge_cases():
    # A one-element universe needs exactly its one sample, whatever the
    # margin or prior.
    assert required_sample_size(1, margin=0.075) == 1
    assert required_sample_size(1, margin=0.001, p=0.999) == 1
    # The sample can never exceed the finite universe it is drawn from.
    for population in (1, 2, 10, 170, 1054):
        n = required_sample_size(population, margin=0.001)
        assert 1 <= n <= population
    # Priors near the endpoints shrink the variance term but still require
    # at least one observation.
    assert required_sample_size(None, margin=0.075, p=1e-9) >= 1
    assert required_sample_size(1000, margin=0.075, p=1 - 1e-9) >= 1
    # Degenerate priors assert the outcome — rejected, not divided by.
    for bad_p in (0.0, 1.0, -0.1, 1.1):
        with pytest.raises(ValueError):
            required_sample_size(1000, p=bad_p)
    with pytest.raises(ValueError):
        required_sample_size(None, confidence=1.0)


def test_mean_fdr_ignores_unmeasured_flip_flops():
    result = CampaignResult(circuit="c", n_injections=10, seed=0)
    result.results["a"] = FlipFlopResult("a", n_injections=10, n_failures=5)
    result.results["b"] = FlipFlopResult("b", n_injections=0, n_failures=0)
    assert result.mean_fdr() == pytest.approx(0.5)
    empty = CampaignResult(circuit="c", n_injections=10, seed=0)
    empty.results["a"] = FlipFlopResult("a")
    assert math.isnan(empty.mean_fdr())
    assert math.isnan(CampaignResult(circuit="c", n_injections=10, seed=0).mean_fdr())


def test_seu_fault_repr():
    fault = SeuFault("ff_x", 42)
    assert "ff_x" in str(fault)


# -------------------------------------------------- relevant flip-flops


def test_relevant_flip_flops_excludes_dead_logic():
    m = Module("partial")
    en = m.input("en")
    visible = m.reg_bus("vis", 4)
    hidden = m.reg_bus("hid", 4)
    m.next_en(visible, en, wordlib.inc(visible))
    m.next_en(hidden, en, wordlib.inc(hidden))
    m.output_bus("out", visible)
    m.output_bus("dbg", hidden)
    nl = synthesize(m)
    relevant = relevant_flip_flops(nl, [f"out[{i}]" for i in range(4)])
    assert relevant == {f"ff_vis[{i}]" for i in range(4)}


def test_relevant_flip_flops_follow_sequential_paths(tiny_mac, tiny_workload):
    observable = tiny_workload.valid_nets + tiny_workload.data_nets
    relevant = relevant_flip_flops(tiny_mac, observable)
    # FIFO memory feeds the packet interface through the read mux.
    assert any(name.startswith("ff_rxf_mem") for name in relevant)
    # TX-side state reaches RX outputs only through the loopback, which is
    # external to the netlist — so TX FSM state is NOT relevant here.
    assert "ff_tx_state[0]" not in relevant
    # Statistics counters can never affect the packet interface.
    assert not any(name.startswith("ff_stat_") for name in relevant)


def test_relevant_flip_flops_empty_observable_set(tiny_mac):
    assert relevant_flip_flops(tiny_mac, []) == set()


def test_relevant_flip_flops_stops_at_undriven_nets():
    """An undriven net in the cone terminates the walk instead of crashing."""
    nl = Netlist("undriven")
    nl.add_input("clk", is_clock=True)
    nl.add_cell("ff_a", "DFF_X1", {"D": "floating", "CK": "clk", "Q": "q_a"})
    nl.add_cell("g_and", "AND2_X1", {"A": "q_a", "B": "also_floating", "Z": "obs"})
    nl.add_output("obs")
    relevant = relevant_flip_flops(nl, ["obs"])
    assert relevant == {"ff_a"}


def test_relevant_flip_flops_handles_self_loop():
    """A flip-flop feeding its own D pin must not loop the traversal."""
    nl = Netlist("selfloop")
    nl.add_input("clk", is_clock=True)
    nl.add_cell("g_inv", "INV_X1", {"A": "q_t", "Z": "d_t"})
    nl.add_cell("ff_t", "DFF_X1", {"D": "d_t", "CK": "clk", "Q": "q_t"})
    nl.add_output("q_t")
    relevant = relevant_flip_flops(nl, ["q_t"])
    assert relevant == {"ff_t"}


def test_batch_outcome_latencies_default_is_per_instance():
    a = BatchOutcome(failed_mask=0, n_lanes=2, cycles_simulated=5)
    b = BatchOutcome(failed_mask=1, n_lanes=1, cycles_simulated=3)
    assert a.latencies == {} and b.latencies == {}
    a.latencies[0] = 7
    assert b.latencies == {}  # no shared mutable default


# --------------------------------------------------------- injector


@pytest.fixture(scope="module")
def counter_campaign_parts(counter_netlist):
    sb = ScheduleBuilder(counter_netlist.inputs)
    sb.drive(0, "rst_n", 0)
    sb.drive(2, "rst_n", 1)
    sb.drive(2, "en", 1)
    tb = Testbench(counter_netlist, sb.compile(40))
    golden = tb.run_golden()
    criterion = AnyOutputCriterion.all_outputs(counter_netlist)
    return tb, golden, criterion


def test_injection_in_counter_always_fails(counter_netlist, counter_campaign_parts):
    """A flipped counter bit immediately corrupts the observed count."""
    tb, golden, criterion = counter_campaign_parts
    injector = FaultInjector(counter_netlist, tb, golden, criterion)
    outcome = injector.run_batch(10, [0, 1, 2, 3])
    assert outcome.failed_mask == 0b1111
    assert outcome.failed_lanes() == [0, 1, 2, 3]


def test_injection_outside_trace_rejected(counter_netlist, counter_campaign_parts):
    tb, golden, criterion = counter_campaign_parts
    injector = FaultInjector(counter_netlist, tb, golden, criterion)
    with pytest.raises(ValueError):
        injector.run_batch(1000, [0])


def test_benign_fault_converges_early():
    """A fault in dead logic retires the batch long before trace end."""
    m = Module("deadend")
    en = m.input("en")
    visible = m.reg_bus("vis", 4)
    hidden = m.reg_bus("hid", 4)
    m.next_en(visible, en, wordlib.inc(visible))
    m.next_en(hidden, en, wordlib.inc(hidden))
    m.output_bus("out", visible)
    m.output_bus("dbg", hidden)
    nl = synthesize(m)
    sb = ScheduleBuilder(nl.inputs)
    sb.drive(0, "rst_n", 0)
    sb.drive(2, "rst_n", 1)
    sb.drive(2, "en", 1)
    tb = Testbench(nl, sb.compile(500))
    golden = tb.run_golden()
    criterion = AnyOutputCriterion([f"out[{i}]" for i in range(4)])
    injector = FaultInjector(nl, tb, golden, criterion, check_interval=2)
    hidden_idx = [i for i, ff in enumerate(nl.flip_flops()) if "hid" in ff.name]
    outcome = injector.run_batch(10, hidden_idx)
    assert outcome.failed_mask == 0
    assert outcome.cycles_simulated < 20  # retired early, not run to cycle 500


def test_fault_through_loopback_is_detected(tiny_mac, tiny_workload, tiny_golden):
    """TX-side faults must reach the RX criterion through the loopback."""
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    injector = FaultInjector(tiny_mac, tiny_workload.testbench, tiny_golden, criterion)
    first_active, _ = tiny_workload.active_window
    # Flip TX FSM state mid-traffic repeatedly; at least one must fail.
    tx_state_idx = injector.ff_index("ff_tx_state[0]")
    failures = 0
    for cycle in range(first_active + 2, first_active + 22, 2):
        outcome = injector.run_batch(cycle, [tx_state_idx])
        failures += outcome.failed_mask & 1
    assert failures > 0


# ------------------------------------------------------------ campaign


def test_campaign_results_structure(tiny_mac, tiny_campaign):
    _runner, result = tiny_campaign
    assert len(result.results) == len(tiny_mac.flip_flops())
    for record in result.results.values():
        assert record.n_injections == 16
        assert 0 <= record.n_failures <= record.n_injections
        assert 0.0 <= record.fdr <= 1.0
    assert result.n_forward_runs > 0
    assert 0.0 <= result.mean_fdr() <= 1.0


def test_campaign_fdr_spread_is_plausible(tiny_campaign):
    """Control state should be far more critical than statistics counters."""
    _runner, result = tiny_campaign
    assert result.fdr("ff_tx_state[0]") > 0.5
    assert result.fdr("ff_stat_tx_frames[0]") == 0.0
    fdrs = [r.fdr for r in result.results.values()]
    assert min(fdrs) == 0.0
    assert max(fdrs) > 0.5


def test_campaign_is_deterministic(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    ffs = tiny_mac.flip_flop_names()[:8]
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
    )
    a = runner.run(n_injections=8, ff_names=ffs, seed=9)
    b = runner.run(n_injections=8, ff_names=ffs, seed=9)
    assert [r.n_failures for r in a.results.values()] == [
        r.n_failures for r in b.results.values()
    ]


def test_campaign_subset_and_json_round_trip(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    ffs = tiny_mac.flip_flop_names()[:5]
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
    )
    result = runner.run(n_injections=6, ff_names=ffs, seed=1)
    assert set(result.results) == set(ffs)
    restored = CampaignResult.from_json(result.to_json())
    assert restored.circuit == result.circuit
    assert restored.fdr_vector(ffs) == result.fdr_vector(ffs)


def test_campaign_rejects_small_window(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=(10, 14),
        golden=tiny_golden,
    )
    with pytest.raises(ValueError, match="time slots"):
        runner.run(n_injections=50, ff_names=tiny_mac.flip_flop_names()[:2])


def test_campaign_invalid_window_rejected(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    with pytest.raises(ValueError, match="window"):
        StatisticalFaultCampaign(
            tiny_mac,
            tiny_workload.testbench,
            criterion,
            active_window=(50, 20),
            golden=tiny_golden,
        )


def test_progress_callback(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
    )
    calls = []
    runner.run(
        n_injections=4,
        ff_names=tiny_mac.flip_flop_names()[:3],
        seed=2,
        progress=lambda done, total: calls.append((done, total)),
    )
    assert calls and calls[-1][0] == calls[-1][1]
