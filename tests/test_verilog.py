"""Verilog writer/parser round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import NetlistError, parse_verilog, write_verilog
from repro.netlist.verilog import escape_identifier
from repro.sim import CompiledSimulator


def test_escape_identifier():
    assert escape_identifier("foo") == "foo"
    assert escape_identifier("bus[3]") == "\\bus[3] "
    assert escape_identifier("a/b") == "\\a/b "


def test_round_trip_preserves_structure(counter_netlist):
    text = write_verilog(counter_netlist)
    parsed = parse_verilog(text)
    assert parsed.name == counter_netlist.name
    assert set(parsed.inputs) == set(counter_netlist.inputs)
    assert set(parsed.outputs) == set(counter_netlist.outputs)
    assert len(parsed.cells) == len(counter_netlist.cells)
    assert len(parsed.flip_flops()) == len(counter_netlist.flip_flops())
    parsed.validate()


def test_round_trip_preserves_behaviour(counter_netlist):
    parsed = parse_verilog(write_verilog(counter_netlist))
    sim_a = CompiledSimulator(counter_netlist)
    sim_b = CompiledSimulator(parsed)
    for sim in (sim_a, sim_b):
        sim.reset()
        sim.set_input("rst_n", 1)
        sim.set_input("en", 1)
    for _ in range(7):
        sim_a.eval_comb()
        sim_b.eval_comb()
        assert sim_a.get_word("count", 4) == sim_b.get_word("count", 4)
        sim_a.tick()
        sim_b.tick()


def test_clock_recovered_from_ck_fanout(counter_netlist):
    parsed = parse_verilog(write_verilog(counter_netlist))
    assert parsed.clocks == ["clk"]


def test_drive_strengths_round_trip(tiny_mac):
    parsed = parse_verilog(write_verilog(tiny_mac))
    for name, cell in tiny_mac.cells.items():
        assert parsed.cells[name].drive == cell.drive


def test_comments_are_ignored():
    text = """
    // line comment
    module m (a, y);
      input a; /* block
      comment */ output y;
      INV_X1 u1 (.A(a), .Z(y));
    endmodule
    """
    parsed = parse_verilog(text)
    assert parsed.name == "m"
    assert len(parsed.cells) == 1


def test_positional_connections_rejected():
    text = "module m (a, y); input a; output y; INV_X1 u1 (a, y); endmodule"
    with pytest.raises(NetlistError, match="named port"):
        parse_verilog(text)


def test_garbage_rejected():
    with pytest.raises(NetlistError):
        parse_verilog("module m (a; !!!")


def test_unknown_cell_type_rejected():
    text = "module m (a, y); input a; output y; MYSTERY u1 (.A(a), .Z(y)); endmodule"
    with pytest.raises((NetlistError, KeyError)):
        parse_verilog(text)


# ------------------------------------------------- fuzzed round-trip property


def _structure(netlist):
    """Canonical structural form: ports, clocks and full cell connectivity."""
    return {
        "name": netlist.name,
        "inputs": list(netlist.inputs),
        "outputs": list(netlist.outputs),
        "clocks": list(netlist.clocks),
        "nets": sorted(netlist.nets),
        "cells": {
            c.name: (c.ctype.name, c.drive, sorted(c.connections.items()))
            for c in netlist.iter_cells()
        },
    }


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_fuzzed_netlist_round_trips_through_verilog(seed):
    """Emit a fuzzed netlist over the whole cell library, re-parse it, and
    demand structural equality (the writer/parser satellite property)."""
    from repro.verify import FuzzSpec, generate_netlist

    netlist = generate_netlist(FuzzSpec(seed=seed, n_gates=24, n_ffs=4))
    parsed = parse_verilog(write_verilog(netlist))
    parsed.validate()
    assert _structure(parsed) == _structure(netlist)
    # And a second emit of the parsed netlist is byte-identical (fixpoint).
    assert write_verilog(parsed) == write_verilog(netlist)


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_fuzzed_round_trip_preserves_behaviour(seed):
    """The re-parsed netlist simulates identically on random stimulus."""
    from repro.verify import FuzzSpec, generate_netlist, generate_schedule

    spec = FuzzSpec(seed=seed, n_gates=16, n_ffs=3, n_cycles=10)
    netlist = generate_netlist(spec)
    parsed = parse_verilog(write_verilog(netlist))
    schedule = generate_schedule(netlist, spec)
    sims = [CompiledSimulator(netlist), CompiledSimulator(parsed)]
    for sim in sims:
        sim.reset()
    for cycle in range(spec.n_cycles):
        vectors = []
        for sim in sims:
            for i, name in enumerate(netlist.inputs):
                sim.set_input(name, (schedule[cycle] >> i) & 1)
            sim.eval_comb()
            vectors.append(sim.output_vector())
            sim.tick()
        assert vectors[0] == vectors[1], f"cycle {cycle}"
