"""Verilog writer/parser round-trip tests."""

import pytest

from repro.netlist import NetlistError, parse_verilog, write_verilog
from repro.netlist.verilog import escape_identifier
from repro.sim import CompiledSimulator


def test_escape_identifier():
    assert escape_identifier("foo") == "foo"
    assert escape_identifier("bus[3]") == "\\bus[3] "
    assert escape_identifier("a/b") == "\\a/b "


def test_round_trip_preserves_structure(counter_netlist):
    text = write_verilog(counter_netlist)
    parsed = parse_verilog(text)
    assert parsed.name == counter_netlist.name
    assert set(parsed.inputs) == set(counter_netlist.inputs)
    assert set(parsed.outputs) == set(counter_netlist.outputs)
    assert len(parsed.cells) == len(counter_netlist.cells)
    assert len(parsed.flip_flops()) == len(counter_netlist.flip_flops())
    parsed.validate()


def test_round_trip_preserves_behaviour(counter_netlist):
    parsed = parse_verilog(write_verilog(counter_netlist))
    sim_a = CompiledSimulator(counter_netlist)
    sim_b = CompiledSimulator(parsed)
    for sim in (sim_a, sim_b):
        sim.reset()
        sim.set_input("rst_n", 1)
        sim.set_input("en", 1)
    for _ in range(7):
        sim_a.eval_comb()
        sim_b.eval_comb()
        assert sim_a.get_word("count", 4) == sim_b.get_word("count", 4)
        sim_a.tick()
        sim_b.tick()


def test_clock_recovered_from_ck_fanout(counter_netlist):
    parsed = parse_verilog(write_verilog(counter_netlist))
    assert parsed.clocks == ["clk"]


def test_drive_strengths_round_trip(tiny_mac):
    parsed = parse_verilog(write_verilog(tiny_mac))
    for name, cell in tiny_mac.cells.items():
        assert parsed.cells[name].drive == cell.drive


def test_comments_are_ignored():
    text = """
    // line comment
    module m (a, y);
      input a; /* block
      comment */ output y;
      INV_X1 u1 (.A(a), .Z(y));
    endmodule
    """
    parsed = parse_verilog(text)
    assert parsed.name == "m"
    assert len(parsed.cells) == 1


def test_positional_connections_rejected():
    text = "module m (a, y); input a; output y; INV_X1 u1 (a, y); endmodule"
    with pytest.raises(NetlistError, match="named port"):
        parse_verilog(text)


def test_garbage_rejected():
    with pytest.raises(NetlistError):
        parse_verilog("module m (a; !!!")


def test_unknown_cell_type_rejected():
    text = "module m (a, y); input a; output y; MYSTERY u1 (.A(a), .Z(y)); endmodule"
    with pytest.raises((NetlistError, KeyError)):
        parse_verilog(text)
