"""Event-driven simulator tests: X-propagation, clocking, cross-check."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import DEFAULT_LIBRARY, Netlist
from repro.sim import (
    ClockGenerator,
    CompiledSimulator,
    EventDrivenSimulator,
    ONE,
    X,
    ZERO,
    eval3,
)


def test_eval3_exact_x_propagation():
    and2 = DEFAULT_LIBRARY["AND2"]
    assert eval3(and2, [ZERO, X]) == ZERO  # controlling value masks X
    assert eval3(and2, [ONE, X]) == X
    or2 = DEFAULT_LIBRARY["OR2"]
    assert eval3(or2, [ONE, X]) == ONE
    assert eval3(or2, [ZERO, X]) == X
    xor2 = DEFAULT_LIBRARY["XOR2"]
    assert eval3(xor2, [ZERO, X]) == X
    mux2 = DEFAULT_LIBRARY["MUX2"]
    # Same data on both legs masks an unknown select.
    assert eval3(mux2, [ONE, ONE, X]) == ONE
    assert eval3(mux2, [ZERO, ONE, X]) == X


def test_eval3_matches_binary_when_known():
    for name in ("AND2", "NAND3", "OR4", "XNOR2", "AOI21", "OAI22", "MUX2"):
        ctype = DEFAULT_LIBRARY[name]
        for bits in itertools.product((0, 1), repeat=len(ctype.inputs)):
            assert eval3(ctype, list(bits)) == ctype.evaluate(list(bits), mask=1)


def test_eval3_rejects_bad_values():
    with pytest.raises(ValueError):
        eval3(DEFAULT_LIBRARY["INV"], [7])


def build_dff_chain():
    nl = Netlist("chain")
    nl.add_input("clk", is_clock=True)
    nl.add_input("d")
    nl.add_cell("ff0", "DFF", {"D": "d", "CK": "clk", "Q": "q0"})
    nl.add_cell("ff1", "DFF", {"D": "q0", "CK": "clk", "Q": "q1"})
    nl.add_output("q1")
    return nl


def test_unknown_state_before_first_clock():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    assert sim.get("q1") == X


def test_values_propagate_through_chain():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    clock = ClockGenerator("clk", period=10)
    samples = []

    def stimulus(cycle, s):
        return {"d": ONE if cycle >= 1 else ZERO}

    def sample(cycle, s):
        samples.append(s.get("q1"))

    sim.run_clocked(clock, 6, stimulus=stimulus, sample=sample)
    # q1 is X until two edges have passed, then follows d two cycles late.
    assert samples[0] == X
    assert samples[-1] == ONE


def test_event_sim_matches_compiled_on_counter(counter_netlist):
    """Cross-check: both engines agree cycle by cycle after reset."""
    event_sim = EventDrivenSimulator(counter_netlist)
    clock = ClockGenerator("clk", period=10)
    event_values = []

    def stimulus(cycle, s):
        if cycle == 0:
            return {"rst_n": ZERO, "en": ZERO}
        if cycle == 2:
            return {"rst_n": ONE, "en": ONE}
        return {}

    def sample(cycle, s):
        event_values.append(s.get_word("count", 4))

    event_sim.run_clocked(clock, 12, stimulus=stimulus, sample=sample)

    compiled = CompiledSimulator(counter_netlist)
    compiled.reset()
    compiled_values = []
    for cycle in range(12):
        compiled.set_input("rst_n", 0 if cycle < 3 else 1)
        compiled.set_input("en", 0 if cycle < 3 else 1)
        compiled.eval_comb()
        compiled_values.append(compiled.get_word("count", 4))
        compiled.tick()
    # After the reset phase (where the event sim still holds X), they agree.
    for ev, cv in zip(event_values[4:], compiled_values[4:]):
        assert ev == cv


def test_probe_callbacks_fire():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    changes = []
    sim.add_probe("q0", lambda t, net, v: changes.append((t, v)))
    sim.set_input("d", ONE)
    clock = ClockGenerator("clk", period=10)
    sim.run_clocked(clock, 3)
    assert changes, "probe should observe at least the X->1 transition"
    assert changes[-1][1] == ONE


def test_scheduling_in_past_rejected():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    sim.schedule(50, "d", ONE)
    sim.run_until(60)
    with pytest.raises(ValueError):
        sim.schedule(10, "d", ZERO)


def test_set_input_requires_primary_input():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    with pytest.raises(ValueError):
        sim.set_input("q0", ONE)


def test_clock_generator_edges():
    clock = ClockGenerator("clk", period=10, start=5)
    edges = clock.edges_until(35)
    assert edges[0] == (5, ONE)
    assert edges[1] == (10, ZERO)
    assert all(b - a == 5 for (a, _), (b, _) in zip(edges, edges[1:]))
