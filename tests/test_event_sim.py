"""Event-driven simulator tests: X-propagation, clocking, cross-check."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import DEFAULT_LIBRARY, Netlist
from repro.sim import (
    ClockGenerator,
    CompiledSimulator,
    EventDrivenSimulator,
    ONE,
    X,
    ZERO,
    eval3,
)


def test_eval3_exact_x_propagation():
    and2 = DEFAULT_LIBRARY["AND2"]
    assert eval3(and2, [ZERO, X]) == ZERO  # controlling value masks X
    assert eval3(and2, [ONE, X]) == X
    or2 = DEFAULT_LIBRARY["OR2"]
    assert eval3(or2, [ONE, X]) == ONE
    assert eval3(or2, [ZERO, X]) == X
    xor2 = DEFAULT_LIBRARY["XOR2"]
    assert eval3(xor2, [ZERO, X]) == X
    mux2 = DEFAULT_LIBRARY["MUX2"]
    # Same data on both legs masks an unknown select.
    assert eval3(mux2, [ONE, ONE, X]) == ONE
    assert eval3(mux2, [ZERO, ONE, X]) == X


def test_eval3_matches_binary_when_known():
    for name in ("AND2", "NAND3", "OR4", "XNOR2", "AOI21", "OAI22", "MUX2"):
        ctype = DEFAULT_LIBRARY[name]
        for bits in itertools.product((0, 1), repeat=len(ctype.inputs)):
            assert eval3(ctype, list(bits)) == ctype.evaluate(list(bits), mask=1)


def test_eval3_rejects_bad_values():
    with pytest.raises(ValueError):
        eval3(DEFAULT_LIBRARY["INV"], [7])


def build_dff_chain():
    nl = Netlist("chain")
    nl.add_input("clk", is_clock=True)
    nl.add_input("d")
    nl.add_cell("ff0", "DFF", {"D": "d", "CK": "clk", "Q": "q0"})
    nl.add_cell("ff1", "DFF", {"D": "q0", "CK": "clk", "Q": "q1"})
    nl.add_output("q1")
    return nl


def test_unknown_state_before_first_clock():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    assert sim.get("q1") == X


def test_values_propagate_through_chain():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    clock = ClockGenerator("clk", period=10)
    samples = []

    def stimulus(cycle, s):
        return {"d": ONE if cycle >= 1 else ZERO}

    def sample(cycle, s):
        samples.append(s.get("q1"))

    sim.run_clocked(clock, 6, stimulus=stimulus, sample=sample)
    # q1 is X until two edges have passed, then follows d two cycles late.
    assert samples[0] == X
    assert samples[-1] == ONE


def test_event_sim_matches_compiled_on_counter(counter_netlist):
    """Cross-check: both engines agree cycle by cycle after reset."""
    event_sim = EventDrivenSimulator(counter_netlist)
    clock = ClockGenerator("clk", period=10)
    event_values = []

    def stimulus(cycle, s):
        if cycle == 0:
            return {"rst_n": ZERO, "en": ZERO}
        if cycle == 2:
            return {"rst_n": ONE, "en": ONE}
        return {}

    def sample(cycle, s):
        event_values.append(s.get_word("count", 4))

    event_sim.run_clocked(clock, 12, stimulus=stimulus, sample=sample)

    compiled = CompiledSimulator(counter_netlist)
    compiled.reset()
    compiled_values = []
    for cycle in range(12):
        compiled.set_input("rst_n", 0 if cycle < 3 else 1)
        compiled.set_input("en", 0 if cycle < 3 else 1)
        compiled.eval_comb()
        compiled_values.append(compiled.get_word("count", 4))
        compiled.tick()
    # After the reset phase (where the event sim still holds X), they agree.
    for ev, cv in zip(event_values[4:], compiled_values[4:]):
        assert ev == cv


def test_probe_callbacks_fire():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    changes = []
    sim.add_probe("q0", lambda t, net, v: changes.append((t, v)))
    sim.set_input("d", ONE)
    clock = ClockGenerator("clk", period=10)
    sim.run_clocked(clock, 3)
    assert changes, "probe should observe at least the X->1 transition"
    assert changes[-1][1] == ONE


def test_scheduling_in_past_rejected():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    sim.schedule(50, "d", ONE)
    sim.run_until(60)
    with pytest.raises(ValueError):
        sim.schedule(10, "d", ZERO)


def test_set_input_requires_primary_input():
    nl = build_dff_chain()
    sim = EventDrivenSimulator(nl)
    with pytest.raises(ValueError):
        sim.set_input("q0", ONE)


def test_clock_generator_edges():
    clock = ClockGenerator("clk", period=10, start=5)
    edges = clock.edges_until(35)
    assert edges[0] == (5, ONE)
    assert edges[1] == (10, ZERO)
    assert all(b - a == 5 for (a, _), (b, _) in zip(edges, edges[1:]))


# ------------------------------------------- X-propagation vs. the oracle


def build_mixed_reset_design():
    """Two state bits: one resettable (DFFR), one free-running (DFF).

    The DFF is fed from the DFFR's cone, so its X clears only after real
    data has flowed — the classic "startup before reset" shape.
    """
    nl = Netlist("mixed_reset")
    nl.add_input("clk", is_clock=True)
    nl.add_input("rst_n")
    nl.add_input("d")
    nl.add_cell("g_and", "AND2", {"A": "d", "B": "qr", "Z": "n1"})
    nl.add_cell("ffr", "DFFR", {"D": "d", "RN": "rst_n", "CK": "clk", "Q": "qr"})
    nl.add_cell("ffp", "DFF", {"D": "n1", "CK": "clk", "Q": "qp"})
    nl.add_output("qr")
    nl.add_output("qp")
    nl.validate()
    return nl


def drive_locked_cycles(netlist, stimulus_bits, observe):
    """Run event sim and oracle in lockstep; call observe(cycle, ev, oracle).

    ``stimulus_bits[cycle]`` maps input name -> 0/1.  The clock is driven as
    an explicit waveform for the event engine and implied (tick) for the
    oracle, with the same pre-edge observation point for both.
    """
    from repro.verify import OracleSimulator

    event = EventDrivenSimulator(netlist)
    oracle = OracleSimulator(netlist)
    oracle.reset()
    period, half = 20, 10
    for cycle, assignments in enumerate(stimulus_bits):
        t_base = cycle * period
        event.schedule(t_base, "clk", ZERO)
        for name, bit in assignments.items():
            event.schedule(t_base, name, ONE if bit else ZERO)
            oracle.set_input(name, bit)
        event.run_until(t_base + half - 1)
        oracle.eval_comb()
        observe(cycle, event, oracle)
        event.schedule(t_base + half, "clk", ONE)
        event.run_until(t_base + period - 1)
        oracle.tick()


def test_x_before_reset_then_agreement_with_oracle():
    """All nets are X at startup; once each resolves it matches the oracle
    and never reverts to X."""
    netlist = build_mixed_reset_design()
    stimulus = [{"rst_n": 0, "d": 1}] * 2 + [{"rst_n": 1, "d": 1}] * 6
    resolved_at = {}
    mismatches = []

    def observe(cycle, event, oracle):
        for net in ("qr", "qp", "n1"):
            value = event.get(net)
            if value == X:
                assert net not in resolved_at, f"{net} reverted to X"
                continue
            resolved_at.setdefault(net, cycle)
            if value != oracle.get(net):
                mismatches.append((cycle, net, value, oracle.get(net)))

    drive_locked_cycles(netlist, stimulus, observe)
    assert not mismatches, mismatches
    # The resettable bit resolves first (reset forces it), the plain DFF
    # only after valid data propagates through the AND cone.
    assert resolved_at["qr"] < resolved_at["qp"]
    assert set(resolved_at) == {"qr", "qp", "n1"}


def test_plain_dff_stays_x_without_reset_path():
    """A free-running DFF fed only by unknown state never resolves, while
    the two-valued backends define it as 0 — exactly the gap the verify
    harness must skip rather than flag."""
    nl = Netlist("noreset")
    nl.add_input("clk", is_clock=True)
    nl.add_cell("inv", "INV", {"A": "q", "Z": "nq"})
    nl.add_cell("ff", "DFF", {"D": "nq", "CK": "clk", "Q": "q"})
    nl.add_output("q")
    nl.validate()

    stayed_x = []

    def observe(cycle, event, oracle):
        stayed_x.append(event.get("q") == X)
        # The oracle, by contrast, oscillates deterministically from 0.
        assert oracle.get("q") in (0, 1)

    drive_locked_cycles(nl, [{}] * 5, observe)
    assert all(stayed_x)


def test_rn_x_gates_dffr_exactly():
    """DFFR with unknown RN: D=0 still latches 0 (0 & anything), D=1 gives X."""
    nl = Netlist("rnx")
    nl.add_input("clk", is_clock=True)
    nl.add_input("rst_n")
    nl.add_input("d")
    nl.add_cell("ff", "DFFR", {"D": "d", "RN": "rst_n", "CK": "clk", "Q": "q"})
    nl.add_output("q")
    nl.validate()

    sim = EventDrivenSimulator(nl)
    # Leave rst_n at X, drive D=0, clock one edge: Q must resolve to 0.
    sim.schedule(0, "clk", ZERO)
    sim.schedule(0, "d", ZERO)
    sim.run_until(4)
    sim.schedule(5, "clk", ONE)
    sim.run_until(9)
    assert sim.get("q") == ZERO
    # Now D=1 with RN still X: the latched value is unknown.
    sim.schedule(10, "clk", ZERO)
    sim.schedule(10, "d", ONE)
    sim.run_until(14)
    sim.schedule(15, "clk", ONE)
    sim.run_until(19)
    assert sim.get("q") == X


def test_fuzzed_event_startup_agrees_with_oracle():
    """Fuzzed circuits with a mix of DFF/DFFR: the event engine's resolved
    nets always match the oracle through and after the reset phase."""
    from repro.verify import FuzzSpec, generate_netlist, run_event_differential

    for seed in range(4):
        spec = FuzzSpec(seed=seed, n_gates=20, n_ffs=6, p_dffr=0.5, n_cycles=12)
        netlist = generate_netlist(spec)
        divergences, comparisons = run_event_differential(netlist, spec)
        assert comparisons > 0
        assert not divergences, [str(d) for d in divergences]
