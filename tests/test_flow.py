"""End-to-end flow and reporting tests."""

import numpy as np
import pytest

from repro.flow import (
    FdrEstimator,
    ascii_series_plot,
    ascii_xy_plot,
    format_table,
    run_reference_flow,
    series_to_csv,
)
from repro.ml import KNeighborsRegressor, LinearLeastSquares, StandardScaler, make_pipeline


def knn_model():
    return make_pipeline(StandardScaler(), KNeighborsRegressor(3))


def test_reference_flow_end_to_end(tiny_mac, tiny_workload):
    report = run_reference_flow(
        tiny_mac,
        tiny_workload,
        knn_model(),
        n_injections=12,
        train_size=0.5,
        campaign_seed=1,
        split_seed=1,
    )
    n = report.dataset.n_samples
    assert len(report.train_indices) + len(report.test_indices) == n
    assert report.test_predictions.shape == report.y_test.shape
    assert np.all((report.test_predictions >= 0) & (report.test_predictions <= 1))
    assert set(report.test_metrics) == {"mae", "max", "rmse", "ev", "r2"}
    # k-NN should comfortably beat a coin flip on this structured data.
    assert report.test_metrics["r2"] > 0.2


def test_estimator_predict_dataset(tiny_dataset):
    estimator = FdrEstimator(knn_model())
    estimator.fit(tiny_dataset)
    predictions = estimator.predict_dataset(tiny_dataset)
    assert set(predictions) == set(tiny_dataset.ff_names)
    assert all(0.0 <= v <= 1.0 for v in predictions.values())


def test_estimator_partial_training(tiny_dataset):
    """Train on half the flip-flops, predict the other half."""
    n = tiny_dataset.n_samples
    train_rows = list(range(0, n, 2))
    test_rows = list(range(1, n, 2))
    estimator = FdrEstimator(knn_model())
    estimator.fit(tiny_dataset, train_rows)
    predictions = estimator.predict(tiny_dataset.X[test_rows])
    assert predictions.shape == (len(test_rows),)


def test_estimator_unfitted_raises(tiny_dataset):
    with pytest.raises(RuntimeError):
        FdrEstimator(knn_model()).predict(tiny_dataset.X)


def test_clipping_toggle(tiny_dataset):
    raw = FdrEstimator(LinearLeastSquares(), clip=False)
    raw.fit(tiny_dataset)
    clipped = FdrEstimator(LinearLeastSquares(), clip=True)
    clipped.fit(tiny_dataset)
    raw_pred = raw.predict(tiny_dataset.X)
    clipped_pred = clipped.predict(tiny_dataset.X)
    assert clipped_pred.min() >= 0.0 and clipped_pred.max() <= 1.0
    # The linear model does overshoot [0,1] on this dataset.
    assert raw_pred.min() < 0.0 or raw_pred.max() > 1.0


def test_campaign_cost_saving(tiny_dataset):
    estimator = FdrEstimator(knn_model())
    savings = estimator.campaign_cost_saving(tiny_dataset, train_size=0.5)
    assert savings["cost_reduction_factor"] == pytest.approx(2.0, rel=0.05)
    savings20 = estimator.campaign_cost_saving(tiny_dataset, train_size=0.2)
    assert savings20["cost_reduction_factor"] == pytest.approx(5.0, rel=0.05)


def test_reporting_module_is_deprecated_alias():
    import importlib
    import sys

    sys.modules.pop("repro.flow.reporting", None)
    with pytest.warns(DeprecationWarning, match="textview"):
        module = importlib.import_module("repro.flow.reporting")
    from repro.flow.textview import format_table

    assert module.format_table is format_table


def test_reporting_alias_reexports_everything_from_textview():
    """Regression: the alias must track textview's full public surface, so
    old ``from repro.flow.reporting import X`` call sites keep working."""
    import importlib
    import sys
    import warnings

    from repro.flow import textview

    sys.modules.pop("repro.flow.reporting", None)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        alias = importlib.import_module("repro.flow.reporting")
    assert set(alias.__all__) == set(textview.__all__)
    for name in textview.__all__:
        assert getattr(alias, name) is getattr(textview, name), name


def test_reporting_alias_warns_on_every_fresh_import():
    """The warning must not be a one-shot: a fresh import always warns."""
    import importlib
    import sys

    for _ in range(2):
        sys.modules.pop("repro.flow.reporting", None)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            importlib.import_module("repro.flow.reporting")


# ------------------------------------------------------------- reporting


def test_format_table_alignment():
    text = format_table(["A", "Metric"], [["x", 1.23456], ["yy", 2.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "1.235" in text
    assert all(len(line) == len(lines[1]) for line in lines[1:])


def test_ascii_plots_render():
    plot = ascii_xy_plot({"s": ([0, 1, 2], [0.0, 0.5, 1.0])}, width=20, height=5, title="p")
    assert "p" in plot and "o" in plot
    line_plot = ascii_series_plot([0, 1], {"a": [0.1, 0.9], "b": [0.9, 0.1]}, width=20, height=5)
    assert "a" in line_plot and "b" in line_plot
    assert ascii_xy_plot({}) == "(empty plot)"


def test_series_to_csv():
    csv_text = series_to_csv({"x": [1, 2], "y": [0.5]})
    lines = csv_text.strip().splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1,0.5"
    assert lines[2] == "2,"


def test_generate_report(tiny_dataset):
    from repro.flow import generate_report

    text = generate_report(
        tiny_dataset,
        cv_folds=3,
        curve_sizes=[0.2, 0.5],
        include_future_work=False,
    )
    assert text.startswith("# Reproduction report")
    assert "## Table I" in text
    for figure in ("fig2", "fig3", "fig4"):
        assert f"## {figure}" in text
    assert "Shape holds" in text
    assert "Campaign economics" in text
    assert "Engine cost" not in text


def test_generate_report_with_campaign_economics(tiny_dataset, tiny_campaign):
    from repro.flow import generate_report

    _runner, campaign = tiny_campaign
    text = generate_report(
        tiny_dataset,
        cv_folds=3,
        curve_sizes=[0.5],
        include_future_work=False,
        campaign=campaign,
    )
    assert "Engine cost" in text
    assert f"{campaign.n_forward_runs} forward simulations" in text
