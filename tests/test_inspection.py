"""Permutation-importance tests."""

import numpy as np
import pytest

from repro.experiments import run_importance
from repro.ml import KNeighborsRegressor, LinearLeastSquares, StandardScaler, make_pipeline
from repro.ml.inspection import permutation_importance


def test_importance_identifies_informative_feature():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = 3.0 * X[:, 0] + 0.01 * rng.normal(size=200)  # only x0 matters
    model = LinearLeastSquares().fit(X, y)
    result = permutation_importance(model, X, y, n_repeats=5, random_state=0)
    assert result.ranking()[0] == "x0"
    assert result.importances_mean[0] > 10 * max(
        result.importances_mean[1], result.importances_mean[2], 1e-6
    )


def test_importance_custom_names_and_rows():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(100, 2))
    y = X[:, 1].copy()
    model = LinearLeastSquares().fit(X, y)
    result = permutation_importance(
        model, X, y, feature_names=["noise", "signal"], random_state=0
    )
    rows = result.as_rows()
    assert rows[0][0] == "signal"
    assert result.baseline_score == pytest.approx(1.0)


def test_importance_name_length_validation():
    X = np.zeros((10, 2))
    y = np.zeros(10)
    model = LinearLeastSquares().fit(np.random.rand(10, 2), np.random.rand(10))
    with pytest.raises(ValueError):
        permutation_importance(model, X, y, feature_names=["only_one"])


def test_importance_deterministic_with_seed(regression_data):
    X, y = regression_data
    model = make_pipeline(StandardScaler(), KNeighborsRegressor(3)).fit(X, y)
    a = permutation_importance(model, X, y, random_state=5).importances_mean
    b = permutation_importance(model, X, y, random_state=5).importances_mean
    assert np.allclose(a, b)


def test_run_importance_experiment(tiny_dataset):
    result = run_importance(tiny_dataset, n_repeats=2, seed=0)
    assert result.result.importances_mean.shape == (tiny_dataset.n_features,)
    assert "Permutation importance" in result.as_text()
    # Structural features should dominate the ranking on this dataset.
    top5 = result.result.ranking()[:5]
    structural = set(tiny_dataset.groups["structural"])
    assert any(name in structural for name in top5)
