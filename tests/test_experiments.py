"""Experiment-runner tests (reduced protocol on the tiny dataset)."""

import json

import numpy as np
import pytest

from repro.experiments import (
    FIGURE_MODELS,
    PAPER_TABLE1,
    future_work_models,
    paper_models,
    run_ablation,
    run_figure,
    run_future_work,
    run_table1,
    run_tuning,
)
from repro.experiments.__main__ import main as cli_main


def test_paper_models_have_paper_hyperparameters():
    models = paper_models()
    assert set(models) == set(PAPER_TABLE1)
    knn = models["k-NN"].steps[1][1]
    assert knn.n_neighbors == 3 and knn.metric == "manhattan"
    svr = models["SVR w/ RBF Kernel"].steps[1][1]
    assert (svr.C, svr.gamma, svr.epsilon) == (3.5, 0.055, 0.025)


def test_future_work_models_cover_paper_list():
    models = future_work_models()
    assert {"Decision Tree", "Random Forest", "Gradient Boosting", "MLP"} == set(models)


def test_table1_reduced(tiny_dataset):
    result = run_table1(tiny_dataset, cv_folds=4, seed=0)
    assert set(result.rows) == set(PAPER_TABLE1)
    for metrics in result.rows.values():
        assert set(metrics) == {"mae", "max", "rmse", "ev", "r2"}
        assert metrics["mae"] <= metrics["rmse"] <= metrics["max"] + 1e-9
    # The paper's qualitative result on our substrate.
    assert result.shape_holds()
    text = result.as_text()
    assert "measured" in text and "paper reference" in text


def test_figures_reduced(tiny_dataset):
    for figure in FIGURE_MODELS:
        result = run_figure(
            tiny_dataset,
            figure,
            cv_folds=4,
            curve_sizes=[0.2, 0.5],
            seed=0,
        )
        assert result.test_true.shape == result.test_pred.shape
        assert result.curve is not None
        assert len(result.curve.mean_test()) == 2
        assert "learning curve" in result.as_text()
        csv_a = result.prediction_csv()
        assert csv_a.startswith("train_true,train_pred,test_true,test_pred")
        csv_b = result.curve_csv()
        assert "train_size" in csv_b


def test_figure_errors_are_pred_minus_true(tiny_dataset):
    result = run_figure(tiny_dataset, "fig3", cv_folds=4, with_curve=False, seed=0)
    assert np.allclose(result.test_error, result.test_pred - result.test_true)


def test_unknown_figure_rejected(tiny_dataset):
    with pytest.raises(KeyError):
        run_figure(tiny_dataset, "fig9")


def test_future_work_reduced(tiny_dataset):
    result = run_future_work(tiny_dataset, cv_folds=3, seed=0)
    assert "Decision Tree" in result.rows
    assert result.best_model() in result.rows
    assert "Future-work" in result.as_text()


def test_ablation_reduced(tiny_dataset):
    result = run_ablation(tiny_dataset, model_names=["k-NN"], cv_folds=3, seed=0)
    assert "all" in result.rows
    assert "only structural" in result.rows
    assert "without dynamic" in result.rows
    # The full feature set should not be dramatically worse than any single
    # group for k-NN.
    best_single = max(
        result.rows[f"only {g}"]["k-NN"] for g in ("structural", "synthesis", "dynamic")
    )
    assert result.rows["all"]["k-NN"] > best_single - 0.3
    assert "ablation" in result.as_text().lower()


def test_ablation_requires_groups(tiny_dataset):
    stripped = tiny_dataset.select_features(tiny_dataset.feature_names[:3])
    stripped.groups = {}
    with pytest.raises(ValueError):
        run_ablation(stripped)


def test_tuning_reduced(tiny_dataset):
    result = run_tuning(tiny_dataset, n_random=2, cv_folds=3, seed=0)
    assert "k-NN" in result.best_params
    assert "SVR w/ RBF Kernel" in result.best_params
    assert result.best_scores["k-NN"] > 0
    assert "Hyperparameter" in result.as_text()


def test_cli_runs_tiny(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "results"
    code = cli_main(["table1", "--scale", "tiny", "--out", str(out), "--seed", "0"])
    assert code == 0
    payload = json.loads((out / "table1.json").read_text())
    assert "k-NN" in payload


def test_cli_verify_command(tmp_path, capsys):
    out = tmp_path / "results"
    code = cli_main(["verify", "--seeds", "2", "--scale", "tiny", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "all backends agree" in captured
    payload = json.loads((out / "verify.json").read_text())
    assert payload["n_seeds"] == 2
    assert payload["failing_seeds"] == []
    assert payload["n_comparisons"] > 0


def test_cli_verify_reports_divergence(tmp_path, capsys, monkeypatch):
    """A corrupted template makes the CLI exit non-zero and name the seed."""
    import repro.sim.compiled as compiled_mod
    from repro.verify import FUZZ_SCALES, generate_netlist, rebuild_netlist

    # Find a tiny-scale seed whose output cone actually uses NAND2.
    spec = FUZZ_SCALES["tiny"]
    seed = next(
        s for s in range(100)
        if any(
            c.ctype.name == "NAND2"
            for c in rebuild_netlist(generate_netlist(spec.with_seed(s))).iter_cells()
        )
    )
    monkeypatch.setitem(
        compiled_mod._TEMPLATES, "NAND2", "v[{o}] = (v[{i0}] & v[{i1}]) & m"
    )
    code = cli_main(
        ["verify", "--seeds", "1", "--seed", str(seed), "--scale", "tiny"]
    )
    assert code == 1
    captured = capsys.readouterr().out
    assert "DIVERGENCE" in captured
    assert f"--seed {seed}" in captured


def test_cli_rejects_bad_seeds():
    with pytest.raises(SystemExit):
        cli_main(["verify", "--seeds", "0"])
