"""Shared fixtures.

Heavier artifacts (synthesized MAC, golden trace, campaign, labelled
dataset) are session-scoped: they are deterministic, read-only in tests,
and account for almost all fixture cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_xgmac_workload, make_xgmac
from repro.data import DATASET_PRESETS, get_dataset
from repro.faultinjection import PacketInterfaceCriterion, StatisticalFaultCampaign
from repro.features import build_dataset
from repro.synth import Module, synthesize, wordlib


@pytest.fixture(scope="session")
def counter_netlist():
    """4-bit enable-gated counter (the smallest realistic sequential DUT)."""
    module = Module("counter4")
    enable = module.input("en")
    count = module.reg_bus("cnt", 4)
    module.next_en(count, enable, wordlib.inc(count))
    module.output_bus("count", count)
    return synthesize(module)


@pytest.fixture(scope="session")
def tiny_mac():
    """The tiny MAC preset netlist."""
    return make_xgmac("xgmac_tiny")


@pytest.fixture(scope="session")
def tiny_workload(tiny_mac):
    """Frame workload sized for the tiny MAC (short frames, small FIFOs)."""
    return build_xgmac_workload(
        tiny_mac, n_frames=4, min_len=2, max_len=3, gap=12, seed=7
    )


@pytest.fixture(scope="session")
def tiny_golden(tiny_workload):
    return tiny_workload.testbench.run_golden()


@pytest.fixture(scope="session")
def tiny_campaign(tiny_mac, tiny_workload, tiny_golden):
    """A reduced flat campaign on the tiny MAC (session-cached)."""
    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
    )
    return runner, runner.run(n_injections=16, seed=5)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_mac, tiny_golden, tiny_campaign):
    _runner, campaign = tiny_campaign
    return build_dataset(tiny_mac, tiny_golden, campaign)


@pytest.fixture(scope="session")
def cached_tiny_dataset(tmp_path_factory):
    """Preset 'tiny' dataset through the repro.data cache layer."""
    cache = tmp_path_factory.mktemp("repro_cache")
    return get_dataset("tiny", cache_dir=cache)


@pytest.fixture(scope="session")
def regression_data():
    """Smooth synthetic regression problem for the ML layer."""
    rng = np.random.default_rng(42)
    X = rng.uniform(-2.0, 2.0, size=(240, 4))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 - 0.3 * X[:, 2] + 0.05 * rng.standard_normal(240)
    return X, y
