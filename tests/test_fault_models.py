"""Fault-model registry: parsing, plans, oracle replay, campaigns, datasets.

The registry's contract has three layers, each pinned here:

* **spec algebra** — every spelling of a model parses to one canonical
  ``name:key=value`` string (the cache identity), unknown names and bad
  parameters raise :class:`FaultModelError`, and the ``set`` entry enforces
  its sweep-path-only contract;
* **engine equivalence** — for every model, the bit-parallel batch and the
  adaptive scheduler reproduce the single-lane brute-force oracle replay of
  the very same :class:`InjectionPlan`, verdict and latency, on every
  backend; ``mbu:size=1`` is bit-identical to the plain SEU on all library
  circuits;
* **persistence** — campaign-store shards and dataset caches key on the
  canonical model string (with ``seu`` keeping its pre-registry content
  addresses), mixed-model families coexist in one store, and top-ups
  resume per family.
"""

from __future__ import annotations

import random
from collections import defaultdict
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignEngine, CampaignSpec, CampaignStore, run_campaign
from repro.circuits import LIBRARY_CIRCUITS, build_workload_for, get_circuit
from repro.data import DatasetSpec
from repro.faultinjection import (
    AnyOutputCriterion,
    FaultInjector,
    FaultModelError,
    IntermittentModel,
    MbuModel,
    SetSweepModel,
    SeuModel,
    StatisticalFaultCampaign,
    StuckAtModel,
    available_fault_models,
    canonical_fault_model,
    parse_fault_model,
)
from repro.sim import BACKEND_NAMES
from repro.verify import brute_force_fault

#: Non-SEU registry entries exercised by the engine-equivalence tests;
#: parameters kept small so forcing duty cycles and cluster sampling all
#: trigger within the tiny workloads.
MODEL_SPECS = [
    "mbu:size=3,radius=1,seed=0",
    "stuck0",
    "stuck1",
    "intermittent:period=5,on=2,seed=1",
]


# ------------------------------------------------------------- spec algebra


def test_registry_contents():
    assert available_fault_models() == (
        "intermittent",
        "mbu",
        "set",
        "seu",
        "stuck0",
        "stuck1",
    )


def test_spellings_converge_on_canonical_form():
    assert canonical_fault_model(None) == "seu"
    assert canonical_fault_model("seu") == "seu"
    assert canonical_fault_model(SeuModel()) == "seu"
    # Parameter order, defaults and whitespace are all spelling noise.
    canonical = canonical_fault_model("mbu")
    assert canonical == "mbu:radius=1,seed=0,size=3"
    assert canonical_fault_model("mbu:size=3") == canonical
    assert canonical_fault_model("mbu: seed=0, size=3 ,radius=1") == canonical
    assert canonical_fault_model(MbuModel()) == canonical
    assert canonical_fault_model("stuck0") == "stuck0"
    assert (
        canonical_fault_model("intermittent:on=2,period=8")
        == "intermittent:on=2,period=8,seed=0,value=0"
    )


def test_spec_string_round_trips_through_parse():
    for spec in ["seu", *MODEL_SPECS, "set", "mbu:size=2,radius=2,seed=9"]:
        model = parse_fault_model(spec)
        again = parse_fault_model(model.spec_string())
        assert again.spec_string() == model.spec_string()
        assert type(again) is type(model)


@pytest.mark.parametrize(
    "bad",
    [
        "neutron",  # unknown name
        "mbu:size",  # missing value
        "mbu:size=large",  # non-integer value
        "mbu:flavor=3",  # unknown parameter
        "stuck0:value=1",  # parameterless factory
        "mbu:size=0",  # domain violations
        "mbu:radius=-1",
        "intermittent:period=0",
        "intermittent:period=4,on=5",
        "intermittent:value=2",
    ],
)
def test_bad_specs_raise_fault_model_error(bad):
    with pytest.raises(FaultModelError):
        parse_fault_model(bad)


def test_stuck_at_constructor_validates_value():
    with pytest.raises(FaultModelError):
        StuckAtModel(2)
    assert StuckAtModel(1).name == "stuck1"


def test_plan_shapes_per_model(tiny_mac):
    seu = SeuModel().bind(tiny_mac).plan(3, 20)
    assert seu.flips == (3,) and not seu.persistent
    assert not seu.force_active(0)

    stuck = StuckAtModel(1).bind(tiny_mac).plan(3, 20)
    assert stuck.flips == () and stuck.forces == ((3, 1),)
    assert stuck.persistent
    assert all(stuck.force_active(off) for off in range(10))

    duty = IntermittentModel(period=4, on=2, seed=7).bind(tiny_mac).plan(3, 20)
    assert duty.persistent and duty.period == 4 and duty.on_cycles == 2
    active = [duty.force_active(off) for off in range(8)]
    assert sum(active) == 4  # 2 on-cycles per period over 2 periods
    assert active[:4] == active[4:]  # periodic

    mbu = MbuModel(size=3, radius=1, seed=0).bind(tiny_mac).plan(3, 20)
    assert 3 in mbu.flips and not mbu.persistent
    assert mbu.flips == tuple(sorted(mbu.flips))


def test_set_model_is_sweep_path_only(tiny_mac):
    model = parse_fault_model("set")
    assert isinstance(model, SetSweepModel)
    assert not model.supports_ff_campaign
    with pytest.raises(FaultModelError, match="run_set_batch"):
        model.bind(tiny_mac)
    # Its sites are combinational cell outputs, never flip-flop state.
    sites = set(model.enumerate_sites(tiny_mac))
    assert sites
    ff_outputs = {ff.output_net() for ff in tiny_mac.flip_flops()}
    assert not sites & ff_outputs
    # The campaign layer refuses the pairing at spec-construction time.
    with pytest.raises(FaultModelError, match="campaign"):
        CampaignSpec(circuit="xgmac_tiny", fault_model="set")


# ------------------------------------------------- MBU cluster properties


@lru_cache(maxsize=None)
def _library_netlist(circuit):
    return get_circuit(circuit)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_mbu_clusters_are_seeded_bounded_neighborhoods(data):
    """Property: every cluster is deterministic under its seed, anchored,
    radius-bounded, never empty and never larger than ``size``."""
    circuit = data.draw(st.sampled_from(list(LIBRARY_CIRCUITS)))
    netlist = _library_netlist(circuit)
    n_ffs = len(netlist.flip_flops())
    anchor = data.draw(st.integers(0, n_ffs - 1))
    cycle = data.draw(st.integers(0, 200))
    size = data.draw(st.integers(1, 5))
    radius = data.draw(st.integers(0, 2))
    seed = data.draw(st.integers(0, 3))
    model = MbuModel(size=size, radius=radius, seed=seed)

    cluster = model.cluster(netlist, anchor, cycle)
    assert cluster == model.cluster(netlist, anchor, cycle)  # deterministic
    assert cluster == model.bind(netlist).plan(anchor, cycle).flips
    assert anchor in cluster  # anchored, never empty
    assert 1 <= len(cluster) <= size
    assert len(set(cluster)) == len(cluster)
    ball = set(model.neighborhood(netlist, anchor))
    assert set(cluster) - {anchor} <= ball  # radius-bounded
    if size == 1 or radius == 0:
        assert cluster == (anchor,)  # exact SEU degeneration


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_mbu_seed_and_cycle_key_the_sample(data):
    """Different seeds (or cycles) may redraw companions, but always from
    the same neighborhood — and the anchor never moves."""
    circuit = data.draw(st.sampled_from(list(LIBRARY_CIRCUITS)))
    netlist = _library_netlist(circuit)
    n_ffs = len(netlist.flip_flops())
    anchor = data.draw(st.integers(0, n_ffs - 1))
    a = MbuModel(size=3, radius=2, seed=0).cluster(netlist, anchor, 10)
    b = MbuModel(size=3, radius=2, seed=1).cluster(netlist, anchor, 10)
    c = MbuModel(size=3, radius=2, seed=0).cluster(netlist, anchor, 11)
    ball = set(MbuModel(size=3, radius=2).neighborhood(netlist, anchor)) | {anchor}
    for cluster in (a, b, c):
        assert anchor in cluster
        assert set(cluster) <= ball


@pytest.mark.parametrize("circuit", LIBRARY_CIRCUITS)
def test_mbu_size1_is_bit_identical_to_seu(circuit):
    """A 1-bit "cluster" must reproduce the plain SEU campaign exactly —
    verdicts *and* latencies — on every library circuit."""
    netlist = _library_netlist(circuit)
    workload = build_workload_for(
        circuit, netlist, n_frames=2, min_len=2, max_len=3, gap=6, seed=1
    )
    golden = workload.testbench.run_golden()
    criterion = AnyOutputCriterion.all_outputs(netlist)
    seu = FaultInjector(netlist, workload.testbench, golden, criterion)
    mbu1 = FaultInjector(
        netlist,
        workload.testbench,
        golden,
        criterion,
        fault_model="mbu:size=1,radius=2,seed=3",
    )
    first, last = workload.active_window
    rng = random.Random(circuit)
    n_ffs = seu.sim.n_flip_flops
    requests = [
        (rng.randrange(first, last), rng.randrange(n_ffs)) for _ in range(24)
    ]
    want = seu.run_scheduled(requests, max_lanes=8).verdicts
    got = mbu1.run_scheduled(requests, max_lanes=8).verdicts
    assert got == want


# ------------------------------------------------- engine vs. brute force


def naive_verdicts(injector, requests):
    """Per-request verdicts via one run_batch lane per (cycle, ff) bucket."""
    buckets = defaultdict(list)
    for key, (cycle, ff_idx) in enumerate(requests):
        buckets[cycle].append((key, ff_idx))
    verdicts = [None] * len(requests)
    for cycle in sorted(buckets):
        keys = [k for k, _ in buckets[cycle]]
        ffs = [f for _, f in buckets[cycle]]
        outcome = injector.run_batch(cycle, ffs)
        for lane, key in enumerate(keys):
            failed = bool((outcome.failed_mask >> lane) & 1)
            verdicts[key] = (failed, outcome.latencies.get(lane) if failed else None)
    return verdicts


@pytest.fixture(scope="module")
def strict_parts(tiny_mac, tiny_workload, tiny_golden):
    """Tiny MAC under the any-output criterion — the brute-force oracle's
    failure definition, so injector and oracle judge identically."""
    criterion = AnyOutputCriterion.all_outputs(tiny_mac)
    return tiny_mac, tiny_workload, tiny_golden, criterion


@pytest.mark.parametrize("model", MODEL_SPECS)
def test_batch_matches_bruteforce_replay(strict_parts, model):
    """Every lane's verdict/latency equals the oracle replay of its plan."""
    netlist, workload, golden, criterion = strict_parts
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, fault_model=model
    )
    first, _last = workload.active_window
    rng = random.Random(model)
    indices = rng.sample(range(injector.sim.n_flip_flops), 8)
    for cycle in (first + 2, first + 9):
        outcome = injector.run_batch(cycle, indices)
        for lane, ff_idx in enumerate(indices):
            plan = injector.injection_plan(ff_idx, cycle)
            ref_failed, ref_latency = brute_force_fault(
                netlist, workload.testbench, golden, cycle, plan
            )
            got_failed = bool((outcome.failed_mask >> lane) & 1)
            assert got_failed == ref_failed, (model, cycle, ff_idx)
            if got_failed:
                assert outcome.latencies.get(lane) == ref_latency, (
                    model,
                    cycle,
                    ff_idx,
                )


@pytest.mark.parametrize("backend", BACKEND_NAMES)
@pytest.mark.parametrize("model", MODEL_SPECS)
def test_scheduled_matches_naive_per_model_and_backend(strict_parts, model, backend):
    """Scheduling stays invisible under forcing and multi-flip models: the
    adaptive scheduler (refill, repack, cone gating, forced lanes pinned)
    equals the naive per-cycle batch replay on every backend."""
    netlist, workload, golden, criterion = strict_parts
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, backend=backend,
        fault_model=model,
    )
    first, last = workload.active_window
    rng = random.Random(f"{model}:{backend}")
    n_ffs = injector.sim.n_flip_flops
    requests = [
        (rng.randrange(first, last), rng.randrange(n_ffs)) for _ in range(40)
    ]
    expected = naive_verdicts(injector, requests)
    outcome = injector.run_scheduled(requests, max_lanes=6, cone_gating="on")
    assert outcome.verdicts == expected
    assert outcome.stats.activations == len(requests)


def test_forcing_models_count_forced_cycles(strict_parts):
    netlist, workload, golden, criterion = strict_parts
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, fault_model="stuck1"
    )
    first, _last = workload.active_window
    outcome = injector.run_scheduled([(first + 2, 0), (first + 3, 1)])
    assert outcome.stats.forced_cycles > 0

    plain = FaultInjector(netlist, workload.testbench, golden, criterion)
    outcome = plain.run_scheduled([(first + 2, 0), (first + 3, 1)])
    assert outcome.stats.forced_cycles == 0


# ------------------------------------------------- campaign store families


TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=6, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


def test_campaign_spec_canonicalizes_fault_model():
    default = tiny_spec()
    assert default.fault_model == "seu"
    spelled = tiny_spec(fault_model="mbu:seed=0,size=2,radius=1")
    canonical = tiny_spec(fault_model="mbu:size=2,radius=1,seed=0")
    assert spelled.fault_model == "mbu:radius=1,seed=0,size=2"
    assert spelled.cache_key() == canonical.cache_key()
    assert spelled.family_key() == canonical.family_key()
    # "seu" spelled explicitly keeps the pre-registry content address.
    assert tiny_spec(fault_model="seu").cache_key() == default.cache_key()
    assert "fault_model" not in default.to_dict() or default.to_dict()[
        "fault_model"
    ] == "seu"
    assert CampaignSpec.from_dict(spelled.to_dict()) == spelled


def test_fault_model_separates_store_families():
    seu = tiny_spec()
    mbu = tiny_spec(fault_model="mbu:size=2,radius=1,seed=0")
    stuck = tiny_spec(fault_model="stuck0")
    keys = {seu.family_key(), mbu.family_key(), stuck.family_key()}
    assert len(keys) == 3
    assert mbu.family_key() == mbu.with_injections(12).family_key()


def test_mixed_model_shards_coexist_resume_and_top_up(tmp_path):
    """One store directory holds per-model families side by side; each
    caches, resumes and tops up independently and matches a fresh run."""
    seu = tiny_spec()
    mbu = tiny_spec(fault_model="mbu:size=2,radius=1,seed=0")

    first_seu = CampaignEngine(seu, cache_dir=tmp_path).run()
    first_mbu = CampaignEngine(mbu, cache_dir=tmp_path).run()
    store = CampaignStore(tmp_path / "campaigns")
    assert store.path_for(seu) != store.path_for(mbu)
    assert store.path_for(seu).exists() and store.path_for(mbu).exists()

    # Both families serve cache hits, each with its own counters.
    again = CampaignEngine(mbu, cache_dir=tmp_path)
    cached = again.run()
    assert again.last_report.cache_hit
    assert again.last_report.executed_forward_runs == 0
    assert result_key(cached) == result_key(first_mbu)
    assert result_key(first_seu) != result_key(first_mbu)

    # Topping up the MBU family simulates only its delta and never touches
    # (or is polluted by) the SEU shard.
    topup = CampaignEngine(mbu.with_injections(10), cache_dir=tmp_path)
    extended = topup.run()
    assert topup.last_report.base_injections == 6
    assert result_key(extended) == result_key(run_campaign(mbu.with_injections(10)))
    check = CampaignEngine(seu, cache_dir=tmp_path)
    assert result_key(check.run()) == result_key(first_seu)
    assert check.last_report.cache_hit


def test_campaign_engine_matches_serial_runner_for_mbu(tiny_mac, tiny_workload, tiny_golden):
    """The engine path (spec → executor → injector) and the serial runner
    agree under a non-default model, so shards can't drift from the paper
    reference when the model changes."""
    from repro.faultinjection import PacketInterfaceCriterion

    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
        fault_model="mbu:size=2,radius=1,seed=0",
    )
    reference = runner.run(n_injections=6, seed=5)
    spec = tiny_spec(
        schedule="legacy", fault_model="mbu:size=2,radius=1,seed=0"
    )
    parallel = CampaignEngine(spec, jobs=2).run()
    assert result_key(parallel) == result_key(reference)


# ---------------------------------------------------------- dataset layer


def test_dataset_cache_key_tracks_fault_model():
    base = DatasetSpec(circuit="xgmac_tiny", n_injections=8)
    seu = DatasetSpec(circuit="xgmac_tiny", n_injections=8, fault_model="seu")
    mbu = DatasetSpec(
        circuit="xgmac_tiny", n_injections=8, fault_model="mbu:size=3"
    )
    spelled = DatasetSpec(
        circuit="xgmac_tiny",
        n_injections=8,
        fault_model="mbu:seed=0,radius=1,size=3",
    )
    # Default and explicit "seu" share the pre-registry content address.
    assert base.cache_key() == seu.cache_key()
    assert mbu.cache_key() != base.cache_key()
    assert mbu.cache_key() == spelled.cache_key()


def test_seu_dataset_matches_pre_registry_pipeline(tmp_path):
    """The registry must not perturb the paper's SEU datasets: the cached
    pipeline output equals the direct serial-campaign + feature path that
    predates the fault_model column, feature for feature, label for label."""
    from repro.data import build_workload
    from repro.faultinjection import PacketInterfaceCriterion
    from repro.features import build_dataset
    from repro.data import get_dataset

    spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=6
    )
    ds = get_dataset(spec=spec, cache_dir=tmp_path)
    assert ds.meta["fault_model"] == "seu"

    netlist, workload = build_workload(spec)
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    golden = workload.testbench.run_golden()
    campaign = StatisticalFaultCampaign(
        netlist,
        workload.testbench,
        criterion,
        active_window=workload.active_window,
        golden=golden,
    ).run(n_injections=spec.n_injections, seed=spec.campaign_seed)
    direct = build_dataset(netlist, golden, campaign)
    assert ds.ff_names == direct.ff_names
    assert (ds.X == direct.X).all()
    assert (ds.y == direct.y).all()


def test_mbu_dataset_is_cached_separately_and_labelled(tmp_path):
    from repro.data import get_dataset

    seu_spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=4
    )
    mbu_spec = DatasetSpec(
        circuit="xgmac_tiny",
        n_frames=3,
        min_len=2,
        max_len=3,
        gap=12,
        n_injections=4,
        fault_model="mbu:size=3,radius=1,seed=0",
    )
    seu_ds = get_dataset(spec=seu_spec, cache_dir=tmp_path)
    mbu_ds = get_dataset(spec=mbu_spec, cache_dir=tmp_path)
    assert len(list(tmp_path.glob("dataset_*.json"))) == 2
    assert mbu_ds.meta["fault_model"] == "mbu:radius=1,seed=0,size=3"
    assert mbu_ds.ff_names == seu_ds.ff_names
    assert (mbu_ds.X == seu_ds.X).all()  # same circuit features...
    assert not (mbu_ds.y == seu_ds.y).all()  # ...different label family
    # Cache hit round-trips the provenance column.
    again = get_dataset(spec=mbu_spec, cache_dir=tmp_path)
    assert again.meta["fault_model"] == mbu_ds.meta["fault_model"]
    assert (again.y == mbu_ds.y).all()
