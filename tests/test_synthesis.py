"""RTL module + synthesis (tech-mapping) tests.

The key property: a synthesized netlist, simulated cycle by cycle, behaves
exactly like the RTL module's next-state semantics interpreted directly.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import NetlistError
from repro.sim import CompiledSimulator
from repro.synth import Module, Sig, synthesize, wordlib
from repro.synth.expr import And, Const, Mux, Not, Or, Xor
from repro.synth.synthesis import DriveRules

from tests.test_wordlib import evaluate  # expression interpreter


def test_simple_counter_behaviour(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for i in range(20):
        sim.eval_comb()
        assert sim.get_word("count", 4) == i % 16
        sim.tick()


def test_enable_holds_value(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(5):
        sim.step()
    sim.set_input("en", 0)
    for _ in range(4):
        sim.eval_comb()
        assert sim.get_word("count", 4) == 5
        sim.tick()


def test_synchronous_reset(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(5):
        sim.step()
    sim.set_input("rst_n", 0)
    sim.step()
    sim.eval_comb()
    assert sim.get_word("count", 4) == 0


def test_non_resettable_regs_use_dff():
    m = Module("mixed")
    d = m.input("d")
    r1 = m.reg("r1", resettable=True)
    r2 = m.reg("r2", resettable=False)
    m.next(r1, d)
    m.next(r2, d)
    m.output("o1", r1)
    m.output("o2", r2)
    nl = synthesize(m)
    assert nl.cells["ff_r1"].ctype.name == "DFFR"
    assert nl.cells["ff_r2"].ctype.name == "DFF"


def test_default_next_is_hold():
    m = Module("hold")
    m.reg("r")
    m.output("o", Sig("r"))
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    sim.reset(ff_value=1)
    sim.set_input("rst_n", 1)
    for _ in range(3):
        sim.eval_comb()
        assert sim.get_bit("o") == 1
        sim.tick()


def test_register_double_assign_rejected():
    m = Module("dup")
    r = m.reg("r")
    m.next(r, Const(1))
    with pytest.raises(ValueError, match="assigned twice"):
        m.next(r, Const(0))


def test_unknown_signal_rejected():
    m = Module("unknown")
    m.output("o", Sig("ghost"))
    with pytest.raises(NetlistError, match="unknown signal"):
        synthesize(m)


def test_wire_combinational_loop_rejected():
    m = Module("loop")
    m.assign("w1", Sig("w2"))
    m.assign("w2", Sig("w1"))
    m.output("o", Sig("w1"))
    with pytest.raises(NetlistError, match="loop"):
        synthesize(m)


def test_name_collision_rejected():
    m = Module("collide")
    m.input("x")
    with pytest.raises(ValueError, match="already in use"):
        m.reg("x")


def test_gate_sharing():
    """Structurally identical subexpressions map to one gate."""
    m = Module("share")
    a, b = m.input("a"), m.input("b")
    m.output("o1", (a & b) | a)
    m.output("o2", (a & b) | b)
    nl = synthesize(m)
    and_gates = [c for c in nl.iter_cells() if c.ctype.name == "AND2"]
    assert len(and_gates) == 1


def test_constants_map_to_tie_cells():
    m = Module("ties")
    a = m.input("a")
    r = m.reg("r")
    m.next(r, Const(0))
    m.output("o", a)
    m.output("zero", Sig("r"))
    nl = synthesize(m)
    tie_cells = [c for c in nl.iter_cells() if c.is_tie]
    assert len(tie_cells) == 1


def test_drive_strength_assignment():
    rules = DriveRules(x2_fanout=2, x4_fanout=4)
    m = Module("fanout")
    a = m.input("a")
    inv = m.assign("n", ~a)
    for i in range(6):
        m.output(f"o{i}", inv & Sig("a"))
    nl = synthesize(m, drive_rules=rules)
    inv_cell = next(c for c in nl.iter_cells() if c.ctype.name == "INV")
    # The inverter drives one AND gate (shared) -> low fanout; the AND
    # drives six output buffers -> X4.
    and_cell = next(c for c in nl.iter_cells() if c.ctype.name == "AND2")
    assert and_cell.drive == 4
    assert inv_cell.drive == 1


def test_nary_reduction_trees():
    """Wide AND/XOR decompose into library-arity gates, still correct."""
    width = 11
    m = Module("wide")
    bits = m.input_bus("d", width)
    m.output("all_and", And.of(*bits))
    m.output("parity", Xor.of(*bits))
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    for value in (0, (1 << width) - 1, 0b10110010101, 0b00000000001):
        sim.resize_lanes(1)
        for i in range(width):
            sim.set_input(f"d[{i}]", (value >> i) & 1)
        sim.eval_comb()
        assert sim.get_bit("all_and") == int(value == (1 << width) - 1)
        assert sim.get_bit("parity") == bin(value).count("1") % 2


@given(data=st.integers(0, 255), sel=st.integers(0, 1))
@settings(max_examples=30, deadline=None)
def test_synthesized_mux_matches_interpreter(data, sel):
    m = Module("muxcheck")
    a = m.input_bus("a", 4)
    b = m.input_bus("b", 4)
    s = m.input("s")
    m.output_bus("y", wordlib.mux_word(s, a, b))
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    av, bv = data & 0xF, (data >> 4) & 0xF
    sim.set_word("a", 4, av)
    sim.set_word("b", 4, bv)
    sim.set_input("s", sel)
    sim.eval_comb()
    assert sim.get_word("y", 4) == (av if sel else bv)


def test_module_finalize_idempotent():
    m = Module("fin")
    m.reg("r")
    m.finalize()
    m.finalize()
    assert m.regs["r"].next_expr is not None


def test_netlist_validates_after_synthesis(tiny_mac):
    tiny_mac.validate()
    stats = tiny_mac.stats()
    assert stats.n_sequential == len(tiny_mac.flip_flops())
    assert stats.n_cells == stats.n_combinational + stats.n_sequential + stats.n_tie
