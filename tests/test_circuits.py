"""Circuit-generator tests: CRC, FIFO, FSM, counters, registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    available_circuits,
    crc32_bytes,
    crc32_step,
    crc_bytes_msb_first,
    get_circuit,
    make_counter,
    make_gray_counter,
    make_lfsr,
    make_shift_register,
)
from repro.circuits.fifo import add_sync_fifo
from repro.circuits.fsm import FSM
from repro.sim import CompiledSimulator
from repro.synth import Module, Sig, synthesize
from repro.synth.expr import Const


# ------------------------------------------------------------------- CRC


@given(data=st.lists(st.integers(0, 255), min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_crc_append_property(data):
    """Appending the CRC (MSB first) drives the register back to zero."""
    crc = crc32_bytes(data)
    assert crc32_bytes(list(data) + list(crc_bytes_msb_first(crc))) == 0


@given(
    crc=st.integers(0, 2**32 - 1),
    b1=st.integers(0, 255),
    b2=st.integers(0, 255),
)
@settings(max_examples=40, deadline=None)
def test_crc_step_linearity(crc, b1, b2):
    """CRC update is linear over GF(2) (superposition)."""
    combined = crc32_step(crc, b1 ^ b2)
    split = crc32_step(crc, b1) ^ crc32_step(0, b2) ^ crc32_step(0, 0)
    assert combined == split


def test_crc_rtl_matches_golden_model():
    """The synthesized byte-wise CRC network equals the integer model."""
    m = Module("crcdut")
    data = m.input_bus("d", 8)
    load = m.input("load")
    crc = m.reg_bus("crc", 32)
    from repro.circuits.crc import crc32_update_word
    from repro.synth.wordlib import mux_word

    m.next(crc, mux_word(load, crc32_update_word(crc, data), crc))
    m.output_bus("crc_o", crc)
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("load", 1)
    expected = 0
    for byte in [0x00, 0xFF, 0x12, 0xAB, 0x55, 0x99]:
        sim.set_word("d", 8, byte)
        sim.eval_comb()
        sim.tick()
        expected = crc32_step(expected, byte)
        sim.eval_comb()
        assert sim.get_word("crc_o", 32) == expected


# ------------------------------------------------------------------ FIFO


def build_fifo_dut(width=4, depth=4):
    m = Module("fifodut")
    wr = m.input("wr")
    rd = m.input("rd")
    din = m.input_bus("din", width)
    ports = add_sync_fifo(m, "f", width, depth, wr, din, rd)
    m.output_bus("dout", ports.rd_data)
    m.output("empty", ports.empty)
    m.output("full", ports.full)
    return synthesize(m)


class FifoModel:
    """Reference software FIFO with the same gating semantics."""

    def __init__(self, depth):
        self.depth = depth
        self.items = []

    def step(self, wr, rd, din):
        popped = None
        did_read = rd and self.items
        did_write = wr and len(self.items) < self.depth
        if did_read:
            popped = self.items[0]
        # Hardware pointers update simultaneously on the clock edge.
        if did_read:
            self.items.pop(0)
        if did_write:
            self.items.append(din)
        return popped


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 15)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=25, deadline=None)
def test_fifo_matches_model(ops):
    nl = build_fifo_dut()
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    model = FifoModel(4)
    for wr, rd, din in ops:
        sim.set_input("wr", wr)
        sim.set_input("rd", rd)
        sim.set_word("din", 4, din)
        sim.eval_comb()
        hw_empty = sim.get_bit("empty")
        hw_full = sim.get_bit("full")
        assert hw_empty == int(not model.items)
        assert hw_full == int(len(model.items) == 4)
        if not hw_empty:
            assert sim.get_word("dout", 4) == model.items[0]
        model.step(wr, rd, din)
        sim.tick()


def test_fifo_rejects_bad_depth():
    m = Module("bad")
    with pytest.raises(ValueError, match="power of two"):
        add_sync_fifo(m, "f", 4, 3, Const(1), [Const(0)] * 4, Const(1))


def test_fifo_rejects_width_mismatch():
    m = Module("bad2")
    with pytest.raises(ValueError, match="bits"):
        add_sync_fifo(m, "f", 4, 4, Const(1), [Const(0)] * 3, Const(1))


# ------------------------------------------------------------------- FSM


def test_fsm_transitions_and_priority():
    m = Module("fsmdut")
    go = m.input("go")
    stop = m.input("stop")
    fsm = FSM(m, "ctl", ["IDLE", "RUN", "DONE"])
    fsm.transition("IDLE", go, "RUN")
    fsm.transition("RUN", stop, "DONE")
    fsm.transition("RUN", go, "RUN")
    fsm.transition("DONE", Const(1), "IDLE")
    m.output("in_run", fsm.is_in("RUN"))
    m.output("in_done", fsm.is_in("DONE"))
    fsm.build()
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)

    def observe():
        sim.eval_comb()
        return sim.get_bit("in_run"), sim.get_bit("in_done")

    assert observe() == (0, 0)  # IDLE after reset
    sim.set_input("go", 1)
    sim.step()
    assert observe() == (1, 0)  # RUN
    # priority: stop beats go when both asserted
    sim.set_input("stop", 1)
    sim.step()
    assert observe() == (0, 1)  # DONE
    sim.set_input("stop", 0)
    sim.set_input("go", 0)
    sim.step()
    assert observe() == (0, 0)  # back to IDLE


def test_fsm_errors():
    m = Module("fsmerr")
    with pytest.raises(ValueError):
        FSM(m, "x", ["ONLY"])
    fsm = FSM(m, "y", ["A", "B"])
    with pytest.raises(KeyError):
        fsm.transition("A", Const(1), "NOPE")
    fsm.build()
    with pytest.raises(RuntimeError):
        fsm.build()


# --------------------------------------------------------------- counters


def test_counter_terminal_count():
    nl = make_counter(3)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for i in range(8):
        sim.eval_comb()
        assert sim.get_bit("tc") == int(i == 7)
        sim.tick()
    sim.eval_comb()
    assert sim.get_word("count", 3) == 0  # wrapped


def test_counter_clear_overrides_enable():
    nl = make_counter(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(5):
        sim.step()
    sim.set_input("clear", 1)
    sim.step()
    sim.eval_comb()
    assert sim.get_word("count", 4) == 0


def test_shift_register_delay():
    nl = make_shift_register(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    pattern = [1, 0, 1, 1, 0, 0, 1, 0]
    outs = []
    for bit in pattern:
        sim.set_input("din", bit)
        sim.eval_comb()
        outs.append(sim.get_bit("dout"))
        sim.tick()
    # dout is din delayed by 4 cycles.
    assert outs[4:] == pattern[: len(outs) - 4]


def test_lfsr_cycles_through_states():
    nl = make_lfsr(8)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    seen = set()
    for _ in range(300):
        sim.eval_comb()
        seen.add(sim.get_word("prbs", 8))
        sim.tick()
    # Maximal-length 8-bit LFSR with lockup escape covers all 256 states.
    assert len(seen) == 256


def test_gray_counter_single_bit_changes():
    nl = make_gray_counter(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    previous = None
    for _ in range(20):
        sim.eval_comb()
        value = sim.get_word("gray", 4)
        if previous is not None:
            assert bin(value ^ previous).count("1") == 1
        previous = value
        sim.tick()


def test_circuit_registry():
    names = available_circuits()
    assert "xgmac" in names and "counter8" in names
    nl = get_circuit("counter8")
    nl.validate()
    with pytest.raises(KeyError):
        get_circuit("nonexistent")


# ------------------------------------------- stand-alone library circuits


def test_make_fifo_stores_and_reads():
    """Write three values through the primary ports, read them back FWFT."""
    nl = get_circuit("fifo4x4")
    nl.validate()
    sim = CompiledSimulator(nl, n_lanes=1)
    sim.reset()
    idx = {name: name for name in nl.inputs}

    def step(wr_en=0, wr=0, rd_en=0):
        sim.set_input("wr_en", wr_en)
        sim.set_input("rd_en", rd_en)
        for b in range(4):
            sim.set_input(f"wr_data[{b}]", (wr >> b) & 1)
        sim.eval_comb()
        out = {name: sim.get_bit(name) for name in nl.outputs}
        sim.tick()
        return out

    sim.set_input("rst_n", 0)
    step()
    sim.set_input("rst_n", 1)
    out = step()
    assert out["empty"] == 1 and out["full"] == 0
    for value in (0x5, 0xA, 0x3):
        step(wr_en=1, wr=value)
    reads = []
    for _ in range(3):
        out = step(rd_en=1)
        reads.append(sum(out[f"rd_data[{b}]"] << b for b in range(4)))
        assert out["rd_val"] == 1
    assert reads == [0x5, 0xA, 0x3]
    assert step()["empty"] == 1


def test_make_crc32_matches_golden_model():
    """The synthesized engine tracks the integer model byte for byte."""
    nl = get_circuit("crc32")
    nl.validate()
    sim = CompiledSimulator(nl, n_lanes=1)
    sim.reset()
    sim.set_input("rst_n", 0)
    sim.eval_comb()
    sim.tick()
    sim.set_input("rst_n", 1)
    data = [0xDE, 0xAD, 0xBE, 0xEF]
    for byte in data:
        sim.set_input("en", 1)
        sim.set_input("clear", 0)
        for b in range(8):
            sim.set_input(f"data[{b}]", (byte >> b) & 1)
        sim.eval_comb()
        sim.tick()
    sim.set_input("en", 0)
    sim.eval_comb()
    expected = crc32_bytes(data)
    got_low = sum(sim.get_bit(f"crc_low[{b}]") << b for b in range(8))
    assert got_low == expected & 0xFF
    assert sim.get_bit("crc_zero") == (1 if expected == 0 else 0)


def test_make_fsm_controller_run_cycle():
    """IDLE -> RUN on start; timer counts; DONE at terminal; ack returns."""
    nl = get_circuit("fsm_ctrl")
    nl.validate()
    sim = CompiledSimulator(nl, n_lanes=1)
    sim.reset()
    sim.set_input("rst_n", 0)
    sim.eval_comb()
    sim.tick()
    sim.set_input("rst_n", 1)

    def step(start=0, stop=0, ack=0):
        sim.set_input("start", start)
        sim.set_input("stop", stop)
        sim.set_input("ack", ack)
        sim.eval_comb()
        out = {name: sim.get_bit(name) for name in nl.outputs}
        sim.tick()
        return out

    assert step()["busy"] == 0
    step(start=1)
    out = step()
    assert out["busy"] == 1 and out["done"] == 0
    for _ in range(20):  # 4-bit timer: terminal count within 16 RUN cycles
        out = step()
        if out["done"]:
            break
    assert out["done"] == 1 and out["busy"] == 0
    assert step(ack=1)["done"] == 1  # Moore output holds until ack registers
    assert step()["busy"] == 0 and step()["done"] == 0


# ----------------------------------------------------- workload registry


def test_burst_workload_is_deterministic():
    from repro.circuits import build_burst_workload

    nl = get_circuit("counter8")
    a = build_burst_workload(nl, n_frames=3, min_len=2, max_len=4, gap=6, seed=11)
    b = build_burst_workload(nl, n_frames=3, min_len=2, max_len=4, gap=6, seed=11)
    assert a.testbench.schedule == b.testbench.schedule
    assert a.active_window == b.active_window
    c = build_burst_workload(nl, n_frames=3, min_len=2, max_len=4, gap=6, seed=12)
    assert c.testbench.schedule != a.testbench.schedule


def test_burst_workload_bias_shapes_stimulus():
    from repro.circuits import build_burst_workload

    nl = get_circuit("counter8")
    clear_idx = nl.inputs.index("clear")
    dense = build_burst_workload(nl, n_frames=6, min_len=4, max_len=6, gap=4, seed=3)
    sparse = build_burst_workload(
        nl, n_frames=6, min_len=4, max_len=6, gap=4, seed=3, bias={"clear": 0.02}
    )
    count = lambda wl: sum((v >> clear_idx) & 1 for v in wl.testbench.schedule)
    assert count(sparse) < count(dense)


def test_workload_registry_resolution():
    from repro.circuits import build_workload_for, default_criterion

    assert default_criterion("xgmac_mini") == "packet"
    assert default_criterion("counter16") == "observed"
    assert default_criterion("fifo8x4") == "any_output"
    assert default_criterion("unknown_circuit") == "any_output"
    nl = get_circuit("shiftreg8")
    wl = build_workload_for("shiftreg8", nl, n_frames=2, min_len=2, max_len=3, gap=4, seed=1)
    assert wl.data_nets == ["dout"]


def test_make_burst_builder_validates_observed_nets():
    from repro.circuits import make_burst_builder

    nl = get_circuit("counter8")
    builder = make_burst_builder(["no_such_output"])
    with pytest.raises(ValueError):
        builder(nl, n_frames=1, min_len=1, max_len=2, gap=2, seed=1)


def test_register_workload_prefix_and_exact():
    from repro.circuits import build_burst_workload, default_criterion, register_workload
    from repro.circuits.workloads import _WORKLOADS_EXACT, _WORKLOADS_PREFIX

    register_workload("zz_test_family", build_burst_workload, criterion="any_output", prefix=True)
    register_workload("zz_test_family_special", build_burst_workload, criterion="observed")
    try:
        assert default_criterion("zz_test_family_widget") == "any_output"
        assert default_criterion("zz_test_family_special") == "observed"
    finally:
        _WORKLOADS_PREFIX.pop("zz_test_family", None)
        _WORKLOADS_EXACT.pop("zz_test_family_special", None)
