"""Circuit-generator tests: CRC, FIFO, FSM, counters, registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    available_circuits,
    crc32_bytes,
    crc32_step,
    crc_bytes_msb_first,
    get_circuit,
    make_counter,
    make_gray_counter,
    make_lfsr,
    make_shift_register,
)
from repro.circuits.fifo import add_sync_fifo
from repro.circuits.fsm import FSM
from repro.sim import CompiledSimulator
from repro.synth import Module, Sig, synthesize
from repro.synth.expr import Const


# ------------------------------------------------------------------- CRC


@given(data=st.lists(st.integers(0, 255), min_size=1, max_size=24))
@settings(max_examples=40, deadline=None)
def test_crc_append_property(data):
    """Appending the CRC (MSB first) drives the register back to zero."""
    crc = crc32_bytes(data)
    assert crc32_bytes(list(data) + list(crc_bytes_msb_first(crc))) == 0


@given(
    crc=st.integers(0, 2**32 - 1),
    b1=st.integers(0, 255),
    b2=st.integers(0, 255),
)
@settings(max_examples=40, deadline=None)
def test_crc_step_linearity(crc, b1, b2):
    """CRC update is linear over GF(2) (superposition)."""
    combined = crc32_step(crc, b1 ^ b2)
    split = crc32_step(crc, b1) ^ crc32_step(0, b2) ^ crc32_step(0, 0)
    assert combined == split


def test_crc_rtl_matches_golden_model():
    """The synthesized byte-wise CRC network equals the integer model."""
    m = Module("crcdut")
    data = m.input_bus("d", 8)
    load = m.input("load")
    crc = m.reg_bus("crc", 32)
    from repro.circuits.crc import crc32_update_word
    from repro.synth.wordlib import mux_word

    m.next(crc, mux_word(load, crc32_update_word(crc, data), crc))
    m.output_bus("crc_o", crc)
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("load", 1)
    expected = 0
    for byte in [0x00, 0xFF, 0x12, 0xAB, 0x55, 0x99]:
        sim.set_word("d", 8, byte)
        sim.eval_comb()
        sim.tick()
        expected = crc32_step(expected, byte)
        sim.eval_comb()
        assert sim.get_word("crc_o", 32) == expected


# ------------------------------------------------------------------ FIFO


def build_fifo_dut(width=4, depth=4):
    m = Module("fifodut")
    wr = m.input("wr")
    rd = m.input("rd")
    din = m.input_bus("din", width)
    ports = add_sync_fifo(m, "f", width, depth, wr, din, rd)
    m.output_bus("dout", ports.rd_data)
    m.output("empty", ports.empty)
    m.output("full", ports.full)
    return synthesize(m)


class FifoModel:
    """Reference software FIFO with the same gating semantics."""

    def __init__(self, depth):
        self.depth = depth
        self.items = []

    def step(self, wr, rd, din):
        popped = None
        did_read = rd and self.items
        did_write = wr and len(self.items) < self.depth
        if did_read:
            popped = self.items[0]
        # Hardware pointers update simultaneously on the clock edge.
        if did_read:
            self.items.pop(0)
        if did_write:
            self.items.append(din)
        return popped


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 15)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=25, deadline=None)
def test_fifo_matches_model(ops):
    nl = build_fifo_dut()
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    model = FifoModel(4)
    for wr, rd, din in ops:
        sim.set_input("wr", wr)
        sim.set_input("rd", rd)
        sim.set_word("din", 4, din)
        sim.eval_comb()
        hw_empty = sim.get_bit("empty")
        hw_full = sim.get_bit("full")
        assert hw_empty == int(not model.items)
        assert hw_full == int(len(model.items) == 4)
        if not hw_empty:
            assert sim.get_word("dout", 4) == model.items[0]
        model.step(wr, rd, din)
        sim.tick()


def test_fifo_rejects_bad_depth():
    m = Module("bad")
    with pytest.raises(ValueError, match="power of two"):
        add_sync_fifo(m, "f", 4, 3, Const(1), [Const(0)] * 4, Const(1))


def test_fifo_rejects_width_mismatch():
    m = Module("bad2")
    with pytest.raises(ValueError, match="bits"):
        add_sync_fifo(m, "f", 4, 4, Const(1), [Const(0)] * 3, Const(1))


# ------------------------------------------------------------------- FSM


def test_fsm_transitions_and_priority():
    m = Module("fsmdut")
    go = m.input("go")
    stop = m.input("stop")
    fsm = FSM(m, "ctl", ["IDLE", "RUN", "DONE"])
    fsm.transition("IDLE", go, "RUN")
    fsm.transition("RUN", stop, "DONE")
    fsm.transition("RUN", go, "RUN")
    fsm.transition("DONE", Const(1), "IDLE")
    m.output("in_run", fsm.is_in("RUN"))
    m.output("in_done", fsm.is_in("DONE"))
    fsm.build()
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)

    def observe():
        sim.eval_comb()
        return sim.get_bit("in_run"), sim.get_bit("in_done")

    assert observe() == (0, 0)  # IDLE after reset
    sim.set_input("go", 1)
    sim.step()
    assert observe() == (1, 0)  # RUN
    # priority: stop beats go when both asserted
    sim.set_input("stop", 1)
    sim.step()
    assert observe() == (0, 1)  # DONE
    sim.set_input("stop", 0)
    sim.set_input("go", 0)
    sim.step()
    assert observe() == (0, 0)  # back to IDLE


def test_fsm_errors():
    m = Module("fsmerr")
    with pytest.raises(ValueError):
        FSM(m, "x", ["ONLY"])
    fsm = FSM(m, "y", ["A", "B"])
    with pytest.raises(KeyError):
        fsm.transition("A", Const(1), "NOPE")
    fsm.build()
    with pytest.raises(RuntimeError):
        fsm.build()


# --------------------------------------------------------------- counters


def test_counter_terminal_count():
    nl = make_counter(3)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for i in range(8):
        sim.eval_comb()
        assert sim.get_bit("tc") == int(i == 7)
        sim.tick()
    sim.eval_comb()
    assert sim.get_word("count", 3) == 0  # wrapped


def test_counter_clear_overrides_enable():
    nl = make_counter(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(5):
        sim.step()
    sim.set_input("clear", 1)
    sim.step()
    sim.eval_comb()
    assert sim.get_word("count", 4) == 0


def test_shift_register_delay():
    nl = make_shift_register(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    pattern = [1, 0, 1, 1, 0, 0, 1, 0]
    outs = []
    for bit in pattern:
        sim.set_input("din", bit)
        sim.eval_comb()
        outs.append(sim.get_bit("dout"))
        sim.tick()
    # dout is din delayed by 4 cycles.
    assert outs[4:] == pattern[: len(outs) - 4]


def test_lfsr_cycles_through_states():
    nl = make_lfsr(8)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    seen = set()
    for _ in range(300):
        sim.eval_comb()
        seen.add(sim.get_word("prbs", 8))
        sim.tick()
    # Maximal-length 8-bit LFSR with lockup escape covers all 256 states.
    assert len(seen) == 256


def test_gray_counter_single_bit_changes():
    nl = make_gray_counter(4)
    sim = CompiledSimulator(nl)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    previous = None
    for _ in range(20):
        sim.eval_comb()
        value = sim.get_word("gray", 4)
        if previous is not None:
            assert bin(value ^ previous).count("1") == 1
        previous = value
        sim.tick()


def test_circuit_registry():
    names = available_circuits()
    assert "xgmac" in names and "counter8" in names
    nl = get_circuit("counter8")
    nl.validate()
    with pytest.raises(KeyError):
        get_circuit("nonexistent")
