"""Unit tests for the standard-cell library."""

import itertools

import pytest

from repro.netlist.cells import CellKind, CellType, DEFAULT_LIBRARY, default_library


def brute_force(fn, n_inputs):
    """Evaluate a python truth function over all input combinations."""
    table = {}
    for bits in itertools.product((0, 1), repeat=n_inputs):
        table[bits] = fn(*bits) & 1
    return table


REFERENCE = {
    "INV": lambda a: ~a,
    "BUF": lambda a: a,
    "AND2": lambda a, b: a & b,
    "NAND2": lambda a, b: ~(a & b),
    "OR2": lambda a, b: a | b,
    "NOR2": lambda a, b: ~(a | b),
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: ~(a ^ b),
    "AND3": lambda a, b, c: a & b & c,
    "NAND3": lambda a, b, c: ~(a & b & c),
    "OR3": lambda a, b, c: a | b | c,
    "NOR3": lambda a, b, c: ~(a | b | c),
    "AND4": lambda a, b, c, d: a & b & c & d,
    "NAND4": lambda a, b, c, d: ~(a & b & c & d),
    "OR4": lambda a, b, c, d: a | b | c | d,
    "NOR4": lambda a, b, c, d: ~(a | b | c | d),
    "MUX2": lambda a, b, s: b if s else a,
    "AOI21": lambda a, b, c: ~((a & b) | c),
    "AOI22": lambda a, b, c, d: ~((a & b) | (c & d)),
    "OAI21": lambda a, b, c: ~((a | b) & c),
    "OAI22": lambda a, b, c, d: ~((a | b) & (c | d)),
}


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_cell_truth_table(name):
    ctype = DEFAULT_LIBRARY[name]
    table = brute_force(REFERENCE[name], len(ctype.inputs))
    for bits, expected in table.items():
        assert ctype.evaluate(list(bits), mask=1) == expected, (name, bits)


@pytest.mark.parametrize("name", sorted(REFERENCE))
def test_cell_bit_parallel_lanes(name):
    """Bit-parallel evaluation equals per-lane scalar evaluation."""
    ctype = DEFAULT_LIBRARY[name]
    n = len(ctype.inputs)
    lanes = list(itertools.product((0, 1), repeat=n))
    mask = (1 << len(lanes)) - 1
    packed_inputs = []
    for pin in range(n):
        value = 0
        for lane, bits in enumerate(lanes):
            value |= bits[pin] << lane
        packed_inputs.append(value)
    packed_out = ctype.evaluate(packed_inputs, mask=mask)
    for lane, bits in enumerate(lanes):
        assert (packed_out >> lane) & 1 == ctype.evaluate(list(bits), mask=1)


def test_tie_cells():
    assert DEFAULT_LIBRARY["TIE0"].evaluate([], mask=0b111) == 0
    assert DEFAULT_LIBRARY["TIE1"].evaluate([], mask=0b111) == 0b111


def test_sequential_cells_have_no_function():
    dff = DEFAULT_LIBRARY["DFF"]
    assert dff.is_sequential
    with pytest.raises(ValueError):
        dff.evaluate([0, 0], mask=1)


def test_wrong_arity_rejected():
    with pytest.raises(ValueError):
        DEFAULT_LIBRARY["AND2"].evaluate([1], mask=1)


def test_full_name_round_trip():
    lib = DEFAULT_LIBRARY
    assert lib.full_name("NAND2", 2) == "NAND2_X2"
    assert lib.parse_full_name("NAND2_X2") == ("NAND2", 2)
    assert lib.parse_full_name("NAND2") == ("NAND2", 1)
    with pytest.raises(KeyError):
        lib.parse_full_name("FOO_X9")
    with pytest.raises(ValueError):
        lib.full_name("NAND2", 3)


def test_library_contents():
    lib = default_library()
    assert "DFF" in lib and "DFFR" in lib
    assert len(lib.sequential_types()) == 2
    assert len(lib) > 20
    assert all(ct.outputs for ct in lib)


def test_duplicate_cell_type_rejected():
    lib = default_library()
    with pytest.raises(ValueError):
        lib.add(lib["INV"])


def test_cell_kind_partition():
    lib = default_library()
    for ctype in lib:
        assert ctype.kind in (CellKind.COMBINATIONAL, CellKind.SEQUENTIAL, CellKind.TIE)
        if ctype.kind == CellKind.COMBINATIONAL:
            assert ctype.function is not None
