"""Parallel campaign engine tests: schedules, sharding, store, resume.

The load-bearing guarantees:

* a sharded ``legacy``-schedule run merges to a result **bit-identical** to
  the serial :class:`StatisticalFaultCampaign` reference for the same seed;
* ``stream``-schedule results are independent of the jobs count;
* the stream schedule is prefix-stable, so the store can top up a cached
  campaign by simulating only the injection delta;
* a cached re-run performs zero forward simulations, and an interrupted run
  resumes from its checkpoint.
"""

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    CampaignStore,
    build_context,
    legacy_buckets,
    partition_shards,
    run_campaign,
    stream_buckets,
)
from repro.campaigns.partition import stream_draws, stream_slot_order
from repro.faultinjection import StatisticalFaultCampaign

TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    """The bit-exactness contract: per-flip-flop counters.

    Engine-cost metrics (``n_forward_runs``, ``total_lane_cycles``) are
    *execution-shape* metrics: with the adaptive scheduler they depend on
    how buckets fold into passes (and hence on sharding), so only the
    ``batch`` scheduler pins them — see
    ``test_legacy_batch_schedule_matches_serial_exactly``.
    """
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


# ------------------------------------------------------------- scheduling


def test_legacy_schedule_matches_serial_reference(
    tiny_mac, tiny_workload, tiny_golden
):
    """Sharded legacy run == StatisticalFaultCampaign, bit for bit."""
    from repro.faultinjection import PacketInterfaceCriterion

    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
    )
    reference = runner.run(n_injections=8, seed=5)

    spec = tiny_spec(schedule="legacy")
    engine = CampaignEngine(spec, jobs=2)
    parallel = engine.run()
    assert result_key(parallel) == result_key(reference)
    assert engine.last_report.executed_forward_runs == parallel.n_forward_runs


def test_legacy_batch_schedule_matches_serial_exactly(
    tiny_mac, tiny_workload, tiny_golden
):
    """With scheduler="batch" even the engine-cost metrics are bit-exact."""
    from repro.faultinjection import PacketInterfaceCriterion

    criterion = PacketInterfaceCriterion(
        tiny_workload.valid_nets, tiny_workload.data_nets
    )
    runner = StatisticalFaultCampaign(
        tiny_mac,
        tiny_workload.testbench,
        criterion,
        active_window=tiny_workload.active_window,
        golden=tiny_golden,
        scheduler="batch",
    )
    reference = runner.run(n_injections=8, seed=5)

    spec = tiny_spec(schedule="legacy", scheduler="batch")
    parallel = CampaignEngine(spec, jobs=2).run()
    assert result_key(parallel) == result_key(reference)
    assert parallel.n_forward_runs == reference.n_forward_runs
    assert parallel.total_lane_cycles == reference.total_lane_cycles


def test_adaptive_and_batch_schedulers_agree(tiny_mac, tiny_workload, tiny_golden):
    """Per-injection verdicts are scheduler-invariant, so the per-ff
    counters of adaptive and batch executions are identical."""
    adaptive = CampaignEngine(tiny_spec(), jobs=1).run()
    batch = CampaignEngine(tiny_spec(scheduler="batch"), jobs=1).run()
    assert result_key(adaptive) == result_key(batch)


def test_stream_parallel_matches_serial():
    spec = tiny_spec(n_injections=6)
    serial = run_campaign(spec, jobs=1)
    parallel = run_campaign(spec, jobs=3)
    assert result_key(serial) == result_key(parallel)


def test_stream_draws_are_prefix_stable():
    import random

    spec = tiny_spec()
    window = list(range(20, 140))
    stream = stream_slot_order(spec, window)
    short = stream_draws(stream, random.Random("ff:5:ff_x"), 10)
    long = stream_draws(stream, random.Random("ff:5:ff_x"), 40)
    assert long[:10] == short
    assert len(set(long)) == len(long)  # without replacement
    assert all(c in window for c in long)


def test_stream_draws_density_matches_serial_pool():
    """Draws concentrate on ~1.5 n slots, like the serial scheduler's pool."""
    spec = tiny_spec(n_injections=20)
    window = list(range(0, 500))
    buckets = stream_buckets(spec, window, [f"ff{i}" for i in range(40)])
    assert len(buckets) <= 30  # ceil(1.5 * 20), not ~min(500, 40*20)


def test_stream_rejects_overdrawn_window():
    spec = tiny_spec(n_injections=50)
    with pytest.raises(ValueError, match="without replacement"):
        stream_buckets(spec, list(range(10)), ["ff0"])


def test_legacy_rejects_small_window():
    spec = tiny_spec(schedule="legacy", n_injections=50)
    with pytest.raises(ValueError, match="time slots"):
        legacy_buckets(spec, list(range(20)), ["ff0"])


def test_topup_bucket_draws_cover_exactly_the_delta():
    spec = tiny_spec(n_injections=12)
    window = list(range(30, 160))
    ffs = [f"ff{i}" for i in range(7)]
    full = stream_buckets(spec, window, ffs)
    head = stream_buckets(spec, window, ffs, stop=5)
    tail = stream_buckets(spec, window, ffs, start=5)

    def draws(buckets):
        return sorted(
            (cycle, name) for b in buckets for cycle, name in [(b.cycle, n) for n in b.lanes]
        )

    assert sorted(draws(head) + draws(tail)) == draws(full)
    assert sum(b.n_lanes for b in tail) == len(ffs) * 7


# --------------------------------------------------------------- sharding


def test_partition_shards_covers_all_buckets_once():
    spec = tiny_spec(n_injections=10)
    window = list(range(0, 200))
    buckets = stream_buckets(spec, window, [f"ff{i}" for i in range(25)])
    shards = partition_shards(buckets, 4)
    flattened = sorted(b.cycle for shard in shards for b in shard)
    assert flattened == sorted(b.cycle for b in buckets)
    # balanced: no shard dominates (LPT bound)
    loads = [sum(b.n_lanes for b in shard) for shard in shards]
    assert max(loads) <= 2 * min(loads)
    # deterministic
    assert shards == partition_shards(buckets, 4)
    # within-shard execution order is by cycle
    for shard in shards:
        assert [b.cycle for b in shard] == sorted(b.cycle for b in shard)


def test_partition_shards_degenerate_cases():
    spec = tiny_spec(n_injections=4)
    buckets = stream_buckets(spec, list(range(50)), ["ff0"])
    assert partition_shards(buckets, 100) == [[b] for b in buckets]
    with pytest.raises(ValueError):
        partition_shards(buckets, 0)


# ------------------------------------------------------------------ store


def test_store_rerun_is_zero_simulations(tmp_path):
    spec = tiny_spec(n_injections=6)
    first = CampaignEngine(spec, cache_dir=tmp_path)
    result = first.run()
    assert first.last_report.executed_forward_runs > 0

    second = CampaignEngine(spec, cache_dir=tmp_path)
    cached = second.run()
    assert second.last_report.cache_hit
    assert second.last_report.executed_forward_runs == 0
    assert result_key(cached) == result_key(result)


def test_store_topup_runs_only_the_delta_and_matches_fresh(tmp_path):
    small = tiny_spec(n_injections=6)
    engine = CampaignEngine(small, cache_dir=tmp_path)
    engine.run()
    full_lanes = engine.last_report.executed_lanes

    big = small.with_injections(12)
    topup = CampaignEngine(big, cache_dir=tmp_path)
    extended = topup.run()
    assert topup.last_report.base_injections == 6
    assert topup.last_report.executed_lanes == full_lanes  # 6 more per ff

    fresh = run_campaign(big)
    assert result_key(extended) == result_key(fresh)


def test_interrupted_run_resumes_from_checkpoint(tmp_path):
    spec = tiny_spec(n_injections=8, seed=11)

    class Interrupted(Exception):
        pass

    def bomb(done, total):
        if done == 2:
            raise Interrupted

    # progress_interval=0 forwards every shard notification; the default
    # time-based throttle could suppress the bomb's (done == 2) call on
    # fast tiny shards.
    engine = CampaignEngine(spec, cache_dir=tmp_path, progress=bomb, progress_interval=0.0)
    with pytest.raises(Interrupted):
        engine.run()

    resumed = CampaignEngine(spec, cache_dir=tmp_path)
    result = resumed.run()
    # every bucket finished before the interrupt was carried over ...
    assert resumed.last_report.resumed_buckets == engine.last_report.executed_buckets
    assert resumed.last_report.resumed_buckets > 0
    # ... and only the remainder was simulated
    fresh = run_campaign(spec)
    assert result_key(result) == result_key(fresh)


def test_snapshot_clears_any_superseded_partial(tmp_path):
    """A snapshot supersedes every checkpoint targeting <= its budget.

    Historically ``save_snapshot`` only cleared a partial whose target
    *equaled* the snapshot budget, so a checkpoint from an interrupted
    smaller-budget run survived a successful bigger run and was re-served
    to the next run of that smaller budget.
    """
    spec8 = tiny_spec(n_injections=8)
    store = CampaignStore(tmp_path)
    accum = {"ff": {"a": [2, 1, 3]}, "n_forward_runs": 1}

    # Partial targeting 8, then a 12-injection snapshot lands: cleared.
    store.save_partial(spec8, 0, 8, {3, 4}, accum)
    assert store.load_partial(spec8, 0, 8) is not None
    bigger = run_campaign(spec8.with_injections(12))
    store.save_snapshot(spec8, bigger)
    assert store.load_partial(spec8, 0, 8) is None

    # Partial targeting *beyond* the snapshot stays: its delta is still
    # unfinished work the snapshot does not contain.
    store.save_partial(spec8, 0, 20, {3, 4}, accum)
    store.save_snapshot(spec8, bigger)
    assert store.load_partial(spec8, 0, 20) is not None


def test_interrupted_topup_roundtrip(tmp_path):
    """Interrupt a top-up, land a bigger snapshot, re-run the top-up."""
    small = tiny_spec(n_injections=6)
    CampaignEngine(small, cache_dir=tmp_path).run()

    class Interrupted(Exception):
        pass

    def bomb(done, total):
        raise Interrupted

    topup = CampaignEngine(
        small.with_injections(10),
        cache_dir=tmp_path,
        progress=bomb,
        progress_interval=0.0,
    )
    with pytest.raises(Interrupted):
        topup.run()
    store = CampaignStore(tmp_path / "campaigns")
    assert store.load_partial(small, 6, 10) is not None

    # A full 12-injection run supersedes the interrupted 6->10 checkpoint.
    big = CampaignEngine(small.with_injections(12), cache_dir=tmp_path).run()
    assert store.load_partial(small, 6, 10) is None

    # The re-run 6->10 top-up recomputes cleanly and matches a fresh run.
    redo = CampaignEngine(small.with_injections(10), cache_dir=tmp_path).run()
    assert result_key(redo) == result_key(run_campaign(small.with_injections(10)))
    assert result_key(big) == result_key(run_campaign(small.with_injections(12)))


def test_store_family_and_cache_keys():
    stream6 = tiny_spec(n_injections=6)
    stream12 = stream6.with_injections(12)
    assert stream6.family_key() == stream12.family_key()
    assert stream6.cache_key() != stream12.cache_key()

    legacy6 = tiny_spec(schedule="legacy", n_injections=6)
    legacy12 = legacy6.with_injections(12)
    assert legacy6.family_key() != legacy12.family_key()
    assert stream6.family_key() != legacy6.family_key()


def test_store_ignores_corrupt_documents(tmp_path):
    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(spec).write_text("{not json")
    assert store.load_exact(spec) is None
    assert store.best_snapshot(spec) is None
    assert store.stored_budgets(spec) == []


@pytest.mark.parametrize(
    "payload",
    [
        "",  # empty file
        "[1, 2, 3]",  # valid JSON, wrong top-level type
        '{"store_version": 1}',  # missing family/snapshots
        '{"store_version": 1, "family": "FAMILY", "snapshots": [1]}',
        '{"store_version": 1, "family": "FAMILY", "snapshots": {"x": 1},'
        ' "partial": "broken"}',
    ],
    ids=["empty", "wrong-type", "missing-keys", "bad-snapshots", "bad-partial"],
)
def test_store_tolerates_malformed_shards(tmp_path, payload):
    """Any unusable shard reads as 'nothing cached' instead of crashing."""
    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(spec).write_text(payload.replace("FAMILY", spec.family_key()))
    assert store.load_exact(spec) is None
    assert store.best_snapshot(spec) is None
    assert store.load_partial(spec, 0, 6) is None
    assert store.stored_budgets(spec) == []


def test_store_skips_undecodable_snapshot_payload(tmp_path):
    """A snapshot whose payload no longer parses is skipped by both loaders
    (the budget stays listed in the inventory, but nothing crashes)."""
    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(spec).write_text(
        '{"store_version": 1, "family": "%s",'
        ' "snapshots": {"6": {"bogus": true}}, "partial": null}'
        % spec.family_key()
    )
    assert store.load_exact(spec) is None
    assert store.best_snapshot(spec) is None
    assert store.stored_budgets(spec) == [6]


def test_store_tolerates_truncated_shard_and_recomputes(tmp_path):
    """A shard cut off mid-write is skipped and the campaign recomputed."""
    spec = tiny_spec(n_injections=6)
    engine = CampaignEngine(spec, cache_dir=tmp_path)
    result = engine.run()

    store = CampaignStore(tmp_path / "campaigns")
    path = store.path_for(spec)
    assert path.exists()
    text = path.read_text()
    path.write_text(text[: len(text) // 2])  # truncate mid-document

    recovered = CampaignEngine(spec, cache_dir=tmp_path)
    recomputed = recovered.run()
    assert not recovered.last_report.cache_hit
    assert recovered.last_report.executed_forward_runs > 0
    assert result_key(recomputed) == result_key(result)
    # The recomputed result overwrites the damaged shard.
    third = CampaignEngine(spec, cache_dir=tmp_path)
    third.run()
    assert third.last_report.cache_hit


def test_store_tolerates_truncated_partial_checkpoint(tmp_path):
    """A corrupt mid-run checkpoint is dropped, not resumed into garbage."""
    import json

    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.save_partial(spec, 0, 6, {3, 4}, {"ff": {}, "n_forward_runs": 1})
    assert store.load_partial(spec, 0, 6) is not None
    path = store.path_for(spec)
    doc = json.loads(path.read_text())
    doc["partial"]["done_cycles"] = "oops"
    path.write_text(json.dumps(doc))
    assert store.load_partial(spec, 0, 6) is None


@pytest.mark.parametrize(
    "mutation",
    [
        {"done_cycles": [[1], 2]},  # unhashable element would crash set()
        {"done_cycles": ["3", 4]},  # mistyped element would double-count
        {"accum": {"ff": {}, "n_forward_runs": "oops"}},
        {"accum": {"ff": {}, "total_lane_cycles": None}},
        {"accum": {"ff": {}, "wall_seconds": "fast"}},
    ],
    ids=["unhashable-cycle", "stringly-cycle", "bad-forward-runs",
         "bad-lane-cycles", "bad-wall"],
)
def test_store_drops_partial_with_mistyped_fields(tmp_path, mutation):
    """Element-level damage inside an otherwise well-shaped checkpoint is
    dropped instead of crashing (or silently double-counting) on resume."""
    import json

    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.save_partial(spec, 0, 6, {3, 4}, {"ff": {}, "n_forward_runs": 1})
    path = store.path_for(spec)
    doc = json.loads(path.read_text())
    doc["partial"].update(mutation)
    path.write_text(json.dumps(doc))
    assert store.load_partial(spec, 0, 6) is None


def test_store_skips_wrong_typed_snapshot_payload(tmp_path):
    """A snapshot slot holding a non-dict must be skipped, not crash with
    AttributeError inside CampaignResult.from_payload."""
    spec = tiny_spec(n_injections=6)
    store = CampaignStore(tmp_path)
    store.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
    store.path_for(spec).write_text(
        '{"store_version": 1, "family": "%s",'
        ' "snapshots": {"6": "junk", "4": [1, 2]}, "partial": null}'
        % spec.family_key()
    )
    assert store.load_exact(spec) is None
    assert store.best_snapshot(spec) is None


def test_store_drops_partial_with_truncated_ff_records(tmp_path):
    """A checkpoint whose per-ff counters are truncated is dropped, and the
    engine recomputes instead of resuming into an IndexError."""
    import json

    spec = tiny_spec(n_injections=6)
    engine = CampaignEngine(spec, cache_dir=tmp_path)
    reference = engine.run()

    store = CampaignStore(tmp_path / "campaigns")
    ff_name = next(iter(reference.results))
    doc = json.loads(store.path_for(spec).read_text())
    doc["snapshots"] = {}  # force a real run that would consult the partial
    doc["partial"] = {
        "base": 0,
        "target": 6,
        "done_cycles": [1],
        "accum": {
            "ff": {ff_name: [1]},  # truncated record
            "n_forward_runs": 1,
            "total_lane_cycles": 10,
            "wall_seconds": 0.1,
        },
    }
    store.path_for(spec).write_text(json.dumps(doc))
    assert store.load_partial(spec, 0, 6) is None

    recovered = CampaignEngine(spec, cache_dir=tmp_path)
    result = recovered.run()
    assert recovered.last_report.resumed_buckets == 0
    assert result_key(result) == result_key(reference)


# ----------------------------------------------------------------- engine


def test_engine_ff_subset():
    context = build_context(tiny_spec())
    subset = tuple(context.netlist.flip_flop_names()[:4])
    spec = tiny_spec(n_injections=5, ff_names=subset)
    result = run_campaign(spec)
    assert set(result.results) == set(subset)
    assert all(r.n_injections == 5 for r in result.results.values())


def test_engine_rejects_bad_parameters():
    with pytest.raises(ValueError, match="schedule"):
        tiny_spec(schedule="chaotic")
    with pytest.raises(ValueError, match="criterion"):
        tiny_spec(criterion="vibes")
    with pytest.raises(ValueError, match="n_injections"):
        tiny_spec(n_injections=0)
    with pytest.raises(ValueError, match="jobs"):
        CampaignEngine(tiny_spec(), jobs=0)


def test_engine_rejects_mismatched_context():
    from repro.faultinjection import AnyOutputCriterion

    context = build_context(tiny_spec())
    wrong_circuit = tiny_spec(circuit="xgmac_mini")
    with pytest.raises(ValueError, match="does not match"):
        CampaignEngine(wrong_circuit, context=context)

    context.criterion = AnyOutputCriterion.all_outputs(context.netlist)
    with pytest.raises(ValueError, match="criterion"):
        CampaignEngine(tiny_spec(), context=context)


def test_spec_dict_round_trip():
    spec = tiny_spec(ff_names=("ff_a", "ff_b"), horizon=64)
    assert CampaignSpec.from_dict(spec.to_dict()) == spec
