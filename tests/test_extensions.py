"""Tests for the extension capabilities: SET injection, error latency,
net-level activity, and the extended feature set."""

import numpy as np
import pytest

from repro.faultinjection import PacketInterfaceCriterion
from repro.faultinjection.injector import FaultInjector
from repro.features.extended import EXTENDED_FEATURES, extend_dataset, extract_extended
from repro.sim import collect_net_activity
from repro.experiments import run_extended_features


@pytest.fixture(scope="module")
def tiny_injector(tiny_mac, tiny_workload, tiny_golden):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    return FaultInjector(tiny_mac, tiny_workload.testbench, tiny_golden, criterion)


# ---------------------------------------------------------- error latency


def test_failed_lanes_report_latency(tiny_injector, tiny_workload):
    first, _ = tiny_workload.active_window
    targets = ["ff_tx_state[0]", "ff_txf_rd_ptr[0]", "ff_stat_tx_frames[0]"]
    indices = [tiny_injector.ff_index(n) for n in targets]
    outcome = tiny_injector.run_batch(first + 4, indices)
    for lane in outcome.failed_lanes():
        assert lane in outcome.latencies
        assert 0 <= outcome.latencies[lane] <= outcome.cycles_simulated
    # Non-failed lanes have no latency entry.
    for lane in range(outcome.n_lanes):
        if not (outcome.failed_mask >> lane) & 1:
            assert lane not in outcome.latencies


def test_campaign_aggregates_latency(tiny_campaign):
    _runner, result = tiny_campaign
    record = result.results["ff_tx_state[0]"]
    assert record.n_failures > 0
    assert record.mean_error_latency is not None
    assert record.mean_error_latency >= 0
    benign = result.results["ff_stat_tx_frames[0]"]
    assert benign.mean_error_latency is None


def test_latency_round_trips_json(tiny_campaign):
    from repro.faultinjection import CampaignResult

    _runner, result = tiny_campaign
    restored = CampaignResult.from_json(result.to_json())
    for name, record in result.results.items():
        assert restored.results[name].latency_sum == record.latency_sum


# ------------------------------------------------------------ SET faults


def test_set_on_output_buffer_net_is_detected(tiny_mac, tiny_injector, tiny_workload, tiny_golden):
    """A transient on the net feeding pkt_rx_val must fail when val is live."""
    first, _ = tiny_workload.active_window
    # Find a cycle where pkt_rx_val is asserted in the golden run.
    val_bit = tiny_golden.output_names.index("pkt_rx_val")
    live = next(
        c for c in range(first, tiny_golden.n_cycles)
        if (tiny_golden.outputs[c] >> val_bit) & 1
    )
    outcome = tiny_injector.run_set_batch(live, ["pkt_rx_val"])
    assert outcome.failed_mask == 1
    assert outcome.latencies[0] == 0  # visible in the injection cycle


def test_set_batch_multiple_nets(tiny_mac, tiny_injector, tiny_workload):
    first, _ = tiny_workload.active_window
    nets = ["pkt_rx_val", "stat_tx_frames_o[0]", "xgmii_txc"]
    outcome = tiny_injector.run_set_batch(first + 6, nets)
    assert outcome.n_lanes == 3
    # A transient on a statistics output can never be a functional failure.
    assert not (outcome.failed_mask >> 1) & 1


def test_set_is_logically_masked_sometimes(tiny_mac, tiny_injector, tiny_workload):
    """Transients during idle on data nets are masked by the criterion."""
    # Cycle 6 is after reset but before any traffic.
    outcome = tiny_injector.run_set_batch(6, ["pkt_rx_data[0]"])
    assert outcome.failed_mask == 0


def test_set_outside_trace_rejected(tiny_injector):
    with pytest.raises(ValueError):
        tiny_injector.run_set_batch(10**6, ["pkt_rx_val"])


# ------------------------------------------------------- net activity


def test_net_activity_shapes(tiny_mac, tiny_workload, tiny_golden):
    activity = collect_net_activity(tiny_workload.testbench)
    assert set(activity) == set(tiny_mac.nets)
    for stats in activity.values():
        assert 0.0 <= stats.at_one <= 1.0
        assert 0.0 <= stats.toggle_rate <= 1.0
    # FF output activity must agree with the golden-trace-derived features.
    from repro.features import extract_dynamic

    dynamic = extract_dynamic(tiny_golden)
    for ff in list(dynamic)[:20]:
        q_net = tiny_mac.cells[ff].output_net()
        assert activity[q_net].at_one == pytest.approx(dynamic[ff]["at_one"], abs=0.05)


def test_extract_extended_features(tiny_mac, tiny_workload):
    activity = collect_net_activity(tiny_workload.testbench)
    features = extract_extended(tiny_mac, activity)
    assert set(features) == set(tiny_mac.flip_flop_names())
    for row in features.values():
        assert set(row) == set(EXTENDED_FEATURES)
        assert all(0.0 <= v <= 1.0 for v in row.values())


def test_extend_dataset(tiny_dataset, tiny_mac, tiny_workload):
    enriched = extend_dataset(tiny_dataset, tiny_mac, tiny_workload.testbench)
    assert enriched.n_features == tiny_dataset.n_features + len(EXTENDED_FEATURES)
    assert enriched.groups["extended"] == list(EXTENDED_FEATURES)
    assert np.allclose(enriched.X[:, : tiny_dataset.n_features], tiny_dataset.X)
    assert np.allclose(enriched.y, tiny_dataset.y)


def test_run_extended_features_experiment(cached_tiny_dataset):
    result = run_extended_features(cached_tiny_dataset, cv_folds=3, seed=0)
    assert set(result.baseline_r2) == {"k-NN", "SVR w/ RBF Kernel"}
    for model, base in result.baseline_r2.items():
        # Extended features should not destroy performance.
        assert result.extended_r2[model] > base - 0.15
    assert "Extended feature set" in result.as_text()


def test_run_extended_features_requires_spec(tiny_dataset):
    with pytest.raises(ValueError, match="spec"):
        run_extended_features(tiny_dataset)
