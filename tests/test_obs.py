"""Tests for the telemetry layer (``repro.obs``).

Covers the mergeable-snapshot algebra (Hypothesis: associative,
commutative, empty identity, equal to serial recording), snapshot travel
across real multiprocessing workers, the progress throttle's exactness
guarantees, span structure, sinks, and the CLI flags (``--metrics-out``,
``--trace-out``, ``--profile-out``) end to end — validated with the same
checker CI uses (``tools/check_telemetry.py``).
"""

from __future__ import annotations

import importlib.util
import json
import multiprocessing
import pstats
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    ProgressThrottle,
    Telemetry,
    get_telemetry,
    use_telemetry,
)
from repro.obs.sinks import JsonlSink, LiveProgressSink, MemorySink

REPO_ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_telemetry", REPO_ROOT / "tools" / "check_telemetry.py"
)
check_telemetry = importlib.util.module_from_spec(_spec)
assert _spec.loader is not None
sys.modules["check_telemetry"] = check_telemetry
_spec.loader.exec_module(check_telemetry)


TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


# ------------------------------------------------------------ registry


def test_registry_instruments_round_trip():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.0)
    reg.gauge("g").set(6.0)
    reg.histogram("h").observe(1.0)
    reg.histogram("h").observe(3.0)
    with reg.timer("t").time():
        pass

    assert reg.counter("c").value == 5
    assert reg.gauge("g").value == 6.0
    assert reg.gauge("g").mean() == 4.0
    assert reg.gauge("g").min == 2.0 and reg.gauge("g").max == 6.0
    assert reg.histogram("h").count == 2
    assert reg.histogram("h").sum == 4.0
    assert reg.timer("t").count == 1
    assert reg.timer("t").min >= 0.0

    snap = reg.snapshot()
    assert snap.counters["c"] == 5
    assert snap.gauges["g"]["count"] == 2
    assert set(snap.hists) == {"h", "t"}


def test_registry_rejects_type_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    # A Timer *is* a Histogram, so histogram() on a timer name works ...
    reg.timer("t")
    assert reg.histogram("t") is reg.timer("t")
    # ... but not the other way around: a plain histogram cannot time().
    reg.histogram("h")
    with pytest.raises(TypeError):
        reg.timer("h")


def test_counter_rejects_negative_increments():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_snapshot_skips_untouched_instruments():
    reg = MetricsRegistry()
    reg.counter("zero")
    reg.gauge("unset")
    reg.histogram("empty")
    assert not reg.snapshot()


def test_absorb_preserves_timer_identity():
    """An absorbed worker timer must still satisfy later timer() lookups."""
    worker = MetricsRegistry()
    with worker.timer("phase.x_seconds").time():
        pass
    parent = MetricsRegistry()
    parent.absorb(worker.snapshot())
    with parent.timer("phase.x_seconds").time():
        pass
    assert parent.timer("phase.x_seconds").count == 2


# --------------------------------------------------- snapshot merge algebra

_names = st.sampled_from(["a", "b", "c"])
_values = st.integers(min_value=-50, max_value=50).map(float)


@st.composite
def snapshots(draw) -> MetricsSnapshot:
    """A snapshot recorded through real registry operations.

    Integer-valued observations keep float addition exact, so the
    associativity property can demand payload equality.
    """
    reg = MetricsRegistry()
    for name, n in draw(
        st.dictionaries(_names, st.integers(0, 100), max_size=3)
    ).items():
        reg.counter(f"c.{name}").inc(n)
    for name, values in draw(
        st.dictionaries(_names, st.lists(_values, max_size=4), max_size=3)
    ).items():
        for value in values:
            reg.gauge(f"g.{name}").set(value)
    for name, values in draw(
        st.dictionaries(_names, st.lists(_values, max_size=4), max_size=3)
    ).items():
        for value in values:
            reg.histogram(f"h.{name}").observe(value)
    return reg.snapshot()


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots())
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@settings(max_examples=60, deadline=None)
@given(a=snapshots(), b=snapshots(), c=snapshots())
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=30, deadline=None)
@given(a=snapshots())
def test_merge_empty_identity(a):
    empty = MetricsSnapshot()
    assert a.merge(empty) == a
    assert empty.merge(a) == a


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["counter", "gauge", "hist"]), _names, _values),
        max_size=24,
    ),
    n_workers=st.integers(min_value=1, max_value=4),
)
def test_sharded_recording_matches_serial(ops, n_workers):
    """Ops split across worker registries merge to the serial registry."""

    def apply(reg, op):
        kind, name, value = op
        if kind == "counter":
            reg.counter(f"c.{name}").inc(int(abs(value)))
        elif kind == "gauge":
            reg.gauge(f"g.{name}").set(value)
        else:
            reg.histogram(f"h.{name}").observe(value)

    serial = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(n_workers)]
    for i, op in enumerate(ops):
        apply(serial, op)
        apply(workers[i % n_workers], op)

    merged = MetricsSnapshot()
    for worker in workers:
        merged = merged.merge(
            MetricsSnapshot.from_payload(worker.snapshot().to_payload())
        )
    assert merged == serial.snapshot()

    # absorb() is the executor-side equivalent of merge()
    absorbed = MetricsRegistry()
    for worker in workers:
        absorbed.absorb(worker.snapshot())
    assert absorbed.snapshot() == serial.snapshot()


# ------------------------------------------------- multiprocessing travel


def _pool_worker(n: int):
    reg = MetricsRegistry()
    reg.counter("work.items").inc(n)
    reg.gauge("work.last").set(float(n))
    reg.histogram("work.sizes").observe(float(n))
    return reg.snapshot().to_payload()


def test_snapshots_merge_across_fork_pool():
    ctx = multiprocessing.get_context("fork")
    items = [1, 2, 3, 4, 5]
    with ctx.Pool(2) as pool:
        payloads = pool.map(_pool_worker, items)
    merged = MetricsRegistry()
    for payload in payloads:
        merged.absorb(MetricsSnapshot.from_payload(payload))
    assert merged.counter("work.items").value == sum(items)
    assert merged.histogram("work.sizes").count == len(items)
    assert merged.gauge("work.last").mean() == sum(items) / len(items)


def test_engine_worker_metrics_absorbed_into_parent():
    """jobs=2 shards report the same engine-level totals as a serial run.

    ``scheduler.activations`` counts every injection exactly once whatever
    the sharding (lane-cycles differ — they depend on how buckets fold
    into passes — so the activation count is the invariant to pin).
    """
    spec = tiny_spec(n_injections=6)
    totals = {}
    for jobs in (1, 2):
        with use_telemetry(Telemetry()) as telemetry:
            CampaignEngine(spec, jobs=jobs, progress_interval=0.0).run()
            snap = telemetry.registry.snapshot()
        assert snap.counters["campaign.shard_merges"] >= 1
        assert "executor.shard_seconds" in snap.hists
        totals[jobs] = snap.counters["scheduler.activations"]
    assert totals[1] == totals[2]
    assert totals[1] == snap.counters["campaign.injections"]


# ------------------------------------------------------- progress throttle


def test_progress_throttle_counts_stay_exact():
    clock = [0.0]
    calls = []
    throttle = ProgressThrottle(
        lambda d, t: calls.append((d, t)), min_interval=1.0, clock=lambda: clock[0]
    )
    total = 10
    for done in range(1, total + 1):
        clock[0] += 0.25  # 4 shards per interval-second
        throttle(done, total)
    # first call, one per elapsed interval, and always the final call
    assert calls[0] == (1, total)
    assert calls[-1] == (total, total)
    assert throttle.forwarded == len(calls)
    assert throttle.forwarded + throttle.suppressed == total
    assert throttle.suppressed > 0


def test_progress_throttle_zero_interval_forwards_everything():
    calls = []
    throttle = ProgressThrottle(lambda d, t: calls.append(d), min_interval=0.0)
    for done in range(1, 6):
        throttle(done, 5)
    assert calls == [1, 2, 3, 4, 5]
    assert throttle.suppressed == 0


def test_engine_progress_throttle_regression(tmp_path):
    """Total/done counts stay exact through the throttled engine path."""
    spec = tiny_spec(n_injections=6)
    calls = []
    engine = CampaignEngine(
        spec,
        progress=lambda done, total: calls.append((done, total)),
        progress_interval=0.0,
    )
    engine.run()
    total = engine.last_report.n_shards
    assert calls == [(i, total) for i in range(1, total + 1)]

    # An aggressive throttle still delivers the exact final call.
    calls.clear()
    CampaignEngine(
        spec,
        progress=lambda done, total: calls.append((done, total)),
        progress_interval=60.0,
    ).run()
    assert calls[-1] == (total, total)


# ------------------------------------------------------------------- sinks


def test_memory_sink_filters_event_types():
    telemetry = Telemetry()
    all_sink = telemetry.add_sink(MemorySink())
    span_sink = telemetry.add_sink(MemorySink(events=("span_end",)))
    with telemetry.tracer.span("campaign"):
        telemetry.emit({"event": "progress", "done": 1, "total": 2})
    assert [e["event"] for e in all_sink.records] == [
        "span_begin",
        "progress",
        "span_end",
    ]
    assert [e["event"] for e in span_sink.records] == ["span_end"]
    assert all("ts" in e for e in all_sink.records)


def test_jsonl_sink_appends_and_survives_close(tmp_path):
    path = tmp_path / "events.jsonl"
    telemetry = Telemetry(sinks=[JsonlSink(path)])
    telemetry.emit({"event": "provenance", "run": 1})
    telemetry.close()
    telemetry = Telemetry(sinks=[JsonlSink(path)])
    telemetry.emit({"event": "provenance", "run": 2})
    telemetry.close()
    events = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["run"] for e in events] == [1, 2]


def test_live_progress_sink_renders_rate_and_eta(tmp_path):
    stream = open(tmp_path / "tty.txt", "w+")  # not a TTY: line per update
    sink = LiveProgressSink(stream=stream)
    sink.emit(
        {
            "event": "progress",
            "scope": "campaign",
            "unit": "shards",
            "done": 3,
            "total": 4,
            "injections_per_sec": 1234.0,
            "eta_seconds": 75,
        }
    )
    sink.close()
    stream.seek(0)
    line = stream.read()
    stream.close()
    assert "campaign 3/4 shards" in line
    assert "75%" in line
    assert "1,234 inj/s" in line
    assert "ETA 1:15" in line


def test_default_telemetry_records_metrics_without_sinks():
    telemetry = get_telemetry()
    assert not telemetry.active  # no sinks by default
    before = telemetry.registry.counter("test.default").value
    telemetry.registry.counter("test.default").inc()
    assert telemetry.registry.counter("test.default").value == before + 1


# ------------------------------------------------------------------ tracer


def test_tracer_span_nesting_and_phase_timers():
    telemetry = Telemetry()
    sink = telemetry.add_sink(MemorySink())
    with telemetry.tracer.span("campaign", jobs=2):
        with telemetry.tracer.span("golden_trace"):
            pass
    begins = sink.of_type("span_begin")
    ends = sink.of_type("span_end")
    assert [e["name"] for e in begins] == ["campaign", "golden_trace"]
    assert begins[0]["parent"] is None
    assert begins[1]["parent"] == begins[0]["span"]
    assert begins[0]["attrs"] == {"jobs": 2}
    assert all(e["seconds"] >= 0 for e in ends)
    # Phase timers record even into sink-less telemetry (snapshot travel).
    assert telemetry.registry.timer("phase.campaign_seconds").count == 1
    assert telemetry.registry.timer("phase.golden_trace_seconds").count == 1


# ------------------------------------------------------------ CLI end-to-end


def test_cli_campaign_telemetry_files_validate(tmp_path):
    from repro.experiments.__main__ import main as cli_main

    metrics = tmp_path / "metrics.jsonl"
    trace = tmp_path / "trace.jsonl"
    profile = tmp_path / "profile.pstats"
    code = cli_main(
        [
            "campaign",
            "--scale",
            "tiny",
            "--injections",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--metrics-out",
            str(metrics),
            "--trace-out",
            str(trace),
            "--profile-out",
            str(profile),
        ]
    )
    assert code == 0

    observed = check_telemetry.validate_file(metrics)
    assert {"synthesize", "golden_trace", "campaign"} <= observed["spans"]
    assert "scheduler.lane_occupancy" in observed["metrics"]
    assert "store.hit_rate" in observed["metrics"]
    assert "campaign.injections_per_sec" in observed["metrics"]

    full = check_telemetry.validate_file(trace)
    assert full["spans"] == observed["spans"]
    trace_kinds = {json.loads(line)["event"] for line in trace.read_text().splitlines()}
    assert "progress" in trace_kinds  # full stream only
    metrics_kinds = {
        json.loads(line)["event"] for line in metrics.read_text().splitlines()
    }
    assert metrics_kinds <= {"provenance", "span_begin", "span_end", "metrics"}

    # --profile-out wrote valid pstats input
    stats = pstats.Stats(str(profile))
    assert stats.total_calls > 0


def test_cli_out_dir_records_default_telemetry(tmp_path):
    from repro.experiments.__main__ import main as cli_main

    out = tmp_path / "out"
    code = cli_main(
        [
            "campaign",
            "--scale",
            "tiny",
            "--injections",
            "6",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--out",
            str(out),
        ]
    )
    assert code == 0
    telemetry_file = out / "telemetry.jsonl"
    assert telemetry_file.exists()
    events = [json.loads(line) for line in telemetry_file.read_text().splitlines()]
    assert events[0]["event"] == "provenance"
    assert events[0]["code_version"]
    check_telemetry.validate_file(telemetry_file)


def test_check_telemetry_rejects_malformed_files(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"event": "span_end", "span": 1, "name": "x", "ts": 1.0}\n')
    with pytest.raises(check_telemetry.TelemetryError):
        check_telemetry.validate_file(bad)
    unclosed = tmp_path / "unclosed.jsonl"
    unclosed.write_text(
        '{"event": "span_begin", "span": 1, "name": "x", "parent": null, "ts": 1.0}\n'
    )
    with pytest.raises(check_telemetry.TelemetryError):
        check_telemetry.validate_file(unclosed)
    assert check_telemetry.main([str(bad)]) == 1
