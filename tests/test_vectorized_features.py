"""Differential tests: vectorized feature engine vs. the networkx reference.

The contract of the feature-layer refactor is *bit identity*: the batched
mask/bitset extractor (:mod:`repro.features.vectorized`) must reproduce the
per-flip-flop traversal engine exactly, on every circuit in the library.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.circuits import LIBRARY_CIRCUITS, build_workload_for, get_circuit
from repro.features import CircuitGraph, FeatureExtractor, compute_circuit_stats
from repro.features.extractor import ENGINES
from repro.features.structural import extract_structural
from repro.features.synthesis import extract_synthesis
from repro.netlist.levelize import sink_masks, source_masks


@pytest.mark.parametrize("circuit", LIBRARY_CIRCUITS + ["xgmac_tiny"])
def test_stats_match_networkx_reference(circuit):
    """Every quantity, every flip-flop, every library circuit: exact match."""
    netlist = get_circuit(circuit)
    vectorized = asdict(compute_circuit_stats(netlist))
    reference = asdict(CircuitGraph(netlist).stats())
    for key in reference:
        assert vectorized[key] == reference[key], f"{circuit}: {key} diverges"


def test_structural_features_identical_between_engines(tiny_mac):
    graph = CircuitGraph(tiny_mac)
    via_graph = extract_structural(tiny_mac, graph=graph)
    via_vector = extract_structural(tiny_mac)
    assert via_graph == via_vector
    assert extract_synthesis(tiny_mac, graph=graph) == extract_synthesis(tiny_mac)


def test_feature_matrices_bit_identical(tiny_mac, tiny_golden):
    matrices = {
        engine: FeatureExtractor(tiny_mac, engine=engine).matrix(tiny_golden)
        for engine in ENGINES
    }
    assert np.array_equal(matrices["vectorized"], matrices["networkx"])


def test_extractor_rejects_unknown_engine(tiny_mac):
    with pytest.raises(ValueError):
        FeatureExtractor(tiny_mac, engine="graphblas")


def test_sink_masks_mirror_source_masks(counter_netlist):
    """Reachability symmetry: i in sources(n) iff n in fan-in of some FF i."""
    net_ff_mask, _ = source_masks(counter_netlist)
    ff_sink, out_mask = sink_masks(counter_netlist)
    flip_flops = counter_netlist.flip_flops()
    clock_nets = set(counter_netlist.clocks)
    # Forward: FF i reaches FF j's data cone  <=>  reverse: j in sinks of Qi.
    for j, ff in enumerate(flip_flops):
        sources = 0
        for net in ff.data_input_nets():
            if net not in clock_nets:
                sources |= net_ff_mask.get(net, 0)
        for i, src in enumerate(flip_flops):
            forward = bool((sources >> i) & 1)
            reverse = bool((ff_sink.get(src.output_net(), 0) >> j) & 1)
            assert forward == reverse
    # Every primary output is in its own net's output mask.
    for idx, net in enumerate(counter_netlist.outputs):
        assert (out_mask[net] >> idx) & 1


def test_sink_masks_shift_register():
    """Hand-checkable chain: only downstream data pins are in the sink set."""
    from repro.synth import Module, synthesize

    m = Module("shift3")
    din = m.input("din")
    s = m.reg_bus("s", 3)
    m.next(s[0], din)
    m.next(s[1], s[0])
    m.next(s[2], s[1])
    m.output("dout", s[2])
    nl = synthesize(m)
    ff_sink, out_mask = sink_masks(nl)
    ff_index = {ff.name: i for i, ff in enumerate(nl.flip_flops())}
    q0 = nl.cells["ff_s[0]"].output_net()
    # Q of stage 0 feeds only stage 1's D (one clock-boundary hop).
    assert ff_sink[q0] == 1 << ff_index["ff_s[1]"]
    assert out_mask[q0] == 0
    q2 = nl.cells["ff_s[2]"].output_net()
    assert out_mask[q2] == 1 << nl.outputs.index("dout")


@pytest.mark.parametrize("circuit", ["counter8", "fifo4x4", "crc32", "fsm_ctrl"])
def test_burst_workload_extraction_end_to_end(circuit):
    """Vectorized extraction works on the burst workloads' golden traces."""
    netlist = get_circuit(circuit)
    workload = build_workload_for(
        circuit, netlist, n_frames=2, min_len=2, max_len=3, gap=6, seed=9
    )
    golden = workload.testbench.run_golden()
    matrix = FeatureExtractor(netlist).matrix(golden)
    assert matrix.shape[0] == len(netlist.flip_flops())
    assert np.all(np.isfinite(matrix))
