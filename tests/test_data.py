"""Dataset generation and caching tests."""

import json

import numpy as np
import pytest

from repro.circuits import LIBRARY_CIRCUITS
from repro.data import (
    DATASET_PRESETS,
    DATASET_SCHEMA_VERSION,
    DatasetSpec,
    build_workload,
    get_dataset,
)
from repro.features.dataset import Dataset


def test_presets_defined():
    assert set(DATASET_PRESETS) == {"tiny", "mini", "full"}
    assert DATASET_PRESETS["full"].n_injections == 170
    assert DATASET_PRESETS["full"].circuit == "xgmac"


def test_cache_key_stability():
    a = DatasetSpec(circuit="xgmac_tiny", n_injections=8)
    b = DatasetSpec(circuit="xgmac_tiny", n_injections=8)
    c = DatasetSpec(circuit="xgmac_tiny", n_injections=9)
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != c.cache_key()


def test_build_workload():
    netlist, workload = build_workload(DATASET_PRESETS["tiny"])
    assert netlist.name == "xgmac_tiny"
    assert workload.testbench.n_cycles > 0
    assert workload.valid_nets == ["pkt_rx_val"]


def test_get_dataset_generates_and_caches(tmp_path):
    spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=6
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    cache_files = list(tmp_path.glob("dataset_*.json"))
    assert len(cache_files) == 1
    second = get_dataset(spec=spec, cache_dir=tmp_path)
    assert second.ff_names == first.ff_names
    assert (second.X == first.X).all()
    assert (second.y == first.y).all()


def test_get_dataset_regenerate(tmp_path):
    spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=6
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    second = get_dataset(spec=spec, cache_dir=tmp_path, regenerate=True)
    assert (second.y == first.y).all()  # deterministic regeneration


def test_get_dataset_unknown_preset(tmp_path):
    with pytest.raises(KeyError):
        get_dataset("huge", cache_dir=tmp_path)


def test_cached_tiny_dataset_labels(cached_tiny_dataset):
    ds = cached_tiny_dataset
    assert ds.meta["n_injections"] == DATASET_PRESETS["tiny"].n_injections
    assert 0.0 < float(ds.y.mean()) < 0.5
    assert ds.n_samples > 200


def test_dataset_meta_records_provenance(cached_tiny_dataset):
    """Labels carry their full generation lineage for reproducibility."""
    meta = cached_tiny_dataset.meta
    assert meta["schema_version"] == DATASET_SCHEMA_VERSION
    assert meta["backend"] == "compiled"
    assert meta["scheduler"] == "adaptive"
    assert meta["schedule"] == "legacy"
    assert meta["criterion"] == "packet"
    assert isinstance(meta["campaign_key"], str) and len(meta["campaign_key"]) == 16
    assert meta["spec"]["circuit"] == "xgmac_tiny"
    import repro

    assert meta["code_version"] == repro.__version__


def test_stale_schema_cache_regenerates(tmp_path):
    """A cache written by an older schema self-invalidates on load."""
    spec = DatasetSpec(
        circuit="counter8", n_frames=2, min_len=2, max_len=3, gap=6, n_injections=4
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    cache_file = next(tmp_path.glob("dataset_counter8_*.json"))
    payload = json.loads(cache_file.read_text())
    payload["meta"]["schema_version"] = DATASET_SCHEMA_VERSION - 1
    payload["y"] = [0.123] * len(payload["y"])  # poison: must not be served
    cache_file.write_text(json.dumps(payload))
    second = get_dataset(spec=spec, cache_dir=tmp_path)
    assert (second.y == first.y).all()
    # The cache file was rewritten with the current schema.
    refreshed = json.loads(cache_file.read_text())
    assert refreshed["meta"]["schema_version"] == DATASET_SCHEMA_VERSION


def test_corrupt_cache_regenerates(tmp_path):
    spec = DatasetSpec(
        circuit="counter8", n_frames=2, min_len=2, max_len=3, gap=6, n_injections=4
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    cache_file = next(tmp_path.glob("dataset_counter8_*.json"))
    cache_file.write_text("{ truncated")
    second = get_dataset(spec=spec, cache_dir=tmp_path)
    assert (second.y == first.y).all()


# ------------------------------------------------- circuit-generic datasets


@pytest.mark.parametrize("circuit", LIBRARY_CIRCUITS)
def test_library_circuit_dataset_generates_and_round_trips(circuit, tmp_path):
    """Every library circuit: generate, cache, CSV/JSON round-trip."""
    spec = DatasetSpec(
        circuit=circuit, n_frames=2, min_len=2, max_len=3, gap=6, n_injections=4
    )
    ds = get_dataset(spec=spec, cache_dir=tmp_path)
    assert ds.n_samples > 0
    assert ds.meta["circuit"].startswith(circuit.rstrip("0123456789x"))
    assert set(ds.groups) == {"structural", "synthesis", "dynamic"}
    assert np.all((ds.y >= 0) & (ds.y <= 1))
    # Cache hit returns the same content.
    again = get_dataset(spec=spec, cache_dir=tmp_path)
    assert (again.X == ds.X).all() and again.ff_names == ds.ff_names
    # JSON round-trip preserves groups and meta; CSV preserves the matrix.
    restored = Dataset.from_json(ds.to_json())
    assert restored.groups == ds.groups and restored.meta == ds.meta
    from_csv = Dataset.from_csv(ds.to_csv())
    assert np.allclose(from_csv.X, ds.X) and np.allclose(from_csv.y, ds.y)


def test_library_circuit_dataset_trains_end_to_end(tmp_path):
    """A library-circuit dataset drives the paper protocol end to end."""
    from repro.data import circuit_preset
    from repro.experiments import run_table1

    ds = get_dataset(spec=circuit_preset("fifo8x4", "tiny"), cache_dir=tmp_path)
    result = run_table1(ds, cv_folds=3, seed=0)
    assert set(result.rows) == {"Linear Least Squares", "k-NN", "SVR w/ RBF Kernel"}
    for metrics in result.rows.values():
        assert np.isfinite(metrics["r2"])
