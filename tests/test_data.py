"""Dataset generation and caching tests."""

import pytest

from repro.data import DATASET_PRESETS, DatasetSpec, build_workload, get_dataset


def test_presets_defined():
    assert set(DATASET_PRESETS) == {"tiny", "mini", "full"}
    assert DATASET_PRESETS["full"].n_injections == 170
    assert DATASET_PRESETS["full"].circuit == "xgmac"


def test_cache_key_stability():
    a = DatasetSpec(circuit="xgmac_tiny", n_injections=8)
    b = DatasetSpec(circuit="xgmac_tiny", n_injections=8)
    c = DatasetSpec(circuit="xgmac_tiny", n_injections=9)
    assert a.cache_key() == b.cache_key()
    assert a.cache_key() != c.cache_key()


def test_build_workload():
    netlist, workload = build_workload(DATASET_PRESETS["tiny"])
    assert netlist.name == "xgmac_tiny"
    assert workload.testbench.n_cycles > 0
    assert workload.valid_nets == ["pkt_rx_val"]


def test_get_dataset_generates_and_caches(tmp_path):
    spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=6
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    cache_files = list(tmp_path.glob("dataset_*.json"))
    assert len(cache_files) == 1
    second = get_dataset(spec=spec, cache_dir=tmp_path)
    assert second.ff_names == first.ff_names
    assert (second.X == first.X).all()
    assert (second.y == first.y).all()


def test_get_dataset_regenerate(tmp_path):
    spec = DatasetSpec(
        circuit="xgmac_tiny", n_frames=3, min_len=2, max_len=3, gap=12, n_injections=6
    )
    first = get_dataset(spec=spec, cache_dir=tmp_path)
    second = get_dataset(spec=spec, cache_dir=tmp_path, regenerate=True)
    assert (second.y == first.y).all()  # deterministic regeneration


def test_get_dataset_unknown_preset(tmp_path):
    with pytest.raises(KeyError):
        get_dataset("huge", cache_dir=tmp_path)


def test_cached_tiny_dataset_labels(cached_tiny_dataset):
    ds = cached_tiny_dataset
    assert ds.meta["n_injections"] == DATASET_PRESETS["tiny"].n_injections
    assert 0.0 < float(ds.y.mean()) < 0.5
    assert ds.n_samples > 200
