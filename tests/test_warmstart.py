"""Warm-start cache tests: resident contexts, shared traces, packed tallies.

Two contracts matter here:

* **bit-identity** — re-homing a golden trace into shared memory, resolving
  a resident runner instead of cold-building, and round-tripping shard
  tallies through the packed transport must never change a single counter;
* **lifecycle** — shared-memory segments belong to the creating process:
  children can read but never unlink, and releasing the cache reclaims
  every segment (``/dev/shm`` stays clean).
"""

import os
import pickle

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    SharedPackedRows,
    active_segment_names,
    release_warm_cache,
    warm_context,
    warm_stats,
)
from repro.campaigns.executor import _ShardRunner
from repro.campaigns.warmstart import (
    ensure_runner,
    pack_tallies,
    resolve_runner,
    runner_key,
    share_golden_trace,
    unpack_tallies,
    validate_packed_tally,
)
from repro.circuits.generator import GENERATED_FF_COUNTS
from repro.circuits.library import LIBRARY_CIRCUITS, get_circuit
from repro.circuits.workloads import build_workload_for


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test starts and ends with an empty warm cache so hit/miss
    assertions are deterministic and no segments cross test boundaries."""
    release_warm_cache()
    yield
    release_warm_cache()


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(
        circuit="xgmac_tiny",
        n_frames=4,
        min_len=2,
        max_len=3,
        gap=12,
        workload_seed=7,
        n_injections=8,
        seed=5,
        schedule="stream",
    )
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


# -------------------------------------------------------- SharedPackedRows


def test_shared_rows_roundtrip_indexing_iteration_and_slices():
    rows = [0, 1, (1 << 200) - 3, 42, 1 << 511]
    shared = SharedPackedRows.pack(rows)
    try:
        assert len(shared) == len(rows)
        assert [shared[i] for i in range(len(rows))] == rows
        assert list(shared) == rows
        assert shared.to_list() == rows
        assert shared[-1] == rows[-1]
        assert shared[1:4] == rows[1:4]
        with pytest.raises(IndexError):
            shared[len(rows)]
    finally:
        shared.unlink()


def test_shared_rows_pickle_deflates_to_plain_list():
    """Spawn platforms and stray pickling must see the same values,
    just unshared — never a dangling segment reference."""
    rows = [7, 1 << 100]
    shared = SharedPackedRows.pack(rows)
    try:
        revived = pickle.loads(pickle.dumps(shared))
        assert revived == rows
        assert type(revived) is list
    finally:
        shared.unlink()


def test_shared_rows_unlink_is_owner_only():
    shared = SharedPackedRows.pack([1, 2, 3])
    segment = f"/dev/shm/{shared.segment_name}"
    if not os.path.exists(segment):
        shared.unlink()
        pytest.skip("POSIX shared memory not visible via /dev/shm")
    # A forked child inherits the view but a different PID: its unlink
    # (e.g. via atexit after a chaos kill path) must be a no-op.
    shared._owner_pid = os.getpid() + 1
    shared.unlink()
    assert os.path.exists(segment), "non-owner unlink must not tear down"
    shared._owner_pid = os.getpid()
    shared.unlink()
    assert not os.path.exists(segment)


def test_share_golden_trace_is_idempotent_and_bit_identical():
    """All library circuits plus a generated mesh: the re-homed trace must
    reproduce every packed row of the plain-list trace exactly."""
    for circuit in LIBRARY_CIRCUITS + ["mesh_tiny"]:
        netlist = get_circuit(circuit)
        workload = build_workload_for(circuit, netlist, n_frames=2, gap=8)
        golden = workload.testbench.run_golden()
        before = (
            list(golden.ff_state),
            list(golden.outputs),
            list(golden.applied_inputs),
        )
        segments = share_golden_trace(golden)
        try:
            assert isinstance(golden.ff_state, SharedPackedRows), circuit
            after = (
                list(golden.ff_state),
                list(golden.outputs),
                list(golden.applied_inputs),
            )
            assert after == before, f"{circuit}: shared trace diverged"
            assert share_golden_trace(golden) == [], "second share is a no-op"
        finally:
            for seg in segments:
                seg.unlink()


# ----------------------------------------------------------- packed tallies


def test_packed_tally_roundtrip():
    ff = {"ff_b": [10, 3, 17], "ff_a": [8, 0, 0], "ff_c": [5, 5, 125]}
    order = ["ff_a", "ff_b", "ff_c"]
    block = pack_tallies(ff, order.index)
    assert validate_packed_tally(block) is None
    assert unpack_tallies(block, order) == ff


def test_packed_tally_validation_rejects_torn_blocks():
    block = pack_tallies({"ff_a": [1, 2, 3]}, ["ff_a"].index)
    assert validate_packed_tally("not a dict")
    assert validate_packed_tally({"n": -1})
    assert validate_packed_tally({**block, "idx": block["idx"][:-1]})
    assert validate_packed_tally({**block, "counts": b""})
    assert validate_packed_tally({**block, "n": 2})


# ------------------------------------------------------------ warm cache


def test_warm_context_hits_within_family_and_fixes_double_build():
    spec = tiny_spec()
    ctx, hit = warm_context(spec)
    assert not hit
    # Same family, different budget/backend: one resident context serves all.
    again, hit = warm_context(tiny_spec(n_injections=40, backend="numpy"))
    assert hit and again is ctx
    # A caller-provided context is adopted, not rebuilt (the historical
    # double-build when CampaignEngine(ctx) re-derived it in workers).
    release_warm_cache()
    adopted, hit = warm_context(spec, ctx)
    assert not hit and adopted is ctx


def test_ensure_and_resolve_runner_share_one_build():
    spec = tiny_spec()
    runner, hit, warmup = ensure_runner(spec, _ShardRunner)
    assert not hit and warmup > 0
    same, hit, warmup = ensure_runner(spec, _ShardRunner)
    assert hit and same is runner and warmup == 0.0
    assert resolve_runner(spec) is runner
    assert resolve_runner(tiny_spec(seed=99)) is None, "other family is cold"
    stats = warm_stats()
    assert stats == {"hits": 1, "misses": 1}
    assert runner_key(spec) == f"{spec.backend}:{spec.scheduler}"
    assert active_segment_names(), "warm family holds shm-backed golden rows"


# ------------------------------------------------- campaign-level identity


def test_campaign_results_identical_cold_warm_serial_and_parallel():
    """The acceptance property: a cold engine, a warm engine and a warm
    parallel engine all produce bit-identical per-flip-flop counters."""
    spec = tiny_spec()
    cold = CampaignEngine(spec, jobs=1)
    cold_result = cold.run()
    assert cold.last_report.warm_misses >= 1
    assert cold.last_report.warmup_seconds > 0

    warm = CampaignEngine(spec, jobs=1)
    warm_result = warm.run()
    assert warm.last_report.warm_hits >= 1
    assert warm.last_report.warm_misses == 0
    assert warm.last_report.warmup_seconds == 0.0

    parallel = CampaignEngine(spec, jobs=2)
    parallel_result = parallel.run()

    assert result_key(warm_result) == result_key(cold_result)
    assert result_key(parallel_result) == result_key(cold_result)


def test_campaign_on_generated_mesh_warm_equals_cold():
    spec = tiny_spec(circuit="mesh_tiny", criterion="any_output", n_injections=4)
    cold = CampaignEngine(spec, jobs=1).run()
    warm_engine = CampaignEngine(spec, jobs=1)
    warm = warm_engine.run()
    assert warm_engine.last_report.warm_hits >= 1
    assert result_key(warm) == result_key(cold)
    assert len(cold.results) == GENERATED_FF_COUNTS["mesh_tiny"]
