"""Chaos-harness tests: the engine recovers bit-identically from faults.

Every test here follows the same property the chaos harness asserts: a
campaign executed under injected faults (worker kills, hangs, malformed
payloads, poisoned shards, torn store writes) must either

* recover to a result **bit-identical** to the fault-free run, with the
  recovery visible in ``robustness.*`` telemetry and the engine report; or
* (for permanently poisoned shards) *complete* with an explicit quarantine
  record and a resumable partial checkpoint — never raise, never cache a
  short-count result as a finished snapshot.
"""

from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    CampaignStore,
    RetryPolicy,
    active_segment_names,
    build_context,
    release_warm_cache,
    stream_buckets,
)
from repro.obs import Telemetry, use_telemetry
from repro.verify.chaos import (
    ChaosCampaignStore,
    ChaosFault,
    ChaosShardRunner,
    ChaosSpec,
    run_chaos_trials,
    shard_fingerprint,
)

TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    """Per-flip-flop counters: the bit-exactness contract (see
    tests/test_campaigns.py for why engine-cost metrics are excluded)."""
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


#: Retry knobs that keep chaotic test runs fast: no real backoff sleeps,
#: tight supervisor polling, effectively unlimited pool rebuilds.
def fast_retry(**overrides) -> RetryPolicy:
    params = dict(
        max_attempts=4,
        max_pool_rebuilds=200,
        backoff_base=0.0,
        backoff_max=0.0,
        poll_interval=0.005,
    )
    params.update(overrides)
    return RetryPolicy(**params)


def counter(telemetry, name):
    return telemetry.registry.counter(name).value


# ------------------------------------------------------------- chaos spec


def test_chaos_spec_fires_is_deterministic_and_bounded():
    spec = ChaosSpec(seed=3, kill_rate=0.5)
    sites = [f"fp{i:02d}" for i in range(64)]
    first = [spec.fires("kill", fp, 1, 0.5) for fp in sites]
    second = [spec.fires("kill", fp, 1, 0.5) for fp in sites]
    assert first == second, "fault decisions must be pure"
    assert any(first) and not all(first), "rate 0.5 should split the sites"
    # Rate 0 never fires; attempts past max_faults_per_site never fire, so
    # every retried shard eventually runs clean and the campaign terminates.
    assert not any(spec.fires("kill", fp, 1, 0.0) for fp in sites)
    assert not any(spec.fires("kill", fp, 2, 1.0) for fp in sites)
    assert ChaosSpec.from_dict(spec.to_dict()) == spec


def test_shard_fingerprint_tracks_content():
    a = [(3, ["ff_a", "ff_b"]), (7, ["ff_c"])]
    b = [(3, ["ff_a", "ff_b"]), (7, ["ff_d"])]
    assert shard_fingerprint(a) == shard_fingerprint(a)
    assert shard_fingerprint(a) != shard_fingerprint(b)


# --------------------------------------------------- recoverable failures


def test_worker_kills_recover_bit_identically():
    """Every shard's first dispatch dies via os._exit; retries recover."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=11, kill_rate=1.0)
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(spec, jobs=2, chaos=chaos, retry=fast_retry())
        result = engine.run()
    assert result_key(result) == result_key(baseline)
    report = engine.last_report
    assert not report.quarantined_shards
    assert report.retries >= 1
    assert report.pool_rebuilds >= 1
    assert counter(telemetry, "robustness.worker_deaths") >= 1
    assert counter(telemetry, "robustness.pool_rebuilds") == report.pool_rebuilds


def test_hung_shard_hits_deadline_watchdog():
    """A hang far longer than the campaign trips shard_timeout, not a wedge."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=13, hang_rate=1.0, hang_seconds=60.0)
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec,
            jobs=2,
            shards_per_job=1,
            chaos=chaos,
            retry=fast_retry(shard_timeout=0.75),
        )
        result = engine.run()
    assert result_key(result) == result_key(baseline)
    assert not engine.last_report.quarantined_shards
    assert engine.last_report.retries >= 1
    assert counter(telemetry, "robustness.shard_timeouts") >= 1


def test_malformed_payload_retried_in_serial_path():
    """A torn payload fails validation, counts an attempt, and is retried."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=17, malform_rate=1.0)
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(spec, jobs=1, chaos=chaos, retry=fast_retry())
        result = engine.run()
    assert result_key(result) == result_key(baseline)
    assert engine.last_report.retries >= 1
    assert counter(telemetry, "robustness.malformed_payloads") >= 1


def test_degraded_pool_finishes_serially():
    """With zero rebuilds tolerated, the first death degrades to serial —
    and the serial fallback still retries through the in-process faults."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=19, kill_rate=1.0)
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec, jobs=2, chaos=chaos, retry=fast_retry(max_pool_rebuilds=0)
        )
        result = engine.run()
    assert result_key(result) == result_key(baseline)
    assert engine.last_report.degraded_serial
    assert not engine.last_report.quarantined_shards
    assert counter(telemetry, "robustness.serial_fallbacks") == 1


def test_maxtasksperchild_recycling_is_not_a_death():
    """Clean worker recycling (exit code 0) must not trigger the dead-worker
    watchdog: zero retries, zero rebuilds, bit-identical result."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec, jobs=2, retry=fast_retry(maxtasksperchild=1)
        )
        result = engine.run()
    assert result_key(result) == result_key(baseline)
    assert engine.last_report.retries == 0
    assert engine.last_report.pool_rebuilds == 0
    assert counter(telemetry, "robustness.worker_deaths") == 0


def test_sequential_policy_recovers_from_kills():
    """The sequential-Wilson driver runs shards through the same supervisor;
    at target_margin=0 it must reproduce the flat counters despite kills."""
    flat = CampaignEngine(tiny_spec(), jobs=1).run()
    spec = tiny_spec(policy="sequential", target_margin=0.0)
    chaos = ChaosSpec(seed=23, kill_rate=0.6)
    engine = CampaignEngine(spec, jobs=2, chaos=chaos, retry=fast_retry())
    result = engine.run()
    assert result_key(result) == result_key(flat)
    assert not engine.last_report.quarantined_shards


# ------------------------------------------------------ poison quarantine


def poison_cycle_for(spec):
    """An injection time slot that is guaranteed to land in some shard."""
    context = build_context(spec)
    buckets = stream_buckets(
        spec, context.window_cycles(), context.ff_names(spec), 0, spec.n_injections
    )
    return buckets[0].cycle


def test_poisoned_shard_quarantines_and_resumes(tmp_path):
    """A permanently failing shard must not sink the campaign: it finishes
    quarantined, persists a *partial* (never a snapshot), and a later clean
    run resumes exactly the missing work."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=29, poison_cycle=poison_cycle_for(spec))
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec,
            jobs=1,
            cache_dir=tmp_path,
            chaos=chaos,
            retry=fast_retry(max_attempts=2),
        )
        partial_result = engine.run()
    report = engine.last_report
    assert report.quarantined_shards, "the poisoned shard must be reported"
    assert all(q["attempts"] == 2 for q in report.quarantined_shards)
    assert counter(telemetry, "robustness.quarantined_shards") >= 1
    assert counter(telemetry, "robustness.incomplete_campaigns") == 1
    assert counter(telemetry, "chaos.poison_hits") >= 2

    done = sum(r.n_injections for r in partial_result.results.values())
    full = sum(r.n_injections for r in baseline.results.values())
    assert done < full, "quarantined work must be missing, not faked"

    # Persisted as a resumable partial, never as a finished snapshot.
    store = CampaignStore(tmp_path / "campaigns")
    assert store.load_exact(spec) is None
    resumed = CampaignEngine(spec, jobs=1, cache_dir=tmp_path)
    result = resumed.run()
    assert result_key(result) == result_key(baseline)
    assert resumed.last_report.resumed_buckets > 0
    assert not resumed.last_report.quarantined_shards


def test_sequential_poison_quarantines_and_terminates(tmp_path):
    """The policy driver must abandon a poisoned shard's draws (advancing
    the consumed cursor) instead of re-allocating them forever."""
    spec = tiny_spec(policy="sequential", target_margin=0.0)
    chaos = ChaosSpec(seed=31, poison_cycle=poison_cycle_for(tiny_spec()))
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec,
            jobs=1,
            cache_dir=tmp_path,
            chaos=chaos,
            retry=fast_retry(max_attempts=2),
        )
        result = engine.run()
    assert engine.last_report.quarantined_shards
    assert engine.last_policy_meta["quarantined_shards"] >= 1
    assert counter(telemetry, "robustness.abandoned_draws") > 0
    assert counter(telemetry, "robustness.incomplete_campaigns") == 1
    assert result.results, "the surviving shards still merge to a result"
    # Abandoned draws advance the consumed cursor, so the policy backfills
    # from later stream indices — coverage may still reach the nominal
    # budget, but never exceed it, and the quarantine stays on the record.
    assert all(
        r.n_injections <= spec.n_injections for r in result.results.values()
    )


# ----------------------------------------------------------- torn writes


def test_torn_store_write_quarantined_and_recomputed(tmp_path):
    """A torn checkpoint write leaves half a JSON document; the store must
    quarantine it (``*.corrupt``) and the campaign recompute cleanly."""
    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    root = tmp_path / "campaigns"
    chaos = ChaosSpec(seed=37, torn_write_rate=1.0)
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec,
            jobs=1,
            store=ChaosCampaignStore(root, chaos),
            checkpoint_interval=0.0,
        )
        result = engine.run()
        assert counter(telemetry, "chaos.torn_writes") >= 1
        rerun = CampaignEngine(spec, jobs=1, store=CampaignStore(root)).run()
        assert counter(telemetry, "store.corrupt_files") >= 1
    assert result_key(result) == result_key(baseline)
    assert result_key(rerun) == result_key(baseline)
    assert list(root.glob("*.corrupt")), "damaged bytes kept for postmortem"


# ---------------------------------------------------------- runner seams


def test_chaos_shard_runner_poison_raises_chaosfault():
    class Inner:
        spec = None

        def run_shard(self, buckets, gate=None, attempt=1):  # pragma: no cover
            raise AssertionError("poisoned shard must never execute")

    runner = ChaosShardRunner(Inner(), ChaosSpec(poison_cycle=42), in_worker=False)
    with pytest.raises(ChaosFault):
        runner.run_shard([(42, ["ff_a"])])


def test_chaos_shard_runner_kill_in_process_is_an_exception():
    class Inner:
        spec = None

        def run_shard(self, buckets, gate=None, attempt=1):
            return {"ff": {}}

    chaos = ChaosSpec(seed=0, kill_rate=1.0)
    runner = ChaosShardRunner(Inner(), chaos, in_worker=False)
    with pytest.raises(ChaosFault):
        runner.run_shard([(1, ["ff_a"])], attempt=1)
    # Past max_faults_per_site the same site runs clean.
    assert runner.run_shard([(1, ["ff_a"])], attempt=2) == {"ff": {}}


# ------------------------------------------------- shared-memory lifecycle


def shm_segments():
    """Names of this machine's live ``reprowarm_*`` shared-memory segments."""
    return {p.name for p in Path("/dev/shm").glob("reprowarm_*")}


@pytest.mark.skipif(
    not Path("/dev/shm").is_dir(), reason="POSIX shared memory not visible"
)
def test_chaos_kills_leak_no_shared_memory_segments():
    """Worker kills must not leak ``/dev/shm`` golden-trace segments.

    Killed workers never unlink (the owner-PID guard makes their atexit a
    no-op on segments the parent owns), pool rebuilds re-attach the same
    segments, and ``release_warm_cache`` reclaims every registered name."""
    release_warm_cache()
    assert not active_segment_names()
    before = shm_segments()

    spec = tiny_spec()
    baseline = CampaignEngine(spec, jobs=1).run()
    chaos = ChaosSpec(seed=41, kill_rate=1.0)
    engine = CampaignEngine(spec, jobs=2, chaos=chaos, retry=fast_retry())
    result = engine.run()
    assert result_key(result) == result_key(baseline)
    assert engine.last_report.pool_rebuilds >= 1, "kills must force rebuilds"

    registered = set(active_segment_names())
    assert registered, "the warm cache should hold shm-backed golden rows"
    assert registered <= shm_segments(), "registered segments must be live"

    release_warm_cache()
    assert not active_segment_names()
    assert shm_segments() <= before, "no segment may outlive the cache"


def test_exception_exit_releases_shared_memory():
    """An exception between warm-up and release must not strand segments:
    the atexit hook is belt-and-braces, but explicit release works mid-run."""
    release_warm_cache()
    before = shm_segments()
    spec = tiny_spec()
    try:
        CampaignEngine(spec, jobs=1).run()
        raise RuntimeError("simulated crash after a warm campaign")
    except RuntimeError:
        pass
    finally:
        release_warm_cache()
    assert not active_segment_names()
    assert shm_segments() <= before


# ------------------------------------------------------------ trial suite


def test_run_chaos_trials_smoke():
    """One full trial of each flavor — the same property CI enforces."""
    reports = run_chaos_trials(n_trials=3, jobs=2, seed_base=7)
    assert [r.flavor for r in reports] == ["workers", "timeouts", "torn"]
    assert all(r.matched for r in reports)
    assert reports[0].retries >= 1, "the workers flavor must exercise retries"
    assert reports[2].corrupt_files >= 1, "the torn flavor must damage the store"
