"""Supervisor, checkpoint-throttle, store-quarantine and crash/resume tests.

Complements tests/test_chaos.py (which drives the fault machinery through
injected chaos): here the supervisor is exercised as a unit through plain
closures, and the engine's interrupt/resume contract is pinned across a
matrix of circuits, sampling policies and job counts — an interrupted
campaign, resumed, must land bit-identical to a never-interrupted one.
"""

import json

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    CampaignStore,
    RetryPolicy,
    SupervisedPool,
)
from repro.circuits.workloads import default_criterion
from repro.obs import Telemetry, use_telemetry

TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


def counter(telemetry, name):
    return telemetry.registry.counter(name).value


class Interrupted(Exception):
    """Stand-in for a mid-campaign crash, raised from the progress hook."""


def bomb_at(n):
    def bomb(done, total):
        if done == n:
            raise Interrupted(f"progress bomb at {done}/{total}")

    return bomb


# ------------------------------------------------------------ retry policy


def test_retry_policy_rejects_nonsense():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(shard_timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_pool_rebuilds=-1)


def test_retry_policy_backoff_is_exponential_and_capped():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(10) == pytest.approx(0.5)


# ------------------------------------------------- supervisor (unit level)


def fast_policy(**overrides) -> RetryPolicy:
    params = dict(max_attempts=3, backoff_base=0.0, backoff_max=0.0)
    params.update(overrides)
    return RetryPolicy(**params)


def test_supervisor_requires_serial_fn_for_one_job():
    with pytest.raises(ValueError):
        SupervisedPool(None, jobs=1)


def test_supervisor_serial_retries_until_success():
    def flaky(payload, attempt):
        if payload == "flaky" and attempt < 3:
            raise RuntimeError("transient")
        return {"payload": payload, "attempt": attempt}

    sup = SupervisedPool(None, jobs=1, retry=fast_policy(), serial_fn=flaky)
    outcomes = {o.key: o for o in sup.run(["steady", "flaky"])}
    sup.shutdown(clean=True)
    assert outcomes[0].payload == {"payload": "steady", "attempt": 1}
    assert outcomes[1].payload == {"payload": "flaky", "attempt": 3}
    assert outcomes[1].attempts == 3
    assert sup.retries == 2
    assert not sup.quarantined


def test_supervisor_serial_quarantines_poison_but_finishes_rest():
    def runner(payload, attempt):
        if payload == "poison":
            raise RuntimeError("always broken")
        return {"payload": payload}

    with use_telemetry(Telemetry()) as telemetry:
        sup = SupervisedPool(None, jobs=1, retry=fast_policy(), serial_fn=runner)
        outcomes = {o.key: o for o in sup.run(["ok", "poison", "also ok"])}
        sup.shutdown(clean=True)
    assert outcomes[0].payload == {"payload": "ok"}
    assert outcomes[2].payload == {"payload": "also ok"}
    bad = outcomes[1]
    assert bad.payload is None
    assert bad.quarantine is not None
    assert bad.quarantine.attempts == 3
    assert "always broken" in bad.quarantine.reason
    assert [q.key for q in sup.quarantined] == [1]
    assert counter(telemetry, "robustness.quarantined_shards") == 1


def test_supervisor_validate_rejects_malformed_payloads():
    calls = {"n": 0}

    def runner(payload, attempt):
        calls["n"] += 1
        return {"garbage": True} if attempt == 1 else {"ff": {}}

    def validate(payload):
        return None if "ff" in payload else "missing 'ff' table"

    with use_telemetry(Telemetry()) as telemetry:
        sup = SupervisedPool(
            None, jobs=1, retry=fast_policy(), serial_fn=runner, validate=validate
        )
        outcomes = list(sup.run(["shard"]))
        sup.shutdown(clean=True)
    assert outcomes[0].payload == {"ff": {}}
    assert outcomes[0].attempts == 2
    assert calls["n"] == 2
    assert counter(telemetry, "robustness.malformed_payloads") == 1


def test_supervisor_serial_propagates_keyboard_interrupt():
    """Only Exception is retried; a ^C must reach the engine's checkpoint
    path instead of being retried/quarantined away."""

    def runner(payload, attempt):
        raise KeyboardInterrupt

    sup = SupervisedPool(None, jobs=1, retry=fast_policy(), serial_fn=runner)
    with pytest.raises(KeyboardInterrupt):
        list(sup.run(["shard"]))
    sup.shutdown(clean=False)


# ------------------------------------------------------ crash/resume matrix


def matrix_spec(circuit, policy, **overrides) -> CampaignSpec:
    if circuit == "xgmac_tiny":
        params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    else:
        params = dict(
            circuit=circuit,
            n_frames=4,
            min_len=2,
            max_len=3,
            gap=12,
            workload_seed=7,
            n_injections=6,
            seed=9,
            schedule="stream",
            criterion=default_criterion(circuit),
        )
    if policy == "sequential":
        # margin 0 pins the draw plan, so interrupted-and-resumed runs are
        # comparable bit-for-bit against a never-interrupted run.
        params.update(policy="sequential", target_margin=0.0)
    params.update(overrides)
    return CampaignSpec(**params)


MATRIX = [
    ("xgmac_tiny", "flat", 1),
    ("xgmac_tiny", "flat", 2),
    ("xgmac_tiny", "sequential", 1),
    ("xgmac_tiny", "sequential", 2),
    ("counter16", "flat", 2),
    ("counter16", "sequential", 1),
    ("crc32", "flat", 1),
    ("crc32", "sequential", 2),
]


@pytest.mark.parametrize("circuit,policy,jobs", MATRIX)
def test_crash_resume_matrix(tmp_path, circuit, policy, jobs):
    """Interrupt mid-campaign, resume from the checkpoint, land bit-identical
    to a fault-free run — across circuits, sampling policies and job counts."""
    spec = matrix_spec(circuit, policy)
    fresh = CampaignEngine(spec, jobs=jobs).run()

    engine = CampaignEngine(
        spec,
        jobs=jobs,
        cache_dir=tmp_path,
        progress=bomb_at(1),
        progress_interval=0.0,
    )
    with pytest.raises(Interrupted):
        engine.run()

    resumed = CampaignEngine(spec, jobs=jobs, cache_dir=tmp_path)
    result = resumed.run()
    assert result_key(result) == result_key(fresh)
    assert not resumed.last_report.quarantined_shards


def test_keyboard_interrupt_mid_round_resumes(tmp_path):
    """^C inside a sequential round goes down the terminate() teardown path
    and still leaves a checkpoint the next run resumes from."""
    spec = matrix_spec("xgmac_tiny", "sequential")
    fresh = CampaignEngine(spec, jobs=2).run()

    def ctrl_c(done, total):
        if done == 1:
            raise KeyboardInterrupt

    engine = CampaignEngine(
        spec, jobs=2, cache_dir=tmp_path, progress=ctrl_c, progress_interval=0.0
    )
    with pytest.raises(KeyboardInterrupt):
        engine.run()

    resumed = CampaignEngine(spec, jobs=2, cache_dir=tmp_path)
    assert result_key(resumed.run()) == result_key(fresh)


# ------------------------------------------------------ checkpoint throttle


def test_throttled_checkpoints_still_exact_on_interrupt(tmp_path):
    """With a huge throttle interval no mid-run checkpoint is due — but the
    crash path must still write an exact one, and resume must cover exactly
    the work done before the interrupt."""
    spec = tiny_spec()
    fresh = CampaignEngine(spec, jobs=1).run()
    with use_telemetry(Telemetry()) as telemetry:
        engine = CampaignEngine(
            spec,
            jobs=1,
            cache_dir=tmp_path,
            progress=bomb_at(2),
            progress_interval=0.0,
            checkpoint_interval=3600.0,
        )
        with pytest.raises(Interrupted):
            engine.run()
        assert counter(telemetry, "store.checkpoint_skips") >= 1
        assert counter(telemetry, "store.checkpoint_writes") >= 1

    resumed = CampaignEngine(spec, jobs=1, cache_dir=tmp_path)
    result = resumed.run()
    assert resumed.last_report.resumed_buckets == engine.last_report.executed_buckets
    assert result_key(result) == result_key(fresh)


def test_throttle_interval_reduces_checkpoint_writes(tmp_path):
    spec = tiny_spec()
    with use_telemetry(Telemetry()) as eager:
        CampaignEngine(
            spec, jobs=1, cache_dir=tmp_path / "eager", checkpoint_interval=0.0
        ).run()
    with use_telemetry(Telemetry()) as throttled:
        CampaignEngine(
            spec, jobs=1, cache_dir=tmp_path / "lazy", checkpoint_interval=3600.0
        ).run()
    assert counter(eager, "store.checkpoint_skips") == 0
    assert counter(throttled, "store.checkpoint_skips") >= 1
    assert counter(eager, "store.checkpoint_writes") > counter(
        throttled, "store.checkpoint_writes"
    )


# -------------------------------------------------------- store quarantine


def snapshot_on_disk(tmp_path, spec):
    engine = CampaignEngine(spec, jobs=1, cache_dir=tmp_path)
    baseline = engine.run()
    store = CampaignStore(tmp_path / "campaigns")
    path = store.path_for(spec)
    assert path.exists()
    return baseline, store, path


def test_truncated_store_file_is_quarantined_and_recomputed(tmp_path):
    spec = tiny_spec()
    baseline, store, path = snapshot_on_disk(tmp_path, spec)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])

    with use_telemetry(Telemetry()) as telemetry:
        assert store.load_exact(spec) is None
        assert counter(telemetry, "store.corrupt_files") == 1
    corpse = path.with_suffix(path.suffix + ".corrupt")
    assert corpse.exists(), "damaged bytes must be kept for postmortem"
    assert not path.exists(), "the damaged file must not shadow future lookups"

    rerun = CampaignEngine(spec, jobs=1, cache_dir=tmp_path)
    result = rerun.run()
    assert not rerun.last_report.cache_hit
    assert result_key(result) == result_key(baseline)


def test_non_object_store_document_is_quarantined(tmp_path):
    spec = tiny_spec()
    _baseline, store, path = snapshot_on_disk(tmp_path, spec)
    path.write_text(json.dumps([1, 2, 3]))
    with use_telemetry(Telemetry()) as telemetry:
        assert store.load_exact(spec) is None
        assert counter(telemetry, "store.corrupt_files") == 1
    assert path.with_suffix(path.suffix + ".corrupt").exists()


def test_newer_store_version_left_untouched(tmp_path):
    """A file written by newer code is not corrupt — it must be ignored
    without renaming, so a rollback doesn't destroy forward data."""
    spec = tiny_spec()
    _baseline, store, path = snapshot_on_disk(tmp_path, spec)
    path.write_text(json.dumps({"store_version": 99, "future": True}))
    with use_telemetry(Telemetry()) as telemetry:
        assert store.load_exact(spec) is None
        assert counter(telemetry, "store.corrupt_files") == 0
    assert path.exists()
    assert not path.with_suffix(path.suffix + ".corrupt").exists()
    assert json.loads(path.read_text())["future"] is True
