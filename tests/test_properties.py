"""Cross-cutting property-based tests (hypothesis).

These exercise invariants that tie layers together: synthesized logic vs.
the expression interpreter, bit-parallel vs. scalar simulation, three-valued
vs. two-valued evaluation, and statistical invariants of the FDR machinery.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faultinjection import CampaignResult, FlipFlopResult, wilson_interval
from repro.netlist import DEFAULT_LIBRARY
from repro.sim import CompiledSimulator, eval3, lane_mask
from repro.sim.logic import X, broadcast, extract_lane, popcount
from repro.synth import Module, Sig, synthesize
from repro.synth.expr import And, Const, Expr, Mux, Not, Or, Xor

from tests.test_wordlib import evaluate


# ------------------------------------------------------ random expressions

_LEAVES = [Sig("a"), Sig("b"), Sig("c"), Sig("d"), Const(0), Const(1)]


def expr_strategy(depth: int = 3):
    leaf = st.sampled_from(_LEAVES)
    if depth == 0:
        return leaf
    sub = expr_strategy(depth - 1)
    return st.one_of(
        leaf,
        st.builds(lambda x: Not.of(x), sub),
        st.builds(lambda x, y: And.of(x, y), sub, sub),
        st.builds(lambda x, y: Or.of(x, y), sub, sub),
        st.builds(lambda x, y: Xor.of(x, y), sub, sub),
        st.builds(lambda s, x, y: Mux.of(s, x, y), sub, sub, sub),
    )


@given(expr=expr_strategy(), assignment=st.integers(0, 15))
@settings(max_examples=120, deadline=None)
def test_synthesized_expression_matches_interpreter(expr, assignment):
    """Any random expression, once mapped to gates, computes the same value."""
    m = Module("prop")
    for name in "abcd":
        m.input(name)
    m.output("y", expr)
    nl = synthesize(m)
    sim = CompiledSimulator(nl)
    env = {}
    for i, name in enumerate("abcd"):
        bit = (assignment >> i) & 1
        env[name] = bit
        sim.set_input(name, bit)
    sim.eval_comb()
    assert sim.get_bit("y") == evaluate(expr, env)


@given(expr=expr_strategy(), lanes=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_bit_parallel_equals_scalar_simulation(expr, lanes):
    """N-lane simulation equals N independent scalar simulations."""
    m = Module("lanes")
    for name in "abcd":
        m.input(name)
    m.output("y", expr)
    nl = synthesize(m)
    wide = CompiledSimulator(nl, n_lanes=lanes)
    rng = np.random.default_rng(lanes)
    lane_inputs = {name: int(rng.integers(0, 1 << lanes)) for name in "abcd"}
    for name, value in lane_inputs.items():
        wide.set_input_lanes(name, value)
    wide.eval_comb()
    wide_out = wide.get("y")
    narrow = CompiledSimulator(nl, n_lanes=1)
    for lane in range(lanes):
        for name, value in lane_inputs.items():
            narrow.set_input(name, (value >> lane) & 1)
        narrow.eval_comb()
        assert narrow.get_bit("y") == (wide_out >> lane) & 1


# ------------------------------------------------------------ three-valued


@given(st.sampled_from(sorted(n for n in DEFAULT_LIBRARY.cell_types
                              if DEFAULT_LIBRARY[n].function is not None
                              and DEFAULT_LIBRARY[n].inputs)),
       st.integers(0, 3**4 - 1))
@settings(max_examples=120, deadline=None)
def test_eval3_is_sound_abstraction(name, code):
    """If eval3 returns 0/1, every binary completion agrees with it."""
    ctype = DEFAULT_LIBRARY[name]
    k = len(ctype.inputs)
    inputs = []
    for i in range(k):
        inputs.append((code // (3**i)) % 3)
    result = eval3(ctype, inputs)
    x_positions = [i for i, v in enumerate(inputs) if v == X]
    completions = set()
    for bits in itertools.product((0, 1), repeat=len(x_positions)):
        concrete = list(inputs)
        for pos, bit in zip(x_positions, bits):
            concrete[pos] = bit
        completions.add(ctype.evaluate(concrete, mask=1))
    if result != X:
        assert completions == {result}
    else:
        assert len(completions) == 2


# ------------------------------------------------------------ logic utils


@given(st.integers(1, 200))
@settings(max_examples=30, deadline=None)
def test_lane_mask_and_broadcast(n):
    mask = lane_mask(n)
    assert popcount(mask) == n
    assert broadcast(1, mask) == mask
    assert broadcast(0, mask) == 0
    for lane in (0, n - 1):
        assert extract_lane(mask, lane) == 1


# -------------------------------------------------------------- statistics


@given(trials=st.integers(1, 500), successes=st.integers(0, 500))
@settings(max_examples=80, deadline=None)
def test_wilson_interval_contains_point_estimate(trials, successes):
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials)
    p = successes / trials
    assert 0.0 <= low <= p <= high <= 1.0
    # More trials shrink the interval.
    low2, high2 = wilson_interval(successes * 2, trials * 2)
    assert (high2 - low2) <= (high - low) + 1e-12


@given(
    trials=st.integers(1, 500),
    successes=st.integers(0, 500),
    scale=st.integers(2, 16),
)
@settings(max_examples=80, deadline=None)
def test_wilson_interval_monotone_in_trials(trials, successes, scale):
    """At a fixed observed proportion, the interval shrinks with trials."""
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials)
    low_k, high_k = wilson_interval(successes * scale, trials * scale)
    assert (high_k - low_k) <= (high - low) + 1e-12


@given(
    trials=st.integers(1, 500),
    successes=st.integers(0, 500),
    confidence=st.floats(0.5, 0.999),
)
@settings(max_examples=80, deadline=None)
def test_wilson_interval_symmetric_under_success_failure_swap(
    trials, successes, confidence
):
    """Counting failures instead of successes mirrors the interval at 1/2."""
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials, confidence)
    swapped_low, swapped_high = wilson_interval(
        trials - successes, trials, confidence
    )
    assert swapped_low == pytest.approx(1.0 - high, abs=1e-9)
    assert swapped_high == pytest.approx(1.0 - low, abs=1e-9)


@given(confidence=st.floats(0.5, 0.999))
@settings(max_examples=30, deadline=None)
def test_wilson_interval_trivial_at_zero_trials(confidence):
    """No data -> the whole unit interval, at every confidence level."""
    assert wilson_interval(0, 0, confidence) == (0.0, 1.0)


@given(
    population=st.integers(1, 100_000),
    margin=st.floats(1e-4, 0.5),
    p=st.floats(1e-6, 1.0 - 1e-6),
)
@settings(max_examples=80, deadline=None)
def test_required_sample_size_stays_within_population(population, margin, p):
    from repro.faultinjection import required_sample_size

    n = required_sample_size(population, margin=margin, p=p)
    assert 1 <= n <= population
    # Infinite-universe sizing is an upper bound on every finite universe.
    assert n <= max(population, required_sample_size(None, margin=margin, p=p))


# ------------------------------------------------- result schema round trip


_ff_results = st.dictionaries(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=12
    ),
    st.tuples(st.integers(0, 500), st.integers(0, 500), st.integers(0, 10_000)),
    max_size=8,
)


@given(
    ffs=_ff_results,
    n_injections=st.integers(1, 500),
    seed=st.integers(0, 2**31),
    n_forward_runs=st.integers(0, 10_000),
    total_lane_cycles=st.integers(0, 10**9),
)
@settings(max_examples=60, deadline=None)
def test_campaign_result_json_round_trip(
    ffs, n_injections, seed, n_forward_runs, total_lane_cycles
):
    """to_json/from_json is the identity on every field the store relies on."""
    result = CampaignResult(
        circuit="prop", n_injections=n_injections, seed=seed,
        n_forward_runs=n_forward_runs, total_lane_cycles=total_lane_cycles,
    )
    for name, (inj, fail, lat) in ffs.items():
        fail = min(fail, inj)
        result.results[name] = FlipFlopResult(name, inj, fail, lat)
    payload = result.to_payload()
    assert payload["version"] == CampaignResult.SCHEMA_VERSION
    restored = CampaignResult.from_json(result.to_json())
    assert restored == result


def test_campaign_result_rejects_newer_schema():
    result = CampaignResult(circuit="c", n_injections=1, seed=0)
    payload = result.to_payload()
    payload["version"] = CampaignResult.SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="newer schema"):
        CampaignResult.from_payload(payload)


def test_campaign_result_reads_versionless_legacy_payload():
    payload = {"circuit": "c", "n_injections": 2, "seed": 0, "results": {"ff": [2, 1]}}
    restored = CampaignResult.from_payload(payload)
    assert restored.results["ff"].n_failures == 1
    assert restored.results["ff"].latency_sum == 0


# ----------------------------------------------------- dataset invariants


def test_fdr_labels_are_proportions(tiny_dataset, tiny_campaign):
    _runner, campaign = tiny_campaign
    for name, record in campaign.results.items():
        assert record.fdr * record.n_injections == pytest.approx(record.n_failures)
    assert np.all(tiny_dataset.y * campaign.n_injections % 1 < 1e-9)
