"""Integration: batched injector vs. brute-force fault simulation.

The fault injector restarts from recorded golden state, simulates many
lanes at once and retires lanes early.  This test cross-checks its verdicts
against the obvious reference: one full re-simulation from reset per fault,
with the flip applied at the right cycle and the criterion evaluated on
every cycle to the end of the trace.
"""

import pytest

from repro.faultinjection import PacketInterfaceCriterion
from repro.faultinjection.injector import FaultInjector
from repro.sim import CompiledSimulator


def brute_force_failure(netlist, workload, ff_name, cycle):
    """Reference fault simulation: from reset, flip at `cycle`, full trace."""
    tb = workload.testbench
    sim = CompiledSimulator(netlist, 1)
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    bound = criterion.bind(netlist, sim)

    golden = tb.run_golden()
    lb = tb.loopbacks[0]
    out_idx = {n: i for i, n in enumerate(netlist.outputs)}
    in_idx = {n: i for i, n in enumerate(netlist.inputs)}
    taps = [[0] * lb.delay for _ in lb.sources]
    sim.reset()
    failed = False
    for c in range(tb.n_cycles):
        if c == cycle:
            sim.flip_ff(ff_name, 1)
        vec = tb.schedule[c]
        for i, dst in enumerate(lb.targets):
            k = in_idx[dst]
            vec = (vec & ~(1 << k)) | (taps[i][c % lb.delay] << k)
        for i, name in enumerate(netlist.inputs):
            sim.set_input(name, (vec >> i) & 1)
        sim.eval_comb()
        if bound.evaluate(sim.values, golden.outputs[c], 1):
            failed = True
        ov = sim.output_vector()
        for i, src in enumerate(lb.sources):
            taps[i][c % lb.delay] = (ov >> out_idx[src]) & 1
        sim.tick()
    return failed


@pytest.mark.parametrize("offset", [0, 3, 7, 11])
def test_batched_injector_matches_bruteforce(tiny_mac, tiny_workload, tiny_golden, offset):
    criterion = PacketInterfaceCriterion(tiny_workload.valid_nets, tiny_workload.data_nets)
    injector = FaultInjector(tiny_mac, tiny_workload.testbench, tiny_golden, criterion)
    first, _last = tiny_workload.active_window
    cycle = first + 2 + offset
    # A representative mix of flip-flop kinds in one batch.
    targets = [
        "ff_tx_state[0]",
        "ff_txf_rd_ptr[0]",
        "ff_rx_crc[3]",
        "ff_rxf_mem0[2]",
        "ff_stat_tx_frames[0]",
        "ff_rx_dl0[1]",
    ]
    indices = [injector.ff_index(name) for name in targets]
    outcome = injector.run_batch(cycle, indices)
    for lane, name in enumerate(targets):
        batched = bool((outcome.failed_mask >> lane) & 1)
        reference = brute_force_failure(tiny_mac, tiny_workload, name, cycle)
        assert batched == reference, (name, cycle)
