"""Nonlinear model tests: k-NN, SVR, trees, ensembles, MLP."""

import numpy as np
import pytest

from repro.ml import (
    SVR,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    MLPRegressor,
    RandomForestRegressor,
    r2_score,
)


# ----------------------------------------------------------------- k-NN


def test_knn_exact_match_predicts_training_value():
    X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
    y = np.array([10.0, 20.0, 30.0, 40.0])
    model = KNeighborsRegressor(n_neighbors=3, weights="distance").fit(X, y)
    assert model.predict(np.array([[1.0, 1.0]]))[0] == 20.0


def test_knn_uniform_average():
    X = np.array([[0.0], [1.0], [10.0]])
    y = np.array([0.0, 1.0, 100.0])
    model = KNeighborsRegressor(n_neighbors=2, weights="uniform").fit(X, y)
    assert model.predict(np.array([[0.4]]))[0] == pytest.approx(0.5)


def test_knn_k1_is_nearest_value():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(50, 3))
    y = rng.normal(size=50)
    model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
    assert np.allclose(model.predict(X), y)


def test_knn_metrics_differ():
    X = np.array([[0.0, 0.0], [3.0, 0.0], [2.0, 2.0]])
    y = np.array([1.0, 2.0, 3.0])
    query = np.array([[2.5, 0.5]])
    # manhattan: d=[3.0, 1.0, 2.0] -> nearest is row 1
    man = KNeighborsRegressor(1, metric="manhattan").fit(X, y)
    assert man.predict(query)[0] == 2.0
    # chebyshev: d=[2.5, 0.5, 1.5] -> row 1 as well; euclidean row 1 too;
    # check minkowski p=1 equals manhattan
    mink = KNeighborsRegressor(1, metric="minkowski", p=1.0).fit(X, y)
    assert mink.predict(query)[0] == man.predict(query)[0]


def test_knn_kneighbors_sorted():
    X = np.arange(10.0).reshape(-1, 1)
    y = np.zeros(10)
    model = KNeighborsRegressor(3).fit(X, y)
    idx, dist = model.kneighbors(np.array([[4.2]]))
    assert list(idx[0]) == [4, 5, 3]
    assert np.all(np.diff(dist[0]) >= 0)


def test_knn_validation():
    X = np.zeros((3, 2))
    y = np.zeros(3)
    with pytest.raises(ValueError):
        KNeighborsRegressor(0).fit(X, y)
    with pytest.raises(ValueError):
        KNeighborsRegressor(5).fit(X, y)
    with pytest.raises(ValueError):
        KNeighborsRegressor(metric="cosine").fit(X, y)
    with pytest.raises(ValueError):
        KNeighborsRegressor(weights="gaussian").fit(X, y)


# ------------------------------------------------------------------ SVR


def test_svr_fits_within_epsilon_tube(regression_data):
    X, y = regression_data
    model = SVR(C=10.0, epsilon=0.1, gamma=0.3).fit(X, y)
    residuals = np.abs(model.predict(X) - y)
    # Nearly all training residuals within the tube (+ small solver slack).
    assert float((residuals <= 0.1 + 0.05).mean()) > 0.9


def test_svr_sparsity():
    """Points inside the tube get zero dual coefficients."""
    rng = np.random.default_rng(0)
    X = np.sort(rng.uniform(-3, 3, size=(120, 1)), axis=0)
    y = np.sin(X[:, 0])
    model = SVR(C=5.0, epsilon=0.15, gamma=1.0).fit(X, y)
    assert len(model.support_) < 120
    assert np.all(np.abs(model.dual_coef_) <= model.C + 1e-9)


def test_svr_test_accuracy():
    rng = np.random.default_rng(5)
    X = rng.uniform(-2, 2, size=(250, 2))
    y = np.cos(X[:, 0]) * X[:, 1]
    model = SVR(C=10.0, epsilon=0.02, gamma=0.8).fit(X[:200], y[:200])
    assert r2_score(y[200:], model.predict(X[200:])) > 0.95


def test_svr_linear_kernel_recovers_line():
    X = np.linspace(0, 1, 40).reshape(-1, 1)
    y = 3.0 * X[:, 0] + 1.0
    model = SVR(kernel="linear", C=50.0, epsilon=0.01).fit(X, y)
    assert np.max(np.abs(model.predict(X) - y)) < 0.05


def test_svr_poly_kernel_runs():
    X = np.linspace(-1, 1, 50).reshape(-1, 1)
    y = X[:, 0] ** 2
    model = SVR(kernel="poly", degree=2, C=10.0, epsilon=0.01).fit(X, y)
    assert r2_score(y, model.predict(X)) > 0.9


def test_svr_epsilon_controls_flatness():
    """A huge epsilon makes everything in-tube: constant prediction."""
    X = np.linspace(0, 1, 30).reshape(-1, 1)
    y = np.sin(3 * X[:, 0])
    model = SVR(C=1.0, epsilon=10.0, gamma=1.0).fit(X, y)
    pred = model.predict(X)
    assert np.ptp(pred) < 1e-6


def test_svr_validation():
    X, y = np.zeros((4, 1)), np.zeros(4)
    with pytest.raises(ValueError):
        SVR(C=0.0).fit(X, y)
    with pytest.raises(ValueError):
        SVR(epsilon=-1.0).fit(X, y)
    with pytest.raises(ValueError):
        SVR(kernel="mystery").fit(np.random.rand(4, 1), np.zeros(4))


# ----------------------------------------------------------------- tree


def test_tree_fits_piecewise_constant_exactly():
    X = np.array([[0.0], [1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
    y = np.array([1.0, 1.0, 1.0, 1.0, 5.0, 5.0, 5.0])
    tree = DecisionTreeRegressor().fit(X, y)
    assert np.allclose(tree.predict(X), y)
    assert tree.depth() == 1
    assert tree.n_leaves() == 2


def test_tree_max_depth_limits_growth(regression_data):
    X, y = regression_data
    shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
    deep = DecisionTreeRegressor(max_depth=10).fit(X, y)
    assert shallow.depth() <= 2
    assert deep.n_leaves() > shallow.n_leaves()
    # Deeper tree fits training data better.
    assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))


def test_tree_min_samples_leaf():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(60, 2))
    y = rng.normal(size=60)
    tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
    # With >= 10 samples per leaf, at most 6 leaves.
    assert tree.n_leaves() <= 6


def test_tree_predictions_within_target_range(regression_data):
    X, y = regression_data
    tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
    pred = tree.predict(X)
    assert pred.min() >= y.min() - 1e-12
    assert pred.max() <= y.max() + 1e-12


def test_tree_constant_target_single_leaf():
    X = np.random.rand(20, 3)
    y = np.full(20, 0.7)
    tree = DecisionTreeRegressor().fit(X, y)
    assert tree.n_leaves() == 1
    assert np.allclose(tree.predict(X), 0.7)


def test_tree_feature_importances(regression_data):
    X, y = regression_data
    tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
    importances = tree.feature_importances_
    assert importances.shape == (X.shape[1],)
    assert abs(importances.sum() - 1.0) < 1e-9 or importances.sum() == 0.0
    # x3 does not enter the target function; x0/x1 dominate.
    assert importances[0] + importances[1] > importances[3]


def test_tree_validation():
    X, y = np.zeros((4, 1)), np.zeros(4)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_split=1).fit(X, y)
    with pytest.raises(ValueError):
        DecisionTreeRegressor(min_samples_leaf=0).fit(X, y)


# ------------------------------------------------------------- ensembles


def test_random_forest_beats_single_tree_oob(regression_data):
    X, y = regression_data
    forest = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
    assert forest.oob_score_ is not None
    assert forest.oob_score_ > 0.5
    assert forest.feature_importances_.shape == (X.shape[1],)


def test_random_forest_deterministic_with_seed(regression_data):
    X, y = regression_data
    a = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X[:10])
    b = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y).predict(X[:10])
    assert np.allclose(a, b)


def test_gradient_boosting_training_loss_decreases(regression_data):
    X, y = regression_data
    gbr = GradientBoostingRegressor(n_estimators=50, random_state=0).fit(X, y)
    assert gbr.train_score_[-1] < gbr.train_score_[0]
    assert r2_score(y, gbr.predict(X)) > 0.9


def test_gradient_boosting_staged_predict(regression_data):
    X, y = regression_data
    gbr = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
    stages = list(gbr.staged_predict(X[:5]))
    assert len(stages) == 20
    assert np.allclose(stages[-1], gbr.predict(X[:5]))


def test_gradient_boosting_subsample(regression_data):
    X, y = regression_data
    gbr = GradientBoostingRegressor(n_estimators=30, subsample=0.5, random_state=0).fit(X, y)
    assert r2_score(y, gbr.predict(X)) > 0.7
    with pytest.raises(ValueError):
        GradientBoostingRegressor(subsample=0.0).fit(X, y)
    with pytest.raises(ValueError):
        GradientBoostingRegressor(learning_rate=0.0).fit(X, y)


# ------------------------------------------------------------------ MLP


def test_mlp_learns_nonlinear_function(regression_data):
    X, y = regression_data
    mlp = MLPRegressor(hidden_layer_sizes=(32, 16), max_epochs=200, random_state=0)
    mlp.fit(X, y)
    assert r2_score(y, mlp.predict(X)) > 0.8
    assert mlp.n_epochs_ <= 200


def test_mlp_tanh_activation(regression_data):
    X, y = regression_data
    mlp = MLPRegressor(hidden_layer_sizes=(16,), activation="tanh", max_epochs=80, random_state=1)
    mlp.fit(X, y)
    assert np.all(np.isfinite(mlp.predict(X)))


def test_mlp_loss_curve_decreases(regression_data):
    X, y = regression_data
    mlp = MLPRegressor(hidden_layer_sizes=(16,), max_epochs=60, random_state=0, early_stopping=False)
    mlp.fit(X, y)
    assert mlp.loss_curve_[-1] < mlp.loss_curve_[0]


def test_mlp_deterministic_with_seed(regression_data):
    X, y = regression_data
    a = MLPRegressor(hidden_layer_sizes=(8,), max_epochs=20, random_state=3).fit(X, y).predict(X[:5])
    b = MLPRegressor(hidden_layer_sizes=(8,), max_epochs=20, random_state=3).fit(X, y).predict(X[:5])
    assert np.allclose(a, b)


def test_mlp_validation(regression_data):
    X, y = regression_data
    with pytest.raises(ValueError):
        MLPRegressor(activation="sigmoid").fit(X, y)
