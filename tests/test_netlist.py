"""Unit tests for the netlist data model and validation."""

import pytest

from repro.netlist import Netlist, NetlistError


def build_simple():
    nl = Netlist("simple")
    nl.add_input("clk", is_clock=True)
    nl.add_input("a")
    nl.add_input("b")
    nl.add_cell("u1", "AND2", {"A": "a", "B": "b", "Z": "w1"})
    nl.add_cell("ff1", "DFF", {"D": "w1", "CK": "clk", "Q": "q1"})
    nl.add_cell("u2", "INV", {"A": "q1", "Z": "out"})
    nl.add_output("out")
    return nl


def test_basic_construction():
    nl = build_simple()
    nl.validate()
    assert len(nl) == 3
    assert nl.flip_flop_names() == ["ff1"]
    assert nl.nets["w1"].driver.cell == "u1"
    assert nl.nets["a"].is_input
    assert nl.nets["out"].is_output
    assert "ff1" in nl


def test_stats():
    stats = build_simple().stats()
    assert stats.n_cells == 3
    assert stats.n_sequential == 1
    assert stats.n_combinational == 2
    assert stats.n_inputs == 3
    assert stats.n_outputs == 1
    assert stats.max_logic_depth == 1
    assert stats.total_area > 0


def test_double_driver_rejected():
    nl = build_simple()
    with pytest.raises(NetlistError, match="two drivers"):
        nl.add_cell("u3", "INV", {"A": "a", "Z": "w1"})


def test_driving_primary_input_rejected():
    nl = build_simple()
    with pytest.raises(NetlistError, match="primary input"):
        nl.add_cell("u3", "INV", {"A": "q1", "Z": "a"})


def test_duplicate_instance_rejected():
    nl = build_simple()
    with pytest.raises(NetlistError, match="duplicate"):
        nl.add_cell("u1", "INV", {"A": "a", "Z": "w9"})


def test_unknown_pin_rejected():
    nl = build_simple()
    with pytest.raises(NetlistError, match="unknown pin"):
        nl.add_cell("u3", "INV", {"IN": "a", "Z": "w9"})


def test_unconnected_pin_fails_validation():
    nl = Netlist("bad")
    nl.add_input("clk", is_clock=True)
    nl.add_cell("ff", "DFF", {"CK": "clk", "Q": "q", "D": "q"})
    nl.add_cell("u", "AND2", {"A": "q", "Z": "o"})  # B missing
    nl.add_output("o")
    with pytest.raises(NetlistError, match="unconnected"):
        nl.validate()


def test_combinational_cycle_detected():
    nl = Netlist("loop")
    nl.add_input("a")
    nl.add_cell("u1", "AND2", {"A": "a", "B": "w2", "Z": "w1"})
    nl.add_cell("u2", "INV", {"A": "w1", "Z": "w2"})
    nl.add_output("w2")
    with pytest.raises(NetlistError, match="cycle"):
        nl.topological_comb_order()


def test_topological_order_respects_dependencies():
    nl = build_simple()
    order = nl.topological_comb_order()
    assert set(order) == {"u1", "u2"}


def test_logic_depth():
    nl = Netlist("depth")
    nl.add_input("a")
    nl.add_cell("u1", "INV", {"A": "a", "Z": "w1"})
    nl.add_cell("u2", "INV", {"A": "w1", "Z": "w2"})
    nl.add_cell("u3", "INV", {"A": "w2", "Z": "w3"})
    nl.add_output("w3")
    depth = nl.logic_depth()
    assert depth["w3"] == 3
    assert depth["w1"] == 1


def test_undriven_output_rejected():
    nl = Netlist("undrv")
    nl.add_input("clk", is_clock=True)
    nl.add_output("floating")
    with pytest.raises(NetlistError, match="no driver|undriven"):
        nl.validate()


def test_drive_strength_from_full_name():
    nl = Netlist("drv")
    nl.add_input("a")
    cell = nl.add_cell("u1", "INV_X4", {"A": "a", "Z": "w"})
    assert cell.drive == 4
    assert cell.type_name == "INV_X4"


def test_sink_without_driver_fails_validation():
    nl = Netlist("dangling")
    nl.add_input("clk", is_clock=True)
    nl.add_cell("ff", "DFF", {"D": "nowhere", "CK": "clk", "Q": "q"})
    with pytest.raises(NetlistError, match="no driver"):
        nl.validate()
