"""Sampling-policy tests: allocation, gating, store namespacing, and the
fixed-seed equivalence contract.

The load-bearing guarantees:

* ``policy="sequential"`` with ``target_margin=0.0`` never retires anything
  and reproduces the flat campaign's per-flip-flop counters **bit for
  bit** — on every circuit in the library (draws are prefix-stable per
  flip-flop, so rounds and sharding cannot change which cycles are
  injected);
* a real target margin stops early: fewer injections than flat at the same
  nominal budget, every retired flip-flop's realized Wilson half-width at
  or under the target;
* allocation never schedules a draw-stream index twice, even when in-shard
  gating skips scheduled draws (``consumed`` bookkeeping);
* policy results live in the store under a policy-signature namespace and
  never collide with the flat snapshots of the same campaign family.
"""

import math

import pytest

from repro.campaigns import (
    CampaignEngine,
    CampaignSpec,
    CampaignStore,
    FlatPolicy,
    SequentialWilsonPolicy,
    ShardGate,
    make_policy,
    policy_signature,
    run_campaign,
)
from repro.campaigns.policy import MAX_BUDGET_FACTOR, interval_margin
from repro.data import circuit_preset
from repro.circuits.library import LIBRARY_CIRCUITS

TINY = dict(
    circuit="xgmac_tiny",
    n_frames=4,
    min_len=2,
    max_len=3,
    gap=12,
    workload_seed=7,
)


def tiny_spec(**overrides) -> CampaignSpec:
    params = dict(TINY, n_injections=8, seed=5, schedule="stream")
    params.update(overrides)
    return CampaignSpec(**params)


def result_key(result):
    return {
        name: (r.n_injections, r.n_failures, r.latency_sum)
        for name, r in result.results.items()
    }


# ------------------------------------------------------------- allocation


def test_flat_policy_allocates_missing_draws_from_consumed():
    policy = FlatPolicy(nominal=10)
    tallies = {"a": [0, 0, 0], "b": [4, 1, 6], "c": [10, 3, 10]}
    allocation = policy.allocate(tallies, window_len=100)
    # 'b' executed 4 but consumed 6 stream indices: the next draws start at
    # 6 so no index is ever scheduled twice.
    assert allocation == {"a": (0, 10), "b": (6, 12)}
    assert policy.retired(10, 3)
    assert not policy.retired(9, 0)


def test_sequential_policy_retires_on_margin():
    policy = SequentialWilsonPolicy(nominal=100, target_margin=0.075)
    # Below the minimum sample nothing retires, however tight the tally.
    assert not policy.retired(5, 0)
    # A clean 170/0 run is far inside the margin.
    assert policy.retired(170, 0)
    # A 50/50 split at n=170 sits just under 0.075.
    assert policy.retired(170, 85) == (interval_margin(170, 85) <= 0.075)
    # Margin 0 disables stopping entirely (equivalence mode).
    never = SequentialWilsonPolicy(nominal=100, target_margin=0.0)
    assert not never.retired(10_000, 0)


def test_sequential_allocation_respects_budget_and_caps():
    policy = SequentialWilsonPolicy(
        nominal=20, target_margin=0.075, min_injections=4, round_size=8
    )
    window = 1000
    # Round 1: everyone below nominal gets a round_size chunk.
    tallies = {name: [0, 0, 0] for name in ("a", "b", "c")}
    allocation = policy.allocate(tallies, window)
    assert allocation == {"a": (0, 8), "b": (0, 8), "c": (0, 8)}

    # A retired flip-flop (tight interval) gets nothing more; an open one
    # keeps drawing toward the nominal budget.
    tallies = {"a": [2000, 0, 2000], "b": [8, 4, 8]}
    allocation = policy.allocate(tallies, window)
    assert "a" not in allocation
    assert allocation["b"] == (8, 16)


def test_sequential_reallocates_freed_budget_to_widest_interval():
    policy = SequentialWilsonPolicy(
        nominal=10, target_margin=0.25, min_injections=2, round_size=4
    )
    window = 1000
    # 'a' retired at 4 draws (margin(4,0) ~ 0.245 <= 0.25), freeing 6 of
    # its nominal 10.  'b' (margin ~ 0.263) and 'c' (~ 0.260) are both at
    # nominal and still wide: the pool goes widest-first, so 'b' gets a
    # full round chunk and 'c' only what remains of the freed budget.
    tallies = {"a": [4, 0, 4], "b": [10, 5, 10], "c": [10, 4, 10]}
    assert policy.retired(4, 0)
    assert interval_margin(10, 5) > interval_margin(10, 4) > 0.25
    allocation = policy.allocate(tallies, window)
    assert "a" not in allocation
    assert allocation["b"] == (10, 14)  # round_size chunk
    assert allocation["c"] == (10, 12)  # pool = 30 - 24 - 4 = 2 left
    # The freed budget is conserved: grants never exceed the family pool.
    granted = sum(stop - start for start, stop in allocation.values())
    assert granted == 10 * len(tallies) - sum(rec[0] for rec in tallies.values())


def test_sequential_allocation_never_exceeds_cap_or_window():
    policy = SequentialWilsonPolicy(
        nominal=100, target_margin=0.075, min_injections=2, round_size=200
    )
    # Draws are sampled without replacement: a 25-cycle window caps every
    # stream at 25 indices no matter how generous the round size.
    tallies = {"a": [40, 0, 40], "b": [24, 12, 24], "c": [0, 0, 0]}
    assert policy.retired(40, 0)  # margin(40, 0) ~ 0.044
    allocation = policy.allocate(tallies, window_len=25)
    assert "a" not in allocation  # retired
    assert allocation["b"] == (24, 25)  # one stream index left
    assert allocation["c"] == (0, 25)  # whole window, not round_size
    # And in a huge window the MAX_BUDGET_FACTOR ceiling bites instead.
    tallies = {"a": [400, 200, 400], "b": [0, 0, 0]}
    allocation = policy.allocate(tallies, window_len=10_000)
    assert "a" not in allocation  # at MAX_BUDGET_FACTOR * nominal already
    assert allocation["b"] == (0, 100)
    assert MAX_BUDGET_FACTOR == 4


def test_allocation_ranges_never_overlap_consumed_indices():
    """Whatever the tallies, granted ranges start at `consumed`."""
    policy = SequentialWilsonPolicy(
        nominal=16, target_margin=0.2, min_injections=4, round_size=8
    )
    tallies = {
        "a": [4, 1, 9],  # 5 draws were skipped in-shard
        "b": [8, 8, 8],
        "c": [0, 0, 0],
    }
    for name, (start, _stop) in policy.allocate(tallies, 500).items():
        assert start == tallies[name][2]


def test_shard_gate_skips_retired_and_counts():
    policy = SequentialWilsonPolicy(nominal=10, target_margin=0.3, min_injections=2)
    gate = ShardGate(policy, {"a": [0, 0, 0], "b": [5000, 0, 5000]})
    # 'b' is already pinned at 0: skipped immediately.
    assert not gate.admit("b")
    assert gate.admit("a")
    # Verdicts tighten the shard-local view until 'a' retires too.
    for _ in range(40):
        gate.record("a", failed=False)
    assert not gate.admit("a")
    assert gate.n_skipped() == 2
    assert gate.skipped == {"a": 1, "b": 1}


# ------------------------------------------------------- spec & signatures


def test_spec_validates_policy_fields():
    with pytest.raises(ValueError, match="unknown policy"):
        tiny_spec(policy="bogus")
    with pytest.raises(ValueError, match="target_margin"):
        tiny_spec(target_margin=1.5)
    with pytest.raises(ValueError, match="requires the prefix-stable"):
        tiny_spec(schedule="legacy", policy="sequential")


def test_policy_excluded_from_cache_identity():
    flat = tiny_spec()
    seq = tiny_spec(policy="sequential", target_margin=0.1)
    assert flat.cache_key() == seq.cache_key()
    assert flat.family_key() == seq.family_key()
    # ... but the policy signature separates their stored results.
    assert policy_signature(flat) != policy_signature(seq)
    assert policy_signature(seq) != policy_signature(
        tiny_spec(policy="sequential", target_margin=0.2)
    )
    assert isinstance(make_policy(flat), FlatPolicy)
    assert isinstance(make_policy(seq), SequentialWilsonPolicy)


# ------------------------------------------------------------ store layer


def test_policy_snapshots_are_namespaced(tmp_path):
    spec = tiny_spec(policy="sequential", target_margin=0.2)
    store = CampaignStore(tmp_path)
    signature = policy_signature(spec)
    result = run_campaign(tiny_spec())  # any result payload will do
    store.save_policy_snapshot(spec, signature, result, {"rounds": 3})

    loaded = store.load_policy_snapshot(spec, signature)
    assert loaded is not None
    restored, meta = loaded
    assert result_key(restored) == result_key(result)
    assert meta == {"rounds": 3}
    # Numeric snapshot inventory is untouched by policy snapshots.
    assert store.stored_budgets(spec) == []
    assert store.load_exact(spec) is None
    assert store.best_snapshot(spec) is None
    # A different signature is a different namespace.
    other = policy_signature(tiny_spec(policy="sequential", target_margin=0.05))
    assert store.load_policy_snapshot(spec, other) is None


def test_policy_partial_round_trip_and_validation(tmp_path):
    spec = tiny_spec(policy="sequential")
    store = CampaignStore(tmp_path)
    signature = policy_signature(spec)
    tallies = {"a": [4, 1, 6], "b": [0, 0, 0]}
    accum = {"ff": {"a": [4, 1, 12]}, "n_forward_runs": 2}
    store.save_policy_partial(spec, signature, tallies, accum)
    loaded = store.load_policy_partial(spec, signature)
    assert loaded is not None
    assert loaded[0] == tallies
    assert loaded[1]["n_forward_runs"] == 2
    # Wrong signature: no checkpoint.
    assert store.load_policy_partial(spec, "deadbeef") is None
    # Damaged tallies (violating k <= n <= consumed) are rejected.
    store.save_policy_partial(spec, signature, {"a": [4, 9, 6]}, accum)
    assert store.load_policy_partial(spec, signature) is None
    store.save_policy_partial(spec, signature, {"a": [7, 1, 6]}, accum)
    assert store.load_policy_partial(spec, signature) is None
    # A finished snapshot clears its own checkpoint.
    store.save_policy_partial(spec, signature, tallies, accum)
    store.save_policy_snapshot(spec, signature, run_campaign(tiny_spec()), {})
    assert store.load_policy_partial(spec, signature) is None


# ------------------------------------------------- fixed-seed equivalence


@pytest.mark.parametrize("circuit", LIBRARY_CIRCUITS)
def test_equivalence_mode_matches_flat_on_library(circuit):
    """target_margin=0 sequential == flat, bit for bit, on every circuit."""
    dataset_spec = circuit_preset(circuit, "tiny")
    flat_spec = CampaignSpec.from_dataset_spec(
        dataset_spec, schedule="stream", n_injections=8
    )
    seq_spec = CampaignSpec.from_dataset_spec(
        dataset_spec,
        schedule="stream",
        n_injections=8,
        policy="sequential",
        target_margin=0.0,
    )
    assert result_key(run_campaign(flat_spec)) == result_key(run_campaign(seq_spec))


def test_equivalence_mode_matches_flat_on_mac_parallel():
    """The equivalence holds through the multiprocessing executor too."""
    flat = run_campaign(tiny_spec(n_injections=10))
    seq = run_campaign(
        tiny_spec(n_injections=10, policy="sequential", target_margin=0.0), jobs=2
    )
    assert result_key(flat) == result_key(seq)


# ----------------------------------------------------------- engine driver


def test_sequential_stops_early_and_meets_margin():
    spec = tiny_spec(n_injections=60, target_margin=0.12, policy="sequential")
    engine = CampaignEngine(spec)
    result = engine.run()
    meta = engine.last_policy_meta
    policy = make_policy(spec)

    flat_total = 60 * len(result.results)
    total = sum(r.n_injections for r in result.results.values())
    assert total < flat_total
    assert meta["injections_saved"] == flat_total - total
    assert meta["rounds"] == engine.last_report.rounds > 1

    for record in result.results.values():
        # Everyone gets the minimum sample ...
        assert record.n_injections >= min(24, 60)
        # ... and whoever stopped short of the nominal budget did so
        # because the target margin was met.
        if record.n_injections < 60:
            assert (
                interval_margin(record.n_injections, record.n_failures) <= 0.12
            )


def test_sequential_is_deterministic():
    spec = tiny_spec(n_injections=40, target_margin=0.15, policy="sequential")
    assert result_key(CampaignEngine(spec).run()) == result_key(
        CampaignEngine(spec).run()
    )


def test_sequential_engine_store_round_trip(tmp_path):
    spec = tiny_spec(n_injections=40, target_margin=0.15, policy="sequential")
    first = CampaignEngine(spec, cache_dir=tmp_path)
    result = first.run()
    assert first.last_report.executed_forward_runs > 0

    second = CampaignEngine(spec, cache_dir=tmp_path)
    cached = second.run()
    assert second.last_report.cache_hit
    assert second.last_report.executed_forward_runs == 0
    assert result_key(cached) == result_key(result)
    assert second.last_policy_meta["rounds"] == first.last_policy_meta["rounds"]

    # The realized per-ff injection counts are stored: reload and check.
    store = CampaignStore(tmp_path / "campaigns")
    loaded, meta = store.load_policy_snapshot(spec, policy_signature(spec))
    assert result_key(loaded) == result_key(result)
    assert meta["total_injections"] == sum(
        r.n_injections for r in result.results.values()
    )

    # A flat run of the same family is unaffected by the policy snapshot.
    flat = CampaignEngine(tiny_spec(n_injections=40), cache_dir=tmp_path)
    flat_result = flat.run()
    assert not flat.last_report.cache_hit
    assert all(r.n_injections == 40 for r in flat_result.results.values())


def test_sequential_seeds_from_flat_snapshot(tmp_path):
    small = tiny_spec(n_injections=10)
    CampaignEngine(small, cache_dir=tmp_path).run()

    spec = tiny_spec(n_injections=40, target_margin=0.15, policy="sequential")
    engine = CampaignEngine(spec, cache_dir=tmp_path)
    result = engine.run()
    assert engine.last_report.base_injections == 10
    assert all(r.n_injections >= 10 for r in result.results.values())
    # Seeding only changes where the draw streams start, not the outcome
    # of a fresh run with identical rounds ... it may change round
    # boundaries, so compare against the invariants instead: totals stay
    # within the family budget.
    assert sum(r.n_injections for r in result.results.values()) <= 40 * len(
        result.results
    ) + 4 * 40  # reallocation headroom is bounded


def test_sequential_interrupt_resumes_from_policy_checkpoint(tmp_path):
    spec = tiny_spec(n_injections=40, target_margin=0.15, policy="sequential")

    class Interrupted(Exception):
        pass

    # The policy checkpoint is written at round boundaries only (a
    # mid-round cursor would not be a draw-stream prefix — see
    # docs/robustness.md), so interrupt on the first shard of round 2:
    # round 1's checkpoint must be on disk by then.
    seen_round_end = False

    def bomb(done, total):
        nonlocal seen_round_end
        if seen_round_end:
            raise Interrupted
        if done == total:
            seen_round_end = True

    engine = CampaignEngine(
        spec, cache_dir=tmp_path, progress=bomb, progress_interval=0.0
    )
    with pytest.raises(Interrupted):
        engine.run()
    store = CampaignStore(tmp_path / "campaigns")
    checkpoint = store.load_policy_partial(spec, policy_signature(spec))
    assert checkpoint is not None
    tallies, _accum = checkpoint
    assert any(rec[0] > 0 for rec in tallies.values())
    for n, k, consumed in tallies.values():
        assert 0 <= k <= n <= consumed

    resumed = CampaignEngine(spec, cache_dir=tmp_path)
    result = resumed.run()
    assert not resumed.last_report.cache_hit
    # The resumed run still satisfies the policy contract.
    for record in result.results.values():
        if record.n_injections < 40:
            assert (
                interval_margin(record.n_injections, record.n_failures) <= 0.15
            )


def test_sequential_records_observability_metrics():
    from repro.obs import Telemetry, use_telemetry

    spec = tiny_spec(n_injections=40, target_margin=0.15, policy="sequential")
    with use_telemetry(Telemetry()) as telemetry:
        CampaignEngine(spec).run()
        snapshot = telemetry.registry.snapshot().to_payload()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    histograms = snapshot["hists"]
    assert counters["policy.rounds"] >= 1
    assert counters["policy.injections_saved"] > 0
    assert 0.0 < gauges["policy.realized_margin"]["max"] < 1.0
    assert histograms["policy.stopping_time"]["count"] == 277  # one per ff
