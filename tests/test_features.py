"""Feature-extraction tests: graph analysis, all three groups, dataset."""

import numpy as np
import pytest

from repro.features import (
    ALL_FEATURES,
    Dataset,
    FEATURE_GROUPS,
    CircuitGraph,
    FeatureExtractor,
    build_dataset,
    bus_membership,
    extract_dynamic,
    extract_structural,
    extract_synthesis,
)
from repro.synth import Module, Sig, synthesize, wordlib


def test_bus_membership_from_names():
    names = ["ff_a[0]", "ff_a[1]", "ff_a[2]", "ff_single", "ff_lone[0]"]
    info = bus_membership(names)
    assert info["ff_a[1]"] == (1, 1, 3)
    assert info["ff_single"] == (0, -1, 0)
    # A one-bit "bus" is treated as scalar.
    assert info["ff_lone[0]"] == (0, -1, 0)


@pytest.fixture(scope="module")
def shift_graph():
    """3-stage shift register: exact hand-checkable connectivity."""
    m = Module("shift3")
    din = m.input("din")
    s = m.reg_bus("s", 3)
    m.next(s[0], din)
    m.next(s[1], s[0])
    m.next(s[2], s[1])
    m.output("dout", s[2])
    nl = synthesize(m)
    return nl, CircuitGraph(nl)


def test_cone_tracing_shift_register(shift_graph):
    nl, graph = shift_graph
    cone0 = graph.input_cones["ff_s[0]"]
    assert cone0.primary_inputs == {"din", "rst_n"}
    assert cone0.ff_sources == set()
    cone1 = graph.input_cones["ff_s[1]"]
    assert cone1.ff_sources == {"ff_s[0]"}
    out2 = graph.output_cones["ff_s[2]"]
    # The output buffer is combinational, so the cone reaches the PO net.
    assert out2.primary_outputs == {"dout"}
    assert out2.comb_cells == {"obuf_dout"}


def test_transitive_counts_shift_register(shift_graph):
    _nl, graph = shift_graph
    total_from, total_to = graph.transitive_counts()
    assert total_from["ff_s[0]"] == 0
    assert total_from["ff_s[2]"] == 2
    assert total_to["ff_s[0]"] == 2
    assert total_to["ff_s[2]"] == 0


def test_stage_distances_shift_register(shift_graph):
    _nl, graph = shift_graph
    pi = graph.pi_stage_distances()
    po = graph.po_stage_distances()
    # din reaches s0 in 1 stage, s2 in 3; rst_n reaches each directly.
    assert 1 in pi["ff_s[0]"]
    assert max(pi["ff_s[2]"]) == 3
    assert min(po["ff_s[2]"]) == 1
    assert min(po["ff_s[0]"]) == 3


def test_no_feedback_in_shift_register(shift_graph):
    nl, _graph = shift_graph
    feats = extract_structural(nl)
    for name in ("ff_s[0]", "ff_s[1]", "ff_s[2]"):
        assert feats[name]["has_feedback_loop"] == 0.0
        assert feats[name]["feedback_loop_depth"] == -1.0


def test_counter_has_depth1_feedback(counter_netlist):
    feats = extract_structural(counter_netlist)
    for name in counter_netlist.flip_flop_names():
        assert feats[name]["has_feedback_loop"] == 1.0
        assert feats[name]["feedback_loop_depth"] == 1.0


def test_multi_stage_feedback_depth():
    """Two registers in a ring: feedback depth 2 for each."""
    m = Module("ring")
    a = m.reg("a")
    b = m.reg("b")
    m.next(a, ~b)
    m.next(b, Sig("a"))
    m.output("o", Sig("b"))
    nl = synthesize(m)
    feats = extract_structural(nl)
    assert feats["ff_a"]["feedback_loop_depth"] == 2.0
    assert feats["ff_b"]["feedback_loop_depth"] == 2.0


def test_constant_driver_feature():
    """A register whose D is hard-tied to a constant sees the TIE cell.

    (Constants inside gated expressions are folded away by the expression
    optimizer, as a synthesis tool would; only hard ties survive.)
    """
    from repro.synth.expr import Const

    m = Module("constload")
    r = m.reg_bus("r", 2)
    m.next(r[0], Const(0))
    m.next(r[1], Sig("r[0]"))
    m.output_bus("o", [Sig("r[0]"), Sig("r[1]")])
    nl = synthesize(m)
    feats = extract_structural(nl)
    assert feats["ff_r[0]"]["conn_to_const_drivers"] == 1.0
    assert feats["ff_r[1]"]["conn_to_const_drivers"] == 0.0


def test_structural_features_complete(tiny_mac):
    feats = extract_structural(tiny_mac)
    assert set(feats) == set(tiny_mac.flip_flop_names())
    from repro.features.structural import STRUCTURAL_FEATURES

    for row in feats.values():
        assert set(row) == set(STRUCTURAL_FEATURES)


def test_synthesis_features(tiny_mac):
    feats = extract_synthesis(tiny_mac)
    for name, row in feats.items():
        assert row["drive_strength"] in (1.0, 2.0, 4.0)
        assert row["comb_fan_in"] >= 0
        assert row["comb_path_depth"] >= 0


def test_dynamic_features(tiny_golden):
    feats = extract_dynamic(tiny_golden)
    for row in feats.values():
        assert abs(row["at_zero"] + row["at_one"] - 1.0) < 1e-12
        assert row["state_changes"] >= 0


def test_extractor_merges_all_groups(tiny_mac, tiny_golden):
    extractor = FeatureExtractor(tiny_mac)
    merged = extractor.extract(tiny_golden)
    row = next(iter(merged.values()))
    assert set(row) == set(ALL_FEATURES)
    matrix = extractor.matrix(tiny_golden)
    assert matrix.shape == (len(tiny_mac.flip_flops()), len(ALL_FEATURES))
    assert np.all(np.isfinite(matrix))


def test_dataset_build_and_selection(tiny_dataset):
    ds = tiny_dataset
    assert ds.n_features == len(ALL_FEATURES)
    assert set(ds.groups) == set(FEATURE_GROUPS)
    assert np.all((ds.y >= 0) & (ds.y <= 1))
    structural_only = ds.select_groups(["structural"])
    assert structural_only.n_features == len(FEATURE_GROUPS["structural"])
    two = ds.select_features(["at_zero", "at_one"])
    assert two.feature_names == ["at_zero", "at_one"]
    sub = ds.subset([0, 1, 2])
    assert sub.n_samples == 3
    assert sub.ff_names == ds.ff_names[:3]


def test_dataset_json_round_trip(tiny_dataset):
    restored = Dataset.from_json(tiny_dataset.to_json())
    assert restored.ff_names == tiny_dataset.ff_names
    assert np.allclose(restored.X, tiny_dataset.X)
    assert np.allclose(restored.y, tiny_dataset.y)
    assert restored.groups == tiny_dataset.groups


def test_dataset_csv_round_trip(tiny_dataset):
    restored = Dataset.from_csv(tiny_dataset.to_csv())
    assert restored.ff_names == tiny_dataset.ff_names
    assert np.allclose(restored.X, tiny_dataset.X)
    assert np.allclose(restored.y, tiny_dataset.y)


def test_dataset_shape_validation():
    with pytest.raises(ValueError):
        Dataset(ff_names=["a"], feature_names=["f1", "f2"], X=np.zeros((1, 1)), y=np.zeros(1))
    with pytest.raises(ValueError):
        Dataset(ff_names=["a"], feature_names=["f"], X=np.zeros((1, 1)), y=np.zeros(2))


def test_column_accessor(tiny_dataset):
    col = tiny_dataset.column("drive_strength")
    assert col.shape == (tiny_dataset.n_samples,)
    assert set(np.unique(col)).issubset({1.0, 2.0, 4.0})


def test_fifo_memory_bits_form_long_buses(tiny_dataset):
    mem_rows = [i for i, n in enumerate(tiny_dataset.ff_names) if "txf_mem" in n]
    assert mem_rows
    bus_len_col = tiny_dataset.feature_names.index("bus_length")
    assert all(tiny_dataset.X[i, bus_len_col] == 10.0 for i in mem_rows)
