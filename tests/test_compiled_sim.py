"""Compiled bit-parallel simulator tests."""

import pytest

from repro.sim import CompiledSimulator, lane_mask
from repro.synth import Module, Sig, synthesize, wordlib


def test_lanes_are_independent(counter_netlist):
    """Different per-lane inputs evolve independently."""
    sim = CompiledSimulator(counter_netlist, n_lanes=2)
    sim.reset()
    sim.set_input("rst_n", 1)
    # lane 0: enabled; lane 1: disabled
    sim.set_input_lanes("en", 0b01)
    for _ in range(5):
        sim.step()
    sim.eval_comb()
    lane0 = sum(sim.get_bit(f"count[{i}]", 0) << i for i in range(4))
    lane1 = sum(sim.get_bit(f"count[{i}]", 1) << i for i in range(4))
    assert lane0 == 5
    assert lane1 == 0


def test_ff_state_pack_round_trip(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(5):
        sim.step()
    packed = sim.ff_state_packed()
    sim2 = CompiledSimulator(counter_netlist)
    sim2.reset()
    sim2.load_ff_state_packed(packed)
    sim2.set_input("rst_n", 1)
    sim2.set_input("en", 1)
    sim2.eval_comb()
    assert sim2.get_word("count", 4) == 5


def test_flip_ff_injects_on_selected_lane(counter_netlist):
    sim = CompiledSimulator(counter_netlist, n_lanes=4)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 0)
    ff_name = counter_netlist.flip_flop_names()[2]  # bit 2 of the counter
    sim.flip_ff(ff_name, lanes=0b0100)
    sim.eval_comb()
    for lane in range(4):
        expected = 4 if lane == 2 else 0
        value = sum(sim.get_bit(f"count[{i}]", lane) << i for i in range(4))
        assert value == expected


def test_ff_divergence_mask(counter_netlist):
    sim = CompiledSimulator(counter_netlist, n_lanes=3)
    sim.reset()
    golden = sim.ff_state_packed()
    sim.flip_ff(0, lanes=0b101)
    assert sim.ff_divergence(golden) == 0b101


def test_resize_lanes(counter_netlist):
    sim = CompiledSimulator(counter_netlist, n_lanes=1)
    sim.resize_lanes(8)
    assert sim.mask == lane_mask(8)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    sim.step()
    sim.eval_comb()
    for lane in range(8):
        assert sim.get_bit("count[0]", lane) == 1


def test_word_helpers(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_word("count", 0, 0)  # no-op width
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    sim.step()
    sim.eval_comb()
    assert sim.get_word("count", 4) == 1


def test_output_vector_packs_all_outputs(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("en", 1)
    for _ in range(3):
        sim.step()
    sim.eval_comb()
    vector = sim.output_vector()
    for j, name in enumerate(counter_netlist.outputs):
        assert (vector >> j) & 1 == sim.get_bit(name)


def test_clock_nets_forced_low(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset()
    sim.values[sim.net_index["clk"]] = sim.mask
    sim.eval_comb()
    assert sim.get("clk") == 0


def test_tie_cells_evaluate():
    m = Module("tie")
    r = m.reg("r")
    m.next(r, Sig("r"))
    from repro.synth.expr import Const

    m.output("one", Const(1))
    m.output("zero", Const(0))
    nl = synthesize(m)
    sim = CompiledSimulator(nl, n_lanes=5)
    sim.reset()
    sim.eval_comb()
    assert sim.get("one") == sim.mask
    assert sim.get("zero") == 0


def test_reset_sets_ff_value(counter_netlist):
    sim = CompiledSimulator(counter_netlist)
    sim.reset(ff_value=1)
    assert sim.ff_state_packed() == 0b1111
