"""Generated large-circuit tests: sizes, registration, determinism, behavior.

The generated composites are synthesized like any handwritten circuit, so
most correctness comes free from the synthesis/simulator test suites; what
is asserted here is the generator's own contract — advertised flip-flop
counts, registry placement (in ``CIRCUIT_BUILDERS``, out of
``LIBRARY_CIRCUITS``), build determinism, and that the mesh and pipeline
actually compute (golden traces respond to stimulus instead of sitting at
reset values).
"""

import pytest

from repro.circuits.generator import (
    GENERATED_CIRCUITS,
    GENERATED_FF_COUNTS,
    GENERATED_PRESETS,
    make_mesh_mac,
    make_pipeline,
    mesh_ff_count,
    pipeline_ff_count,
)
from repro.circuits.library import CIRCUIT_BUILDERS, LIBRARY_CIRCUITS, get_circuit
from repro.circuits.workloads import build_workload_for, default_criterion


def test_presets_registered_in_builders_but_not_library_sweep():
    for name in GENERATED_CIRCUITS:
        assert name in CIRCUIT_BUILDERS
        assert name not in LIBRARY_CIRCUITS, (
            "generated presets must stay out of the transfer-experiment sweep"
        )


def test_ff_count_helpers_match_built_netlists():
    assert mesh_ff_count(2, 4, 8) == 128
    assert pipeline_ff_count(128, 16) == 2048
    netlist = make_mesh_mac(2, 4, 8)
    assert len(netlist.flip_flops()) == mesh_ff_count(2, 4, 8)
    netlist = make_pipeline(5, 8)
    assert len(netlist.flip_flops()) == pipeline_ff_count(5, 8)


def test_advertised_preset_sizes_are_accurate_for_small_presets():
    """Synthesize the sub-3k presets and check the advertised counts; the
    10k/100k presets use the same helpers with different parameters."""
    for name in ("mesh_tiny", "mesh_2k", "pipe_2k"):
        netlist = get_circuit(name)
        assert len(netlist.flip_flops()) == GENERATED_FF_COUNTS[name], name
    assert GENERATED_FF_COUNTS["mesh_10k"] == 10240
    assert GENERATED_FF_COUNTS["mesh_100k"] == 100000
    assert GENERATED_FF_COUNTS["pipe_10k"] == 10240


def test_generation_is_deterministic():
    a = make_mesh_mac(2, 3, 4)
    b = make_mesh_mac(2, 3, 4)
    assert list(a.cells) == list(b.cells)
    assert [ff.name for ff in a.flip_flops()] == [ff.name for ff in b.flip_flops()]
    a = make_pipeline(6, 5)
    b = make_pipeline(6, 5)
    assert list(a.cells) == list(b.cells)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        make_mesh_mac(0, 4)
    with pytest.raises(ValueError):
        make_pipeline(1, 2)  # chi step needs width >= 3


def test_presets_have_registered_workloads():
    """The mesh/pipe prefixes register burst workloads with the strict
    any-output criterion (the reduced parities are the only outputs)."""
    for name in GENERATED_CIRCUITS:
        assert default_criterion(name) == "any_output", name


def test_generated_circuits_enrolled_in_differential_verifier():
    """`repro.experiments verify` replays injector and scheduler verdicts on
    a small mesh against brute force; a tiny sample runs here so the check
    itself stays under test."""
    from repro.verify import run_generated_check

    divergences, checked = run_generated_check(
        n_injection_cycles=1, n_ffs_sample=4
    )
    assert divergences == []
    assert checked == 8, "4 brute-force replays + 4 scheduler comparisons"


def mesh_state_activity(circuit: str) -> int:
    """Distinct flip-flop state words across the golden trace."""
    netlist = get_circuit(circuit)
    workload = build_workload_for(circuit, netlist, n_frames=2, gap=8)
    golden = workload.testbench.run_golden()
    return len(set(golden.ff_state))


def test_mesh_and_pipeline_golden_traces_compute():
    """The burst workload must drive real state evolution — a generator bug
    that wires `en` dead would leave one constant state word."""
    assert mesh_state_activity("mesh_tiny") > 4
    netlist = make_pipeline(6, 4)
    workload = build_workload_for("pipe_2k", netlist, n_frames=2, gap=8)
    golden = workload.testbench.run_golden()
    assert len(set(golden.ff_state)) > 4
    assert len(set(golden.outputs)) > 1, "outputs must respond to stimulus"
