"""Unified experiment runner + cross-circuit transfer tests."""

import json

import numpy as np
import pytest

from repro.data import DATASET_PRESETS, circuit_preset, transfer_presets
from repro.experiments import (
    ExperimentContext,
    ExperimentRunner,
    ExperimentSpec,
    available_experiments,
    run_table1,
)
from repro.experiments.__main__ import main as cli_main
from repro.flow.report import generate_report

TRANSFER_CIRCUITS = ["counter16", "fifo4x4", "crc32", "lfsr16"]


def test_spec_make_is_hashable_and_sorted():
    a = ExperimentSpec.make("table1", scale="tiny", seed=1, foo=2, bar=[1, 2])
    b = ExperimentSpec.make("table1", scale="tiny", seed=1, bar=[1, 2], foo=2)
    assert a == b
    assert hash(a) == hash(b)
    assert a.option("bar") == (1, 2)
    assert a.option("missing", "x") == "x"
    # None-valued options are dropped (CLI passes unset args as None).
    assert ExperimentSpec.make("t", circuits=None).options == ()


def test_registry_covers_all_cli_experiments():
    from repro.experiments.__main__ import EXPERIMENTS

    assert set(EXPERIMENTS) <= set(available_experiments())


def test_runner_rejects_unknown_experiment(tmp_path):
    runner = ExperimentRunner(cache_dir=tmp_path)
    with pytest.raises(KeyError):
        runner.run(ExperimentSpec.make("fig9"))


def test_runner_rejects_context_plus_kwargs(tmp_path):
    with pytest.raises(ValueError):
        ExperimentRunner(context=ExperimentContext(cache_dir=tmp_path), jobs=2)


@pytest.fixture(scope="module")
def tiny_runner(tmp_path_factory):
    """One runner over a module-scoped cache (datasets generate once)."""
    cache = tmp_path_factory.mktemp("runner_cache")
    return ExperimentRunner(cache_dir=cache)


def test_runner_table1_matches_direct_call(tiny_runner):
    """The unified runner reproduces the direct script numbers exactly."""
    outcome = tiny_runner.run(ExperimentSpec.make("table1", scale="tiny", seed=0))
    direct = run_table1(tiny_runner.context.dataset(preset="tiny"), seed=0)
    assert outcome.result.rows == direct.rows
    assert "shape holds" in outcome.text
    assert json.loads(outcome.exports["table1.json"]) == direct.rows


def test_context_memoizes_datasets(tiny_runner):
    ctx = tiny_runner.context
    assert ctx.dataset(preset="tiny") is ctx.dataset(preset="tiny")
    assert ctx.dataset(spec=DATASET_PRESETS["tiny"]) is ctx.dataset(preset="tiny")


def test_context_requires_preset_or_spec(tmp_path):
    with pytest.raises(ValueError):
        ExperimentContext(cache_dir=tmp_path).dataset()


def test_outcome_write_exports(tiny_runner, tmp_path):
    outcome = tiny_runner.run(ExperimentSpec.make("table1", scale="tiny"))
    written = outcome.write_exports(tmp_path)
    assert (tmp_path / "table1.json").exists()
    assert written == [tmp_path / "table1.json"]


# ------------------------------------------------------------- transfer


@pytest.fixture(scope="module")
def transfer_outcome(tiny_runner):
    spec = ExperimentSpec.make(
        "transfer", scale="tiny", seed=0, circuits=TRANSFER_CIRCUITS
    )
    return tiny_runner.run(spec)


def test_transfer_presets_cover_library():
    from repro.circuits import LIBRARY_CIRCUITS

    presets = transfer_presets("tiny")
    assert set(presets) == set(LIBRARY_CIRCUITS)
    assert len(presets) >= 4
    for circuit, spec in presets.items():
        assert spec.circuit == circuit


def test_circuit_preset_reuses_mac_presets():
    assert circuit_preset("xgmac_tiny") == DATASET_PRESETS["tiny"]
    assert circuit_preset("counter16", "tiny").n_injections == 24
    with pytest.raises(KeyError):
        circuit_preset("counter16", "huge")


def test_transfer_matrix_complete(transfer_outcome):
    result = transfer_outcome.result
    assert result.circuits == TRANSFER_CIRCUITS
    for a in TRANSFER_CIRCUITS:
        for b in TRANSFER_CIRCUITS:
            assert np.isfinite(result.r2[a][b])
            assert result.mae[a][b] >= 0.0
    assert np.isfinite(result.mean_transfer_r2())
    best = result.best_source("crc32")
    assert best in TRANSFER_CIRCUITS and best != "crc32"


def test_transfer_text_and_json(transfer_outcome):
    text = transfer_outcome.text
    assert "Cross-circuit transfer" in text
    for circuit in TRANSFER_CIRCUITS:
        assert circuit in text
    payload = json.loads(transfer_outcome.exports["transfer.json"])
    assert payload["circuits"] == TRANSFER_CIRCUITS
    assert set(payload["r2"]) == set(TRANSFER_CIRCUITS)


def test_transfer_deterministic(tiny_runner, transfer_outcome):
    """Same spec, warm cache: identical matrix."""
    again = tiny_runner.run(
        ExperimentSpec.make("transfer", scale="tiny", seed=0, circuits=TRANSFER_CIRCUITS)
    )
    assert again.result.r2 == transfer_outcome.result.r2


def test_report_renders_transfer_section(tiny_runner, transfer_outcome):
    dataset = tiny_runner.context.dataset(preset="tiny")
    report = generate_report(
        dataset,
        cv_folds=4,
        curve_sizes=[0.5],
        include_future_work=False,
        transfer=transfer_outcome.result,
    )
    assert "## Cross-circuit transfer" in report
    assert "Mean off-diagonal" in report


def test_cli_transfer_command(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "results"
    code = cli_main(
        [
            "transfer",
            "--preset",
            "tiny",
            "--circuits",
            "counter16",
            "shiftreg16",
            "lfsr16",
            "gray8",
            "--out",
            str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "Cross-circuit transfer" in captured
    payload = json.loads((out / "transfer.json").read_text())
    assert payload["circuits"] == ["counter16", "shiftreg16", "lfsr16", "gray8"]
