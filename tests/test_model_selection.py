"""Model-selection tests: splits, CV, learning curves, search, pipeline."""

import numpy as np
import pytest

from repro.ml import (
    Choice,
    GridSearchCV,
    KFold,
    KNeighborsRegressor,
    LinearLeastSquares,
    LogUniform,
    ParameterGrid,
    ParameterSampler,
    Pipeline,
    RandomizedSearchCV,
    RidgeRegression,
    StandardScaler,
    StratifiedRegressionKFold,
    Uniform,
    cross_validate,
    learning_curve,
    make_pipeline,
    random_then_grid_search,
    train_test_split,
)


# ----------------------------------------------------------------- splits


def test_train_test_split_shapes(regression_data):
    X, y = regression_data
    X_tr, X_te, y_tr, y_te, idx_tr, idx_te = train_test_split(X, y, 0.5, random_state=0)
    assert len(X_tr) + len(X_te) == len(X)
    assert set(idx_tr) | set(idx_te) == set(range(len(X)))
    assert set(idx_tr).isdisjoint(idx_te)
    assert np.allclose(X[idx_tr], X_tr)


def test_train_test_split_stratified_balances_quantiles(regression_data):
    X, y = regression_data
    *_, idx_tr, idx_te = train_test_split(X, y, 0.5, random_state=0, stratify_bins=4)
    assert abs(np.median(y[idx_tr]) - np.median(y[idx_te])) < 0.4


def test_train_test_split_validation(regression_data):
    X, y = regression_data
    with pytest.raises(ValueError):
        train_test_split(X, y, 0.0)
    with pytest.raises(ValueError):
        train_test_split(X, y, 1.0)


def test_kfold_partitions(regression_data):
    X, y = regression_data
    kf = KFold(n_splits=5, random_state=0)
    seen = []
    for train, test in kf.split(X):
        assert set(train).isdisjoint(test)
        assert len(train) + len(test) == len(X)
        seen.extend(test)
    assert sorted(seen) == list(range(len(X)))
    with pytest.raises(ValueError):
        KFold(1)
    with pytest.raises(ValueError):
        list(KFold(10).split(np.zeros((5, 1))))


def test_stratified_kfold_covers_everything(regression_data):
    X, y = regression_data
    skf = StratifiedRegressionKFold(n_splits=10, random_state=0)
    seen = []
    for train, test in skf.split(X, y):
        seen.extend(test)
        # Each fold's test set sees both low and high targets.
        assert y[test].min() < np.median(y) < y[test].max()
    assert sorted(seen) == list(range(len(X)))


def test_stratified_kfold_with_clustered_labels():
    """FDR-like labels clustered at 0: every fold must get some zeros."""
    y = np.concatenate([np.zeros(60), np.random.default_rng(0).uniform(0.3, 1.0, 40)])
    X = np.arange(100, dtype=float).reshape(-1, 1)
    skf = StratifiedRegressionKFold(n_splits=5, random_state=0)
    for _train, test in skf.split(X, y):
        assert (y[test] == 0).any()
        assert (y[test] > 0).any()


# --------------------------------------------------------------------- CV


def test_cross_validate_summary(regression_data):
    X, y = regression_data
    result = cross_validate(RidgeRegression(0.1), X, y, random_state=0)
    assert len(result.folds) == 10
    summary = result.summary()
    assert set(summary) == {"mae", "max", "rmse", "ev", "r2"}
    assert result.std_test("r2") >= 0
    assert result.mean_train("r2") >= result.mean_test("r2") - 0.2


def test_cross_validate_train_size_subsamples(regression_data):
    X, y = regression_data
    result = cross_validate(
        LinearLeastSquares(), X, y, train_size=0.25, random_state=0
    )
    # Each fold trained on ~25 % of all data.
    assert len(result.folds) == 10


def test_learning_curve_shapes_and_trend(regression_data):
    X, y = regression_data
    curve = learning_curve(
        KNeighborsRegressor(3),
        X,
        y,
        train_sizes=[0.1, 0.4, 0.8],
        cv=StratifiedRegressionKFold(5, random_state=0),
        random_state=0,
    )
    assert len(curve.mean_test()) == 3
    assert len(curve.std_test()) == 3
    # More data should not hurt much: final test score >= first - tolerance.
    assert curve.mean_test()[-1] >= curve.mean_test()[0] - 0.1


# ----------------------------------------------------------------- search


def test_parameter_grid():
    grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
    combos = list(grid)
    assert len(combos) == len(grid) == 6
    assert {"a": 1, "b": "x"} in combos


def test_parameter_sampler_deterministic():
    dists = {"c": LogUniform(0.1, 10), "k": Choice((1, 2, 3)), "u": Uniform(0, 1)}
    a = list(ParameterSampler(dists, 5, random_state=1))
    b = list(ParameterSampler(dists, 5, random_state=1))
    assert a == b
    for params in a:
        assert 0.1 <= params["c"] <= 10
        assert params["k"] in (1, 2, 3)


def test_grid_search_finds_best_alpha(regression_data):
    X, y = regression_data
    search = GridSearchCV(
        RidgeRegression(),
        {"alpha": [1e-6, 1.0, 1e6]},
        cv=StratifiedRegressionKFold(4, random_state=0),
        random_state=0,
    )
    result = search.fit(X, y)
    assert result.best_params["alpha"] in (1e-6, 1.0)
    assert len(result.history) == 3
    assert result.top(2)[0][1] >= result.top(2)[1][1]


def test_randomized_search(regression_data):
    X, y = regression_data
    search = RandomizedSearchCV(
        RidgeRegression(),
        {"alpha": LogUniform(1e-6, 1e3)},
        n_iter=4,
        cv=StratifiedRegressionKFold(3, random_state=0),
        random_state=0,
    )
    result = search.fit(X, y)
    assert len(result.history) == 4


def test_random_then_grid_refines(regression_data):
    X, y = regression_data
    result = random_then_grid_search(
        RidgeRegression(),
        {"alpha": LogUniform(1e-4, 1e2)},
        X,
        y,
        n_random=4,
        cv=StratifiedRegressionKFold(3, random_state=0),
        random_state=0,
    )
    assert "alpha" in result.best_params
    # history contains both stages
    assert len(result.history) > 4


# --------------------------------------------------------------- pipeline


def test_pipeline_fit_predict(regression_data):
    X, y = regression_data
    pipe = Pipeline([("scaler", StandardScaler()), ("knn", KNeighborsRegressor(3))])
    pipe.fit(X, y)
    assert pipe.predict(X).shape == y.shape
    assert pipe.final_estimator_ is not pipe.steps[1][1]  # fitted clone


def test_pipeline_no_leakage(regression_data):
    """Scaler statistics come from training data only."""
    X, y = regression_data
    pipe = Pipeline([("scaler", StandardScaler()), ("lls", LinearLeastSquares())])
    pipe.fit(X[:100], y[:100])
    fitted_scaler = pipe.fitted_steps_[0][1]
    assert np.allclose(fitted_scaler.mean_, X[:100].mean(axis=0))


def test_pipeline_nested_params(regression_data):
    pipe = Pipeline([("scaler", StandardScaler()), ("knn", KNeighborsRegressor(3))])
    pipe.set_params(knn__n_neighbors=7)
    assert pipe.steps[1][1].n_neighbors == 7
    params = pipe.get_params()
    assert params["knn__n_neighbors"] == 7
    with pytest.raises(ValueError):
        pipe.set_params(nope=1)
    with pytest.raises(ValueError):
        pipe.set_params(ghost__x=1)


def test_pipeline_clone_is_independent(regression_data):
    from repro.ml import clone

    pipe = Pipeline([("scaler", StandardScaler()), ("knn", KNeighborsRegressor(3))])
    copy = clone(pipe)
    copy.set_params(knn__n_neighbors=9)
    assert pipe.steps[1][1].n_neighbors == 3  # original untouched


def test_pipeline_validation():
    with pytest.raises(ValueError):
        Pipeline([]).fit(np.zeros((2, 1)), np.zeros(2))
    with pytest.raises(TypeError):
        Pipeline([("a", LinearLeastSquares()), ("b", LinearLeastSquares())]).fit(
            np.zeros((2, 1)), np.zeros(2)
        )


def test_make_pipeline_names(regression_data):
    pipe = make_pipeline(StandardScaler(), KNeighborsRegressor(2))
    names = [name for name, _ in pipe.steps]
    assert names == ["standardscaler", "kneighborsregressor"]
