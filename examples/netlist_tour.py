#!/usr/bin/env python
"""Tour of the EDA substrate: RTL → synthesis → simulation → fault injection.

A guided walk through the layers beneath the ML methodology, on a small
hand-written design: describe a circuit at RTL, synthesize it to gates,
export/import structural Verilog, simulate it with both engines, trace
activity, and inject a fault by hand.

Run:
    python examples/netlist_tour.py
"""

from repro.circuits.crc import crc32_step, crc32_update_word
from repro.faultinjection import AnyOutputCriterion
from repro.faultinjection.injector import FaultInjector
from repro.netlist import parse_verilog, write_verilog
from repro.sim import (
    ActivityTrace,
    ClockGenerator,
    CompiledSimulator,
    EventDrivenSimulator,
    ONE,
    ScheduleBuilder,
    Testbench,
    ZERO,
)
from repro.synth import Module, synthesize, wordlib


def build_design():
    """A small checksum unit: byte stream in, running CRC32 out."""
    m = Module("crc_unit")
    data = m.input_bus("data", 8)
    load = m.input("load")
    crc = m.reg_bus("crc", 32)
    m.next(crc, wordlib.mux_word(load, crc32_update_word(crc, data), crc))
    m.output_bus("crc_out", crc)
    m.output("nonzero", wordlib.reduce_or(crc))
    return m


def main() -> None:
    # RTL -> gates.
    module = build_design()
    netlist = synthesize(module)
    stats = netlist.stats()
    print(f"synthesized {netlist.name!r}: {stats.n_cells} cells "
          f"({stats.n_sequential} FFs), logic depth {stats.max_logic_depth}")

    # Structural Verilog round trip.
    verilog = write_verilog(netlist)
    print(f"\nstructural verilog: {len(verilog.splitlines())} lines "
          f"(first instance line below)")
    print("  " + next(l.strip() for l in verilog.splitlines() if "_X" in l))
    netlist = parse_verilog(verilog)  # keep working with the re-imported one

    # Compiled cycle simulation: CRC over a byte stream vs the golden model.
    stream = [0xDE, 0xAD, 0xBE, 0xEF]
    sim = CompiledSimulator(netlist)
    sim.reset()
    sim.set_input("rst_n", 1)
    sim.set_input("load", 1)
    expected = 0
    for byte in stream:
        sim.set_word("data", 8, byte)
        sim.step()
        expected = crc32_step(expected, byte)
    sim.eval_comb()
    got = sim.get_word("crc_out", 32)
    print(f"\ncompiled sim CRC over {bytes(stream).hex()}: {got:08x} "
          f"(golden model: {expected:08x}, match={got == expected})")

    # Event-driven simulation with X propagation before reset.
    ev = EventDrivenSimulator(netlist)
    print(f"event sim before any clock: crc_out[0] = "
          f"{'X' if ev.get('crc_out[0]') == 2 else ev.get('crc_out[0]')}")
    ev.set_input("rst_n", ZERO)
    ev.set_input("load", ZERO)
    ev.run_clocked(ClockGenerator("clk", period=10), 3,
                   stimulus=lambda c, s: {"rst_n": ONE} if c == 1 else {})
    print(f"event sim after reset:      crc_out word = {ev.get_word('crc_out', 32)}")

    # Testbench + golden trace + activity.
    sb = ScheduleBuilder(netlist.inputs)
    sb.drive(0, "rst_n", 0)
    sb.drive(2, "rst_n", 1)
    sb.drive(2, "load", 1)
    for i, byte in enumerate(stream * 3):
        sb.drive_word(2 + i, "data", 8, byte)
    tb = Testbench(netlist, sb.compile(20))
    golden = tb.run_golden()
    activity = ActivityTrace.from_golden(golden)
    busiest = max(range(len(activity.ff_names)), key=lambda i: activity.state_changes[i])
    print(f"\nactivity: busiest flip-flop {activity.ff_names[busiest]} with "
          f"{activity.state_changes[busiest]} toggles in {golden.n_cycles} cycles")

    # Manual SEU injection.
    criterion = AnyOutputCriterion.all_outputs(netlist)
    injector = FaultInjector(netlist, tb, golden, criterion)
    outcome = injector.run_batch(5, [injector.ff_index("ff_crc[7]")])
    print(f"\nSEU in ff_crc[7] @ cycle 5: "
          f"{'functional failure' if outcome.failed_mask else 'masked'} "
          f"(simulated {outcome.cycles_simulated} forward cycles)")


if __name__ == "__main__":
    main()
