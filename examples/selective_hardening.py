#!/usr/bin/env python
"""Selective hardening: the use-case motivating the paper.

Functional safety flows use per-instance de-rating factors to decide *which*
flip-flops to protect (TMR, parity, hardened cells) — see the paper's
references [3]-[5].  Protecting everything is too expensive; protecting by
guesswork misses critical state.  This example shows the ML-estimated FDR
values driving that decision:

1. run the reference campaign on HALF the flip-flops only (the affordable
   campaign),
2. train the SVR model and predict FDR for the *uninjected* half,
3. select a hardening set to cover a target fraction of the overall
   functional failure rate,
4. validate the selection against the (normally unavailable) full campaign.

Run:
    python examples/selective_hardening.py
"""

import numpy as np

from repro.circuits import build_xgmac_workload, make_xgmac
from repro.faultinjection import PacketInterfaceCriterion, StatisticalFaultCampaign
from repro.features import build_dataset
from repro.flow import FdrEstimator, format_table
from repro.ml import SVR, StandardScaler, make_pipeline

HARDENING_TARGET = 0.80  # cover 80 % of the summed FDR


def main() -> None:
    netlist = make_xgmac("xgmac_mini")
    workload = build_xgmac_workload(netlist, n_frames=8, min_len=4, max_len=7, seed=1)
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    runner = StatisticalFaultCampaign(
        netlist, workload.testbench, criterion, active_window=workload.active_window
    )

    ff_names = netlist.flip_flop_names()
    rng = np.random.default_rng(0)
    injected = sorted(rng.choice(len(ff_names), size=len(ff_names) // 2, replace=False))
    injected_names = [ff_names[i] for i in injected]

    print(f"campaign on {len(injected_names)} of {len(ff_names)} flip-flops ...")
    train_campaign = runner.run(n_injections=40, ff_names=injected_names, seed=0)
    train_dataset = build_dataset(netlist, runner.golden, train_campaign)

    # Features for every flip-flop (labels exist only for the injected half).
    from repro.features import FeatureExtractor, ALL_FEATURES

    extractor = FeatureExtractor(netlist)
    features = extractor.extract(runner.golden)

    model = make_pipeline(StandardScaler(), SVR(C=3.5, gamma=0.055, epsilon=0.025))
    estimator = FdrEstimator(model)
    estimator.fit(train_dataset)

    known = {name: train_campaign.results[name].fdr for name in injected_names}
    unknown_names = [n for n in ff_names if n not in known]
    X_unknown = np.array(
        [[features[n][c] for c in ALL_FEATURES] for n in unknown_names]
    )
    predicted = dict(zip(unknown_names, estimator.predict(X_unknown)))

    combined = {**known, **predicted}
    ranked = sorted(combined.items(), key=lambda item: -item[1])
    total = sum(combined.values())
    covered, hardened = 0.0, []
    for name, fdr in ranked:
        if covered >= HARDENING_TARGET * total:
            break
        hardened.append(name)
        covered += fdr

    print(
        f"\nhardening set: {len(hardened)} / {len(ff_names)} flip-flops "
        f"({len(hardened) / len(ff_names):.0%}) covers "
        f"{covered / total:.0%} of the estimated failure rate"
    )

    # Validation against the full campaign (the expensive ground truth).
    print("\nvalidating against the full flat campaign ...")
    full_campaign = runner.run(n_injections=40, seed=0)
    true_total = sum(r.fdr for r in full_campaign.results.values())
    true_covered = sum(full_campaign.results[n].fdr for n in hardened)
    print(
        format_table(
            ["Quantity", "Value"],
            [
                ["target coverage", HARDENING_TARGET],
                ["estimated coverage", covered / total],
                ["TRUE coverage of selection", true_covered / true_total],
                ["flip-flops hardened", float(len(hardened))],
            ],
            title="Selective-hardening outcome",
        )
    )


if __name__ == "__main__":
    main()
