#!/usr/bin/env python
"""Campaign-budget study: accuracy vs. fault-injection cost.

The paper's headline claim: "training sizes of 20% to 50% provides
appropriate performance, which means that the cost for a classical
statistical fault injection campaign could be reduced by 2 up to 5 times."

This example sweeps the training size, reports test R² for all three paper
models against the cost-reduction factor, and renders the k-NN learning
curve — the data behind Figs. 2b/3b/4b.

Run:
    python examples/campaign_budget.py [tiny|mini|full]
"""

import sys

from repro.data import get_dataset
from repro.experiments.common import paper_models
from repro.flow import ascii_series_plot, format_table
from repro.ml.model_selection import StratifiedRegressionKFold, cross_validate, learning_curve

TRAIN_SIZES = (0.1, 0.2, 0.3, 0.5, 0.7)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "mini"
    print(f"loading dataset (scale={scale}) ...")
    dataset = get_dataset(scale)
    print(f"  {dataset.n_samples} flip-flops x {dataset.n_features} features\n")

    models = paper_models()
    cv = StratifiedRegressionKFold(n_splits=5, random_state=0)

    rows = []
    for size in TRAIN_SIZES:
        row = [f"{size:.0%}", f"{1 / size:.1f}x"]
        for name, model in models.items():
            outcome = cross_validate(
                model, dataset.X, dataset.y, cv=cv, train_size=size, random_state=0
            )
            row.append(outcome.mean_test("r2"))
        rows.append(row)
    print(
        format_table(
            ["Training size", "Cost saving", *models.keys()],
            rows,
            title="Test R2 vs campaign budget (5-fold stratified CV)",
        )
    )

    print("\nk-NN learning curve:")
    curve = learning_curve(
        models["k-NN"],
        dataset.X,
        dataset.y,
        train_sizes=TRAIN_SIZES,
        cv=cv,
        random_state=0,
    )
    print(
        ascii_series_plot(
            list(TRAIN_SIZES),
            {"train R2": curve.mean_train(), "test R2": curve.mean_test()},
            title="R2 vs fraction of flip-flops injected",
            y_range=(0.0, 1.05),
            height=12,
        )
    )

    # The paper's conclusion, checked on this run.
    half = dict(zip(TRAIN_SIZES, (r[2:] for r in rows)))
    r2_at_half = max(half[0.5])
    r2_at_fifth = max(half[0.2])
    print(
        f"\nbest model R2: {r2_at_half:.3f} at 50 % budget (2x saving), "
        f"{r2_at_fifth:.3f} at 20 % budget (5x saving) — "
        f"accuracy loss {max(0.0, r2_at_half - r2_at_fifth):.3f}"
    )


if __name__ == "__main__":
    main()
