#!/usr/bin/env python
"""Quickstart: the paper's methodology end to end in ~30 seconds.

Builds the (mini) 10GE-MAC-style circuit, runs the frame-streaming
testbench, runs a reduced statistical fault-injection campaign to obtain
per-flip-flop Functional De-Rating (FDR) reference values, extracts the
paper's feature set, trains the k-NN model on half the flip-flops and
predicts the FDR of the other half.

Run:
    python examples/quickstart.py
"""

from repro.circuits import build_xgmac_workload, make_xgmac
from repro.faultinjection import PacketInterfaceCriterion, StatisticalFaultCampaign
from repro.features import build_dataset
from repro.flow import FdrEstimator, format_table
from repro.ml import KNeighborsRegressor, StandardScaler, make_pipeline
from repro.ml.model_selection import train_test_split
from repro.ml.metrics import all_metrics


def main() -> None:
    # 1. The device under test: a MAC core with FIFOs, CRC engines and FSMs.
    print("synthesizing the MAC core ...")
    netlist = make_xgmac("xgmac_mini")
    stats = netlist.stats()
    print(f"  {stats.n_cells} cells, {stats.n_sequential} flip-flops\n")

    # 2. The workload: frames through TX -> XGMII loopback -> RX.
    workload = build_xgmac_workload(netlist, n_frames=8, min_len=4, max_len=7, seed=1)
    print(f"testbench: {workload.testbench.n_cycles} cycles, {len(workload.frames)} frames")

    # 3. Reference FDR values from a statistical fault-injection campaign.
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    campaign_runner = StatisticalFaultCampaign(
        netlist, workload.testbench, criterion, active_window=workload.active_window
    )
    print("running the fault-injection campaign (40 SEUs per flip-flop) ...")
    campaign = campaign_runner.run(n_injections=40, seed=0)
    print(
        f"  {campaign.n_forward_runs} bit-parallel forward runs, "
        f"mean FDR = {campaign.mean_fdr():.3f}\n"
    )

    # 4. Features + labels -> dataset.
    dataset = build_dataset(netlist, campaign_runner.golden, campaign)
    print(f"dataset: {dataset.n_samples} flip-flops x {dataset.n_features} features")

    # 5. Train on 50 %, predict the rest (the paper's cost-saving scenario).
    X_tr, X_te, y_tr, y_te, idx_tr, idx_te = train_test_split(
        dataset.X, dataset.y, train_size=0.5, random_state=0, stratify_bins=10
    )
    model = make_pipeline(
        StandardScaler(), KNeighborsRegressor(3, metric="manhattan", weights="distance")
    )
    estimator = FdrEstimator(model)
    estimator.fit(dataset, idx_tr)
    predictions = estimator.predict(X_te)

    metrics = all_metrics(y_te, predictions)
    print()
    print(
        format_table(
            ["Metric", "Value"],
            [[k.upper(), v] for k, v in metrics.items()],
            title="k-NN prediction of unseen flip-flops (paper Table I protocol)",
        )
    )

    savings = estimator.campaign_cost_saving(dataset, train_size=0.5)
    print(
        f"\ncampaign cost reduction: {savings['cost_reduction_factor']:.1f}x "
        f"({savings['injections_saved']:.0f} fault injections avoided)"
    )

    print("\nmost critical flip-flops (predicted):")
    ranked = sorted(
        zip((dataset.ff_names[i] for i in idx_te), predictions),
        key=lambda item: -item[1],
    )
    for name, fdr in ranked[:8]:
        print(f"  {fdr:.3f}  {name}")


if __name__ == "__main__":
    main()
