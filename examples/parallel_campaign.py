"""Parallel campaign engine tour: sharding, caching, incremental top-up.

Runs the tiny MAC campaign three ways and shows the "pay once, reuse
forever" economics of the result store:

1. a fresh sharded run across worker processes,
2. an instant re-run served entirely from the store (zero simulations),
3. an incremental top-up — growing the injection budget reuses every
   already-simulated injection and only pays for the delta.

Usage::

    python examples/parallel_campaign.py [--jobs 4]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.campaigns import CampaignEngine, CampaignSpec
from repro.data import DATASET_PRESETS


def describe(label: str, engine: CampaignEngine, result) -> None:
    report = engine.last_report
    print(f"--- {label}")
    print(
        f"    injections/ff: {result.n_injections}  mean FDR: {result.mean_fdr():.4f}"
    )
    if report.cache_hit:
        print("    store: exact snapshot hit — zero forward simulations")
    else:
        print(
            f"    store: reused {report.base_injections} injections/ff, "
            f"executed {report.executed_forward_runs} forward runs "
            f"on {report.n_shards} shards ({report.jobs} jobs)"
        )
    print(f"    wall: {report.wall_seconds:.2f}s")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args()

    spec = CampaignSpec.from_dataset_spec(
        DATASET_PRESETS["tiny"], schedule="stream", n_injections=24
    )
    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp)

        engine = CampaignEngine(spec, jobs=args.jobs, cache_dir=cache)
        result = engine.run()
        describe(f"fresh run, jobs={args.jobs}", engine, result)

        engine = CampaignEngine(spec, jobs=args.jobs, cache_dir=cache)
        result = engine.run()
        describe("re-run (served from store)", engine, result)

        bigger = spec.with_injections(48)
        engine = CampaignEngine(bigger, jobs=args.jobs, cache_dir=cache)
        result = engine.run()
        describe("top-up 24 -> 48 injections/ff", engine, result)


if __name__ == "__main__":
    main()
