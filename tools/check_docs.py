#!/usr/bin/env python
"""Execute the fenced Python examples in the project's Markdown docs.

Documentation examples rot silently; this tool makes them executable
artifacts.  For every Markdown file given on the command line it

* extracts each fenced code block whose info string is ``python``,
* executes the file's blocks *in order, in one shared namespace* (so a
  quickstart can build on earlier imports), inside a temporary working
  directory (so examples that write caches or JSON never pollute the repo),
* reports the failing file and Markdown line on error and exits non-zero.

Blocks that are illustrative rather than runnable (pseudo-code, fragments
that need paper-scale compute) opt out with a marker comment on the line
directly above the fence::

    <!-- docs-check: skip -->
    ```python
    run_for_three_hours()
    ```

CI runs this over ``README.md`` and ``docs/*.md`` (the ``docs`` job), and
``tests/test_docs.py`` unit-tests the extractor itself.

Usage::

    python tools/check_docs.py README.md docs/*.md
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List

SKIP_MARKER = "docs-check: skip"


@dataclass
class CodeBlock:
    """One fenced ``python`` block: source text plus its Markdown location."""

    path: Path
    start_line: int  # 1-based line of the opening fence
    source: str
    skipped: bool


def extract_blocks(path: Path) -> List[CodeBlock]:
    """Parse *path* and return every fenced ``python`` block in order."""
    blocks: List[CodeBlock] = []
    lines = path.read_text().splitlines()
    in_block = False
    fence = ""
    skip_next = False
    start = 0
    body: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block:
            if stripped.startswith(("```", "~~~")):
                fence = stripped[:3]
                info = stripped[3:].strip().lower()
                if info == "python" or info.startswith("python "):
                    in_block = True
                    start = lineno
                    body = []
                    blocks_skip = skip_next
                    skip_next = False
                    blocks.append(CodeBlock(path, start, "", blocks_skip))
                else:
                    skip_next = False
            else:
                skip_next = SKIP_MARKER in stripped
        else:
            if stripped.startswith(fence):
                in_block = False
                blocks[-1].source = "\n".join(body) + "\n"
            else:
                body.append(line)
    if in_block:
        raise ValueError(f"{path}: unterminated code fence opened at line {start}")
    return blocks


def run_file(path: Path, verbose: bool = True) -> int:
    """Execute every runnable block of *path*; returns the count executed."""
    blocks = extract_blocks(path)
    namespace = {"__name__": "__docs__", "__file__": str(path)}
    executed = 0
    for block in blocks:
        if block.skipped:
            if verbose:
                print(f"  {path}:{block.start_line}: skipped (marker)")
            continue
        # Compile with a filename that points back into the Markdown source
        # so tracebacks carry usable line numbers.
        padded = "\n" * block.start_line + block.source
        code = compile(padded, str(path), "exec")
        exec(code, namespace)  # noqa: S102 - executing our own documentation
        executed += 1
        if verbose:
            print(f"  {path}:{block.start_line}: ok")
    return executed


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="Markdown files to check")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    repo_root = Path.cwd().resolve()
    if str(repo_root / "src") not in sys.path and (repo_root / "src").is_dir():
        sys.path.insert(0, str(repo_root / "src"))

    total = 0
    failures = 0
    for path in args.files:
        if not path.is_file():
            print(f"{path}: no such file", file=sys.stderr)
            failures += 1
            continue
        resolved = path.resolve()
        with tempfile.TemporaryDirectory(prefix="docs-check-") as tmp:
            old_cwd = os.getcwd()
            os.chdir(tmp)
            try:
                total += run_file(resolved, verbose=not args.quiet)
            except Exception:
                import traceback

                traceback.print_exc()
                print(f"FAILED: {path}", file=sys.stderr)
                failures += 1
            finally:
                os.chdir(old_cwd)
    print(f"{total} documentation example(s) executed, {failures} file(s) failing")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
