"""Append a smoke-benchmark record to the repo's perf trajectory.

Runs a fixed, fast benchmark (the tiny-scale flat campaign, batch and
adaptive execution on the compiled backend, plus one raw cycle-throughput
probe) and appends one JSON record to
``benchmarks/results/trajectory.json``.  CI runs this on every push as a
non-blocking job, so the file accumulates a per-commit throughput history
that perf PRs can cite::

    python tools/bench_history.py --label "adaptive scheduler"
    python tools/bench_history.py --out /tmp/trajectory.json  # scratch copy

The smoke workload is deliberately small (a few seconds) — the numbers are
for *trajectory*, not absolutes; use ``benchmarks/bench_scheduler.py
--scale full`` for acceptance-grade measurements.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "trajectory.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))


def git_commit() -> Optional[str]:
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.CalledProcessError):
        return None


def run_smoke() -> Dict:
    """The fixed smoke benchmark: tiny campaign, cycle-throughput and
    feature-extraction probes."""
    from bench_features import run_benchmark as run_feature_benchmark
    from bench_scheduler import run_campaign_row
    from bench_substrate import measure_cycle_throughput
    from common import preset_workload_parts

    parts = preset_workload_parts("tiny")
    rows: List[Dict] = []
    for scheduler in ("batch", "adaptive"):
        row = run_campaign_row(parts, "compiled", scheduler, n_injections=6)
        row.pop("counters", None)
        rows.append(row)
    cycle_lps = measure_cycle_throughput(parts.netlist, "compiled", 256, n_cycles=12)
    features = run_feature_benchmark("xgmac_tiny", repeats=1)
    vec_row = next(r for r in features["rows"] if r["engine"] == "vectorized")
    return {
        "campaign_rows": rows,
        "cycle_lane_cycles_per_sec": round(cycle_lps),
        "adaptive_speedup": round(
            rows[1]["injections_per_sec"] / max(1, rows[0]["injections_per_sec"]), 2
        ),
        "feature_ffs_per_sec": vec_row["ffs_per_sec"],
        "feature_vectorized_speedup": features["vectorized_speedup"],
    }


def append_record(out_path: Path, label: Optional[str]) -> Dict:
    start = time.perf_counter()
    smoke = run_smoke()
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": git_commit(),
        "label": label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "bench_wall_seconds": round(time.perf_counter() - start, 2),
        **smoke,
    }
    doc = {"version": 1, "records": []}
    if out_path.exists():
        try:
            loaded = json.loads(out_path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("records"), list):
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt trajectory: start a fresh one rather than fail CI
    doc["records"].append(record)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="free-form record label")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="trajectory file to append to"
    )
    args = parser.parse_args(argv)

    record = append_record(args.out, args.label)
    rows = record["campaign_rows"]
    print(
        f"commit={record['commit']} batch={rows[0]['injections_per_sec']} inj/s "
        f"adaptive={rows[1]['injections_per_sec']} inj/s "
        f"({record['adaptive_speedup']}x), "
        f"cycle={record['cycle_lane_cycles_per_sec']} lane-cycles/s, "
        f"features={record['feature_ffs_per_sec']} FF rows/s "
        f"({record['feature_vectorized_speedup']}x vs networkx)"
    )
    print(f"appended to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
