"""Append a smoke-benchmark record to the repo's perf trajectory — and
render the accumulated history as a report.

Runs a fixed, fast benchmark (the tiny-scale flat campaign, batch and
adaptive execution on the compiled backend, plus one raw cycle-throughput
probe) and appends one JSON record to
``benchmarks/results/trajectory.json``.  CI runs this on every push as a
non-blocking job, so the file accumulates a per-commit throughput history
that perf PRs can cite::

    python tools/bench_history.py --label "adaptive scheduler"
    python tools/bench_history.py --out /tmp/trajectory.json  # scratch copy
    python tools/bench_history.py --report-only --report-md report.md

``--report-md`` / ``--report-html`` tabulate every record in the
trajectory — the smoke records this tool appends *and* the uniform records
the ``benchmarks/bench_*.py`` mains append via ``--trajectory`` — grouped
by benchmark kind, one table per kind.  ``--report-only`` skips the smoke
run (report generation from the existing file is instantaneous, so CI
uploads a fresh report with every trajectory append).

The smoke workload is deliberately small (a few seconds) — the numbers are
for *trajectory*, not absolutes; use ``benchmarks/bench_scheduler.py
--scale full`` for acceptance-grade measurements.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "benchmarks" / "results" / "trajectory.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from common import append_trajectory, git_commit, load_trajectory  # noqa: E402


def run_smoke() -> Dict:
    """The fixed smoke benchmark: tiny campaign, cycle-throughput and
    feature-extraction probes."""
    from bench_features import run_benchmark as run_feature_benchmark
    from bench_scheduler import run_campaign_row
    from bench_substrate import measure_cycle_throughput
    from common import preset_workload_parts

    parts = preset_workload_parts("tiny")
    rows: List[Dict] = []
    for scheduler in ("batch", "adaptive"):
        row = run_campaign_row(parts, "compiled", scheduler, n_injections=6)
        row.pop("counters", None)
        rows.append(row)
    cycle_lps = measure_cycle_throughput(parts.netlist, "compiled", 256, n_cycles=12)
    features = run_feature_benchmark("xgmac_tiny", repeats=1)
    vec_row = next(r for r in features["rows"] if r["engine"] == "vectorized")
    return {
        "campaign_rows": rows,
        "cycle_lane_cycles_per_sec": round(cycle_lps),
        "adaptive_speedup": round(
            rows[1]["injections_per_sec"] / max(1, rows[0]["injections_per_sec"]), 2
        ),
        "feature_ffs_per_sec": vec_row["ffs_per_sec"],
        "feature_vectorized_speedup": features["vectorized_speedup"],
    }


def append_record(out_path: Path, label: Optional[str]) -> Dict:
    import time

    start = time.perf_counter()
    smoke = run_smoke()
    smoke["bench_wall_seconds"] = round(time.perf_counter() - start, 2)
    return append_trajectory("smoke", smoke, label=label, path=out_path)


# -------------------------------------------------------------- reporting

#: Envelope fields every record carries (the rest is measurements).
_ENVELOPE = ("timestamp", "commit", "bench", "label", "python", "machine")


def _normalize(record: Dict) -> Dict:
    """One record in the uniform shape, whether it predates the envelope.

    Records written before the shared ``benchmarks/common.append_trajectory``
    helper carry their measurements flat next to the envelope fields and
    have no ``bench`` name; fold those measurements under ``summary`` and
    call them ``smoke`` (this tool was the only writer back then).
    """
    if isinstance(record.get("summary"), dict):
        out = dict(record)
        out.setdefault("bench", "smoke")
        return out
    summary = {k: v for k, v in record.items() if k not in _ENVELOPE}
    out = {k: record.get(k) for k in _ENVELOPE}
    out["bench"] = record.get("bench") or "smoke"
    out["summary"] = summary
    return out


def _flatten(summary: Dict, prefix: str = "", depth: int = 2) -> Dict[str, object]:
    """Scalar leaves of *summary* as dotted columns (lists summarized by
    length — per-row tables belong in the benchmark's own ``--out`` JSON)."""
    flat: Dict[str, object] = {}
    for key, value in summary.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict) and depth > 0:
            flat.update(_flatten(value, prefix=f"{name}.", depth=depth - 1))
        elif isinstance(value, (int, float, str)) and not isinstance(value, bool):
            flat[name] = value
        elif isinstance(value, list):
            flat[f"{name}[n]"] = len(value)
    return flat


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value) if value is not None else ""


def build_report_rows(doc: Dict) -> Dict[str, List[Dict]]:
    """Group normalized records by bench kind, each with flat columns."""
    groups: Dict[str, List[Dict]] = {}
    for record in doc.get("records", []):
        if not isinstance(record, dict):
            continue
        norm = _normalize(record)
        row = {
            "timestamp": norm.get("timestamp") or "",
            "commit": norm.get("commit") or "",
            "label": norm.get("label") or "",
        }
        row.update(_flatten(norm.get("summary", {})))
        groups.setdefault(norm["bench"], []).append(row)
    return groups


def render_markdown(doc: Dict) -> str:
    groups = build_report_rows(doc)
    n_records = sum(len(rows) for rows in groups.values())
    lines = [
        "# Benchmark trajectory",
        "",
        f"{n_records} record(s) across {len(groups)} benchmark kind(s); "
        f"current commit `{git_commit() or 'unknown'}`.  Numbers are smoke-"
        "scale trends, not acceptance measurements (see `benchmarks/`).",
        "",
    ]
    for bench in sorted(groups):
        rows = groups[bench]
        columns = ["timestamp", "commit", "label"]
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines.append(f"## {bench}")
        lines.append("")
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "---|" * len(columns))
        for row in rows:
            lines.append(
                "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
            )
        lines.append("")
    return "\n".join(lines)


def render_html(doc: Dict) -> str:
    groups = build_report_rows(doc)
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'><title>Benchmark trajectory</title>",
        "<style>body{font-family:sans-serif;margin:2em}table{border-collapse:"
        "collapse}th,td{border:1px solid #999;padding:4px 8px;text-align:right}"
        "th{background:#eee}td:first-child,th:first-child{text-align:left}"
        "</style></head><body>",
        "<h1>Benchmark trajectory</h1>",
    ]
    for bench in sorted(groups):
        rows = groups[bench]
        columns = ["timestamp", "commit", "label"]
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        parts.append(f"<h2>{html.escape(bench)}</h2><table><tr>")
        parts.extend(f"<th>{html.escape(c)}</th>" for c in columns)
        parts.append("</tr>")
        for row in rows:
            parts.append("<tr>")
            parts.extend(
                f"<td>{html.escape(_fmt(row.get(c, '')))}</td>" for c in columns
            )
            parts.append("</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="free-form record label")
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="trajectory file to append to"
    )
    parser.add_argument(
        "--report-md",
        type=Path,
        default=None,
        help="render the whole trajectory as a markdown report here",
    )
    parser.add_argument(
        "--report-html",
        type=Path,
        default=None,
        help="render the whole trajectory as an HTML report here",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="skip the smoke benchmark; just render reports from --out",
    )
    args = parser.parse_args(argv)
    if args.report_only and args.report_md is None and args.report_html is None:
        parser.error("--report-only needs --report-md and/or --report-html")

    if not args.report_only:
        record = append_record(args.out, args.label)
        smoke = record["summary"]
        rows = smoke["campaign_rows"]
        print(
            f"commit={record['commit']} batch={rows[0]['injections_per_sec']} inj/s "
            f"adaptive={rows[1]['injections_per_sec']} inj/s "
            f"({smoke['adaptive_speedup']}x), "
            f"cycle={smoke['cycle_lane_cycles_per_sec']} lane-cycles/s, "
            f"features={smoke['feature_ffs_per_sec']} FF rows/s "
            f"({smoke['feature_vectorized_speedup']}x vs networkx)"
        )
        print(f"appended to {args.out}")

    if args.report_md is not None or args.report_html is not None:
        doc = load_trajectory(args.out)
        if args.report_md is not None:
            args.report_md.parent.mkdir(parents=True, exist_ok=True)
            args.report_md.write_text(render_markdown(doc) + "\n")
            print(f"wrote {args.report_md}")
        if args.report_html is not None:
            args.report_html.parent.mkdir(parents=True, exist_ok=True)
            args.report_html.write_text(render_html(doc) + "\n")
            print(f"wrote {args.report_html}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
