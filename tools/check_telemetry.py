"""Validate a telemetry JSONL file (schema + span balance).

CI runs a mini campaign with ``--metrics-out``/``--trace-out`` and feeds
the resulting files through this checker, so a regression in the telemetry
layer (malformed events, unbalanced spans, missing instrumentation) fails
the build instead of silently producing unusable run records::

    python tools/check_telemetry.py run/telemetry.jsonl \
        --require-span campaign --require-metric scheduler.lane_occupancy

Checks applied to every file:

* each line parses as a JSON object with a known ``event`` type
  (``provenance``, ``span_begin``, ``span_end``, ``metrics``,
  ``progress``, ``store_corrupt``) and a numeric ``ts`` stamp;
* ``span_begin``/``span_end`` pairs balance — same ``name``/``parent``
  per span id, every end has a begin, ``seconds >= 0``;
* ``metrics`` events carry the mergeable-snapshot payload shape
  (``counters``/``gauges``/``hists`` dicts);
* ``progress`` events carry integer ``done <= total``;
* ``store_corrupt`` events (a quarantined store shard) carry string
  ``path``/``reason``.

``--require-span`` / ``--require-metric`` (repeatable) additionally assert
that a named span completed and that a named counter/gauge/histogram
appears in some ``metrics`` event.  ``--require-metric-prefix``
(repeatable) asserts that at least one observed metric starts with the
given prefix — the CI chaos job uses it to pin the supervisor's
``robustness.*`` family (retries, timeouts, quarantines, pool rebuilds)
without enumerating every counter.  Exit status 0 = valid.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Set

KNOWN_EVENTS = {
    "provenance",
    "span_begin",
    "span_end",
    "metrics",
    "progress",
    "store_corrupt",
}


class TelemetryError(Exception):
    """One validation failure, with the offending line number."""


def _fail(lineno: int, message: str) -> TelemetryError:
    return TelemetryError(f"line {lineno}: {message}")


def validate_file(path: Path) -> Dict[str, Set[str]]:
    """Validate one JSONL file; returns the observed span and metric names.

    Raises :class:`TelemetryError` on the first violation.
    """
    open_spans: Dict[int, Dict] = {}
    spans_ended: Set[str] = set()
    metric_names: Set[str] = set()
    events_seen = 0

    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError as exc:
                raise _fail(lineno, f"not valid JSON ({exc})") from None
            if not isinstance(event, dict):
                raise _fail(lineno, "event is not a JSON object")
            kind = event.get("event")
            if kind not in KNOWN_EVENTS:
                raise _fail(lineno, f"unknown event type {kind!r}")
            if not isinstance(event.get("ts"), (int, float)):
                raise _fail(lineno, f"{kind} event has no numeric 'ts'")
            events_seen += 1

            if kind in ("span_begin", "span_end"):
                span_id = event.get("span")
                name = event.get("name")
                if not isinstance(span_id, int) or not isinstance(name, str):
                    raise _fail(lineno, f"{kind} needs integer 'span' and string 'name'")
                if kind == "span_begin":
                    if span_id in open_spans:
                        raise _fail(lineno, f"span {span_id} begun twice")
                    open_spans[span_id] = event
                else:
                    begin = open_spans.pop(span_id, None)
                    if begin is None:
                        raise _fail(lineno, f"span_end {span_id} without begin")
                    if begin.get("name") != name or begin.get("parent") != event.get("parent"):
                        raise _fail(
                            lineno, f"span {span_id} end does not match its begin"
                        )
                    seconds = event.get("seconds")
                    if not isinstance(seconds, (int, float)) or seconds < 0:
                        raise _fail(lineno, f"span {span_id} has invalid 'seconds'")
                    spans_ended.add(name)
            elif kind == "metrics":
                payload = event.get("metrics")
                if not isinstance(payload, dict):
                    raise _fail(lineno, "metrics event has no 'metrics' payload")
                for family in ("counters", "gauges", "hists"):
                    table = payload.get(family, {})
                    if not isinstance(table, dict):
                        raise _fail(lineno, f"metrics '{family}' is not an object")
                    metric_names.update(table)
            elif kind == "progress":
                done, total = event.get("done"), event.get("total")
                if not isinstance(done, int) or not isinstance(total, int):
                    raise _fail(lineno, "progress needs integer 'done' and 'total'")
                if done > total:
                    raise _fail(lineno, f"progress done={done} > total={total}")
            elif kind == "store_corrupt":
                for field in ("path", "reason"):
                    if not isinstance(event.get(field), str):
                        raise _fail(lineno, f"store_corrupt needs string {field!r}")

    if events_seen == 0:
        raise TelemetryError(f"{path}: no telemetry events at all")
    if open_spans:
        names = sorted(e.get("name", "?") for e in open_spans.values())
        raise TelemetryError(f"{path}: unclosed span(s): {names}")
    return {"spans": spans_ended, "metrics": metric_names}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path, help="telemetry JSONL files")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="assert this span completed in at least one file (repeatable)",
    )
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME",
        help="assert this metric appears in a metrics event (repeatable)",
    )
    parser.add_argument(
        "--require-metric-prefix",
        action="append",
        default=[],
        metavar="PREFIX",
        help="assert at least one observed metric starts with this prefix "
        "(repeatable), e.g. 'robustness.'",
    )
    args = parser.parse_args(argv)

    seen_spans: Set[str] = set()
    seen_metrics: Set[str] = set()
    for path in args.files:
        try:
            observed = validate_file(path)
        except OSError as exc:
            print(f"ERROR: {path}: {exc}", file=sys.stderr)
            return 1
        except TelemetryError as exc:
            print(f"ERROR: {path}: {exc}", file=sys.stderr)
            return 1
        seen_spans.update(observed["spans"])
        seen_metrics.update(observed["metrics"])
        print(
            f"{path}: ok ({len(observed['spans'])} span name(s), "
            f"{len(observed['metrics'])} metric(s))"
        )

    status = 0
    for name in args.require_span:
        if name not in seen_spans:
            print(f"ERROR: required span {name!r} never completed", file=sys.stderr)
            status = 1
    for name in args.require_metric:
        if name not in seen_metrics:
            print(f"ERROR: required metric {name!r} never reported", file=sys.stderr)
            status = 1
    for prefix in args.require_metric_prefix:
        if not any(name.startswith(prefix) for name in seen_metrics):
            print(
                f"ERROR: no observed metric starts with {prefix!r}", file=sys.stderr
            )
            status = 1
    if status == 0 and (
        args.require_span or args.require_metric or args.require_metric_prefix
    ):
        print(
            f"required spans/metrics present: "
            f"{args.require_span + args.require_metric + args.require_metric_prefix}"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
