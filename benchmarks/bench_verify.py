"""Benchmark: differential-verification throughput.

Tracks how fast the cross-backend agreement harness runs — comparisons per
second across the compiled/event/oracle triple plus injector-vs-brute-force
replays — so regressions in any engine (or in the harness itself) show up as
a throughput drop.  Run standalone for the full sweep::

    python benchmarks/bench_verify.py --scale mini --seeds 20

or through pytest-benchmark with the rest of the suite (tiny scale).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.verify import FUZZ_SCALES, verify_seeds

from common import add_result_args, emit_result


def run_sweep(scale: str, n_seeds: int) -> Dict:
    """Verify *n_seeds* fuzzed circuits; fail hard on any divergence."""
    start = time.perf_counter()
    summary = verify_seeds(n_seeds, scale=scale)
    wall = time.perf_counter() - start
    if not summary.ok:
        raise AssertionError(
            f"divergence during benchmark, seeds "
            f"{[r.seed for r in summary.failing]}"
        )
    return {
        "scale": scale,
        "seeds": n_seeds,
        "comparisons": summary.n_comparisons,
        "injections_checked": summary.n_injections_checked,
        "wall_seconds": round(wall, 3),
        "comparisons_per_second": round(summary.n_comparisons / max(wall, 1e-9)),
        "seeds_per_second": round(n_seeds / max(wall, 1e-9), 2),
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="mini", choices=sorted(FUZZ_SCALES))
    parser.add_argument("--seeds", type=int, default=20)
    add_result_args(parser)
    args = parser.parse_args(argv)

    row = run_sweep(args.scale, args.seeds)
    print(
        f"scale={row['scale']} seeds={row['seeds']}: "
        f"{row['comparisons']:,} comparisons + "
        f"{row['injections_checked']} injector replays "
        f"in {row['wall_seconds']}s "
        f"({row['comparisons_per_second']:,}/s, {row['seeds_per_second']} seeds/s)"
    )
    emit_result(args, "verify", row)
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_verify_throughput(benchmark):
    row = benchmark.pedantic(
        lambda: run_sweep("tiny", 10), rounds=1, iterations=1
    )
    assert row["comparisons"] > 0
    assert row["injections_checked"] > 0


def test_bench_verify_oracle_only(benchmark):
    """Oracle settle cost in isolation (it bounds harness throughput)."""
    from repro.verify import OracleSimulator, generate_netlist

    spec = FUZZ_SCALES["mini"].with_seed(7)
    netlist = generate_netlist(spec)
    oracle = OracleSimulator(netlist)
    oracle.reset()

    def settle_many():
        for i in range(200):
            oracle.set_input("in0", i & 1)
            oracle.eval_comb()
            oracle.tick()
        return True

    assert benchmark.pedantic(settle_many, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
