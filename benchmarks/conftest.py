"""Benchmark fixtures.

Benchmarks run on the ``tiny`` dataset preset (cached on first use) so the
whole suite finishes in a couple of minutes while still exercising every
experiment's real code path.  Regenerate at paper scale with
``python -m repro.experiments all --scale full``.
"""

from __future__ import annotations

import pytest

from repro.circuits import build_xgmac_workload, make_xgmac
from repro.data import get_dataset
from repro.faultinjection import PacketInterfaceCriterion, StatisticalFaultCampaign


@pytest.fixture(scope="session")
def bench_dataset():
    return get_dataset("tiny")


@pytest.fixture(scope="session")
def bench_mac():
    netlist = make_xgmac("xgmac_tiny")
    workload = build_xgmac_workload(netlist, n_frames=4, min_len=2, max_len=3, seed=7)
    return netlist, workload


@pytest.fixture(scope="session")
def bench_campaign_runner(bench_mac):
    netlist, workload = bench_mac
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    return StatisticalFaultCampaign(
        netlist, workload.testbench, criterion, active_window=workload.active_window
    )
