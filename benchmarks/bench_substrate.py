"""Benchmarks: the EDA substrate underneath the experiments.

Throughput numbers for the pieces whose cost the paper's methodology is
designed to avoid or amortize: synthesis, golden simulation, the bit-parallel
fault-injection campaign, and feature extraction — plus the **per-backend
lanes/sec sweep** that justifies the pluggable simulation substrate.

Run the sweep standalone (this is where the acceptance numbers come from)::

    python benchmarks/bench_substrate.py --circuit xgmac --out substrate.json

It measures, on the chosen seed circuit:

* ``eval_comb``+``tick`` throughput (lane-cycles/second) for every cycle
  backend at several lane widths, normalized against the **seed baseline**
  (``CompiledSimulator`` at the campaign default of 256 lanes), and
* full ``FaultInjector.run_batch`` sweep throughput for the compiled,
  numpy and fused substrates.

Through pytest(-benchmark) the module keeps the original micro-benchmarks
on the tiny MAC so CI stays fast.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

import pytest

from repro.circuits import make_xgmac
from repro.faultinjection import FaultInjector, PacketInterfaceCriterion
from repro.features import FeatureExtractor
from repro.sim import BACKEND_NAMES, CompiledSimulator, create_backend

from common import add_result_args, build_workload_parts, emit_result

#: The seed repo ran every campaign on the compiled backend at this width;
#: all speedups are reported relative to it.
SEED_BACKEND = "compiled"
SEED_LANES = 256

#: (backend, lane widths) measured by the standalone sweep.
SWEEP_CONFIGS = [
    ("compiled", (256, 1024)),
    ("numpy", (4096, 16384, 65536, 131072)),
]


def measure_cycle_throughput(
    netlist, backend: str, n_lanes: int, n_cycles: int = 20
) -> float:
    """Lane-cycles/second of a bare eval+tick loop on *backend*."""
    sim = create_backend(backend, netlist, n_lanes=n_lanes)
    sim.reset()
    start = time.perf_counter()
    for _ in range(n_cycles):
        sim.eval_comb()
        sim.tick()
    wall = time.perf_counter() - start
    return n_lanes * n_cycles / wall


def measure_sweep_throughput(workload_parts, backend: str, repeats: int = 3) -> float:
    """Lane-cycles/second of full ``run_batch`` sweeps (all FFs, one cycle)."""
    netlist, testbench, golden, criterion, inject_cycle = workload_parts
    injector = FaultInjector(
        netlist, testbench, golden, criterion, backend=backend
    )
    lanes = list(range(injector.sim.n_flip_flops))
    injector.run_batch(inject_cycle, lanes)  # warm up (fused: compile kernel)
    start = time.perf_counter()
    lane_cycles = 0
    for _ in range(repeats):
        outcome = injector.run_batch(inject_cycle, lanes)
        lane_cycles += outcome.cycles_simulated * outcome.n_lanes
    wall = time.perf_counter() - start
    return lane_cycles / wall


def run_substrate_sweep(circuit: str = "xgmac", n_cycles: int = 20) -> Dict:
    """Measure every backend on *circuit*; returns the JSON-ready report."""
    workload_parts = build_workload_parts(
        circuit=circuit, n_frames=4, min_len=2, max_len=4, gap=12, seed=7
    )
    netlist = workload_parts.netlist
    stats = netlist.stats()
    report: Dict = {
        "circuit": circuit,
        "n_cells": stats.n_cells,
        "n_ffs": stats.n_sequential,
        "seed_baseline": {"backend": SEED_BACKEND, "n_lanes": SEED_LANES},
        "cycle_rows": [],
        "sweep_rows": [],
    }

    baseline = measure_cycle_throughput(netlist, SEED_BACKEND, SEED_LANES, n_cycles)
    report["seed_baseline"]["lane_cycles_per_sec"] = round(baseline)
    for backend, widths in SWEEP_CONFIGS:
        for n_lanes in widths:
            cycles = max(4, n_cycles // max(1, n_lanes // 16384))
            lps = measure_cycle_throughput(netlist, backend, n_lanes, cycles)
            report["cycle_rows"].append(
                {
                    "backend": backend,
                    "n_lanes": n_lanes,
                    "lane_cycles_per_sec": round(lps),
                    "speedup_vs_seed": round(lps / baseline, 2),
                }
            )

    # Sweep-level comparison on a real workload (criterion + loopback + early
    # retirement), sized down so the full circuit stays minutes-free.
    parts = (
        netlist,
        workload_parts.testbench,
        workload_parts.golden,
        workload_parts.criterion,
        workload_parts.inject_cycle,
    )
    sweep_base: Optional[float] = None
    for backend in BACKEND_NAMES:
        lps = measure_sweep_throughput(parts, backend)
        if backend == SEED_BACKEND:
            sweep_base = lps
        report["sweep_rows"].append(
            {
                "backend": backend,
                "lane_cycles_per_sec": round(lps),
                "speedup_vs_seed": round(lps / (sweep_base or lps), 2),
            }
        )
    report["best_cycle_speedup"] = max(
        row["speedup_vs_seed"] for row in report["cycle_rows"]
    )
    report["best_sweep_speedup"] = max(
        row["speedup_vs_seed"] for row in report["sweep_rows"]
    )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-backend lanes/sec sweep of the simulation substrate."
    )
    parser.add_argument(
        "--circuit", default="xgmac", help="seed circuit (default: the largest, xgmac)"
    )
    parser.add_argument("--cycles", type=int, default=20)
    add_result_args(parser)
    args = parser.parse_args(argv)

    report = run_substrate_sweep(args.circuit, n_cycles=args.cycles)
    base = report["seed_baseline"]
    print(
        f"circuit={report['circuit']} cells={report['n_cells']} ffs={report['n_ffs']}"
    )
    print(
        f"seed baseline: {base['backend']}@{base['n_lanes']} = "
        f"{base['lane_cycles_per_sec'] / 1e6:.2f} M lane-cycles/s"
    )
    print(f"{'backend':>9} {'lanes':>7} {'Mlc/s':>8} {'vs seed':>8}")
    for row in report["cycle_rows"]:
        print(
            f"{row['backend']:>9} {row['n_lanes']:>7} "
            f"{row['lane_cycles_per_sec'] / 1e6:>8.2f} {row['speedup_vs_seed']:>7.2f}x"
        )
    print("injection sweeps (run_batch, all flip-flops):")
    for row in report["sweep_rows"]:
        print(
            f"{row['backend']:>9} {'-':>7} "
            f"{row['lane_cycles_per_sec'] / 1e6:>8.2f} {row['speedup_vs_seed']:>7.2f}x"
        )
    emit_result(args, "substrate", report)
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_synthesis(benchmark):
    netlist = benchmark(lambda: make_xgmac("xgmac_tiny"))
    assert len(netlist.flip_flops()) > 100


def test_bench_simulator_compile(benchmark, bench_mac):
    netlist, _workload = bench_mac
    sim = benchmark(lambda: CompiledSimulator(netlist))
    assert sim.n_flip_flops == len(netlist.flip_flops())


def test_bench_golden_simulation(benchmark, bench_mac):
    netlist, workload = bench_mac
    trace = benchmark(workload.testbench.run_golden)
    assert trace.n_cycles == workload.testbench.n_cycles


def test_bench_fault_campaign(benchmark, bench_campaign_runner):
    """A reduced flat campaign: every flip-flop, 8 injections each."""
    result = benchmark.pedantic(
        lambda: bench_campaign_runner.run(n_injections=8, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.mean_fdr() > 0.0
    # Report effective throughput in the benchmark's extra info.
    total_injections = sum(r.n_injections for r in result.results.values())
    assert total_injections == 8 * len(result.results)


def test_bench_single_injection_batch(benchmark, bench_campaign_runner):
    """One bit-parallel forward run with 64 concurrent SEU lanes."""
    injector = bench_campaign_runner.injector
    first, _ = bench_campaign_runner.active_window
    lanes = list(range(64))

    outcome = benchmark(lambda: injector.run_batch(first + 4, lanes))
    assert outcome.n_lanes == 64


@pytest.mark.parametrize("backend", BACKEND_NAMES)
def test_bench_backend_sweep(benchmark, bench_mac, bench_campaign_runner, backend):
    """Per-backend all-flip-flop sweep throughput on the tiny MAC."""
    netlist, workload = bench_mac
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    injector = FaultInjector(
        netlist, workload.testbench, bench_campaign_runner.golden, criterion,
        backend=backend,
    )
    first, _ = bench_campaign_runner.active_window
    lanes = list(range(injector.sim.n_flip_flops))
    injector.run_batch(first + 4, lanes)  # warm-up: fused compiles here
    outcome = benchmark.pedantic(
        lambda: injector.run_batch(first + 4, lanes), rounds=2, iterations=1
    )
    assert outcome.n_lanes == len(lanes)


def test_bench_feature_extraction(benchmark, bench_mac, bench_campaign_runner):
    netlist, _workload = bench_mac
    golden = bench_campaign_runner.golden

    def run():
        return FeatureExtractor(netlist).matrix(golden)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    assert matrix.shape[0] == len(netlist.flip_flops())


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
