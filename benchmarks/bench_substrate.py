"""Benchmarks: the EDA substrate underneath the experiments.

Throughput numbers for the pieces whose cost the paper's methodology is
designed to avoid or amortize: synthesis, golden simulation, the bit-parallel
fault-injection campaign, and feature extraction.
"""

import pytest

from repro.circuits import build_xgmac_workload, make_xgmac
from repro.features import FeatureExtractor
from repro.sim import CompiledSimulator


def test_bench_synthesis(benchmark):
    netlist = benchmark(lambda: make_xgmac("xgmac_tiny"))
    assert len(netlist.flip_flops()) > 100


def test_bench_simulator_compile(benchmark, bench_mac):
    netlist, _workload = bench_mac
    sim = benchmark(lambda: CompiledSimulator(netlist))
    assert sim.n_flip_flops == len(netlist.flip_flops())


def test_bench_golden_simulation(benchmark, bench_mac):
    netlist, workload = bench_mac
    trace = benchmark(workload.testbench.run_golden)
    assert trace.n_cycles == workload.testbench.n_cycles


def test_bench_fault_campaign(benchmark, bench_campaign_runner):
    """A reduced flat campaign: every flip-flop, 8 injections each."""
    result = benchmark.pedantic(
        lambda: bench_campaign_runner.run(n_injections=8, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.mean_fdr() > 0.0
    # Report effective throughput in the benchmark's extra info.
    total_injections = sum(r.n_injections for r in result.results.values())
    assert total_injections == 8 * len(result.results)


def test_bench_single_injection_batch(benchmark, bench_campaign_runner):
    """One bit-parallel forward run with 64 concurrent SEU lanes."""
    injector = bench_campaign_runner.injector
    first, _ = bench_campaign_runner.active_window
    lanes = list(range(64))

    outcome = benchmark(lambda: injector.run_batch(first + 4, lanes))
    assert outcome.n_lanes == 64


def test_bench_feature_extraction(benchmark, bench_mac, bench_campaign_runner):
    netlist, _workload = bench_mac
    golden = bench_campaign_runner.golden

    def run():
        return FeatureExtractor(netlist).matrix(golden)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    assert matrix.shape[0] == len(netlist.flip_flops())
