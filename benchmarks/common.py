"""Shared circuit/workload setup and reporting helpers for the benchmarks.

``bench_parallel``, ``bench_substrate``, ``bench_scheduler`` and
``bench_verify`` used to each carry their own copy of the campaign-spec
construction, the xgmac workload recipe and the result-JSON plumbing; this
module is the single home for those pieces so the benchmarks stay focused on
what they measure.
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaigns import CampaignSpec
from repro.circuits import build_xgmac_workload, get_circuit
from repro.data import DATASET_PRESETS
from repro.faultinjection import PacketInterfaceCriterion
from repro.netlist.core import Netlist
from repro.sim.testbench import GoldenTrace, Testbench


def campaign_spec(
    scale: str,
    n_injections: Optional[int] = None,
    backend: str = "compiled",
    scheduler: str = "adaptive",
    schedule: str = "stream",
    policy: str = "flat",
    target_margin: Optional[float] = None,
) -> CampaignSpec:
    """Campaign spec mirroring a dataset preset (the benchmark workloads)."""
    kwargs = {} if target_margin is None else {"target_margin": target_margin}
    return CampaignSpec.from_dataset_spec(
        DATASET_PRESETS[scale],
        schedule=schedule,
        n_injections=n_injections,
        backend=backend,
        scheduler=scheduler,
        policy=policy,
        **kwargs,
    )


def result_counters(result) -> Dict[str, List[int]]:
    """Per-flip-flop counters — the cross-configuration identity check."""
    return {
        name: [r.n_injections, r.n_failures, r.latency_sum]
        for name, r in result.results.items()
    }


@dataclass
class WorkloadParts:
    """One fully prepared injection workload (netlist through criterion)."""

    netlist: Netlist
    testbench: Testbench
    golden: GoldenTrace
    criterion: PacketInterfaceCriterion
    active_window: tuple
    #: A representative early injection cycle for single-batch benchmarks.
    inject_cycle: int


def build_workload_parts(
    circuit: str = "xgmac",
    n_frames: int = 4,
    min_len: int = 2,
    max_len: int = 4,
    gap: int = 12,
    seed: int = 7,
) -> WorkloadParts:
    """Synthesize *circuit*, build its frame workload and record golden."""
    netlist = get_circuit(circuit)
    workload = build_xgmac_workload(
        netlist, n_frames=n_frames, min_len=min_len, max_len=max_len, gap=gap, seed=seed
    )
    golden = workload.testbench.run_golden()
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    first, _last = workload.active_window
    return WorkloadParts(
        netlist=netlist,
        testbench=workload.testbench,
        golden=golden,
        criterion=criterion,
        active_window=workload.active_window,
        inject_cycle=first + 4,
    )


def preset_workload_parts(scale: str) -> WorkloadParts:
    """Workload parts for a dataset preset (full-campaign benchmarks)."""
    spec = DATASET_PRESETS[scale]
    return build_workload_parts(
        circuit=spec.circuit,
        n_frames=spec.n_frames,
        min_len=spec.min_len,
        max_len=spec.max_len,
        gap=spec.gap,
        seed=spec.workload_seed,
    )


def write_json(path: Optional[str], payload: Dict) -> None:
    """Write *payload* as pretty JSON when a path was requested."""
    if path is None:
        return
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")


# ---------------------------------------------------------------- trajectory

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_TRAJECTORY = RESULTS_DIR / "trajectory.json"


def git_commit() -> Optional[str]:
    """Short commit hash of the measured tree, if git is available."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=RESULTS_DIR.parent.parent,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or None
        )
    except (OSError, subprocess.CalledProcessError):
        return None


def add_result_args(parser) -> None:
    """The uniform result-reporting flags every benchmark main exposes."""
    parser.add_argument("--out", default=None, help="write the full report as JSON")
    parser.add_argument(
        "--trajectory",
        nargs="?",
        const=str(DEFAULT_TRAJECTORY),
        default=None,
        help="append a uniform record to this trajectory file "
        f"(bare flag: {DEFAULT_TRAJECTORY.relative_to(RESULTS_DIR.parent.parent)})",
    )
    parser.add_argument(
        "--label", default=None, help="free-form label stored with the record"
    )


def load_trajectory(path: Path) -> Dict:
    """The trajectory document at *path* (a fresh one if absent/corrupt)."""
    doc = {"version": 1, "records": []}
    if Path(path).exists():
        try:
            loaded = json.loads(Path(path).read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("records"), list):
                doc = loaded
        except (OSError, ValueError):
            pass  # corrupt trajectory: start fresh rather than fail CI
    return doc


def append_trajectory(
    bench: str,
    summary: Dict,
    label: Optional[str] = None,
    path: Optional[Path] = None,
) -> Dict:
    """Append one uniform record to the shared perf-trajectory document.

    Every benchmark writes the same envelope — timestamp, commit, bench
    name, label, platform — with its measurements nested under ``summary``,
    so ``tools/bench_history.py --report-md`` can tabulate the whole history
    without per-benchmark cases.
    """
    path = Path(path) if path is not None else DEFAULT_TRAJECTORY
    record = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": git_commit(),
        "bench": bench,
        "label": label,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "summary": summary,
    }
    doc = load_trajectory(path)
    doc["records"].append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return record


def emit_result(args, bench: str, payload: Dict, summary: Optional[Dict] = None) -> None:
    """The shared tail of every benchmark ``main``: ``--out`` JSON dump plus
    the optional ``--trajectory`` append (*summary* defaults to *payload*)."""
    write_json(args.out, payload)
    if args.trajectory is not None:
        append_trajectory(
            bench,
            summary if summary is not None else payload,
            label=args.label,
            path=Path(args.trajectory),
        )
        print(f"appended {bench} record to {args.trajectory}")
