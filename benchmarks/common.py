"""Shared circuit/workload setup and reporting helpers for the benchmarks.

``bench_parallel``, ``bench_substrate``, ``bench_scheduler`` and
``bench_verify`` used to each carry their own copy of the campaign-spec
construction, the xgmac workload recipe and the result-JSON plumbing; this
module is the single home for those pieces so the benchmarks stay focused on
what they measure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.campaigns import CampaignSpec
from repro.circuits import build_xgmac_workload, get_circuit
from repro.data import DATASET_PRESETS
from repro.faultinjection import PacketInterfaceCriterion
from repro.netlist.core import Netlist
from repro.sim.testbench import GoldenTrace, Testbench


def campaign_spec(
    scale: str,
    n_injections: Optional[int] = None,
    backend: str = "compiled",
    scheduler: str = "adaptive",
    schedule: str = "stream",
) -> CampaignSpec:
    """Campaign spec mirroring a dataset preset (the benchmark workloads)."""
    return CampaignSpec.from_dataset_spec(
        DATASET_PRESETS[scale],
        schedule=schedule,
        n_injections=n_injections,
        backend=backend,
        scheduler=scheduler,
    )


def result_counters(result) -> Dict[str, List[int]]:
    """Per-flip-flop counters — the cross-configuration identity check."""
    return {
        name: [r.n_injections, r.n_failures, r.latency_sum]
        for name, r in result.results.items()
    }


@dataclass
class WorkloadParts:
    """One fully prepared injection workload (netlist through criterion)."""

    netlist: Netlist
    testbench: Testbench
    golden: GoldenTrace
    criterion: PacketInterfaceCriterion
    active_window: tuple
    #: A representative early injection cycle for single-batch benchmarks.
    inject_cycle: int


def build_workload_parts(
    circuit: str = "xgmac",
    n_frames: int = 4,
    min_len: int = 2,
    max_len: int = 4,
    gap: int = 12,
    seed: int = 7,
) -> WorkloadParts:
    """Synthesize *circuit*, build its frame workload and record golden."""
    netlist = get_circuit(circuit)
    workload = build_xgmac_workload(
        netlist, n_frames=n_frames, min_len=min_len, max_len=max_len, gap=gap, seed=seed
    )
    golden = workload.testbench.run_golden()
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    first, _last = workload.active_window
    return WorkloadParts(
        netlist=netlist,
        testbench=workload.testbench,
        golden=golden,
        criterion=criterion,
        active_window=workload.active_window,
        inject_cycle=first + 4,
    )


def preset_workload_parts(scale: str) -> WorkloadParts:
    """Workload parts for a dataset preset (full-campaign benchmarks)."""
    spec = DATASET_PRESETS[scale]
    return build_workload_parts(
        circuit=spec.circuit,
        n_frames=spec.n_frames,
        min_len=spec.min_len,
        max_len=spec.max_len,
        gap=spec.gap,
        seed=spec.workload_seed,
    )


def write_json(path: Optional[str], payload: Dict) -> None:
    """Write *payload* as pretty JSON when a path was requested."""
    if path is None:
        return
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {path}")
