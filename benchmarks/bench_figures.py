"""Benchmarks: regenerate Figures 2, 3 and 4.

Each figure has two benchmarks mirroring its subfigures: (a) the example
test-fold prediction at 50 % training size and (b) the learning curve over
training sizes under cross-validation.
"""

import pytest

from repro.experiments import FIGURE_MODELS, run_figure

CURVE_SIZES = (0.1, 0.3, 0.5, 0.7)


@pytest.mark.parametrize("figure", sorted(FIGURE_MODELS))
def test_bench_figure_prediction(benchmark, bench_dataset, figure):
    """Subfigure (a): one train/test fold prediction + error series."""
    result = benchmark.pedantic(
        lambda: run_figure(bench_dataset, figure, seed=0, with_curve=False),
        rounds=1,
        iterations=1,
    )
    assert len(result.test_pred) == len(result.test_true)
    assert result.prediction_csv()


@pytest.mark.parametrize("figure", sorted(FIGURE_MODELS))
def test_bench_figure_learning_curve(benchmark, bench_dataset, figure):
    """Subfigure (b): R² learning curve (train and test) over CV folds."""
    result = benchmark.pedantic(
        lambda: run_figure(
            bench_dataset, figure, cv_folds=5, curve_sizes=CURVE_SIZES, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    curve = result.curve
    assert curve is not None
    assert len(curve.mean_test()) == len(CURVE_SIZES)
    # Learning curves flatten: the last point is not dramatically worse
    # than the best point (paper: no significant improvement beyond 50 %).
    assert curve.mean_test()[-1] >= max(curve.mean_test()) - 0.25
