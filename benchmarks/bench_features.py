"""Benchmark: vectorized vs. networkx feature extraction.

The acceptance benchmark of the feature-layer refactor: extract the full
per-flip-flop feature matrix of the synthesized xgmac MAC with both
engines — the batched mask/bitset extractor
(:mod:`repro.features.vectorized`, the default) and the per-flip-flop
networkx traversal reference — and report flip-flop rows per second plus
the speedup.  The matrices are asserted bit-identical, so the speedup
carries no accuracy trade-off.  Run standalone to reproduce
``benchmarks/results/features.json``::

    python benchmarks/bench_features.py --circuit xgmac \
        --out benchmarks/results/features.json

Through pytest the module keeps a tiny-circuit smoke row so CI stays fast.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.circuits import get_circuit
from repro.circuits.workloads import build_workload_for
from repro.features.extractor import ENGINES, FeatureExtractor
from repro.sim.activity import ActivityTrace

from common import add_result_args, emit_result


def measure_engine(netlist, golden, engine: str, repeats: int = 3) -> Dict:
    """Best-of-*repeats* wall time for one engine's full matrix extraction."""
    best = float("inf")
    matrix = None
    for _ in range(repeats):
        start = time.perf_counter()
        extractor = FeatureExtractor(netlist, engine=engine)
        matrix = extractor.matrix(golden)
        best = min(best, time.perf_counter() - start)
    n_ffs = matrix.shape[0]
    return {
        "engine": engine,
        "wall_seconds": round(best, 4),
        "n_ffs": n_ffs,
        "n_features": matrix.shape[1],
        "ffs_per_sec": round(n_ffs / best, 1),
        "_matrix": matrix,
    }


def run_benchmark(circuit: str = "xgmac", repeats: int = 3) -> Dict:
    """Both engines on one circuit; asserts bit-identical matrices."""
    netlist = get_circuit(circuit)
    workload = build_workload_for(
        circuit, netlist, n_frames=4, min_len=2, max_len=4, gap=12, seed=7
    )
    golden = workload.testbench.run_golden()
    # Pre-compute (and cache) the activity statistics so both engines time
    # only the graph work they differ in.
    ActivityTrace.from_golden(golden)
    netlist.topological_comb_order()

    rows: List[Dict] = [
        measure_engine(netlist, golden, engine, repeats=repeats) for engine in ENGINES
    ]
    matrices = [row.pop("_matrix") for row in rows]
    identical = all(np.array_equal(matrices[0], m) for m in matrices[1:])
    assert identical, "engines disagree on the feature matrix"
    by_engine = {row["engine"]: row for row in rows}
    speedup = (
        by_engine["networkx"]["wall_seconds"] / by_engine["vectorized"]["wall_seconds"]
    )
    return {
        "circuit": circuit,
        "rows": rows,
        "bit_identical": identical,
        "vectorized_speedup": round(speedup, 2),
    }


# ------------------------------------------------------------------ pytest


def test_feature_bench_smoke():
    """Tiny-circuit smoke: both engines agree and the benchmark runs."""
    payload = run_benchmark("xgmac_tiny", repeats=1)
    assert payload["bit_identical"]
    assert {row["engine"] for row in payload["rows"]} == set(ENGINES)


# -------------------------------------------------------------- standalone


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--circuit", default="xgmac")
    parser.add_argument("--repeats", type=int, default=3)
    add_result_args(parser)
    args = parser.parse_args(argv)

    payload = run_benchmark(args.circuit, repeats=args.repeats)
    for row in payload["rows"]:
        print(
            f"{row['engine']:>10s}: {row['wall_seconds']*1000:8.1f} ms "
            f"({row['ffs_per_sec']:,.0f} FF rows/s)"
        )
    print(
        f"vectorized speedup: {payload['vectorized_speedup']}x "
        f"(bit-identical: {payload['bit_identical']})"
    )
    emit_result(args, "features", payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
