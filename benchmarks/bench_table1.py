"""Benchmark: regenerate Table I (model comparison under the paper protocol).

One benchmark per Table I row — Linear Least Squares, k-NN and SVR, each
cross-validated (10-fold stratified, training size 50 %) — plus the whole
table in one shot.  Sanity assertions keep the paper's qualitative shape
under test while timing.
"""

import pytest

from repro.experiments import paper_models, run_table1
from repro.ml.model_selection import StratifiedRegressionKFold, cross_validate


@pytest.mark.parametrize("model_name", list(paper_models()))
def test_bench_table1_row(benchmark, bench_dataset, model_name):
    model = paper_models()[model_name]
    cv = StratifiedRegressionKFold(n_splits=10, random_state=0)

    def run():
        return cross_validate(
            model, bench_dataset.X, bench_dataset.y, cv=cv, train_size=0.5, random_state=0
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert -1.0 <= result.mean_test("r2") <= 1.0


def test_bench_table1_full(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_table1(bench_dataset, cv_folds=10, seed=0), rounds=1, iterations=1
    )
    assert result.shape_holds()
    r2 = {m: v["r2"] for m, v in result.rows.items()}
    assert r2["k-NN"] > r2["Linear Least Squares"]
    assert r2["SVR w/ RBF Kernel"] > r2["Linear Least Squares"]
