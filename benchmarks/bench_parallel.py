"""Benchmark: parallel campaign engine vs. the serial engine.

Measures wall-clock speedup of sharded multi-process fault injection on the
xgmac workload.  Run standalone for the full sweep::

    python benchmarks/bench_parallel.py --scale mini --jobs 1 2 4
    python benchmarks/bench_parallel.py --scale mini --backends compiled fused

or through pytest-benchmark with the rest of the suite (tiny scale, so CI
stays fast).  Results are bit-identical across ``jobs`` counts *and*
simulation backends — both sweeps assert it — so the speedups are free of
any accuracy trade-off.  Every row reports effective campaign throughput as
lanes/sec (simulated lane-cycles per wall second).
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from typing import Dict, List

import pytest

from repro.campaigns import CampaignEngine
from repro.data import DATASET_PRESETS
from repro.sim import BACKEND_NAMES

from common import campaign_spec as _spec_for_scale
from common import result_counters as _result_key
from common import add_result_args, emit_result


def run_sweep(
    scale: str, jobs_list: List[int], backend: str = "compiled"
) -> List[Dict]:
    """Time the campaign at each jobs count; verify bit-identical results."""
    spec = _spec_for_scale(scale, backend=backend)
    rows: List[Dict] = []
    reference = None
    serial_wall = None
    for jobs in jobs_list:
        engine = CampaignEngine(spec, jobs=jobs)  # no cache: measure raw engine
        start = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - start
        if reference is None:
            reference = _result_key(result)
        elif _result_key(result) != reference:
            raise AssertionError(f"jobs={jobs} result differs from serial")
        if serial_wall is None:
            serial_wall = wall
        rows.append(
            {
                "backend": backend,
                "jobs": jobs,
                "wall_seconds": round(wall, 3),
                "speedup": round(serial_wall / wall, 2),
                "forward_runs": result.n_forward_runs,
                "lane_cycles_per_sec": round(result.total_lane_cycles / wall),
                "identical": True,
            }
        )
    return rows


def run_backend_sweep(scale: str, backends: List[str]) -> List[Dict]:
    """Time the serial campaign per backend; verify bit-identical results."""
    rows: List[Dict] = []
    reference = None
    base_wall = None
    for backend in backends:
        spec = _spec_for_scale(scale, backend=backend)
        start = time.perf_counter()
        result = CampaignEngine(spec, jobs=1).run()
        wall = time.perf_counter() - start
        if reference is None:
            reference = _result_key(result)
            base_wall = wall
        elif _result_key(result) != reference:
            raise AssertionError(f"backend={backend} result differs")
        rows.append(
            {
                "backend": backend,
                "jobs": 1,
                "wall_seconds": round(wall, 3),
                "speedup": round(base_wall / wall, 2),
                "forward_runs": result.n_forward_runs,
                "lane_cycles_per_sec": round(result.total_lane_cycles / wall),
                "identical": True,
            }
        )
    return rows


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="mini", choices=sorted(DATASET_PRESETS))
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        choices=list(BACKEND_NAMES),
        help="also sweep the serial campaign over these simulation backends",
    )
    add_result_args(parser)
    args = parser.parse_args(argv)

    print(f"scale={args.scale} cpus={multiprocessing.cpu_count()}")
    rows = run_sweep(args.scale, args.jobs)
    if args.backends:
        rows += run_backend_sweep(args.scale, args.backends)
    print(f"{'backend':>9} {'jobs':>5} {'wall [s]':>10} {'speedup':>8} {'fwd runs':>9} {'Mlanes/s':>9}")
    for row in rows:
        print(
            f"{row['backend']:>9} {row['jobs']:>5} {row['wall_seconds']:>10.3f} "
            f"{row['speedup']:>7.2f}x {row['forward_runs']:>9} "
            f"{row['lane_cycles_per_sec'] / 1e6:>9.2f}"
        )
    emit_result(args, "parallel", {"scale": args.scale, "rows": rows})
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_campaign_serial(benchmark):
    spec = _spec_for_scale("tiny")
    result = benchmark.pedantic(
        lambda: CampaignEngine(spec, jobs=1).run(), rounds=1, iterations=1
    )
    assert result.n_forward_runs > 0


def test_bench_campaign_parallel_speedup(benchmark):
    """jobs=4 must beat serial on the tiny campaign (skipped on small hosts)."""
    if multiprocessing.cpu_count() < 4:
        pytest.skip("needs >= 4 CPUs for a meaningful speedup measurement")
    rows = benchmark.pedantic(
        lambda: run_sweep("tiny", [1, 4]), rounds=1, iterations=1
    )
    speedup = rows[-1]["speedup"]
    print(f"jobs=4 speedup: {speedup}x")
    assert speedup > 1.0


if __name__ == "__main__":
    sys.exit(main())
