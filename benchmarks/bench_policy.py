"""Benchmark: flat protocol vs. sequential Wilson early stopping.

The acceptance benchmark of the adaptive-sampling work: one full flat
campaign (the paper's fixed per-flip-flop budget) and one sequential
campaign asked to meet the flat run's *realized* worst-case Wilson margin,
both from a cold cache.  The figure of merit is the injection count at
equal statistical quality::

    python benchmarks/bench_policy.py --scale full --injections 170 \
        --trajectory

With ``--min-savings`` the benchmark turns into a tolerance-gated
acceptance check (non-zero exit on failure) — CI runs a seeded mini-scale
variant on every push.  See docs/campaigns.md ("Adaptive sampling") for
the protocol and docs/performance.md for recorded numbers.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.campaigns import CampaignEngine
from repro.campaigns.policy import interval_margin

from common import add_result_args, campaign_spec, emit_result


def _margins(result) -> List[float]:
    return [
        interval_margin(r.n_injections, r.n_failures)
        for r in result.results.values()
    ]


def run_flat_row(scale: str, n_injections: int, backend: str, jobs: int) -> Dict:
    """Time one cold flat campaign; report its realized Wilson margins."""
    spec = campaign_spec(scale, n_injections, backend=backend)
    with tempfile.TemporaryDirectory() as cache:
        engine = CampaignEngine(spec, jobs=jobs, cache_dir=Path(cache))
        start = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - start
    margins = _margins(result)
    return {
        "policy": "flat",
        "circuit": result.circuit,
        "wall_seconds": round(wall, 3),
        "injections": sum(r.n_injections for r in result.results.values()),
        "realized_margin_max": max(margins),
        "realized_margin_mean": sum(margins) / len(margins),
    }


def run_sequential_row(
    scale: str, n_injections: int, target_margin: float, backend: str, jobs: int
) -> Dict:
    """Time one cold sequential campaign at *target_margin*."""
    spec = campaign_spec(
        scale,
        n_injections,
        backend=backend,
        policy="sequential",
        target_margin=target_margin,
    )
    with tempfile.TemporaryDirectory() as cache:
        engine = CampaignEngine(spec, jobs=jobs, cache_dir=Path(cache))
        start = time.perf_counter()
        engine.run()
        wall = time.perf_counter() - start
    meta = engine.last_policy_meta
    return {
        "policy": "sequential",
        "target_margin": target_margin,
        "wall_seconds": round(wall, 3),
        "rounds": meta["rounds"],
        "injections": meta["total_injections"],
        "realized_margin_max": meta["realized_margin_max"],
        "realized_margin_mean": meta["realized_margin_mean"],
    }


def run_comparison(
    scale: str,
    n_injections: int,
    target_margin: Optional[float] = None,
    backend: str = "compiled",
    jobs: int = 1,
) -> Dict:
    """Flat vs. sequential at the flat protocol's realized margin.

    With no explicit ``target_margin`` the sequential run is asked to match
    the flat run's worst flip-flop — the weakest guarantee the fixed budget
    actually delivered — so the injection ratio is an equal-quality figure.
    """
    flat = run_flat_row(scale, n_injections, backend, jobs)
    if target_margin is None:
        target_margin = flat["realized_margin_max"]
    sequential = run_sequential_row(scale, n_injections, target_margin, backend, jobs)
    savings = flat["injections"] / max(1, sequential["injections"])
    return {
        "scale": scale,
        "circuit": flat.pop("circuit"),
        "n_injections_per_ff": n_injections,
        "backend": backend,
        "jobs": jobs,
        "target_margin": target_margin,
        "rows": [flat, sequential],
        "injections_savings": round(savings, 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="full", choices=["tiny", "mini", "full"])
    parser.add_argument(
        "--injections", type=int, default=170, help="flat injections per flip-flop"
    )
    parser.add_argument(
        "--target-margin",
        type=float,
        default=None,
        help="sequential stopping margin (default: the flat run's realized max)",
    )
    parser.add_argument("--backend", default="compiled")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--min-savings",
        type=float,
        default=None,
        help="acceptance gate: fail unless flat/sequential injections >= this",
    )
    parser.add_argument(
        "--margin-tolerance",
        type=float,
        default=0.02,
        help="acceptance gate: allowed relative excess of the sequential "
        "realized margin over the target (budget-capped flip-flops)",
    )
    add_result_args(parser)
    args = parser.parse_args(argv)

    report = run_comparison(
        args.scale,
        args.injections,
        target_margin=args.target_margin,
        backend=args.backend,
        jobs=args.jobs,
    )
    print(
        f"circuit={report['circuit']} injections/ff={args.injections} "
        f"target_margin={report['target_margin']:.4f}"
    )
    print(f"{'policy':>10} {'wall [s]':>9} {'injections':>11} {'margin max':>11} {'margin mean':>12}")
    for row in report["rows"]:
        print(
            f"{row['policy']:>10} {row['wall_seconds']:>9.2f} {row['injections']:>11} "
            f"{row['realized_margin_max']:>11.4f} {row['realized_margin_mean']:>12.4f}"
        )
    print(f"savings: {report['injections_savings']:.2f}x fewer injections at equal margin")

    summary = {
        "scale": report["scale"],
        "circuit": report["circuit"],
        "n_injections_per_ff": args.injections,
        "target_margin": report["target_margin"],
        "flat_injections": report["rows"][0]["injections"],
        "sequential_injections": report["rows"][1]["injections"],
        "sequential_rounds": report["rows"][1]["rounds"],
        "injections_savings": report["injections_savings"],
        "flat_realized_margin_max": report["rows"][0]["realized_margin_max"],
        "sequential_realized_margin_max": report["rows"][1]["realized_margin_max"],
    }
    emit_result(args, "policy", report, summary=summary)

    if args.min_savings is not None:
        margin_cap = report["target_margin"] * (1.0 + args.margin_tolerance)
        realized = report["rows"][1]["realized_margin_max"]
        if realized > margin_cap:
            print(
                f"FAIL: sequential realized margin {realized:.4f} exceeds "
                f"{margin_cap:.4f} (target {report['target_margin']:.4f} "
                f"+ {args.margin_tolerance:.0%})"
            )
            return 1
        if report["injections_savings"] < args.min_savings:
            print(
                f"FAIL: savings {report['injections_savings']:.2f}x below the "
                f"{args.min_savings:.2f}x acceptance bar"
            )
            return 1
        print(
            f"OK: margin {realized:.4f} <= {margin_cap:.4f}, "
            f"savings {report['injections_savings']:.2f}x >= {args.min_savings:.2f}x"
        )
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_policy_smoke(benchmark):
    """Tiny-scale comparison: sequential meets the margin with fewer draws."""
    report = benchmark.pedantic(
        lambda: run_comparison("tiny", 40, target_margin=0.15), rounds=1, iterations=1
    )
    flat, sequential = report["rows"]
    assert sequential["injections"] < flat["injections"]
    assert report["injections_savings"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
