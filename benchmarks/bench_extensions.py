"""Benchmarks: extension experiments (future-work models, ablation, tuning).

These regenerate the repo's extensions of the paper's evaluation: the
section-V future-work model comparison, the feature-group ablation, and the
random+grid hyperparameter search protocol.
"""

import pytest

from repro.experiments import run_ablation, run_future_work, run_importance, run_tuning


def test_bench_future_work(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_future_work(bench_dataset, cv_folds=5, seed=0),
        rounds=1,
        iterations=1,
    )
    assert set(result.rows) >= {"Decision Tree", "Random Forest", "Gradient Boosting", "MLP"}
    # Nonlinear ensembles should be competitive with the k-NN baseline.
    assert result.rows[result.best_model()]["r2"] > 0.3


def test_bench_ablation(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_ablation(bench_dataset, model_names=["k-NN"], cv_folds=5, seed=0),
        rounds=1,
        iterations=1,
    )
    assert "all" in result.rows and "only dynamic" in result.rows


def test_bench_tuning(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_tuning(bench_dataset, n_random=4, cv_folds=3, seed=0),
        rounds=1,
        iterations=1,
    )
    assert result.best_scores["k-NN"] > 0.0


def test_bench_importance(benchmark, bench_dataset):
    result = benchmark.pedantic(
        lambda: run_importance(bench_dataset, n_repeats=3, seed=0),
        rounds=1,
        iterations=1,
    )
    assert len(result.result.ranking()) == bench_dataset.n_features
