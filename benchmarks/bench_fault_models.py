"""Benchmarks: fault-model overhead on the injection engine.

The fault-model registry (``repro.faultinjection.faults``) must not tax the
paper's SEU hot path: the plain SEU keeps the pre-registry single-flip code
path, MBU clusters only add flips at activation, and the forcing models
(stuck-at, intermittent) pay a per-cycle re-force write — plus the loss of
convergence-based early retirement while their duty cycle is live.  This
benchmark quantifies all of that per backend:

    python benchmarks/bench_fault_models.py --out fault_models.json

It measures full ``FaultInjector.run_batch`` sweeps (all flip-flops, one
injection cycle) on the tiny MAC workload for every registered FF-campaign
model and reports lane-cycles/second normalized to the SEU baseline of the
same backend.

Through pytest(-benchmark) the module keeps a small MBU sweep in CI so the
plan-compilation path stays on the perf radar.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.faultinjection import FaultInjector
from repro.sim import BACKEND_NAMES

from common import add_result_args, build_workload_parts, emit_result

#: Registry spec strings swept by the standalone benchmark; ``seu`` is the
#: per-backend baseline every other row is normalized against.
MODEL_SPECS = [
    "seu",
    "mbu:size=3,radius=1,seed=0",
    "stuck0",
    "intermittent:period=8,on=2,seed=0",
]


def measure_model_throughput(
    parts, backend: str, model: str, repeats: int = 3
) -> Dict:
    """Lane-cycles/second of full ``run_batch`` sweeps under *model*."""
    injector = FaultInjector(
        parts.netlist,
        parts.testbench,
        parts.golden,
        parts.criterion,
        backend=backend,
        fault_model=model,
    )
    lanes = list(range(injector.sim.n_flip_flops))
    warm = injector.run_batch(parts.inject_cycle, lanes)  # fused: compile kernel
    start = time.perf_counter()
    lane_cycles = 0
    failures = 0
    for _ in range(repeats):
        outcome = injector.run_batch(parts.inject_cycle, lanes)
        lane_cycles += outcome.cycles_simulated * outcome.n_lanes
        failures = len(outcome.failed_lanes())
    wall = time.perf_counter() - start
    return {
        "lane_cycles_per_sec": round(lane_cycles / wall),
        "cycles_simulated": warm.cycles_simulated,
        "n_failures": failures,
    }


def run_fault_model_sweep(circuit: str = "xgmac_tiny", repeats: int = 3) -> Dict:
    """Measure every model x backend on *circuit*; JSON-ready report."""
    parts = build_workload_parts(
        circuit=circuit, n_frames=4, min_len=2, max_len=4, gap=12, seed=7
    )
    stats = parts.netlist.stats()
    report: Dict = {
        "circuit": circuit,
        "n_cells": stats.n_cells,
        "n_ffs": stats.n_sequential,
        "rows": [],
    }
    for backend in BACKEND_NAMES:
        baseline: Optional[float] = None
        for model in MODEL_SPECS:
            row = measure_model_throughput(parts, backend, model, repeats=repeats)
            row["backend"] = backend
            row["model"] = model
            if model == "seu":
                baseline = row["lane_cycles_per_sec"]
            row["relative_to_seu"] = round(
                row["lane_cycles_per_sec"] / (baseline or row["lane_cycles_per_sec"]),
                3,
            )
            report["rows"].append(row)
    report["worst_relative_to_seu"] = min(
        row["relative_to_seu"] for row in report["rows"]
    )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Per-fault-model run_batch throughput sweep."
    )
    parser.add_argument("--circuit", default="xgmac_tiny")
    parser.add_argument("--repeats", type=int, default=3)
    add_result_args(parser)
    args = parser.parse_args(argv)

    report = run_fault_model_sweep(args.circuit, repeats=args.repeats)
    print(
        f"circuit={report['circuit']} cells={report['n_cells']} ffs={report['n_ffs']}"
    )
    print(f"{'backend':>9} {'model':>32} {'Mlc/s':>8} {'vs seu':>7} {'cycles':>7}")
    for row in report["rows"]:
        print(
            f"{row['backend']:>9} {row['model']:>32} "
            f"{row['lane_cycles_per_sec'] / 1e6:>8.2f} "
            f"{row['relative_to_seu']:>6.2f}x {row['cycles_simulated']:>7}"
        )
    emit_result(args, "fault_models", report)
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_mbu_batch(benchmark, bench_mac):
    """MBU plan compilation + multi-flip batch on the tiny MAC."""
    from repro.faultinjection import PacketInterfaceCriterion

    netlist, workload = bench_mac
    golden = workload.testbench.run_golden()
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    injector = FaultInjector(
        netlist,
        workload.testbench,
        golden,
        criterion,
        fault_model="mbu:size=3,radius=1,seed=0",
    )
    first, _last = workload.active_window
    lanes = list(range(min(64, injector.sim.n_flip_flops)))
    outcome = benchmark(lambda: injector.run_batch(first + 4, lanes))
    assert outcome.n_lanes == len(lanes)


def test_bench_stuck_at_batch(benchmark, bench_mac):
    """Per-cycle re-force path (no early retirement) on the tiny MAC."""
    from repro.faultinjection import PacketInterfaceCriterion

    netlist, workload = bench_mac
    golden = workload.testbench.run_golden()
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    injector = FaultInjector(
        netlist, workload.testbench, golden, criterion, fault_model="stuck0"
    )
    first, _last = workload.active_window
    lanes = list(range(min(64, injector.sim.n_flip_flops)))
    outcome = benchmark(lambda: injector.run_batch(first + 4, lanes))
    assert outcome.n_lanes == len(lanes)


if __name__ == "__main__":
    sys.exit(main())
