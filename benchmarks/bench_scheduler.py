"""Benchmark: adaptive injection scheduler vs. per-time-slot batches.

The acceptance benchmark of the scheduler work: one full flat campaign on
the synthesized xgmac MAC (every flip-flop, paper-style injection draws),
executed once with the PR-3 baseline (``scheduler="batch"``: one forward
run per time slot, drained batches) and once per adaptive configuration
(``scheduler="adaptive"``: mixed-cycle lane refill, compaction, wide
passes).  Run standalone to reproduce ``benchmarks/results/scheduler.json``::

    python benchmarks/bench_scheduler.py --scale full --injections 170 \
        --out benchmarks/results/scheduler.json

Per-flip-flop counters are asserted identical across every row — the
speedups carry no accuracy trade-off.  Through pytest the module keeps a
tiny-scale smoke row so CI stays fast.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.faultinjection import StatisticalFaultCampaign

from common import add_result_args, emit_result, preset_workload_parts, result_counters

#: The PR-3 configuration every row is normalized against.
BASELINE = ("fused", "batch")

#: (backend, scheduler) rows measured by default.
DEFAULT_CONFIGS = [
    ("fused", "batch"),
    ("compiled", "batch"),
    ("fused", "adaptive"),
    ("compiled", "adaptive"),
]


def run_campaign_row(
    parts, backend: str, scheduler: str, n_injections: int, seed: int = 0
) -> Dict:
    """Time one full flat campaign; return the JSON-ready row."""
    campaign = StatisticalFaultCampaign(
        parts.netlist,
        parts.testbench,
        parts.criterion,
        active_window=parts.active_window,
        golden=parts.golden,
        backend=backend,
        scheduler=scheduler,
    )
    start = time.perf_counter()
    result = campaign.run(n_injections=n_injections, seed=seed)
    wall = time.perf_counter() - start
    total = sum(r.n_injections for r in result.results.values())
    return {
        "backend": backend,
        "scheduler": scheduler,
        "wall_seconds": round(wall, 3),
        "injections": total,
        "injections_per_sec": round(total / wall),
        "forward_runs": result.n_forward_runs,
        "lane_cycles": result.total_lane_cycles,
        "counters": result_counters(result),
    }


def run_sweep(
    scale: str, n_injections: int, configs=DEFAULT_CONFIGS, seed: int = 0
) -> Dict:
    """Measure every configuration; assert bit-identical per-ff counters."""
    parts = preset_workload_parts(scale)
    stats = parts.netlist.stats()
    report: Dict = {
        "scale": scale,
        "circuit": parts.netlist.name,
        "n_cells": stats.n_cells,
        "n_ffs": stats.n_sequential,
        "n_injections_per_ff": n_injections,
        "baseline": {"backend": BASELINE[0], "scheduler": BASELINE[1]},
        "rows": [],
    }
    reference = None
    baseline_ips: Optional[float] = None
    for backend, scheduler in configs:
        row = run_campaign_row(parts, backend, scheduler, n_injections, seed)
        counters = row.pop("counters")
        if reference is None:
            reference = counters
        elif counters != reference:
            raise AssertionError(
                f"{backend}/{scheduler} per-ff counters differ from "
                f"{configs[0][0]}/{configs[0][1]}"
            )
        row["identical"] = True
        if (backend, scheduler) == BASELINE:
            baseline_ips = row["injections_per_sec"]
        report["rows"].append(row)
    if baseline_ips:
        for row in report["rows"]:
            row["speedup_vs_baseline"] = round(
                row["injections_per_sec"] / baseline_ips, 2
            )
        report["best_speedup_vs_baseline"] = max(
            row["speedup_vs_baseline"] for row in report["rows"]
        )
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="full", choices=["tiny", "mini", "full"])
    parser.add_argument(
        "--injections", type=int, default=170, help="injections per flip-flop"
    )
    parser.add_argument("--seed", type=int, default=0)
    add_result_args(parser)
    args = parser.parse_args(argv)

    report = run_sweep(args.scale, args.injections, seed=args.seed)
    print(
        f"circuit={report['circuit']} cells={report['n_cells']} "
        f"ffs={report['n_ffs']} injections/ff={report['n_injections_per_ff']}"
    )
    print(f"{'backend':>9} {'scheduler':>9} {'wall [s]':>9} {'inj/s':>8} {'fwd':>6} {'vs base':>8}")
    for row in report["rows"]:
        print(
            f"{row['backend']:>9} {row['scheduler']:>9} {row['wall_seconds']:>9.2f} "
            f"{row['injections_per_sec']:>8} {row['forward_runs']:>6} "
            f"{row.get('speedup_vs_baseline', 1.0):>7.2f}x"
        )
    emit_result(args, "scheduler", report)
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_scheduler_smoke(benchmark):
    """Tiny-scale sweep: adaptive and batch agree bit-for-bit."""
    report = benchmark.pedantic(
        lambda: run_sweep("tiny", 6), rounds=1, iterations=1
    )
    assert all(row["identical"] for row in report["rows"])
    assert report["best_speedup_vs_baseline"] > 0


if __name__ == "__main__":
    sys.exit(main())
