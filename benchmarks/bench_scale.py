"""Benchmark: warm-start substrate scaling over generated circuit sizes.

Two measurements, both recorded with an explicit ``circuit_size`` (flip-flop
count) so the trajectory history can plot cost against scale:

* **worker start** — seconds until a worker process holds a usable shard
  runner: the cold path (``_ShardRunner.from_spec``: synthesize, record the
  golden trace, code-generate kernels) against the warm path
  (:func:`repro.campaigns.warmstart.resolve_runner` on the fork-inherited
  cache).  This is the per-worker tax the warm-start layer removes — it used
  to be paid by *every* worker, every pool rebuild and every
  ``maxtasksperchild`` recycle;
* **campaign sweep** — full mini campaigns per generated circuit size, cold
  engine vs warm engine, bit-identity asserted, with effective injection
  throughput.

Run standalone::

    python benchmarks/bench_scale.py --circuits mesh_tiny mesh_2k
    python benchmarks/bench_scale.py --scale mini --trajectory

The ``--scale`` sweep measures the paper-scale xgmac campaign's worker
start, the headline warm-vs-cold number the docs quote.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.campaigns import CampaignEngine, CampaignSpec, release_warm_cache
from repro.campaigns.executor import _ShardRunner
from repro.campaigns.warmstart import ensure_runner, resolve_runner
from repro.circuits.generator import GENERATED_CIRCUITS, GENERATED_FF_COUNTS
from repro.data import DATASET_PRESETS

from common import campaign_spec as _spec_for_scale
from common import result_counters as _result_key
from common import add_result_args, emit_result

#: Default size sweep: small enough for CI, two families, ~16x size spread.
DEFAULT_CIRCUITS = ["mesh_tiny", "mesh_2k", "pipe_2k"]


def generated_spec(circuit: str, n_injections: int) -> CampaignSpec:
    """A mini campaign on a generated composite (strict any-output verdicts)."""
    return CampaignSpec(
        circuit=circuit,
        criterion="any_output",
        n_frames=2,
        min_len=2,
        max_len=3,
        gap=8,
        workload_seed=7,
        n_injections=n_injections,
        seed=5,
        schedule="stream",
    )


def measure_worker_start(spec: CampaignSpec, circuit_size: Optional[int]) -> Dict:
    """Cold vs warm time-to-usable-runner for one campaign spec."""
    release_warm_cache()
    start = time.perf_counter()
    _ShardRunner.from_spec(spec)
    cold = time.perf_counter() - start

    start = time.perf_counter()
    ensure_runner(spec, _ShardRunner)
    parent_warmup = time.perf_counter() - start
    start = time.perf_counter()
    runner = resolve_runner(spec)
    warm = time.perf_counter() - start
    assert runner is not None, "warm cache must hold the runner after ensure"
    return {
        "circuit": spec.circuit,
        "circuit_size": circuit_size,
        "cold_start_seconds": round(cold, 4),
        "parent_warmup_seconds": round(parent_warmup, 4),
        "warm_start_seconds": round(warm, 6),
        "warm_speedup": round(cold / max(warm, 1e-9), 1),
    }


def run_size_sweep(circuits: List[str], n_injections: int, jobs: int) -> List[Dict]:
    """Cold+warm campaigns per circuit size; results must be bit-identical."""
    rows: List[Dict] = []
    for circuit in circuits:
        spec = generated_spec(circuit, n_injections)
        start_row = measure_worker_start(spec, GENERATED_FF_COUNTS.get(circuit))
        release_warm_cache()

        cold_engine = CampaignEngine(spec, jobs=jobs)
        start = time.perf_counter()
        cold_result = cold_engine.run()
        cold_wall = time.perf_counter() - start

        warm_engine = CampaignEngine(spec, jobs=jobs)
        start = time.perf_counter()
        warm_result = warm_engine.run()
        warm_wall = time.perf_counter() - start

        identical = _result_key(cold_result) == _result_key(warm_result)
        if not identical:
            raise AssertionError(f"{circuit}: warm result differs from cold")
        injections = sum(r.n_injections for r in warm_result.results.values())
        rows.append(
            {
                **start_row,
                "jobs": jobs,
                "n_injections": injections,
                "cold_wall_seconds": round(cold_wall, 3),
                "warm_wall_seconds": round(warm_wall, 3),
                "engine_warmup_seconds": round(cold_engine.last_report.warmup_seconds, 3),
                "injections_per_sec": round(injections / warm_wall, 1),
                "lane_cycles_per_sec": round(warm_result.total_lane_cycles / warm_wall),
                "identical": identical,
            }
        )
        release_warm_cache()
    return rows


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=DEFAULT_CIRCUITS,
        choices=GENERATED_CIRCUITS,
        help="generated circuit presets to sweep",
    )
    parser.add_argument("--injections", type=int, default=2, help="per flip-flop")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--scale",
        default="mini",
        choices=sorted(DATASET_PRESETS),
        help="xgmac preset for the headline worker-start measurement",
    )
    add_result_args(parser)
    args = parser.parse_args(argv)

    xgmac = measure_worker_start(_spec_for_scale(args.scale), circuit_size=None)
    release_warm_cache()
    print(
        f"xgmac[{args.scale}] worker start: cold {xgmac['cold_start_seconds']:.3f}s"
        f" -> warm {xgmac['warm_start_seconds'] * 1e3:.3f}ms"
        f" ({xgmac['warm_speedup']:.0f}x)"
    )

    rows = run_size_sweep(args.circuits, args.injections, args.jobs)
    header = (
        f"{'circuit':>10} {'FFs':>7} {'cold start':>11} {'warm start':>11} "
        f"{'cold wall':>10} {'warm wall':>10} {'inj/s':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['circuit']:>10} {row['circuit_size']:>7} "
            f"{row['cold_start_seconds']:>10.3f}s {row['warm_start_seconds'] * 1e3:>9.3f}ms "
            f"{row['cold_wall_seconds']:>9.3f}s {row['warm_wall_seconds']:>9.3f}s "
            f"{row['injections_per_sec']:>8.0f}"
        )

    payload = {"scale": args.scale, "xgmac_worker_start": xgmac, "rows": rows}
    emit_result(args, "scale", payload)
    return 0


# ------------------------------------------------------------ pytest hooks


def test_bench_scale_worker_start(benchmark):
    """Warm worker start must beat the cold build by well over the 5x bar."""
    spec = generated_spec("mesh_tiny", n_injections=2)
    row = benchmark.pedantic(
        lambda: measure_worker_start(spec, GENERATED_FF_COUNTS["mesh_tiny"]),
        rounds=1,
        iterations=1,
    )
    release_warm_cache()
    assert row["warm_speedup"] >= 5.0


if __name__ == "__main__":
    sys.exit(main())
