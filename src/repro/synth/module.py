"""Register-transfer-level module abstraction.

A :class:`Module` is the RTL source format of this reproduction: named input
bits, registers with next-state expressions, named combinational wires, and
output expressions.  :func:`repro.synth.synthesis.synthesize` elaborates a
module into a mapped gate-level :class:`~repro.netlist.core.Netlist`.

Registers default to having a synchronous active-low reset wired to the
module-wide ``rst_n`` input (mapped to ``DFFR`` cells); pass
``resettable=False`` for datapath registers that a synthesis tool would
leave without reset (mapped to plain ``DFF``), e.g. FIFO payload bits.

Bus (multi-bit) signals follow the ``name[i]`` bit-name convention used
throughout the code base — the feature extractor later recovers bus
membership, position and length from these names, exactly as the paper does
from its netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from .expr import Const, Expr, Mux, Sig

__all__ = ["Module", "RegSpec"]


@dataclass
class RegSpec:
    """One register bit: its next-state expression and reset style."""

    name: str
    next_expr: Optional[Expr] = None
    resettable: bool = True


class Module:
    """An RTL design: ports, registers, wires and output expressions.

    Parameters
    ----------
    name:
        Design name (becomes the netlist/module name).
    clock / reset:
        Names of the clock and active-low synchronous reset inputs.  The
        reset input is created lazily, only if some register is resettable.
    """

    def __init__(self, name: str, clock: str = "clk", reset: str = "rst_n") -> None:
        self.name = name
        self.clock_name = clock
        self.reset_name = reset
        self.input_bits: List[str] = []
        self.output_exprs: Dict[str, Expr] = {}
        self.output_order: List[str] = []
        self.regs: Dict[str, RegSpec] = {}
        self.wires: Dict[str, Expr] = {}
        self._names: set[str] = {clock, reset}

    # ----------------------------------------------------------------- ports

    def _claim(self, name: str) -> None:
        if name in self._names:
            raise ValueError(f"signal name {name!r} already in use")
        self._names.add(name)

    def input(self, name: str) -> Sig:
        """Declare a single-bit primary input."""
        self._claim(name)
        self.input_bits.append(name)
        return Sig(name)

    def input_bus(self, name: str, width: int) -> List[Sig]:
        """Declare a *width*-bit input bus ``name[0..width-1]`` (LSB first)."""
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def output(self, name: str, expr: Expr) -> None:
        """Declare a single-bit primary output driven by *expr*."""
        self._claim(name)
        self.output_exprs[name] = expr
        self.output_order.append(name)

    def output_bus(self, name: str, word: Sequence[Expr]) -> None:
        """Declare an output bus driven by the bits of *word*."""
        for i, bit in enumerate(word):
            self.output(f"{name}[{i}]", bit)

    # ------------------------------------------------------------- registers

    def reg(self, name: str, resettable: bool = True) -> Sig:
        """Declare a register bit; next-state defaults to hold."""
        self._claim(name)
        self.regs[name] = RegSpec(name=name, resettable=resettable)
        return Sig(name)

    def reg_bus(self, name: str, width: int, resettable: bool = True) -> List[Sig]:
        """Declare a *width*-bit register bus."""
        return [self.reg(f"{name}[{i}]", resettable=resettable) for i in range(width)]

    def next(self, target: Union[Sig, Sequence[Sig]], value: Union[Expr, Sequence[Expr]]) -> None:
        """Set the next-state expression(s) of a register (bus)."""
        if isinstance(target, Sig):
            targets = [target]
            values = [value]  # type: ignore[list-item]
        else:
            targets = list(target)
            values = list(value)  # type: ignore[arg-type]
            if len(targets) != len(values):
                raise ValueError("next(): target/value width mismatch")
        for sig, expr in zip(targets, values):
            spec = self.regs.get(sig.name)
            if spec is None:
                raise KeyError(f"{sig.name!r} is not a register")
            if spec.next_expr is not None:
                raise ValueError(f"register {sig.name!r} assigned twice")
            spec.next_expr = expr

    def next_en(
        self,
        target: Union[Sig, Sequence[Sig]],
        enable: Expr,
        value: Union[Expr, Sequence[Expr]],
    ) -> None:
        """Set next-state with a load enable (hold when *enable* is low)."""
        if isinstance(target, Sig):
            self.next(target, Mux.of(enable, value, target))  # type: ignore[arg-type]
        else:
            gated = [Mux.of(enable, v, t) for t, v in zip(target, value)]  # type: ignore[arg-type]
            self.next(target, gated)

    # ----------------------------------------------------------------- wires

    def assign(self, name: str, expr: Expr) -> Sig:
        """Name an intermediate expression (single point of reuse)."""
        self._claim(name)
        self.wires[name] = expr
        return Sig(name)

    def assign_bus(self, name: str, word: Sequence[Expr]) -> List[Sig]:
        return [self.assign(f"{name}[{i}]", bit) for i, bit in enumerate(word)]

    # ------------------------------------------------------------ inspection

    @property
    def uses_reset(self) -> bool:
        return any(spec.resettable for spec in self.regs.values())

    def reg_names(self) -> List[str]:
        return list(self.regs)

    def finalize(self) -> None:
        """Default unassigned registers to hold their value."""
        for spec in self.regs.values():
            if spec.next_expr is None:
                spec.next_expr = Sig(spec.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Module {self.name!r}: {len(self.input_bits)} in, "
            f"{len(self.output_order)} out, {len(self.regs)} regs>"
        )
