"""RTL elaboration and technology mapping.

This is the reproduction's stand-in for Synopsys Design Compiler: it takes a
:class:`~repro.synth.module.Module` and produces a flat, mapped
:class:`~repro.netlist.core.Netlist` on the NanGate-like cell library —
including the synthesis decisions the paper's feature set depends on
(cell selection, logic decomposition, fanout-based drive-strength
assignment).

Mapping strategy
----------------
* expressions are decomposed into the library's 1-4 input gates with
  balanced reduction trees;
* inverted AND/OR/XOR roots fuse into NAND/NOR/XNOR cells;
* structurally identical gates are shared (hash-consing at the gate level),
  which mimics common-subexpression extraction in a real synthesis tool;
* constants become shared TIE cells — the paper's "connections to constant
  drivers" feature counts exactly these;
* each register bit becomes a ``DFFR`` (synchronous active-low reset) or
  ``DFF`` cell; each primary output gets an output buffer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.cells import CellLibrary
from ..netlist.core import Netlist, NetlistError
from .expr import And, Const, Expr, Mux, Not, Or, Sig, Xor
from .module import Module

__all__ = ["synthesize", "TechMapper", "DriveRules"]


class DriveRules:
    """Fanout-threshold table for drive-strength assignment.

    Mirrors the sizing pass of a synthesis flow: cells driving larger
    fanouts get stronger variants (X2/X4).
    """

    def __init__(self, x2_fanout: int = 3, x4_fanout: int = 7) -> None:
        self.x2_fanout = x2_fanout
        self.x4_fanout = x4_fanout

    def drive_for(self, fanout: int) -> int:
        if fanout >= self.x4_fanout:
            return 4
        if fanout >= self.x2_fanout:
            return 2
        return 1


class TechMapper:
    """Maps boolean expressions onto library gates inside a netlist."""

    def __init__(self, netlist: Netlist, module: Module) -> None:
        self.netlist = netlist
        self.module = module
        self._gate_memo: Dict[Tuple, str] = {}
        self._wire_memo: Dict[str, str] = {}
        self._wire_in_progress: set[str] = set()
        self._const_nets: Dict[int, str] = {}
        self._counter = 0

    # ------------------------------------------------------------- plumbing

    def _fresh_net(self) -> str:
        self._counter += 1
        return f"n{self._counter}"

    def _fresh_cell(self, kind: str) -> str:
        self._counter += 1
        return f"U{self._counter}_{kind}"

    def new_gate(self, type_name: str, input_nets: Sequence[str]) -> str:
        """Instantiate (or reuse) a gate; returns its output net."""
        if type_name in ("MUX2",):
            key: Tuple = (type_name, tuple(input_nets))
        else:
            key = (type_name, tuple(sorted(input_nets)))
        cached = self._gate_memo.get(key)
        if cached is not None:
            return cached
        out_net = self._fresh_net()
        ctype = self.netlist.library[type_name]
        connections = {pin: net for pin, net in zip(ctype.inputs, input_nets)}
        connections[ctype.output] = out_net
        self.netlist.add_cell(self._fresh_cell(type_name), type_name, connections)
        self._gate_memo[key] = out_net
        return out_net

    def const_net(self, value: int) -> str:
        """Net driven by the shared TIE0/TIE1 cell."""
        net = self._const_nets.get(value)
        if net is None:
            net = f"const{value}"
            self.netlist.add_cell(f"tie{value}", "TIE1" if value else "TIE0", {"Z": net})
            self._const_nets[value] = net
        return net

    # -------------------------------------------------------------- mapping

    def map_expr(self, expr: Expr) -> str:
        """Map *expr* to gates; returns the driving net name."""
        if isinstance(expr, Const):
            return self.const_net(expr.value)
        if isinstance(expr, Sig):
            return self._resolve_sig(expr.name)
        if isinstance(expr, Not):
            return self._map_inverted(expr.operand)
        if isinstance(expr, And):
            return self._reduce_tree("AND", [self.map_expr(a) for a in expr.args])
        if isinstance(expr, Or):
            return self._reduce_tree("OR", [self.map_expr(a) for a in expr.args])
        if isinstance(expr, Xor):
            return self._reduce_tree("XOR", [self.map_expr(a) for a in expr.args])
        if isinstance(expr, Mux):
            sel = self.map_expr(expr.sel)
            one = self.map_expr(expr.if_one)
            zero = self.map_expr(expr.if_zero)
            return self.new_gate("MUX2", (zero, one, sel))
        raise NetlistError(f"unmappable expression {expr!r}")

    def _resolve_sig(self, name: str) -> str:
        if name in self.netlist.nets and name not in self.module.wires:
            return name
        if name in self.module.wires:
            cached = self._wire_memo.get(name)
            if cached is not None:
                return cached
            if name in self._wire_in_progress:
                raise NetlistError(f"combinational loop through wire {name!r}")
            self._wire_in_progress.add(name)
            net = self.map_expr(self.module.wires[name])
            self._wire_in_progress.discard(name)
            self._wire_memo[name] = net
            return net
        raise NetlistError(f"unknown signal {name!r} in module {self.module.name!r}")

    def _map_inverted(self, inner: Expr) -> str:
        """Map ``~inner``, fusing into NAND/NOR/XNOR where the library allows."""
        if isinstance(inner, And) and len(inner.args) <= 4:
            nets = [self.map_expr(a) for a in inner.args]
            return self.new_gate(f"NAND{len(nets)}", nets)
        if isinstance(inner, Or) and len(inner.args) <= 4:
            nets = [self.map_expr(a) for a in inner.args]
            return self.new_gate(f"NOR{len(nets)}", nets)
        if isinstance(inner, Xor) and len(inner.args) == 2:
            nets = [self.map_expr(a) for a in inner.args]
            return self.new_gate("XNOR2", nets)
        return self.new_gate("INV", (self.map_expr(inner),))

    def _reduce_tree(self, kind: str, nets: List[str]) -> str:
        """Balanced reduction of *nets* with up-to-4-input (XOR: 2) gates."""
        arity = 2 if kind == "XOR" else 4
        while len(nets) > 1:
            level: List[str] = []
            for start in range(0, len(nets), arity):
                chunk = nets[start : start + arity]
                if len(chunk) == 1:
                    level.append(chunk[0])
                else:
                    level.append(self.new_gate(f"{kind}{len(chunk)}", chunk))
            nets = level
        return nets[0]


def synthesize(
    module: Module,
    library: CellLibrary | None = None,
    drive_rules: Optional[DriveRules] = None,
) -> Netlist:
    """Elaborate *module* into a validated, mapped gate-level netlist.

    The pass order mirrors a synthesis flow: port creation, register
    placement, combinational mapping (with sharing), output buffering, then
    drive-strength assignment.
    """
    module.finalize()
    netlist = Netlist(module.name, library=library)
    netlist.add_input(module.clock_name, is_clock=True)
    if module.uses_reset:
        netlist.add_input(module.reset_name)
    for name in module.input_bits:
        netlist.add_input(name)

    # Pre-create register Q nets so next-state expressions can reference
    # them before the flip-flop cells exist.
    for spec in module.regs.values():
        netlist.add_net(spec.name)

    mapper = TechMapper(netlist, module)

    # Map every next-state cone, then place the flip-flops with their D pins
    # wired straight to the mapped nets (no per-register buffer, as in a
    # real mapped netlist).
    d_nets: Dict[str, str] = {}
    for spec in module.regs.values():
        d_nets[spec.name] = mapper.map_expr(spec.next_expr)  # type: ignore[arg-type]
    for spec in module.regs.values():
        if spec.resettable:
            connections = {
                "D": d_nets[spec.name],
                "RN": module.reset_name,
                "CK": module.clock_name,
                "Q": spec.name,
            }
            netlist.add_cell(f"ff_{spec.name}", "DFFR", connections)
        else:
            connections = {
                "D": d_nets[spec.name],
                "CK": module.clock_name,
                "Q": spec.name,
            }
            netlist.add_cell(f"ff_{spec.name}", "DFF", connections)

    for name in module.output_order:
        mapped = mapper.map_expr(module.output_exprs[name])
        netlist.add_cell(f"obuf_{name}", "BUF", {"A": mapped, "Z": name})
        netlist.add_output(name)

    _assign_drive_strengths(netlist, drive_rules or DriveRules())
    netlist.validate()
    return netlist


def _assign_drive_strengths(netlist: Netlist, rules: DriveRules) -> None:
    """Size every cell from the fanout of its output net."""
    for cell in netlist.iter_cells():
        try:
            out_net = cell.output_net()
        except NetlistError:
            continue
        cell.drive = rules.drive_for(netlist.nets[out_net].fanout())
