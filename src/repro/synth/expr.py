"""Boolean expression AST for RTL description.

Circuits in :mod:`repro.circuits` are written against this tiny RTL algebra
(signals, constants, and/or/xor/not/mux) and then *synthesized* onto the
standard-cell library by :mod:`repro.synth.synthesis` — our in-repo stand-in
for the paper's Synopsys Design Compiler flow.

Expressions are immutable.  Constructors perform light constant folding and
operator flattening so that generated netlists stay close to what a real
synthesis tool would emit.

Example
-------
>>> a, b, c = Sig("a"), Sig("b"), Sig("c")
>>> expr = (a & b) | ~c
>>> sorted(expr.signals())
['a', 'b', 'c']
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set, Tuple

__all__ = ["Expr", "Const", "Sig", "Not", "And", "Or", "Xor", "Mux", "ZERO", "ONE"]


class Expr:
    """Base class for boolean expressions (single-bit)."""

    __slots__ = ()

    def __and__(self, other: "Expr") -> "Expr":
        return And.of(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return Or.of(self, other)

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor.of(self, other)

    def __invert__(self) -> "Expr":
        return Not.of(self)

    def signals(self) -> Set[str]:
        """Names of every :class:`Sig` appearing in the expression."""
        found: Set[str] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, Sig):
                found.add(node.name)
            else:
                stack.extend(node.children())
        return found

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def depth(self) -> int:
        """Height of the expression tree (constants and signals are 0)."""
        kids = self.children()
        if not kids:
            return 0
        return 1 + max(child.depth() for child in kids)


class Const(Expr):
    """A constant 0 or 1."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if value not in (0, 1):
            raise ValueError("constant must be 0 or 1")
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value})"


#: Shared constant instances (identity comparisons are safe on these).
ZERO = Const(0)
ONE = Const(1)


class Sig(Expr):
    """Reference to a named single-bit signal (port, wire or register)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"Sig({self.name!r})"


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr) -> None:
        self.operand = operand

    @staticmethod
    def of(operand: Expr) -> Expr:
        if isinstance(operand, Const):
            return ONE if operand.value == 0 else ZERO
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class _NaryExpr(Expr):
    """Common machinery for flattened, constant-folded n-ary operators."""

    __slots__ = ("args",)

    #: Value that annihilates the operator (0 for AND, 1 for OR, None for XOR).
    _ANNIHILATOR: int | None = None
    #: Value that is the identity of the operator.
    _IDENTITY: int = 0

    def __init__(self, args: Tuple[Expr, ...]) -> None:
        self.args = args

    @classmethod
    def of(cls, *operands: Expr) -> Expr:
        flat: list[Expr] = []
        for op in operands:
            if isinstance(op, cls):
                flat.extend(op.args)
            else:
                flat.append(op)
        return cls._fold(flat)

    @classmethod
    def _fold(cls, flat: list[Expr]) -> Expr:
        raise NotImplementedError

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(map(repr, self.args))})"


class And(_NaryExpr):
    """N-ary conjunction."""

    __slots__ = ()

    @classmethod
    def _fold(cls, flat: list[Expr]) -> Expr:
        kept: list[Expr] = []
        for op in flat:
            if isinstance(op, Const):
                if op.value == 0:
                    return ZERO
                continue  # drop identity 1
            kept.append(op)
        if not kept:
            return ONE
        if len(kept) == 1:
            return kept[0]
        return And(tuple(kept))


class Or(_NaryExpr):
    """N-ary disjunction."""

    __slots__ = ()

    @classmethod
    def _fold(cls, flat: list[Expr]) -> Expr:
        kept: list[Expr] = []
        for op in flat:
            if isinstance(op, Const):
                if op.value == 1:
                    return ONE
                continue
            kept.append(op)
        if not kept:
            return ZERO
        if len(kept) == 1:
            return kept[0]
        return Or(tuple(kept))


class Xor(_NaryExpr):
    """N-ary exclusive-or (constants folded into a possible top-level Not)."""

    __slots__ = ()

    @classmethod
    def _fold(cls, flat: list[Expr]) -> Expr:
        invert = 0
        kept: list[Expr] = []
        for op in flat:
            if isinstance(op, Const):
                invert ^= op.value
            else:
                kept.append(op)
        if not kept:
            return ONE if invert else ZERO
        result: Expr = kept[0] if len(kept) == 1 else Xor(tuple(kept))
        return Not.of(result) if invert else result


class Mux(Expr):
    """``Mux(sel, if_one, if_zero)`` — *if_one* when *sel* is 1."""

    __slots__ = ("sel", "if_one", "if_zero")

    def __init__(self, sel: Expr, if_one: Expr, if_zero: Expr) -> None:
        self.sel = sel
        self.if_one = if_one
        self.if_zero = if_zero

    @staticmethod
    def of(sel: Expr, if_one: Expr, if_zero: Expr) -> Expr:
        if isinstance(sel, Const):
            return if_one if sel.value else if_zero
        if isinstance(if_one, Const) and isinstance(if_zero, Const):
            if if_one.value == if_zero.value:
                return if_one
            return sel if if_one.value == 1 else Not.of(sel)
        if if_one is if_zero:
            return if_one
        if isinstance(if_one, Const):
            # sel ? 1 : b == sel | b ;  sel ? 0 : b == ~sel & b
            return Or.of(sel, if_zero) if if_one.value else And.of(Not.of(sel), if_zero)
        if isinstance(if_zero, Const):
            # sel ? a : 1 == ~sel | a ;  sel ? a : 0 == sel & a
            return Or.of(Not.of(sel), if_one) if if_zero.value else And.of(sel, if_one)
        return Mux(sel, if_one, if_zero)

    def children(self) -> Tuple[Expr, ...]:
        return (self.sel, self.if_one, self.if_zero)

    def __repr__(self) -> str:
        return f"Mux({self.sel!r}, {self.if_one!r}, {self.if_zero!r})"
