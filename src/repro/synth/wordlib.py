"""Word-level operator library over expression vectors.

A *word* is a list of :class:`~repro.synth.expr.Expr`, LSB first.  These
helpers provide the datapath operators (adders, comparators, muxes, decoders)
needed to describe the 10GE-MAC-like circuit and the other benchmark designs
at register-transfer level before tech-mapping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .expr import And, Const, Expr, Mux, Not, Or, Xor, ZERO

__all__ = [
    "Word",
    "const_word",
    "resize",
    "mux_word",
    "and_word",
    "or_word",
    "xor_word",
    "not_word",
    "reduce_or",
    "reduce_and",
    "add",
    "inc",
    "sub",
    "eq",
    "eq_const",
    "ne",
    "lt",
    "decode",
    "onehot_mux",
]

Word = List[Expr]


def const_word(value: int, width: int) -> Word:
    """Constant word of *width* bits (LSB first)."""
    return [Const((value >> i) & 1) for i in range(width)]


def resize(word: Sequence[Expr], width: int) -> Word:
    """Zero-extend or truncate *word* to *width* bits."""
    word = list(word)
    if len(word) >= width:
        return word[:width]
    return word + [ZERO] * (width - len(word))


def mux_word(sel: Expr, if_one: Sequence[Expr], if_zero: Sequence[Expr]) -> Word:
    """Bitwise 2:1 word multiplexer."""
    if len(if_one) != len(if_zero):
        raise ValueError("mux_word operand width mismatch")
    return [Mux.of(sel, a, b) for a, b in zip(if_one, if_zero)]


def and_word(a: Sequence[Expr], b: Sequence[Expr]) -> Word:
    return [And.of(x, y) for x, y in zip(a, b)]


def or_word(a: Sequence[Expr], b: Sequence[Expr]) -> Word:
    return [Or.of(x, y) for x, y in zip(a, b)]


def xor_word(a: Sequence[Expr], b: Sequence[Expr]) -> Word:
    return [Xor.of(x, y) for x, y in zip(a, b)]


def not_word(a: Sequence[Expr]) -> Word:
    return [Not.of(x) for x in a]


def reduce_or(bits: Sequence[Expr]) -> Expr:
    """OR-reduce a word to a single bit."""
    return Or.of(*bits) if bits else ZERO


def reduce_and(bits: Sequence[Expr]) -> Expr:
    """AND-reduce a word to a single bit."""
    return And.of(*bits) if bits else Const(1)


def add(a: Sequence[Expr], b: Sequence[Expr], cin: Expr = ZERO) -> Tuple[Word, Expr]:
    """Ripple-carry addition; returns (sum_word, carry_out)."""
    if len(a) != len(b):
        raise ValueError("add operand width mismatch")
    carry = cin
    result: Word = []
    for x, y in zip(a, b):
        result.append(Xor.of(x, y, carry))
        carry = Or.of(And.of(x, y), And.of(carry, Xor.of(x, y)))
    return result, carry


def inc(a: Sequence[Expr], enable: Expr = Const(1)) -> Word:
    """Increment a word by 1 when *enable* (wraps around)."""
    carry: Expr = enable
    result: Word = []
    for x in a:
        result.append(Xor.of(x, carry))
        carry = And.of(x, carry)
    return result


def sub(a: Sequence[Expr], b: Sequence[Expr]) -> Tuple[Word, Expr]:
    """Two's-complement subtraction; returns (difference, borrow-free flag)."""
    diff, carry = add(a, not_word(b), cin=Const(1))
    return diff, carry


def eq(a: Sequence[Expr], b: Sequence[Expr]) -> Expr:
    """Word equality."""
    if len(a) != len(b):
        raise ValueError("eq operand width mismatch")
    return reduce_and([Not.of(Xor.of(x, y)) for x, y in zip(a, b)])


def eq_const(a: Sequence[Expr], value: int) -> Expr:
    """Word equality against an integer constant."""
    terms = []
    for i, x in enumerate(a):
        terms.append(x if (value >> i) & 1 else Not.of(x))
    return reduce_and(terms)


def ne(a: Sequence[Expr], b: Sequence[Expr]) -> Expr:
    return Not.of(eq(a, b))


def lt(a: Sequence[Expr], b: Sequence[Expr]) -> Expr:
    """Unsigned less-than ``a < b`` via the subtractor's borrow."""
    _, no_borrow = sub(list(a), list(b))
    return Not.of(no_borrow)


def decode(sel: Sequence[Expr]) -> List[Expr]:
    """Full decoder: 2**len(sel) one-hot outputs (*sel* is LSB first).

    Output *i* is high exactly when the select word equals *i*: iteration
    *k* consumes select bit *k* (weight ``2**k``), doubling the minterm list
    with the bit negated in the lower half and asserted in the upper half.
    """
    outputs: List[Expr] = [Const(1)]
    for bit in sel:
        inv = Not.of(bit)
        lower = [And.of(term, inv) for term in outputs]
        upper = [And.of(term, bit) for term in outputs]
        outputs = lower + upper
    return outputs


def onehot_mux(selects: Sequence[Expr], words: Sequence[Sequence[Expr]]) -> Word:
    """Word mux with one-hot select lines (OR of AND-gated words)."""
    if len(selects) != len(words):
        raise ValueError("onehot_mux select/word count mismatch")
    width = len(words[0])
    result: Word = []
    for bit in range(width):
        terms = [And.of(sel, word[bit]) for sel, word in zip(selects, words)]
        result.append(Or.of(*terms))
    return result
