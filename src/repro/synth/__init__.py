"""RTL abstraction and synthesis (the in-repo Synopsys DC substitute)."""

from . import wordlib
from .expr import ONE, ZERO, And, Const, Expr, Mux, Not, Or, Sig, Xor
from .module import Module, RegSpec
from .synthesis import DriveRules, TechMapper, synthesize

__all__ = [
    "wordlib",
    "ONE",
    "ZERO",
    "And",
    "Const",
    "Expr",
    "Mux",
    "Not",
    "Or",
    "Sig",
    "Xor",
    "Module",
    "RegSpec",
    "DriveRules",
    "TechMapper",
    "synthesize",
]
