"""End-to-end Functional De-Rating estimation flow (the paper's Fig. 1).

Two entry points:

* :func:`run_reference_flow` — the complete methodology on a circuit +
  workload: golden simulation, feature extraction, full flat statistical
  fault-injection campaign (the reference), model training on a fraction
  and evaluation against the rest.  This is what the paper's section IV
  does end to end.
* :class:`FdrEstimator` — the production use-case: train on a labelled
  subset of flip-flops and predict FDR for the *unlabelled* remainder
  ("the trained model can be used to estimate the FDR values of the
  remaining flip-flops"), with no second campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.workloads import Workload
from ..faultinjection.campaign import CampaignResult, StatisticalFaultCampaign
from ..faultinjection.classify import (
    AnyOutputCriterion,
    FailureCriterion,
    PacketInterfaceCriterion,
)
from ..features.dataset import Dataset
from ..features.extractor import build_dataset
from ..ml.base import BaseEstimator, clone
from ..ml.metrics import all_metrics
from ..ml.model_selection import train_test_split
from ..netlist.core import Netlist

__all__ = ["FlowReport", "run_reference_flow", "FdrEstimator"]


@dataclass
class FlowReport:
    """Everything produced by one end-to-end flow run."""

    dataset: Dataset
    campaign: CampaignResult
    train_indices: np.ndarray
    test_indices: np.ndarray
    train_predictions: np.ndarray
    test_predictions: np.ndarray
    train_metrics: Dict[str, float]
    test_metrics: Dict[str, float]

    @property
    def y_train(self) -> np.ndarray:
        return self.dataset.y[self.train_indices]

    @property
    def y_test(self) -> np.ndarray:
        return self.dataset.y[self.test_indices]


def run_reference_flow(
    netlist: Netlist,
    workload: Workload,
    model: BaseEstimator,
    n_injections: int = 170,
    train_size: float = 0.5,
    campaign_seed: int = 0,
    split_seed: int = 0,
    criterion: Optional[FailureCriterion] = None,
) -> FlowReport:
    """The paper's full methodology on one circuit/workload/model.

    Runs the flat campaign over *all* flip-flops so that the model can be
    validated against reference FDR values, then trains on a *train_size*
    fraction and evaluates on the remainder.

    Without an explicit *criterion*, streaming workloads (non-empty
    ``valid_nets``) get the paper's packet criterion; plain workloads (the
    generic burst testbenches, whose strobe list is empty and would mask
    every failure under the packet rules) are judged on their observed
    output nets instead.
    """
    if criterion is None:
        if workload.valid_nets:
            criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
        else:
            criterion = AnyOutputCriterion(nets=list(workload.data_nets))
    campaign_runner = StatisticalFaultCampaign(
        netlist, workload.testbench, criterion, active_window=workload.active_window
    )
    campaign = campaign_runner.run(n_injections=n_injections, seed=campaign_seed)
    dataset = build_dataset(netlist, campaign_runner.golden, campaign)
    estimator = FdrEstimator(model)
    return estimator.evaluate_split(dataset, campaign, train_size, split_seed)


class FdrEstimator:
    """Train-and-predict wrapper around any :mod:`repro.ml` regressor."""

    def __init__(self, model: BaseEstimator, clip: bool = True) -> None:
        self.model = model
        self.clip = clip

    def fit(self, dataset: Dataset, row_indices: Optional[Sequence[int]] = None) -> "FdrEstimator":
        """Fit on a dataset (optionally restricted to given rows)."""
        if row_indices is None:
            X, y = dataset.X, dataset.y
        else:
            idx = np.asarray(list(row_indices))
            X, y = dataset.X[idx], dataset.y[idx]
        self.fitted_ = clone(self.model)
        self.fitted_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict FDR values (clipped to [0, 1] when ``clip``)."""
        if not hasattr(self, "fitted_"):
            raise RuntimeError("FdrEstimator is not fitted")
        pred = self.fitted_.predict(np.asarray(X, dtype=np.float64))
        if self.clip:
            pred = np.clip(pred, 0.0, 1.0)
        return pred

    def predict_dataset(self, dataset: Dataset) -> Dict[str, float]:
        """Per-flip-flop FDR predictions keyed by instance name."""
        pred = self.predict(dataset.X)
        return {name: float(p) for name, p in zip(dataset.ff_names, pred)}

    def evaluate_split(
        self,
        dataset: Dataset,
        campaign: CampaignResult,
        train_size: float = 0.5,
        split_seed: int = 0,
    ) -> FlowReport:
        """Train/evaluate on a stratified split of a labelled dataset."""
        (
            X_train,
            X_test,
            y_train,
            y_test,
            idx_train,
            idx_test,
        ) = train_test_split(
            dataset.X,
            dataset.y,
            train_size=train_size,
            random_state=split_seed,
            stratify_bins=10,
        )
        self.fit(dataset, idx_train)
        train_pred = self.predict(X_train)
        test_pred = self.predict(X_test)
        return FlowReport(
            dataset=dataset,
            campaign=campaign,
            train_indices=idx_train,
            test_indices=idx_test,
            train_predictions=train_pred,
            test_predictions=test_pred,
            train_metrics=all_metrics(y_train, train_pred),
            test_metrics=all_metrics(y_test, test_pred),
        )

    def campaign_cost_saving(self, dataset: Dataset, train_size: float) -> Dict[str, float]:
        """The paper's headline economics: campaign cost vs training size.

        Returns the number of injections saved relative to a full flat
        campaign and the equivalent cost-reduction factor (2x at 50 %
        training, up to 5x at 20 %).
        """
        n_total = dataset.n_samples
        n_trained = int(round(train_size * n_total))
        n_injections = int(dataset.meta.get("n_injections", 0) or 0)
        return {
            "flip_flops_total": float(n_total),
            "flip_flops_injected": float(n_trained),
            "injections_saved": float((n_total - n_trained) * n_injections),
            "cost_reduction_factor": float(n_total) / max(1.0, float(n_trained)),
        }
