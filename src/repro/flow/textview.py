"""Plain-text reporting: tables and ASCII charts.

The paper presents results as a metric table (Table I) and as
prediction/error and learning-curve plots (Figs. 2-4).  Running headless,
this module renders the same artifacts as monospace text and CSV so every
figure series can be regenerated and inspected without matplotlib.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["format_table", "ascii_xy_plot", "ascii_series_plot", "series_to_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    border = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(border)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_xy_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Scatter plot of named (x, y) series using one glyph per series."""
    glyphs = "ox+*#@%&"
    all_x = [v for xs, _ in series.values() for v in xs]
    all_y = [v for _, ys in series.values() for v in ys]
    if not all_x:
        return "(empty plot)"
    x_min, x_max = min(all_x), max(all_x)
    if y_range is not None:
        y_min, y_max = y_range
    else:
        y_min, y_max = min(all_y), max(all_y)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, (xs, ys)) in zip(glyphs, series.items()):
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            clamped_row = min(max(row, 0), height - 1)
            grid[height - 1 - clamped_row][min(max(col, 0), width - 1)] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.3f}, {y_max:.3f}]  x: [{x_min:.3f}, {x_max:.3f}]")
    for glyph, name in zip(glyphs, series):
        lines.append(f"  {glyph} = {name}")
    lines.append("+" + "-" * width + "+")
    for row_cells in grid:
        lines.append("|" + "".join(row_cells) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def ascii_series_plot(
    x: Sequence[float],
    named_series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Line-style plot of several y-series over a shared x axis."""
    series = {name: (list(x), list(ys)) for name, ys in named_series.items()}
    return ascii_xy_plot(series, width=width, height=height, title=title, y_range=y_range)


def series_to_csv(columns: Dict[str, Sequence[object]]) -> str:
    """Columnar data as CSV text (used to persist figure series)."""
    names = list(columns)
    length = max(len(v) for v in columns.values()) if columns else 0
    lines = [",".join(names)]
    for i in range(length):
        row = []
        for name in names:
            values = columns[name]
            row.append(repr(values[i]) if i < len(values) else "")
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"
