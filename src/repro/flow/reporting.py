"""Deprecated alias for :mod:`repro.flow.textview`.

The module was renamed to avoid the ``report.py`` / ``reporting.py``
confusion: ``report`` builds the markdown reproduction report, ``textview``
renders monospace tables and ASCII charts.  Import from
``repro.flow.textview`` instead.
"""

from __future__ import annotations

import warnings

from .textview import (  # noqa: F401
    ascii_series_plot,
    ascii_xy_plot,
    format_table,
    series_to_csv,
)

__all__ = ["format_table", "ascii_xy_plot", "ascii_series_plot", "series_to_csv"]

warnings.warn(
    "repro.flow.reporting is deprecated; import from repro.flow.textview",
    DeprecationWarning,
    stacklevel=2,
)
