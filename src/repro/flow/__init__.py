"""End-to-end FDR estimation flow and reporting (the paper's Fig. 1)."""

from .estimation import FdrEstimator, FlowReport, run_reference_flow
from .report import generate_report
from .textview import ascii_series_plot, ascii_xy_plot, format_table, series_to_csv

__all__ = [
    "FdrEstimator",
    "FlowReport",
    "run_reference_flow",
    "generate_report",
    "ascii_series_plot",
    "ascii_xy_plot",
    "format_table",
    "series_to_csv",
]
