"""One-command reproduction report.

:func:`generate_report` runs the core experiments on a labelled dataset and
renders a single self-contained markdown document: Table I vs. the paper,
per-figure learning-curve tables, future-work models and the campaign
economics — the quickest way to eyeball a fresh reproduction run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..faultinjection.campaign import CampaignResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..experiments.fault_transfer import FaultTransferResult
    from ..experiments.transfer import TransferResult
from ..experiments.common import PAPER_TABLE1
from ..experiments.figures import FIGURE_MODELS, run_figure
from ..experiments.future_work import run_future_work
from ..experiments.table1 import run_table1
from ..features.dataset import Dataset

__all__ = ["generate_report"]

_METRICS = ("mae", "max", "rmse", "ev", "r2")


def _metric_row(name: str, values: dict) -> str:
    cells = " | ".join(f"{values[m]:.3f}" for m in _METRICS)
    return f"| {name} | {cells} |"


def generate_report(
    dataset: Dataset,
    cv_folds: int = 10,
    curve_sizes: Optional[List[float]] = None,
    seed: int = 0,
    include_future_work: bool = True,
    campaign: Optional[CampaignResult] = None,
    transfer: Optional["TransferResult"] = None,
    fault_transfer: Optional["FaultTransferResult"] = None,
) -> str:
    """Run Table I + Figs. 2-4 (+ future work) and render markdown.

    Pass the generating :class:`CampaignResult` to extend the campaign
    economics section with the engine's actual cost counters (forward runs,
    bit-parallel lane amortization, wall time); pass a
    :class:`~repro.experiments.transfer.TransferResult` to append the
    cross-circuit transfer matrix; pass a
    :class:`~repro.experiments.fault_transfer.FaultTransferResult` to
    append the SEU→MBU fault-model transfer table.
    """
    curve_sizes = curve_sizes or [0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    lines: List[str] = []
    circuit = dataset.meta.get("circuit", "?")
    n_inj = dataset.meta.get("n_injections", "?")
    lines.append("# Reproduction report")
    lines.append("")
    lines.append(
        f"Dataset: circuit `{circuit}`, {dataset.n_samples} flip-flops x "
        f"{dataset.n_features} features, {n_inj} injections per flip-flop, "
        f"cv = {cv_folds}, seed = {seed}."
    )
    lines.append("")

    table1 = run_table1(dataset, cv_folds=cv_folds, seed=seed)
    lines.append("## Table I")
    lines.append("")
    header = "| Model | " + " | ".join(m.upper() for m in _METRICS) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(_METRICS) + 1))
    for model, metrics in table1.rows.items():
        lines.append(_metric_row(model, metrics))
    lines.append("")
    lines.append("Paper reference:")
    lines.append("")
    lines.append(header)
    lines.append("|" + "---|" * (len(_METRICS) + 1))
    for model, metrics in PAPER_TABLE1.items():
        lines.append(_metric_row(model, metrics))
    lines.append("")
    lines.append(
        f"Shape holds (linear worst, k-NN ~ SVR): **{table1.shape_holds()}**"
    )
    lines.append("")

    for figure in sorted(FIGURE_MODELS):
        result = run_figure(
            dataset, figure, cv_folds=cv_folds, curve_sizes=curve_sizes, seed=seed
        )
        lines.append(f"## {figure} — {result.model_name}")
        lines.append("")
        lines.append(
            f"Example test fold at 50 % training: MAE of the fold = "
            f"{float(abs(result.test_error).mean()):.3f}, worst error = "
            f"{float(abs(result.test_error).max()):.3f}."
        )
        lines.append("")
        if result.curve is not None:
            lines.append("| training size | train R² | test R² |")
            lines.append("|---|---|---|")
            for size, tr, te in zip(
                result.curve.train_sizes,
                result.curve.mean_train(),
                result.curve.mean_test(),
            ):
                lines.append(f"| {size:.0%} | {tr:.3f} | {te:.3f} |")
            lines.append("")

    if include_future_work:
        future = run_future_work(dataset, cv_folds=cv_folds, seed=seed)
        lines.append("## Future-work models (paper section V)")
        lines.append("")
        lines.append(header)
        lines.append("|" + "---|" * (len(_METRICS) + 1))
        for model, metrics in future.rows.items():
            lines.append(_metric_row(model, metrics))
        lines.append("")
        lines.append(f"Best: **{future.best_model()}**")
        lines.append("")

    n_ffs = dataset.n_samples
    if isinstance(n_inj, int):
        lines.append("## Campaign economics")
        lines.append("")
        lines.append(
            f"Full flat campaign: {n_ffs} x {n_inj} = {n_ffs * n_inj} injections. "
            f"Training at 50 % saves {n_ffs * n_inj // 2} injections (2x); "
            f"training at 20 % saves {int(n_ffs * n_inj * 0.8)} (5x)."
        )
        lines.append("")
    if transfer is not None:
        lines.append("## Cross-circuit transfer")
        lines.append("")
        lines.append(
            f"Model: {transfer.model_name}; test R² per (train circuit, "
            "test circuit) pair — diagonal cells use the in-circuit 50 % "
            "split protocol."
        )
        lines.append("")
        lines.append("| train \\ test | " + " | ".join(transfer.circuits) + " |")
        lines.append("|" + "---|" * (len(transfer.circuits) + 1))
        for a in transfer.circuits:
            cells = " | ".join(f"{transfer.r2[a][b]:.3f}" for b in transfer.circuits)
            lines.append(f"| {a} | {cells} |")
        lines.append("")
        lines.append(
            f"Mean off-diagonal R²: **{transfer.mean_transfer_r2():.3f}** "
            f"over {len(transfer.circuits)} circuits."
        )
        lines.append("")
    if fault_transfer is not None:
        lines.append("## Fault-model transfer (SEU → " f"{fault_transfer.target_model})")
        lines.append("")
        lines.append(
            f"Models trained on `{fault_transfer.circuit}`'s SEU labels, "
            f"scored on an independent `{fault_transfer.target_model}` "
            f"campaign over the same {fault_transfer.n_samples} flip-flops "
            f"(mean FDR {fault_transfer.seu_mean_fdr:.3f} seu vs "
            f"{fault_transfer.target_mean_fdr:.3f} target). SEU columns use "
            "the in-circuit 50 % split protocol."
        )
        lines.append("")
        lines.append("| Model | SEU R² | SEU MAE | transfer R² | transfer MAE |")
        lines.append("|---|---|---|---|---|")
        for model, row in fault_transfer.rows.items():
            lines.append(
                f"| {model} | {row['seu_r2']:.3f} | {row['seu_mae']:.3f} "
                f"| {row['transfer_r2']:.3f} | {row['transfer_mae']:.3f} |"
            )
        lines.append("")
        lines.append(
            f"Best transfer model: **{fault_transfer.best_model()}**"
        )
        lines.append("")
    if campaign is not None:
        total_injections = sum(r.n_injections for r in campaign.results.values())
        amortization = total_injections / max(1, campaign.n_forward_runs)
        lines.append(
            f"Engine cost: {campaign.n_forward_runs} forward simulations for "
            f"{total_injections} injections — {amortization:.1f} injections per "
            f"run via bit-parallel time-slot batching — totalling "
            f"{campaign.total_lane_cycles} lane-cycles in "
            f"{campaign.wall_seconds:.1f} s accumulated wall time. "
            f"Results are served from the campaign store on re-runs "
            f"(zero simulations) and extended incrementally when the "
            f"injection budget grows."
        )
        lines.append("")
    return "\n".join(lines)
