"""repro — reproduction of Lange et al., "On the Estimation of Complex
Circuits Functional Failure Rate by Machine Learning Techniques" (DSN 2019).

The package is organized bottom-up, mirroring the paper's flow (Fig. 1):

``repro.netlist``
    Gate-level netlist model on a NanGate-like cell library, with
    structural Verilog I/O.
``repro.synth``
    RTL abstraction + technology mapping (the Synopsys DC substitute).
``repro.circuits``
    Benchmark designs, most importantly the 10GE-MAC-style core and its
    frame-streaming workload.
``repro.sim``
    The pluggable simulation substrate (:mod:`repro.sim.backend`): compiled
    bit-parallel, NumPy wide-batch and fused-sweep production engines plus
    the event-driven (0/1/X) simulator, testbench framework and activity
    tracing.  See ``docs/simulators.md`` for the backend comparison.
``repro.faultinjection``
    SEU campaigns: golden-trajectory replay, bit-parallel forward fault
    simulation, failure classification, FDR statistics.
``repro.campaigns``
    The parallel campaign engine: sharded multi-process execution with a
    persistent, resumable, content-addressed result store.
``repro.features``
    The paper's per-flip-flop feature set (structural / synthesis /
    dynamic) and dataset assembly.
``repro.ml``
    From-scratch models and model selection (Linear Least Squares, k-NN,
    ε-SVR + the future-work models; stratified CV, random+grid search,
    learning curves, the five paper metrics).
``repro.flow``
    The end-to-end estimation flow and reporting.
``repro.experiments``
    One runner per paper table/figure (Table I, Figs. 2-4) plus
    future-work, ablation and tuning extensions.
``repro.data``
    Cached dataset generation at three scales (tiny / mini / full).
``repro.verify``
    Differential verification: seeded circuit fuzzer, independent
    reference oracle, cross-backend diff harness with shrinking.
"""

# Defined before the submodule imports: repro.data records it as dataset
# provenance and imports it back from here.
__version__ = "1.4.0"

from . import (
    campaigns,
    circuits,
    experiments,
    faultinjection,
    features,
    flow,
    ml,
    netlist,
    sim,
    synth,
    verify,
)
from .data import DATASET_PRESETS, DatasetSpec, generate_dataset, get_dataset

__all__ = [
    "campaigns",
    "circuits",
    "experiments",
    "faultinjection",
    "features",
    "flow",
    "ml",
    "netlist",
    "sim",
    "synth",
    "verify",
    "DATASET_PRESETS",
    "DatasetSpec",
    "generate_dataset",
    "get_dataset",
    "__version__",
]
