"""NumPy wide-batch cycle backend: thousands of lanes per gate evaluation.

The compiled backend packs lanes into one Python integer, so every generated
statement pays CPython big-int overhead proportional to the lane count and
the practical batch width tops out around a few hundred lanes.  This backend
keeps the *same generated statements* (see
:func:`repro.sim.compiled.build_eval_source`) but stores net values as rows
of a ``(n_nets, n_words)`` ``uint64`` array: lane *j* lives in bit
``j % 64`` of word ``j // 64``.  One gate statement then evaluates
``64 × n_words`` lanes in a single vectorized NumPy operation, amortizing
the per-gate interpreter dispatch across the whole lane block — lifting the
efficient lane count from "one Python int" to thousands of lanes per pass.

The backend implements the full :class:`~repro.sim.backend.SimBackend`
protocol, including the packed-int views (``get`` / ``ff_state_packed`` /
``flip_ff`` take and return plain Python lane masks), so testbenches, the
fault injector and the differential harness drive it exactly like the
compiled engine.  Results are bit-identical — enforced per fuzz seed by
:mod:`repro.verify.diff`.

Trade-off: per-operation NumPy dispatch costs ~half a microsecond, so at
small lane counts (the 1-lane golden run, few-lane differential checks) the
compiled backend is faster.  This engine wins when campaigns push hundreds
to thousands of concurrent scenarios per forward run; see
``docs/simulators.md`` and ``benchmarks/bench_substrate.py`` for measured
crossover points.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..netlist.core import Cell, Netlist
from .backend import PackedLaneMixin
from .compiled import _TEMPLATES, build_eval_source, cached_codegen, cached_eval_fn
from .logic import lane_mask

__all__ = ["NumPyWideSimulator", "int_to_words", "words_to_int"]

_WORD_BITS = 64

#: NumPy-specific overrides of the shared gate templates.  ``m`` is all-ones
#: on every active lane, so ``x ^ m`` equals ``~x & m`` there at one NumPy
#: operation instead of two; bits beyond ``n_lanes`` may carry garbage, which
#: every packed-int readout masks away.  MUX2 uses the xor-select identity
#: ``a ^ ((a ^ b) & s)`` (three ops, no mask needed).
_NUMPY_TEMPLATES: Dict[str, str] = dict(
    _TEMPLATES,
    INV="v[{o}] = v[{i0}] ^ m",
    NAND2="v[{o}] = (v[{i0}] & v[{i1}]) ^ m",
    NAND3="v[{o}] = (v[{i0}] & v[{i1}] & v[{i2}]) ^ m",
    NAND4="v[{o}] = (v[{i0}] & v[{i1}] & v[{i2}] & v[{i3}]) ^ m",
    NOR2="v[{o}] = (v[{i0}] | v[{i1}]) ^ m",
    NOR3="v[{o}] = (v[{i0}] | v[{i1}] | v[{i2}]) ^ m",
    NOR4="v[{o}] = (v[{i0}] | v[{i1}] | v[{i2}] | v[{i3}]) ^ m",
    XNOR2="v[{o}] = (v[{i0}] ^ v[{i1}]) ^ m",
    MUX2="v[{o}] = v[{i0}] ^ ((v[{i0}] ^ v[{i1}]) & v[{i2}])",
    AOI21="v[{o}] = ((v[{i0}] & v[{i1}]) | v[{i2}]) ^ m",
    AOI22="v[{o}] = ((v[{i0}] & v[{i1}]) | (v[{i2}] & v[{i3}])) ^ m",
    OAI21="v[{o}] = ((v[{i0}] | v[{i1}]) & v[{i2}]) ^ m",
    OAI22="v[{o}] = ((v[{i0}] | v[{i1}]) & (v[{i2}] | v[{i3}])) ^ m",
)


def int_to_words(value: int, n_words: int) -> np.ndarray:
    """Split a packed lane mask into little-endian 64-bit words."""
    return np.frombuffer(
        value.to_bytes(n_words * 8, "little"), dtype="<u8"
    ).astype(np.uint64)


def words_to_int(words: np.ndarray) -> int:
    """Join little-endian 64-bit words back into a packed lane mask."""
    return int.from_bytes(np.ascontiguousarray(words, dtype="<u8").tobytes(), "little")


class NumPyWideSimulator(PackedLaneMixin):
    """Cycle-based wide-batch simulator for a mapped :class:`Netlist`.

    Parameters
    ----------
    netlist:
        The design to simulate.  Must validate (no combinational cycles).
    n_lanes:
        Number of parallel simulation lanes.  Internally rounded up to a
        whole number of 64-bit words; only the first *n_lanes* bits are ever
        reported through the packed-int API.

    Notes
    -----
    The evaluation/tick contract is identical to
    :class:`~repro.sim.compiled.CompiledSimulator`: drive inputs,
    :meth:`eval_comb`, observe, :meth:`tick` per cycle; clock nets are
    forced to 0 (cycle-based clocking).
    """

    name = "numpy"

    def __init__(self, netlist: Netlist, n_lanes: int = 1) -> None:
        netlist.validate()
        self.netlist = netlist

        self.net_index: Dict[str, int] = {}
        for i, net_name in enumerate(netlist.nets):
            self.net_index[net_name] = i

        self.flip_flops: List[Cell] = netlist.flip_flops()
        self.ff_index: Dict[str, int] = {ff.name: i for i, ff in enumerate(self.flip_flops)}
        self._ff_q: List[int] = [self.net_index[ff.output_net()] for ff in self.flip_flops]
        self._ff_d: List[int] = [
            self.net_index[ff.connections["D"]] for ff in self.flip_flops
        ]
        self._ff_rn: List[Optional[int]] = [
            self.net_index[ff.connections["RN"]] if "RN" in ff.connections else None
            for ff in self.flip_flops
        ]
        self._clock_nets = [self.net_index[c] for c in netlist.clocks if c in self.net_index]

        self._fallback_cells: List[Tuple[Callable, int, Tuple[int, ...]]] = []
        self._eval_fn = self._compile_eval()
        self._tick_fn = self._compile_tick()

        self.n_lanes = 0
        self.n_words = 0
        self.mask = np.zeros(0, dtype=np.uint64)
        self.values = np.zeros((0, 0), dtype=np.uint64)
        self.resize_lanes(n_lanes)

    # ------------------------------------------------------------ compiling

    def _compile_eval(self):
        # Same generated statements as the compiled backend (modulo the
        # `^ m` overrides above); `v` rows are uint64 word blocks here, and
        # every `& | ^` maps to a vectorized NumPy operation over the block.
        return cached_eval_fn(
            self.netlist,
            self.net_index,
            self._fallback_cells,
            templates=_NUMPY_TEMPLATES,
            flavor="numpy",
        )

    def _build_tick_source(self) -> str:
        # Unlike the compiled backend, reading `v[d]` yields a *view*, so
        # the read phase must copy: in `t = v[d]; ...; v[q1] = t0` a view of
        # a Q row that another flip-flop's D reads (shift registers) would
        # observe the new value.  `v[d] & v[rn]` already allocates.
        lines = ["def _tick(v, m):"]
        assigns = []
        for i, (q, d, rn) in enumerate(zip(self._ff_q, self._ff_d, self._ff_rn)):
            if rn is None:
                lines.append(f"    t{i} = v[{d}].copy()")
            else:
                lines.append(f"    t{i} = v[{d}] & v[{rn}]")
            assigns.append(f"    v[{q}] = t{i}")
        lines.extend(assigns)
        if not self._ff_q:
            lines.append("    pass")
        return "\n".join(lines)

    def _compile_tick(self):
        key = ("tick", "numpy", len(self.netlist.cells))
        return cached_codegen(self.netlist, key, "_tick", self._build_tick_source)

    # ------------------------------------------------- partitioned evaluation

    def compile_partition_evals(self, partitions):
        """Compile one ``_eval``-style callable per cell partition.

        Same contract as
        :meth:`repro.sim.compiled.CompiledSimulator.compile_partition_evals`,
        generated with this backend's ``^ m`` template overrides.
        """
        fns = []
        for cells in partitions:
            source = build_eval_source(
                self.netlist,
                self.net_index,
                self._fallback_cells,
                templates=_NUMPY_TEMPLATES,
                cells=cells,
            )
            namespace: Dict[str, object] = {}
            exec(source, namespace)  # noqa: S102 - generated from our own netlist
            fns.append(namespace["_eval"])
        return fns

    def compile_gated_tick(self):
        """Compile a clock edge gated per flip-flop by a golden-write mask.

        Same contract as
        :meth:`repro.sim.compiled.CompiledSimulator.compile_gated_tick`; the
        read phase copies D rows (views would observe shifted Q writes) and
        golden bits broadcast to whole ``uint64`` lane blocks.
        """
        key = ("tick", "numpy-gated", len(self.netlist.cells))
        return cached_codegen(
            self.netlist, key, "_tick_gated", self._build_gated_tick_source
        )

    def _build_gated_tick_source(self) -> str:
        lines = ["def _tick_gated(v, m, gw, gs):", "    z = m ^ m"]
        assigns = []
        for i, (q, d, rn) in enumerate(zip(self._ff_q, self._ff_d, self._ff_rn)):
            lines.append(f"    if (gw >> {i}) & 1:")
            lines.append(f"        t{i} = m if (gs >> {i}) & 1 else z")
            lines.append("    else:")
            if rn is None:
                lines.append(f"        t{i} = v[{d}].copy()")
            else:
                lines.append(f"        t{i} = v[{d}] & v[{rn}]")
            assigns.append(f"    v[{q}] = t{i}")
        lines.extend(assigns)
        if not self._ff_q:
            lines.append("    pass")
        return "\n".join(lines)

    # -------------------------------------------------------------- control

    def resize_lanes(self, n_lanes: int) -> None:
        """Change the lane count; clears all net values (reload state after)."""
        if n_lanes < 1:
            raise ValueError("need at least one lane")
        self.n_lanes = n_lanes
        self.n_words = (n_lanes + _WORD_BITS - 1) // _WORD_BITS
        self.mask = int_to_words(lane_mask(n_lanes), self.n_words)
        self.values = np.zeros((len(self.net_index), self.n_words), dtype=np.uint64)

    def reset(self, ff_value: int = 0) -> None:
        """Zero all nets and force every flip-flop output to *ff_value*."""
        self.values[:] = 0
        if ff_value:
            for q in self._ff_q:
                self.values[q] = self.mask
        self.eval_comb()

    def set_input(self, name: str, bit: int) -> None:
        """Drive primary input *name* with a scalar 0/1 on every lane."""
        idx = self.net_index[name]
        if bit:
            self.values[idx] = self.mask
        else:
            self.values[idx] = 0

    def set_input_lanes(self, name: str, value: int) -> None:
        """Drive primary input *name* with a per-lane packed-int value."""
        self.values[self.net_index[name]] = (
            int_to_words(value & lane_mask(self.n_lanes), self.n_words)
        )

    def eval_comb(self) -> None:
        """Propagate values through the combinational logic (one full pass)."""
        for clk in self._clock_nets:
            self.values[clk] = 0
        self._eval_fn(self.values, self.mask, self._fallback_cells)

    def tick(self) -> None:
        """Rising clock edge: latch D (gated by sync RN) into every Q."""
        self._tick_fn(self.values, self.mask)

    # apply_inputs / step / get_word / set_word / output_vector come from
    # PackedLaneMixin.

    # ------------------------------------------------------------ observing

    def get(self, net_name: str) -> int:
        """Packed per-lane value of a net (after :meth:`eval_comb`)."""
        return words_to_int(self.values[self.net_index[net_name]] & self.mask)

    def get_bit(self, net_name: str, lane: int = 0) -> int:
        """Value of a net on one lane."""
        word = int(self.values[self.net_index[net_name]][lane // _WORD_BITS])
        return (word >> (lane % _WORD_BITS)) & 1

    # ------------------------------------------------------- flip-flop state

    def ff_state_packed(self, lane: int = 0) -> int:
        """State of every flip-flop in one lane, packed one bit per FF."""
        word_idx = lane // _WORD_BITS
        shift = lane % _WORD_BITS
        packed = 0
        values = self.values
        for i, q in enumerate(self._ff_q):
            packed |= ((int(values[q][word_idx]) >> shift) & 1) << i
        return packed

    def load_ff_state_packed(self, packed: int) -> None:
        """Broadcast a packed single-lane FF state onto every lane."""
        values = self.values
        mask = self.mask
        for i, q in enumerate(self._ff_q):
            if (packed >> i) & 1:
                values[q] = mask
            else:
                values[q] = 0

    def flip_ff(self, ff: str | int, lanes: int) -> None:
        """XOR the Q output of a flip-flop on the selected *lanes* (SEU)."""
        index = self.ff_index[ff] if isinstance(ff, str) else ff
        q = self._ff_q[index]
        self.values[q] ^= int_to_words(lanes & lane_mask(self.n_lanes), self.n_words)

    def ff_divergence(self, golden_packed: int) -> int:
        """Per-lane mask of lanes whose FF state differs from *golden_packed*."""
        diff = np.zeros(self.n_words, dtype=np.uint64)
        values = self.values
        mask = self.mask
        for i, q in enumerate(self._ff_q):
            golden = mask if (golden_packed >> i) & 1 else 0
            diff |= values[q] ^ golden
        return words_to_int(diff & mask)

    # --------------------------------------------------------- lane algebra

    def broadcast(self, bit: int) -> np.ndarray:
        """Fresh lane-block vector with every lane equal to *bit*."""
        if bit:
            return self.mask.copy()
        return np.zeros(self.n_words, dtype=np.uint64)

    def lane_vec(self, lane: int) -> np.ndarray:
        """Lane-block vector with only *lane* set."""
        vec = np.zeros(self.n_words, dtype=np.uint64)
        vec[lane // _WORD_BITS] = np.uint64(1) << np.uint64(lane % _WORD_BITS)
        return vec

    def read_vec(self, value_idx: int) -> np.ndarray:
        """Copy of a net row (rows are views into the value array)."""
        return self.values[value_idx].copy()

    def vec_to_int(self, vec: np.ndarray) -> int:
        """Collapse a lane-block vector to a packed Python-int lane mask."""
        return words_to_int(vec & self.mask)

    def vec_any(self, vec: np.ndarray) -> bool:
        """True if any active lane of *vec* is set."""
        return bool((vec & self.mask).any())

    def vec_is_full(self, vec: np.ndarray) -> bool:
        """True if every active lane of *vec* is set."""
        return bool(((vec & self.mask) == self.mask).all())

    def gather_lanes(self, vec: np.ndarray, lanes) -> int:
        """Pack the selected lanes of *vec* into a dense Python-int mask."""
        packed = words_to_int(vec)
        out = 0
        for j, lane in enumerate(lanes):
            out |= ((packed >> lane) & 1) << j
        return out

    def scatter_lanes(self, vec: np.ndarray, lanes, bits: int) -> np.ndarray:
        """Copy of *vec* with lane ``lanes[j]`` set to bit *j* of *bits*."""
        packed = words_to_int(vec)
        for j, lane in enumerate(lanes):
            bit = 1 << lane
            if (bits >> j) & 1:
                packed |= bit
            else:
                packed &= ~bit
        return int_to_words(packed & lane_mask(self.n_lanes), self.n_words)

    def diverging_rows(self, row_golden, active: np.ndarray):
        """Active-lane divergence of value rows against broadcast golden bits.

        Same contract as
        :meth:`repro.sim.compiled.CompiledSimulator.diverging_rows`, computed
        as one vectorized pass over a ``(rows, n_words)`` block instead of a
        per-row Python loop.
        """
        if not row_golden:
            return self.broadcast(0), 0
        idxs = [idx for idx, _bit in row_golden]
        golden = np.zeros((len(row_golden), self.n_words), dtype=np.uint64)
        ones = np.fromiter(
            (bool(bit) for _idx, bit in row_golden), dtype=bool, count=len(row_golden)
        )
        golden[ones] = self.mask
        diff_block = (self.values[idxs] ^ golden) & active
        per_row = diff_block.any(axis=1)
        diff = np.bitwise_or.reduce(diff_block, axis=0)
        rows = int.from_bytes(np.packbits(per_row, bitorder="little").tobytes(), "little")
        return diff, rows

    # ----------------------------------------------------------------- misc

    @property
    def n_flip_flops(self) -> int:
        """Number of flip-flops in the design (lane-state width)."""
        return len(self.flip_flops)
