"""Event-driven gate-level simulator with three-valued (0/1/X) logic.

This engine plays the role of the commercial HDL simulator in the paper's
flow: a general-purpose, delay-aware, X-propagating reference simulator.  It
is used for small designs, for cross-checking the compiled cycle simulator,
and for experiments that need unknown-state propagation (e.g. start-up before
reset).  The fault campaigns use :class:`~repro.sim.compiled.CompiledSimulator`
instead, which is orders of magnitude faster but strictly two-valued.

The timing model is unit-delay: every gate output changes one time unit after
an input event; flip-flops sample D on the rising edge of their CK net and
drive Q one unit later.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..netlist.core import Cell, Netlist
from .logic import ONE, X, ZERO, LogicValue, eval3

__all__ = ["EventDrivenSimulator", "ClockGenerator"]

GATE_DELAY = 1


@dataclass(order=True)
class _Event:
    time: int
    serial: int
    net: str = field(compare=False)
    value: LogicValue = field(compare=False)


@dataclass
class ClockGenerator:
    """Square-wave description for a clock input net."""

    net: str
    period: int = 10
    start: int = 0

    def value_at(self, time: int) -> LogicValue:
        if time < self.start:
            return ZERO
        half = self.period // 2
        return ONE if ((time - self.start) // half) % 2 == 0 else ZERO

    def edges_until(self, t_end: int) -> List[Tuple[int, LogicValue]]:
        """All (time, value) transitions in ``[start, t_end)``."""
        events = []
        half = self.period // 2
        time = self.start
        value = ONE
        while time < t_end:
            events.append((time, value))
            value = ONE - value
            time += half
        return events


class EventDrivenSimulator:
    """Unit-delay, three-valued, event-driven simulator.

    All nets start at X, matching a power-up state before reset — the paper's
    testbench likewise begins with a reset phase before streaming frames.
    """

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.time = 0
        self.values: Dict[str, LogicValue] = {name: X for name in netlist.nets}
        self._queue: List[_Event] = []
        self._serial = 0
        self._probes: Dict[str, List[Callable[[int, str, LogicValue], None]]] = {}
        # Combinational fanout: net -> cells re-evaluated when the net changes.
        self._comb_fanout: Dict[str, List[Cell]] = {name: [] for name in netlist.nets}
        # Sequential fanout: clock net -> flip-flops sampled on its rising edge.
        self._clock_fanout: Dict[str, List[Cell]] = {}
        for cell in netlist.iter_cells():
            if cell.is_sequential:
                self._clock_fanout.setdefault(cell.connections["CK"], []).append(cell)
            else:
                for net in cell.input_nets():
                    self._comb_fanout[net].append(cell)
        # Tie cells never get input events; fire them once at t=0.
        for cell in netlist.iter_cells():
            if cell.ctype.is_tie:
                self.schedule(0, cell.output_net(), cell.ctype.evaluate([], mask=1))

    # ------------------------------------------------------------ scheduling

    def schedule(self, time: int, net: str, value: LogicValue) -> None:
        """Queue a value change on *net* at absolute *time*."""
        if time < self.time:
            raise ValueError(f"cannot schedule in the past ({time} < {self.time})")
        self._serial += 1
        heapq.heappush(self._queue, _Event(time, self._serial, net, value))

    def set_input(self, net: str, value: LogicValue, delay: int = 0) -> None:
        """Drive a primary input at ``now + delay``."""
        if not self.netlist.nets[net].is_input:
            raise ValueError(f"{net!r} is not a primary input")
        self.schedule(self.time + delay, net, value)

    def add_probe(self, net: str, callback: Callable[[int, str, LogicValue], None]) -> None:
        """Invoke *callback(time, net, value)* whenever *net* changes."""
        self._probes.setdefault(net, []).append(callback)

    # --------------------------------------------------------------- running

    def run_until(self, t_end: int) -> None:
        """Process events up to and including time *t_end*."""
        while self._queue and self._queue[0].time <= t_end:
            event = heapq.heappop(self._queue)
            self.time = event.time
            self._apply(event)
        self.time = max(self.time, t_end)

    def run_idle(self, t_limit: int = 1_000_000) -> None:
        """Run until the event queue drains (or *t_limit* is reached)."""
        while self._queue and self._queue[0].time <= t_limit:
            event = heapq.heappop(self._queue)
            self.time = event.time
            self._apply(event)

    def _apply(self, event: _Event) -> None:
        old = self.values[event.net]
        if old == event.value:
            return
        self.values[event.net] = event.value
        for callback in self._probes.get(event.net, ()):
            callback(self.time, event.net, event.value)
        for cell in self._comb_fanout[event.net]:
            inputs = [self.values[n] for n in cell.input_nets()]
            new_out = eval3(cell.ctype, inputs)
            out_net = cell.output_net()
            if new_out != self.values[out_net] or self._pending_on(out_net):
                self.schedule(self.time + GATE_DELAY, out_net, new_out)
        if event.net in self._clock_fanout and old != ONE and event.value == ONE:
            for ff in self._clock_fanout[event.net]:
                self._clock_ff(ff)

    def _pending_on(self, net: str) -> bool:
        return any(e.net == net for e in self._queue)

    def _clock_ff(self, ff: Cell) -> None:
        d_value = self.values[ff.connections["D"]]
        rn_net = ff.connections.get("RN")
        if rn_net is not None:
            rn_value = self.values[rn_net]
            if rn_value == ZERO:
                d_value = ZERO
            elif rn_value == X and d_value != ZERO:
                d_value = X
        self.schedule(self.time + GATE_DELAY, ff.output_net(), d_value)

    # ------------------------------------------------------------- observing

    def get(self, net: str) -> LogicValue:
        return self.values[net]

    def get_word(self, bus: str, width: int) -> Optional[int]:
        """Read ``bus[0..width-1]`` as an integer; ``None`` if any bit is X."""
        word = 0
        for bit in range(width):
            value = self.values[f"{bus}[{bit}]"]
            if value == X:
                return None
            word |= value << bit
        return word

    # ----------------------------------------------------------- conveniences

    def run_clocked(
        self,
        clock: ClockGenerator,
        n_cycles: int,
        stimulus: Optional[Callable[[int, "EventDrivenSimulator"], Mapping[str, LogicValue]]] = None,
        sample: Optional[Callable[[int, "EventDrivenSimulator"], None]] = None,
    ) -> None:
        """Drive *clock* for *n_cycles*, applying per-cycle stimulus.

        ``stimulus(cycle, sim)`` returns input assignments applied shortly
        after each falling edge (safely away from the sampling edge);
        ``sample(cycle, sim)`` is called just before each rising edge.
        """
        half = clock.period // 2
        for time, value in clock.edges_until(clock.start + n_cycles * clock.period):
            cycle = (time - clock.start) // clock.period
            if value == ONE:
                self.run_until(time - 1)
                if sample is not None:
                    sample(cycle, self)
            self.schedule(time, clock.net, value)
            if value == ZERO and stimulus is not None:
                assignments = stimulus(cycle, self)
                for net, logic_value in (assignments or {}).items():
                    self.schedule(time + 1, net, logic_value)
            self.run_until(time + half - 2)
        self.run_idle()
