"""Fused injection-sweep kernel: one generated function per (circuit, workload).

:meth:`~repro.faultinjection.injector.FaultInjector.run_batch` spends its
cycles in a Python-level loop that re-dispatches per cycle into the
simulator (``values[...]`` list indexing, ``eval_comb()``/``tick()`` calls,
criterion evaluation over a pair list, tap bookkeeping).  For sweep-heavy
campaigns that per-cycle interpreter churn is pure overhead: the netlist,
the workload's input/loopback layout, the failure criterion and the
early-retirement structure are all known *before* the first sweep runs.

:class:`FusedSweepKernel` therefore code-generates, once per
(circuit, workload, criterion) binding, a single specialized function that
runs the golden-trace replay and **all fault lanes of a sweep in one pass**:

* every net value is a Python *local variable* (``LOAD_FAST`` instead of
  list indexing),
* the gate statements are inlined in levelized order (same expression
  templates as the compiled backend),
* open-loop stimulus decode, loopback tap shifts, failure classification,
  latency capture, relevant-flip-flop divergence and early retirement are
  all inlined into the same loop body.

Lanes are packed into Python integers exactly like
:class:`~repro.sim.compiled.CompiledSimulator`, so verdicts and error
latencies are bit-identical to the compiled and numpy substrates — the
differential harness (:mod:`repro.verify.diff`) checks this on every fuzz
seed.  Select it with ``FaultInjector(..., backend="fused")``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from .compiled import _TEMPLATES
from .logic import lane_mask
from .testbench import GoldenTrace

__all__ = ["FusedSweepKernel"]


def _local(net_idx: int) -> str:
    """Local-variable name carrying the lane vector of net *net_idx*."""
    return f"n{net_idx}"


class FusedSweepKernel:
    """Specialized SEU-sweep executor generated for one workload binding.

    Parameters mirror what :class:`~repro.faultinjection.injector.FaultInjector`
    has already resolved: net *value indices* follow the canonical
    ``enumerate(netlist.nets)`` order shared by all backends.

    Parameters
    ----------
    netlist / golden:
        Design under test and its recorded fault-free trajectory.
    open_inputs:
        ``(schedule_bit, value_idx)`` pairs for inputs replayed open-loop
        from ``golden.applied_inputs`` (loopback targets excluded).
    clock_value_idx:
        Value indices of clock nets: held at 0 (cycle-based clocking).
    taps:
        ``(source_value_idx, target_value_idx, source_out_bit, delay)`` per
        loopback bit, fed reactively from the faulty run's own outputs.
    valid_pairs / data_pairs:
        The bound failure criterion (see
        :class:`~repro.faultinjection.classify.BoundCriterion`).
    relevant_pairs:
        ``(q_value_idx, ff_index)`` of flip-flops that can still influence
        the observables — the early-retirement divergence set.
    check_interval:
        Cycles between inlined early-retirement checks.
    """

    def __init__(
        self,
        netlist: Netlist,
        golden: GoldenTrace,
        *,
        open_inputs: Sequence[Tuple[int, int]],
        clock_value_idx: Sequence[int],
        taps: Sequence[Tuple[int, int, int, int]],
        valid_pairs: Sequence[Tuple[int, int]],
        data_pairs: Sequence[Tuple[int, int]],
        relevant_pairs: Sequence[Tuple[int, int]],
        check_interval: int = 8,
    ) -> None:
        self.netlist = netlist
        self.golden = golden
        self._taps = list(taps)
        self._n_ffs = len(netlist.flip_flops())
        self._check_interval = max(1, check_interval)
        net_index = {name: i for i, name in enumerate(netlist.nets)}
        clocks = set(clock_value_idx)
        self._open_inputs = [(b, i) for b, i in open_inputs if i not in clocks]
        self._clocks = sorted(clocks)
        self._valid_pairs = list(valid_pairs)
        self._data_pairs = list(data_pairs)
        self._relevant_pairs = list(relevant_pairs)
        self._fallbacks: List[object] = []
        self._fn = self._compile(net_index)

    # ------------------------------------------------------------ compiling

    def _gate_lines(self, net_index: Dict[str, int], indent: str) -> List[str]:
        """Inlined combinational settle: one statement per gate, on locals."""
        lines: List[str] = []
        for cell_name in self.netlist.topological_comb_order():
            cell = self.netlist.cells[cell_name]
            out = net_index[cell.output_net()]
            ins = [net_index[n] for n in cell.input_nets()]
            template = _TEMPLATES.get(cell.ctype.name)
            if template is None:
                args = ", ".join(_local(i) for i in ins)
                lines.append(
                    f"{indent}{_local(out)} = fb[{len(self._fallbacks)}]([{args}], m)"
                )
                self._fallbacks.append(cell.ctype.function)
                continue
            # Rewrite the shared `v[{o}] = ...v[{i0}]...` templates to act on
            # the per-net locals instead of the value array.
            local_template = template.replace("v[{", "n{").replace("}]", "}")
            fields = {"o": out}
            for pos, in_idx in enumerate(ins):
                fields[f"i{pos}"] = in_idx
            lines.append(indent + local_template.format(**fields))
        return lines

    def _compile(self, net_index: Dict[str, int]):
        netlist = self.netlist
        check = self._check_interval
        flip_flops = netlist.flip_flops()
        ind = "        "  # loop-body indent

        lines = [
            "def _sweep(cycle, end, m, flips, applied, gold_out, gold_ff,"
            " slots, latencies):",
            "    z = 0",
        ]
        for t in range(len(self._taps)):
            lines.append(f"    s{t} = slots[{t}]")
        # Golden-state restart + per-lane SEU flips.
        lines.append("    gs = gold_ff[cycle]")
        for ff_i, ff in enumerate(flip_flops):
            q = _local(net_index[ff.output_net()])
            lines.append(f"    {q} = m if (gs >> {ff_i}) & 1 else z")
            lines.append(f"    {q} ^= flips[{ff_i}]")
        for clk in self._clocks:
            lines.append(f"    {_local(clk)} = z")
        lines.append("    failed = z")
        lines.append("    c = cycle")
        lines.append("    while c < end:")
        # Open-loop stimulus decode.
        lines.append(f"{ind}vec = applied[c]")
        for bit_pos, idx in self._open_inputs:
            lines.append(f"{ind}{_local(idx)} = m if (vec >> {bit_pos}) & 1 else z")
        # Reactive loopback: targets read the delayed faulty outputs.
        for t, (_src, tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}{_local(tgt)} = s{t}[c % {delay}]")
        # Combinational settle, fully inlined.
        lines.extend(self._gate_lines(net_index, ind))
        # Failure criterion, fully inlined.
        lines.append(f"{ind}gv = gold_out[c]")
        lines.append(f"{ind}fail_c = z")
        if self._data_pairs:
            lines.append(f"{ind}beat = z")
        for vi, gb in self._valid_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= {_local(vi)} ^ g")
            if self._data_pairs:
                lines.append(f"{ind}beat |= g | {_local(vi)}")
        for di, gb in self._data_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= ({_local(di)} ^ g) & beat")
        lines.extend(
            [
                f"{ind}newly = fail_c & ~failed",
                f"{ind}if newly:",
                f"{ind}    failed |= newly",
                f"{ind}    lat = c - cycle",
                f"{ind}    while newly:",
                f"{ind}        low = newly & -newly",
                f"{ind}        latencies[low.bit_length() - 1] = lat",
                f"{ind}        newly ^= low",
            ]
        )
        # Shift the faulty outputs into the loopback pipelines.
        for t, (src, _tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}s{t}[c % {delay}] = {_local(src)}")
        # Two-phase tick: read every D before writing any Q.
        for ff_i, ff in enumerate(flip_flops):
            d = _local(net_index[ff.connections["D"]])
            if "RN" in ff.connections:
                rn = _local(net_index[ff.connections["RN"]])
                lines.append(f"{ind}t{ff_i} = {d} & {rn}")
            else:
                lines.append(f"{ind}t{ff_i} = {d}")
        for ff_i, ff in enumerate(flip_flops):
            lines.append(f"{ind}{_local(net_index[ff.output_net()])} = t{ff_i}")
        lines.append(f"{ind}c += 1")
        # Early retirement: every lane failed or provably re-converged.
        lines.append(f"{ind}if (c - cycle) % {check} == 0 or c == end:")
        chk = ind + "    "
        lines.append(f"{chk}gs = gold_ff[c]")
        lines.append(f"{chk}diff = z")
        for q_idx, ff_i in self._relevant_pairs:
            lines.append(
                f"{chk}diff |= {_local(q_idx)} ^ (m if (gs >> {ff_i}) & 1 else z)"
            )
        for t, (_src, _tgt, sb, delay) in enumerate(self._taps):
            lines.append(f"{chk}for past in range(max(0, c - {delay}), c):")
            lines.append(
                f"{chk}    diff |= s{t}[past % {delay}]"
                f" ^ (m if (gold_out[past] >> {sb}) & 1 else z)"
            )
        lines.append(f"{chk}if ((failed | ~diff) & m) == m:")
        lines.append(f"{chk}    break")
        lines.append("    return failed & m, c - cycle")

        namespace: Dict[str, object] = {"fb": self._fallbacks}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from our own netlist
        return namespace["_sweep"]

    # ------------------------------------------------------------------ API

    def run_sweep(
        self,
        cycle: int,
        end: int,
        ff_indices: Sequence[int],
    ) -> Tuple[int, Dict[int, int], int]:
        """Run one fused sweep: lane *j* flips ``ff_indices[j]`` at *cycle*.

        Returns ``(failed_mask, latencies, cycles_simulated)`` with the
        exact :meth:`FaultInjector.run_batch` semantics.
        """
        n = len(ff_indices)
        m = lane_mask(n)
        golden = self.golden
        flips = [0] * max(1, self._n_ffs)
        for lane, ff_idx in enumerate(ff_indices):
            flips[ff_idx] |= 1 << lane
        slots: List[List[int]] = []
        for _src, _tgt, out_bit, delay in self._taps:
            pipeline = [0] * delay
            for past in range(cycle - delay, cycle):
                if past >= 0:
                    bit = (golden.outputs[past] >> out_bit) & 1
                    pipeline[past % delay] = m if bit else 0
            slots.append(pipeline)
        latencies: Dict[int, int] = {}
        failed, cycles = self._fn(
            cycle,
            end,
            m,
            flips,
            golden.applied_inputs,
            golden.outputs,
            golden.ff_state,
            slots,
            latencies,
        )
        return failed, latencies, cycles
