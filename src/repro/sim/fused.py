"""Fused injection-sweep kernel: one generated function per (circuit, workload).

:meth:`~repro.faultinjection.injector.FaultInjector.run_batch` spends its
cycles in a Python-level loop that re-dispatches per cycle into the
simulator (``values[...]`` list indexing, ``eval_comb()``/``tick()`` calls,
criterion evaluation over a pair list, tap bookkeeping).  For sweep-heavy
campaigns that per-cycle interpreter churn is pure overhead: the netlist,
the workload's input/loopback layout, the failure criterion and the
early-retirement structure are all known *before* the first sweep runs.

:class:`FusedSweepKernel` therefore code-generates, once per
(circuit, workload, criterion) binding, a single specialized function that
runs the golden-trace replay and **all fault lanes of a sweep in one pass**:

* every net value is a Python *local variable* (``LOAD_FAST`` instead of
  list indexing),
* the gate statements are inlined in levelized order (same expression
  templates as the compiled backend),
* open-loop stimulus decode, loopback tap shifts, failure classification,
  latency capture, relevant-flip-flop divergence and early retirement are
  all inlined into the same loop body.

Lanes are packed into Python integers exactly like
:class:`~repro.sim.compiled.CompiledSimulator`, so verdicts and error
latencies are bit-identical to the compiled and numpy substrates — the
differential harness (:mod:`repro.verify.diff`) checks this on every fuzz
seed.  Select it with ``FaultInjector(..., backend="fused")``.

Two kernels are generated per binding: the fixed-cycle sweep
(:meth:`FusedSweepKernel.run_sweep`, one injection cycle per call) and the
adaptive-scheduler variant (:meth:`FusedSweepKernel.run_scheduled`), which
additionally inlines the **refill loop** — per-lane activation at each
injection's own cycle, retirement callbacks that free lanes back to the
pending queue, and fast-forward over idle stretches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from .compiled import _TEMPLATES
from .logic import lane_mask
from .testbench import GoldenTrace

__all__ = ["FusedSweepKernel"]


def _local(net_idx: int) -> str:
    """Local-variable name carrying the lane vector of net *net_idx*."""
    return f"n{net_idx}"


class FusedSweepKernel:
    """Specialized SEU-sweep executor generated for one workload binding.

    Parameters mirror what :class:`~repro.faultinjection.injector.FaultInjector`
    has already resolved: net *value indices* follow the canonical
    ``enumerate(netlist.nets)`` order shared by all backends.

    Parameters
    ----------
    netlist / golden:
        Design under test and its recorded fault-free trajectory.
    open_inputs:
        ``(schedule_bit, value_idx)`` pairs for inputs replayed open-loop
        from ``golden.applied_inputs`` (loopback targets excluded).
    clock_value_idx:
        Value indices of clock nets: held at 0 (cycle-based clocking).
    taps:
        ``(source_value_idx, target_value_idx, source_out_bit, delay)`` per
        loopback bit, fed reactively from the faulty run's own outputs.
    valid_pairs / data_pairs:
        The bound failure criterion (see
        :class:`~repro.faultinjection.classify.BoundCriterion`).
    relevant_pairs:
        ``(q_value_idx, ff_index)`` of flip-flops that can still influence
        the observables — the early-retirement divergence set.
    check_interval:
        Cycles between inlined early-retirement checks.
    """

    def __init__(
        self,
        netlist: Netlist,
        golden: GoldenTrace,
        *,
        open_inputs: Sequence[Tuple[int, int]],
        clock_value_idx: Sequence[int],
        taps: Sequence[Tuple[int, int, int, int]],
        valid_pairs: Sequence[Tuple[int, int]],
        data_pairs: Sequence[Tuple[int, int]],
        relevant_pairs: Sequence[Tuple[int, int]],
        check_interval: int = 8,
        tap_golden: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        self.netlist = netlist
        self.golden = golden
        self._taps = list(taps)
        self._n_ffs = len(netlist.flip_flops())
        self._check_interval = max(1, check_interval)
        net_index = {name: i for i, name in enumerate(netlist.nets)}
        clocks = set(clock_value_idx)
        self._open_inputs = [(b, i) for b, i in open_inputs if i not in clocks]
        self._clocks = sorted(clocks)
        self._valid_pairs = list(valid_pairs)
        self._data_pairs = list(data_pairs)
        self._relevant_pairs = list(relevant_pairs)
        self._fallbacks: List[object] = []
        self._net_index = net_index
        self._fn = self._compile(net_index)
        self._sched_fn = None  # scheduled-sweep kernel, compiled on demand
        #: Per tap: golden source-output bit per cycle (activation history).
        #: Shared with the injector's precomputed ``_LoopTap.golden_bits``
        #: when available; derived here otherwise.
        if tap_golden is not None:
            self._tap_golden = [list(bits) for bits in tap_golden]
        else:
            self._tap_golden = [
                [(golden.outputs[c] >> sb) & 1 for c in range(golden.n_cycles)]
                for (_src, _tgt, sb, _delay) in self._taps
            ]

    # ------------------------------------------------------------ compiling

    def _gate_lines(self, net_index: Dict[str, int], indent: str) -> List[str]:
        """Inlined combinational settle: one statement per gate, on locals."""
        lines: List[str] = []
        for cell_name in self.netlist.topological_comb_order():
            cell = self.netlist.cells[cell_name]
            out = net_index[cell.output_net()]
            ins = [net_index[n] for n in cell.input_nets()]
            template = _TEMPLATES.get(cell.ctype.name)
            if template is None:
                args = ", ".join(_local(i) for i in ins)
                lines.append(
                    f"{indent}{_local(out)} = fb[{len(self._fallbacks)}]([{args}], m)"
                )
                self._fallbacks.append(cell.ctype.function)
                continue
            # Rewrite the shared `v[{o}] = ...v[{i0}]...` templates to act on
            # the per-net locals instead of the value array.
            local_template = template.replace("v[{", "n{").replace("}]", "}")
            fields = {"o": out}
            for pos, in_idx in enumerate(ins):
                fields[f"i{pos}"] = in_idx
            lines.append(indent + local_template.format(**fields))
        return lines

    def _compile(self, net_index: Dict[str, int]):
        netlist = self.netlist
        check = self._check_interval
        flip_flops = netlist.flip_flops()
        ind = "        "  # loop-body indent

        lines = [
            "def _sweep(cycle, end, m, flips, applied, gold_out, gold_ff,"
            " slots, latencies):",
            "    z = 0",
        ]
        for t in range(len(self._taps)):
            lines.append(f"    s{t} = slots[{t}]")
        # Golden-state restart + per-lane SEU flips.
        lines.append("    gs = gold_ff[cycle]")
        for ff_i, ff in enumerate(flip_flops):
            q = _local(net_index[ff.output_net()])
            lines.append(f"    {q} = m if (gs >> {ff_i}) & 1 else z")
            lines.append(f"    {q} ^= flips[{ff_i}]")
        for clk in self._clocks:
            lines.append(f"    {_local(clk)} = z")
        lines.append("    failed = z")
        lines.append("    c = cycle")
        lines.append("    while c < end:")
        # Open-loop stimulus decode.
        lines.append(f"{ind}vec = applied[c]")
        for bit_pos, idx in self._open_inputs:
            lines.append(f"{ind}{_local(idx)} = m if (vec >> {bit_pos}) & 1 else z")
        # Reactive loopback: targets read the delayed faulty outputs.
        for t, (_src, tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}{_local(tgt)} = s{t}[c % {delay}]")
        # Combinational settle, fully inlined.
        lines.extend(self._gate_lines(net_index, ind))
        # Failure criterion, fully inlined.
        lines.append(f"{ind}gv = gold_out[c]")
        lines.append(f"{ind}fail_c = z")
        if self._data_pairs:
            lines.append(f"{ind}beat = z")
        for vi, gb in self._valid_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= {_local(vi)} ^ g")
            if self._data_pairs:
                lines.append(f"{ind}beat |= g | {_local(vi)}")
        for di, gb in self._data_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= ({_local(di)} ^ g) & beat")
        lines.extend(
            [
                f"{ind}newly = fail_c & ~failed",
                f"{ind}if newly:",
                f"{ind}    failed |= newly",
                f"{ind}    lat = c - cycle",
                f"{ind}    while newly:",
                f"{ind}        low = newly & -newly",
                f"{ind}        latencies[low.bit_length() - 1] = lat",
                f"{ind}        newly ^= low",
            ]
        )
        # Shift the faulty outputs into the loopback pipelines.
        for t, (src, _tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}s{t}[c % {delay}] = {_local(src)}")
        # Two-phase tick: read every D before writing any Q.
        for ff_i, ff in enumerate(flip_flops):
            d = _local(net_index[ff.connections["D"]])
            if "RN" in ff.connections:
                rn = _local(net_index[ff.connections["RN"]])
                lines.append(f"{ind}t{ff_i} = {d} & {rn}")
            else:
                lines.append(f"{ind}t{ff_i} = {d}")
        for ff_i, ff in enumerate(flip_flops):
            lines.append(f"{ind}{_local(net_index[ff.output_net()])} = t{ff_i}")
        lines.append(f"{ind}c += 1")
        # Early retirement: every lane failed or provably re-converged.
        lines.append(f"{ind}if (c - cycle) % {check} == 0 or c == end:")
        chk = ind + "    "
        lines.append(f"{chk}gs = gold_ff[c]")
        lines.append(f"{chk}diff = z")
        for q_idx, ff_i in self._relevant_pairs:
            lines.append(
                f"{chk}diff |= {_local(q_idx)} ^ (m if (gs >> {ff_i}) & 1 else z)"
            )
        for t, (_src, _tgt, sb, delay) in enumerate(self._taps):
            lines.append(f"{chk}for past in range(max(0, c - {delay}), c):")
            lines.append(
                f"{chk}    diff |= s{t}[past % {delay}]"
                f" ^ (m if (gold_out[past] >> {sb}) & 1 else z)"
            )
        lines.append(f"{chk}if ((failed | ~diff) & m) == m:")
        lines.append(f"{chk}    break")
        lines.append("    return failed & m, c - cycle")

        namespace: Dict[str, object] = {"fb": self._fallbacks}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from our own netlist
        return namespace["_sweep"]

    # ------------------------------------------------------------------ API

    def run_sweep(
        self,
        cycle: int,
        end: int,
        ff_indices: Sequence[object],
    ) -> Tuple[int, Dict[int, int], int]:
        """Run one fused sweep: lane *j* flips ``ff_indices[j]`` at *cycle*.

        A lane's flip spec is a flip-flop index or a tuple of indices (a
        multi-bit upset cluster — the whole cluster lands on one lane).
        Returns ``(failed_mask, latencies, cycles_simulated)`` with the
        exact :meth:`FaultInjector.run_batch` semantics.
        """
        n = len(ff_indices)
        m = lane_mask(n)
        golden = self.golden
        flips = [0] * max(1, self._n_ffs)
        for lane, spec in enumerate(ff_indices):
            for ff_idx in spec if isinstance(spec, tuple) else (spec,):
                flips[ff_idx] |= 1 << lane
        slots: List[List[int]] = []
        for _src, _tgt, out_bit, delay in self._taps:
            pipeline = [0] * delay
            for past in range(cycle - delay, cycle):
                if past >= 0:
                    bit = (golden.outputs[past] >> out_bit) & 1
                    pipeline[past % delay] = m if bit else 0
            slots.append(pipeline)
        latencies: Dict[int, int] = {}
        failed, cycles = self._fn(
            cycle,
            end,
            m,
            flips,
            golden.applied_inputs,
            golden.outputs,
            golden.ff_state,
            slots,
            latencies,
        )
        return failed, latencies, cycles

    # ------------------------------------------------------ scheduled sweeps

    def _compile_scheduled(self):
        """Generate the adaptive-scheduler variant of the sweep kernel.

        Same inlined cycle body as :meth:`run_sweep`'s kernel, plus the
        **refill loop**: an activation block (entered only on event cycles)
        that loads the golden flip-flop state, the SEU flips and the golden
        loopback history into freshly assigned lanes of the running batch,
        an ``active`` lane mask threaded through failure classification, and
        retirement callbacks that hand freed lanes back to the feeder so the
        pending-injection queue keeps the batch saturated.  Fast-forwards
        over stretches with no active lane.  One kernel invocation is one
        scheduler pass; verdicts are bit-identical to per-request
        :meth:`run_sweep` lanes.
        """
        netlist = self.netlist
        check = self._check_interval
        end = self.golden.n_cycles
        flip_flops = netlist.flip_flops()
        net_index = self._net_index
        ind = "        "  # loop-body indent

        lines = [
            "def _sweep_sched(m, feeder, applied, gold_out, gold_ff, slots,"
            " fail_cycle):",
            "    z = 0",
            "    active = z",
            "    failed = z",
            "    n_cyc = 0",
            "    lane_cyc = 0",
        ]
        for t in range(len(self._taps)):
            lines.append(f"    s{t} = slots[{t}]")
        # Every net local the loop reads must exist before the first cycle;
        # flip-flop outputs start as garbage-free zeros (lanes only matter
        # once activated, and activation overwrites them).
        for ff in flip_flops:
            lines.append(f"    {_local(net_index[ff.output_net()])} = z")
        for clk in self._clocks:
            lines.append(f"    {_local(clk)} = z")
        lines.append("    c = feeder.start_cycle()")
        lines.append("    next_ev = c")
        lines.append("    while True:")
        # Event block: deadline retirements + lane activations (refill).
        lines.append(f"{ind}if c == next_ev:")
        ev = ind + "    "
        lines.append(
            f"{ev}retire, am, gs, flips, hist, next_ev ="
            " feeder.on_cycle(c, active, failed, fail_cycle)"
        )
        lines.append(f"{ev}if retire:")
        lines.append(f"{ev}    active &= ~retire")
        lines.append(f"{ev}    failed &= ~retire")
        lines.append(f"{ev}if am:")
        act = ev + "    "
        lines.append(f"{act}nam = ~am")
        for ff_i, ff in enumerate(flip_flops):
            q = _local(net_index[ff.output_net()])
            lines.append(
                f"{act}{q} = ({q} & nam) | (am if (gs >> {ff_i}) & 1 else z)"
            )
            lines.append(f"{act}{q} ^= flips[{ff_i}]")
        for t, (_src, _tgt, _sb, delay) in enumerate(self._taps):
            for k in range(delay):
                lines.append(
                    f"{act}s{t}[{k}] = (s{t}[{k}] & nam)"
                    f" | (am if hist[{t}][{k}] else z)"
                )
        lines.append(f"{act}active |= am")
        # Fast-forward while no lane is live.
        lines.append(f"{ind}if active == 0:")
        lines.append(f"{ind}    c = feeder.skip(c)")
        lines.append(f"{ind}    if c < 0:")
        lines.append(f"{ind}        break")
        lines.append(f"{ind}    next_ev = c")
        lines.append(f"{ind}    continue")
        # Cycle body — identical to the naive kernel's.
        lines.append(f"{ind}vec = applied[c]")
        for bit_pos, idx in self._open_inputs:
            lines.append(f"{ind}{_local(idx)} = m if (vec >> {bit_pos}) & 1 else z")
        for t, (_src, tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}{_local(tgt)} = s{t}[c % {delay}]")
        lines.extend(self._gate_lines(net_index, ind))
        lines.append(f"{ind}gv = gold_out[c]")
        lines.append(f"{ind}fail_c = z")
        if self._data_pairs:
            lines.append(f"{ind}beat = z")
        for vi, gb in self._valid_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= {_local(vi)} ^ g")
            if self._data_pairs:
                lines.append(f"{ind}beat |= g | {_local(vi)}")
        for di, gb in self._data_pairs:
            lines.append(f"{ind}g = m if (gv >> {gb}) & 1 else z")
            lines.append(f"{ind}fail_c |= ({_local(di)} ^ g) & beat")
        lines.extend(
            [
                f"{ind}newly = fail_c & active & ~failed",
                f"{ind}if newly:",
                f"{ind}    failed |= newly",
                f"{ind}    while newly:",
                f"{ind}        low = newly & -newly",
                f"{ind}        fail_cycle[low.bit_length() - 1] = c",
                f"{ind}        newly ^= low",
            ]
        )
        for t, (src, _tgt, _sb, delay) in enumerate(self._taps):
            lines.append(f"{ind}s{t}[c % {delay}] = {_local(src)}")
        for ff_i, ff in enumerate(flip_flops):
            d = _local(net_index[ff.connections["D"]])
            if "RN" in ff.connections:
                rn = _local(net_index[ff.connections["RN"]])
                lines.append(f"{ind}t{ff_i} = {d} & {rn}")
            else:
                lines.append(f"{ind}t{ff_i} = {d}")
        for ff_i, ff in enumerate(flip_flops):
            lines.append(f"{ind}{_local(net_index[ff.output_net()])} = t{ff_i}")
        lines.append(f"{ind}c += 1")
        lines.append(f"{ind}n_cyc += 1")
        lines.append(f"{ind}lane_cyc += (active & m).bit_count()")
        # Retirement check (global cadence) and end-of-trace drain.
        lines.append(f"{ind}if c % {check} == 0 or c == {end}:")
        chk = ind + "    "
        lines.append(f"{chk}if c == {end}:")
        lines.append(f"{chk}    if active:")
        lines.append(f"{chk}        feeder.retire(active & m, failed, fail_cycle, c)")
        lines.append(f"{chk}    break")
        lines.append(f"{chk}gs = gold_ff[c]")
        lines.append(f"{chk}diff = z")
        for q_idx, ff_i in self._relevant_pairs:
            lines.append(
                f"{chk}diff |= {_local(q_idx)} ^ (m if (gs >> {ff_i}) & 1 else z)"
            )
        for t, (_src, _tgt, sb, delay) in enumerate(self._taps):
            lines.append(f"{chk}for past in range(max(0, c - {delay}), c):")
            lines.append(
                f"{chk}    diff |= s{t}[past % {delay}]"
                f" ^ (m if (gold_out[past] >> {sb}) & 1 else z)"
            )
        lines.append(f"{chk}retire = active & (failed | ~diff) & m")
        lines.append(f"{chk}if retire:")
        lines.append(f"{chk}    feeder.retire(retire, failed, fail_cycle, c)")
        lines.append(f"{chk}    active &= ~retire")
        lines.append(f"{chk}    failed &= ~retire")
        lines.append("    return n_cyc, lane_cyc")

        namespace: Dict[str, object] = {"fb": self._fallbacks}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from our own netlist
        return namespace["_sweep_sched"]

    def run_scheduled(
        self,
        requests: Sequence[Tuple[int, int, int]],
        verdicts: List[Tuple[bool, Optional[int]]],
        max_lanes: int = 256,
        horizon: Optional[int] = None,
        stats=None,
        progress=None,
    ) -> None:
        """Run ``(cycle, ff_index, key)`` injections through the refill kernel.

        *requests* must be sorted by cycle; ``verdicts[key]`` receives the
        ``(failed, latency)`` verdict of each request.  Lanes are activated
        at their own injection cycles and freed lanes are refilled from the
        pending queue; requests that find no free lane roll over to the next
        kernel pass.  *stats* (a
        :class:`~repro.faultinjection.scheduler.SchedulerStats`) is updated
        in place when given.
        """
        if self._sched_fn is None:
            self._sched_fn = self._compile_scheduled()
        golden = self.golden
        pending = list(requests)
        while pending:
            width = min(max_lanes, len(pending))
            m = lane_mask(width)
            feeder = _SweepFeeder(self, pending, width, horizon, verdicts, stats)
            slots = [[0] * delay for (_s, _t, _b, delay) in self._taps]
            fail_cycle = [0] * width
            n_cyc, lane_cyc = self._sched_fn(
                m,
                feeder,
                golden.applied_inputs,
                golden.outputs,
                golden.ff_state,
                slots,
                fail_cycle,
            )
            pending = feeder.deferred
            if stats is not None:
                stats.n_passes += 1
                stats.cycles_simulated += n_cyc
                stats.lane_cycles += lane_cyc
                stats.activations += feeder.n_activated
                stats.deferred += len(feeder.deferred)
            if progress is not None:
                progress(len(requests) - len(pending), len(requests))


class _SweepFeeder:
    """Pending-queue side of one scheduled kernel pass.

    The generated kernel calls back here at event cycles (pending injection
    cycles and per-lane horizon deadlines) to obtain activation plans, and
    at retirement checks to record verdicts and free lanes.  The feeder owns
    all per-lane bookkeeping so the generated code only moves masks.
    """

    def __init__(
        self,
        kernel: FusedSweepKernel,
        pending: Sequence[Tuple[int, int, int]],
        width: int,
        horizon: Optional[int],
        verdicts: List[Tuple[bool, Optional[int]]],
        stats,
    ) -> None:
        self.kernel = kernel
        self.pending = pending
        self.ptr = 0
        self.width = width
        self.horizon = horizon
        self.verdicts = verdicts
        self.stats = stats
        self.free: List[int] = list(range(width - 1, -1, -1))  # pop() -> lowest
        self.lane_req: List[Optional[Tuple[int, int, int]]] = [None] * width
        self.deadlines: Dict[int, List[Tuple[int, Tuple[int, int, int]]]] = {}
        self.deferred: List[Tuple[int, int, int]] = []
        self.n_activated = 0
        self._end = kernel.golden.n_cycles

    def start_cycle(self) -> int:
        return self.pending[0][0]

    def _next_event(self, after: int) -> int:
        """Next cycle the kernel must call :meth:`on_cycle` at (or the end)."""
        candidates = [self._end]
        if self.ptr < len(self.pending):
            candidates.append(self.pending[self.ptr][0])
        for deadline in self.deadlines:
            if deadline > after:
                candidates.append(deadline)
        return min(candidates)

    def skip(self, cycle: int) -> int:
        """Fast-forward target when no lane is active (-1 ends the pass)."""
        if self.ptr >= len(self.pending):
            return -1
        return self.pending[self.ptr][0]

    def _record(self, lane: int, failed: int, fail_cycle: List[int]) -> None:
        request = self.lane_req[lane]
        self.lane_req[lane] = None
        self.free.append(lane)
        if (failed >> lane) & 1:
            self.verdicts[request[2]] = (True, fail_cycle[lane] - request[0])
        else:
            self.verdicts[request[2]] = (False, None)

    def retire(self, retire_mask: int, failed: int, fail_cycle: List[int], cycle: int) -> None:
        """Record verdicts for retired lanes and hand their slots back."""
        bits = retire_mask
        while bits:
            low = bits & -bits
            self._record(low.bit_length() - 1, failed, fail_cycle)
            bits ^= low

    def on_cycle(
        self, cycle: int, active: int, failed: int, fail_cycle: List[int]
    ):
        """Deadline retirements + activation plan for *cycle*.

        Returns ``(retire, act_mask, golden_state, flips, history, next_ev)``
        with ``flips`` a per-flip-flop lane-mask list and ``history`` the
        golden loopback bits per (tap, slot index) for the activated lanes.
        """
        retire = 0
        for lane, request in self.deadlines.pop(cycle, []):
            # Stale entries point at lanes that retired early and were
            # refilled; only the original occupant expires here.
            if self.lane_req[lane] is request:
                retire |= 1 << lane
                self._record(lane, failed, fail_cycle)

        pending = self.pending
        n = len(pending)
        activated: List[Tuple[Tuple[int, int, int], int]] = []
        while self.ptr < n and pending[self.ptr][0] == cycle:
            if not self.free:
                break
            request = pending[self.ptr]
            self.ptr += 1
            lane = self.free.pop()
            self.lane_req[lane] = request
            activated.append((request, lane))
            if self.horizon is not None:
                deadline = request[0] + self.horizon
                if deadline < self._end:
                    self.deadlines.setdefault(deadline, []).append((lane, request))
        while self.ptr < n and pending[self.ptr][0] <= cycle:
            self.deferred.append(pending[self.ptr])  # no free lane: next pass
            self.ptr += 1

        act_mask = 0
        golden_state = 0
        flips: Optional[List[int]] = None
        history: Optional[List[List[int]]] = None
        if activated:
            self.n_activated += len(activated)
            kernel = self.kernel
            flips = [0] * max(1, kernel._n_ffs)
            for request, lane in activated:
                act_mask |= 1 << lane
                spec = request[1]
                for ff_idx in spec if isinstance(spec, tuple) else (spec,):
                    flips[ff_idx] |= 1 << lane
            golden_state = kernel.golden.ff_state[cycle]
            history = []
            for t, (_src, _tgt, _sb, delay) in enumerate(kernel._taps):
                tap_golden = kernel._tap_golden[t]
                arr = [0] * delay
                for past in range(cycle - delay, cycle):
                    if past >= 0:
                        arr[past % delay] = tap_golden[past]
                history.append(arr)
        return retire, act_mask, golden_state, flips, history, self._next_event(cycle)
