"""Signal-activity analysis and VCD export.

The paper's *dynamic* features come from "simulating the gate-level netlist
with the corresponding testbench and tracing the signal changes at the output
of the flip-flops".  :class:`ActivityTrace` computes exactly the three
per-flip-flop quantities the paper defines from a recorded
:class:`~repro.sim.testbench.GoldenTrace`:

``@0``
    fraction of the run spent at logic 0,
``@1``
    fraction of the run spent at logic 1,
``state changes``
    number of output transitions (0→1 plus 1→0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, TextIO

from .compiled import CompiledSimulator
from .testbench import GoldenTrace, Testbench

__all__ = ["ActivityTrace", "NetActivity", "collect_net_activity", "write_vcd"]


@dataclass
class ActivityTrace:
    """Per-flip-flop signal-activity statistics over a golden run."""

    ff_names: List[str]
    at_zero: List[float]
    at_one: List[float]
    state_changes: List[int]
    n_cycles: int

    @classmethod
    def from_golden(cls, trace: GoldenTrace) -> "ActivityTrace":
        """Derive activity statistics from a recorded golden trajectory.

        The result is cached on the trace object: dynamic-feature extraction
        and dataset assembly may ask for the same statistics several times,
        and the bit-sweep over the packed state vectors is the expensive
        part.  Golden traces are immutable once recorded, so the cache can
        never go stale.
        """
        cached = getattr(trace, "_activity_cache", None)
        if cached is not None:
            return cached
        activity = cls._compute(trace)
        trace._activity_cache = activity  # type: ignore[attr-defined]
        return activity

    @classmethod
    def _compute(cls, trace: GoldenTrace) -> "ActivityTrace":
        ones = trace.ff_ones_counts()
        toggles = trace.ff_toggle_counts()
        n = max(trace.n_cycles, 1)
        return cls(
            ff_names=list(trace.ff_names),
            at_zero=[(n - c) / n for c in ones],
            at_one=[c / n for c in ones],
            state_changes=toggles,
            n_cycles=trace.n_cycles,
        )

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Map flip-flop name to its three activity features."""
        return {
            name: {
                "at_zero": self.at_zero[i],
                "at_one": self.at_one[i],
                "state_changes": float(self.state_changes[i]),
            }
            for i, name in enumerate(self.ff_names)
        }


@dataclass(frozen=True)
class NetActivity:
    """Activity of one net over a workload run."""

    at_one: float
    toggle_rate: float


def collect_net_activity(testbench: Testbench) -> Dict[str, NetActivity]:
    """Per-net @1 ratios and toggle rates over a fault-free workload run.

    The flip-flop-level golden trace only records register outputs; this
    pass re-runs the workload observing *every* net (including internal
    combinational ones), which the extended feature set uses to estimate
    signal probabilities in a flip-flop's fan-in cone.
    """
    netlist = testbench.netlist
    sim = CompiledSimulator(netlist, n_lanes=1)
    sim.reset()
    in_index = {n: i for i, n in enumerate(testbench.input_names)}
    out_index = {n: i for i, n in enumerate(testbench.output_names)}
    taps = {
        id(path): [[0] * path.delay for _ in path.sources]
        for path in testbench.loopbacks
    }
    n_nets = len(sim.values)
    ones = [0] * n_nets
    toggles = [0] * n_nets
    previous = list(sim.values)
    n_cycles = testbench.n_cycles
    for cycle in range(n_cycles):
        vector = testbench.schedule[cycle]
        for path in testbench.loopbacks:
            slots = taps[id(path)]
            for i, dst in enumerate(path.targets):
                bit = slots[i][cycle % path.delay]
                k = in_index[dst]
                vector = (vector & ~(1 << k)) | (bit << k)
        for i, name in enumerate(testbench.input_names):
            sim.set_input(name, (vector >> i) & 1)
        sim.eval_comb()
        values = sim.values
        for idx in range(n_nets):
            value = values[idx]
            ones[idx] += value
            if value != previous[idx]:
                toggles[idx] += 1
                previous[idx] = value
        for path in testbench.loopbacks:
            slots = taps[id(path)]
            for i, src in enumerate(path.sources):
                slots[i][cycle % path.delay] = sim.get_bit(src)
        sim.tick()
    n = max(n_cycles, 1)
    return {
        name: NetActivity(at_one=ones[idx] / n, toggle_rate=toggles[idx] / n)
        for name, idx in sim.net_index.items()
    }


def _vcd_id(index: int) -> str:
    """Compact printable VCD identifier for signal *index*."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(chars)


def write_vcd(trace: GoldenTrace, stream: TextIO, timescale: str = "1 ns") -> None:
    """Dump the flip-flop trajectory of a golden run as a VCD waveform.

    Useful for eyeballing testbench behaviour in any standard waveform
    viewer; one timestep per clock cycle.
    """
    stream.write(f"$timescale {timescale} $end\n")
    stream.write("$scope module dut $end\n")
    ids = {}
    for i, name in enumerate(trace.ff_names):
        ids[i] = _vcd_id(i)
        safe = name.replace(" ", "_")
        stream.write(f"$var reg 1 {ids[i]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")
    previous = None
    for cycle in range(trace.n_cycles + 1):
        state = trace.ff_state[cycle]
        if previous is None:
            stream.write("#0\n$dumpvars\n")
            for i in range(len(trace.ff_names)):
                stream.write(f"{(state >> i) & 1}{ids[i]}\n")
            stream.write("$end\n")
        else:
            changed = state ^ previous
            if changed:
                stream.write(f"#{cycle}\n")
                while changed:
                    low = changed & -changed
                    i = low.bit_length() - 1
                    stream.write(f"{(state >> i) & 1}{ids[i]}\n")
                    changed ^= low
        previous = state
