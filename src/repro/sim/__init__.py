"""Simulation engines behind the pluggable cycle substrate.

Three production engines (compiled bit-parallel, NumPy wide-batch, fused
sweep kernel) plus the event-driven 0/1/X simulator, the testbench
framework, and activity tracing.  See :mod:`repro.sim.backend` for the
:class:`SimBackend` protocol and ``docs/simulators.md`` for when to use
which engine.
"""

from .activity import ActivityTrace, NetActivity, collect_net_activity, write_vcd
from .backend import BACKEND_NAMES, CYCLE_BACKENDS, SimBackend, available_backends, create_backend
from .compiled import CompiledSimulator
from .event import ClockGenerator, EventDrivenSimulator
from .fused import FusedSweepKernel
from .logic import ONE, X, ZERO, broadcast, eval3, extract_lane, lane_mask, popcount
from .testbench import GoldenTrace, LoopbackPath, ScheduleBuilder, Testbench
from .vectorized import NumPyWideSimulator

__all__ = [
    "ActivityTrace",
    "NetActivity",
    "collect_net_activity",
    "write_vcd",
    "BACKEND_NAMES",
    "CYCLE_BACKENDS",
    "SimBackend",
    "available_backends",
    "create_backend",
    "CompiledSimulator",
    "NumPyWideSimulator",
    "FusedSweepKernel",
    "ClockGenerator",
    "EventDrivenSimulator",
    "ONE",
    "X",
    "ZERO",
    "broadcast",
    "eval3",
    "extract_lane",
    "lane_mask",
    "popcount",
    "GoldenTrace",
    "LoopbackPath",
    "ScheduleBuilder",
    "Testbench",
]
