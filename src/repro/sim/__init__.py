"""Simulation engines: compiled bit-parallel cycle sim and event-driven sim."""

from .activity import ActivityTrace, NetActivity, collect_net_activity, write_vcd
from .compiled import CompiledSimulator
from .event import ClockGenerator, EventDrivenSimulator
from .logic import ONE, X, ZERO, broadcast, eval3, extract_lane, lane_mask, popcount
from .testbench import GoldenTrace, LoopbackPath, ScheduleBuilder, Testbench

__all__ = [
    "ActivityTrace",
    "NetActivity",
    "collect_net_activity",
    "write_vcd",
    "CompiledSimulator",
    "ClockGenerator",
    "EventDrivenSimulator",
    "ONE",
    "X",
    "ZERO",
    "broadcast",
    "eval3",
    "extract_lane",
    "lane_mask",
    "popcount",
    "GoldenTrace",
    "LoopbackPath",
    "ScheduleBuilder",
    "Testbench",
]
