"""Logic-value algebra for the simulators.

Two representations are used across the code base:

* **Three-valued scalars** (:data:`ZERO`, :data:`ONE`, :data:`X`) for the
  event-driven simulator, where unknown start-up state must propagate.
* **Bit-parallel integers** for the compiled cycle simulator, where every bit
  lane of a Python integer is an independent two-valued simulation run (the
  trick that makes the paper's 170-injections-per-flip-flop campaign
  tractable in pure Python).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Sequence, Tuple

from ..netlist.cells import CellType

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "LogicValue",
    "resolve3",
    "eval3",
    "lane_mask",
    "broadcast",
    "extract_lane",
    "popcount",
]

ZERO = 0
ONE = 1
#: The unknown value of three-valued simulation.
X = 2

LogicValue = int

_VALID = (ZERO, ONE, X)


def lane_mask(n_lanes: int) -> int:
    """All-ones mask covering *n_lanes* bit lanes."""
    if n_lanes < 1:
        raise ValueError("need at least one lane")
    return (1 << n_lanes) - 1


def broadcast(bit: int, mask: int) -> int:
    """Replicate a scalar 0/1 across every lane of *mask*."""
    return mask if bit else 0


def extract_lane(value: int, lane: int) -> int:
    """Read one lane out of a bit-parallel value."""
    return (value >> lane) & 1


def popcount(value: int) -> int:
    """Number of set bits (lanes) in *value*."""
    return bin(value).count("1")


def resolve3(values: Sequence[LogicValue]) -> LogicValue:
    """Resolve multiple three-valued contributions (wired, for buses).

    Agreeing drivers keep their value; disagreement or any X yields X.
    """
    result = None
    for value in values:
        if value == X:
            return X
        if result is None:
            result = value
        elif result != value:
            return X
    return X if result is None else result


_EVAL3_CACHE: Dict[Tuple[str, Tuple[LogicValue, ...]], LogicValue] = {}


def eval3(ctype: CellType, inputs: Sequence[LogicValue]) -> LogicValue:
    """Evaluate a combinational cell under three-valued inputs.

    Exact X-propagation: the unknown inputs are enumerated over both binary
    assignments; if every assignment produces the same output the gate masks
    the unknowns (e.g. ``AND2(0, X) == 0``), otherwise the output is X.
    """
    inputs = tuple(inputs)
    for value in inputs:
        if value not in _VALID:
            raise ValueError(f"invalid logic value {value!r}")
    key = (ctype.name, inputs)
    cached = _EVAL3_CACHE.get(key)
    if cached is not None:
        return cached
    x_positions = [i for i, v in enumerate(inputs) if v == X]
    if not x_positions:
        result = ctype.evaluate(list(inputs), mask=1)
    else:
        outcomes = set()
        scratch = list(inputs)
        for assignment in product((ZERO, ONE), repeat=len(x_positions)):
            for pos, bit in zip(x_positions, assignment):
                scratch[pos] = bit
            outcomes.add(ctype.evaluate(scratch, mask=1))
            if len(outcomes) > 1:
                break
        result = outcomes.pop() if len(outcomes) == 1 else X
    _EVAL3_CACHE[key] = result
    return result
