"""Pluggable cycle-simulation substrate: the :class:`SimBackend` protocol.

Everything above the simulators — testbenches, the fault injector, the
campaign engine, the differential harness — drives a *cycle backend* through
the same small surface: drive inputs, settle combinational logic, observe
nets, clock the registers, and manipulate flip-flop state per lane.  This
module names that surface (:class:`SimBackend`) and keeps the registry that
maps backend names to implementations:

``compiled``
    :class:`~repro.sim.compiled.CompiledSimulator` — generated Python code,
    one statement per gate, lanes packed into the bits of a Python integer.
    Best at small lane counts (the campaign default is 256 lanes).
``numpy``
    :class:`~repro.sim.vectorized.NumPyWideSimulator` — the same generated
    statements evaluated over a ``uint64`` lane-block array, so one gate
    evaluation covers thousands of lanes and the per-gate interpreter
    overhead is amortized across the whole block.
``fused``
    Not a cycle backend: :class:`~repro.sim.fused.FusedSweepKernel`
    code-generates one specialized function per (circuit, workload) that
    runs an *entire injection sweep* — stimulus replay, gate evaluation,
    failure classification, loopback taps and early retirement — in a
    single pass with net values held in Python locals.  It is selected
    through :class:`~repro.faultinjection.injector.FaultInjector`
    (``backend="fused"``), never instantiated via :func:`create_backend`.

Lane algebra
------------
Fault-simulation code is generic over the lane representation: a *lane
vector* is an opaque value supporting ``& | ^ ~`` (a Python ``int`` for the
compiled backend, a ``uint64`` ndarray for the NumPy backend).  The protocol
methods :meth:`SimBackend.broadcast`, :meth:`SimBackend.lane_vec`,
:meth:`SimBackend.read_vec`, :meth:`SimBackend.vec_to_int`,
:meth:`SimBackend.vec_any` and :meth:`SimBackend.vec_is_full` are the only
places a consumer needs to care which representation it is holding.  The
adaptive injection scheduler adds three more ops to the algebra:
:meth:`SimBackend.gather_lanes` / :meth:`SimBackend.scatter_lanes` move
individual lanes between vectors (lane compaction and mixed-cycle refill),
and :meth:`SimBackend.diverging_rows` probes many net rows against golden
bits at once (the divergence frontier behind cone-gated evaluation).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.core import Cell, Netlist

__all__ = [
    "SimBackend",
    "PackedLaneMixin",
    "BACKEND_NAMES",
    "CYCLE_BACKENDS",
    "available_backends",
    "create_backend",
]

#: Every backend selectable through ``--backend`` / ``FaultInjector``.
BACKEND_NAMES: Tuple[str, ...] = ("compiled", "numpy", "fused")

#: Backends that implement the full :class:`SimBackend` cycle protocol
#: (``fused`` operates at sweep granularity instead).
CYCLE_BACKENDS: Tuple[str, ...] = ("compiled", "numpy")


@runtime_checkable
class SimBackend(Protocol):
    """Structural interface of a bit-parallel cycle simulator.

    Implementations simulate *n_lanes* independent two-valued circuit
    instances per pass.  All lane-mask arguments and return values of the
    ``*_packed``/``*_int`` methods are plain Python integers (bit *j* = lane
    *j*) regardless of the backend's internal lane representation.
    """

    #: Registry name of the backend ("compiled", "numpy", ...).
    name: str
    netlist: "Netlist"
    n_lanes: int
    #: All-ones lane vector in the backend's native representation.
    mask: object
    #: Net name -> index into :attr:`values`.
    net_index: Dict[str, int]
    #: Per-net lane vectors, indexed by :attr:`net_index`.  Rows may be
    #: *assigned* (``values[i] = vec``) with backend-native vectors; use
    #: :meth:`read_vec` instead of reading rows that will be stored.
    values: object
    flip_flops: List["Cell"]
    ff_index: Dict[str, int]

    # ------------------------------------------------------------- control
    def reset(self, ff_value: int = 0) -> None: ...
    def resize_lanes(self, n_lanes: int) -> None: ...
    def set_input(self, name: str, bit: int) -> None: ...
    def set_input_lanes(self, name: str, value: int) -> None: ...
    def apply_inputs(self, assignments: Mapping[str, int]) -> None: ...
    def eval_comb(self) -> None: ...
    def tick(self) -> None: ...

    # ----------------------------------------------------------- observing
    def get(self, net_name: str) -> int: ...
    def get_bit(self, net_name: str, lane: int = 0) -> int: ...
    def output_vector(self, lane: int = 0) -> int: ...

    # ------------------------------------------------------ flip-flop state
    def ff_state_packed(self, lane: int = 0) -> int: ...
    def load_ff_state_packed(self, packed: int) -> None: ...
    def flip_ff(self, ff: "str | int", lanes: int) -> None: ...

    # --------------------------------------------------------- lane algebra
    def broadcast(self, bit: int) -> object:
        """A lane vector with every lane set to *bit* (fresh, safe to keep)."""
        ...

    def lane_vec(self, lane: int) -> object:
        """A lane vector with only *lane* set."""
        ...

    def read_vec(self, value_idx: int) -> object:
        """Copy of ``values[value_idx]`` that later writes cannot alias."""
        ...

    def vec_to_int(self, vec: object) -> int:
        """Collapse a lane vector to a packed Python-int lane mask."""
        ...

    def vec_any(self, vec: object) -> bool:
        """True if any active lane of *vec* is set."""
        ...

    def vec_is_full(self, vec: object) -> bool:
        """True if every active lane of *vec* is set."""
        ...

    def gather_lanes(self, vec: object, lanes: "Sequence[int]") -> int:
        """Pack lanes ``lanes[j]`` of *vec* into bit *j* of a Python int.

        The lane-compaction primitive: the adaptive injection scheduler
        gathers the per-lane state of surviving lanes before repacking a
        drained batch into a narrower one (see
        :mod:`repro.faultinjection.scheduler`).
        """
        ...

    def scatter_lanes(self, vec: object, lanes: "Sequence[int]", bits: int) -> object:
        """Copy of *vec* with lane ``lanes[j]`` set to bit *j* of *bits*.

        Inverse of :meth:`gather_lanes`; writes repacked or freshly
        activated per-lane state into a lane vector without touching the
        other lanes.
        """
        ...

    def diverging_rows(
        self, row_golden: "Sequence[Tuple[int, int]]", active: object
    ) -> "Tuple[object, int]":
        """Active-lane divergence of value rows vs. broadcast golden bits.

        For ``(value_idx, golden_bit)`` pairs returns ``(diff, rows)``:
        *diff* is the lane vector of active lanes where any row deviates and
        bit *k* of *rows* marks row *k* as deviating — the per-flip-flop
        frontier probe behind cone-gated evaluation.
        """
        ...


class PackedLaneMixin:
    """Representation-independent conveniences shared by cycle backends.

    Every method here is written purely against the :class:`SimBackend`
    surface (``set_input`` / ``get_bit`` / ``eval_comb`` / ``tick``), so
    backends inherit one definition instead of keeping copies that could
    drift apart.
    """

    def apply_inputs(self, assignments: Mapping[str, int]) -> None:
        """Drive several inputs with scalar values at once."""
        for name, bit in assignments.items():
            self.set_input(name, bit)

    def step(self, assignments: Mapping[str, int] | None = None) -> None:
        """Convenience: drive inputs, settle logic, clock the registers."""
        if assignments:
            self.apply_inputs(assignments)
        self.eval_comb()
        self.tick()

    def get_word(self, bus: str, width: int, lane: int = 0) -> int:
        """Read nets ``bus[0] .. bus[width-1]`` of one lane as an integer."""
        word = 0
        for bit in range(width):
            word |= self.get_bit(f"{bus}[{bit}]", lane) << bit
        return word

    def set_word(self, bus: str, width: int, value: int) -> None:
        """Drive input nets ``bus[0..width-1]`` from an integer (broadcast)."""
        for bit in range(width):
            self.set_input(f"{bus}[{bit}]", (value >> bit) & 1)

    def output_vector(self, lane: int = 0) -> int:
        """All primary outputs of one lane, packed in ``netlist.outputs`` order."""
        packed = 0
        for j, name in enumerate(self.netlist.outputs):
            packed |= self.get_bit(name, lane) << j
        return packed


def _make_compiled(netlist: "Netlist", n_lanes: int) -> SimBackend:
    from .compiled import CompiledSimulator

    return CompiledSimulator(netlist, n_lanes=n_lanes)


def _make_numpy(netlist: "Netlist", n_lanes: int) -> SimBackend:
    from .vectorized import NumPyWideSimulator

    return NumPyWideSimulator(netlist, n_lanes=n_lanes)


_FACTORIES: Dict[str, Callable[["Netlist", int], SimBackend]] = {
    "compiled": _make_compiled,
    "numpy": _make_numpy,
}


def available_backends() -> List[str]:
    """Names of the instantiable cycle backends."""
    return sorted(_FACTORIES)


def create_backend(name: str, netlist: "Netlist", n_lanes: int = 1) -> SimBackend:
    """Instantiate the cycle backend *name* for *netlist*.

    ``"fused"`` is rejected here on purpose: the fused engine is a sweep
    kernel bound to a (circuit, workload) pair, not a free-standing cycle
    simulator — select it via ``FaultInjector(..., backend="fused")``.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        if name == "fused":
            raise ValueError(
                "'fused' is a sweep-level engine; select it through "
                "FaultInjector(backend='fused') instead of create_backend()"
            )
        raise ValueError(f"unknown backend {name!r}; available: {available_backends()}")
    return factory(netlist, n_lanes)
