"""Compiled, levelized, bit-parallel cycle simulator.

This is the reference production backend of the simulation substrate (see
:mod:`repro.sim.backend` for the :class:`SimBackend` protocol and the
registry).  The netlist's combinational logic is levelized (topologically
ordered) once and translated into a single generated Python function — one
statement per gate, operating on Python integers whose bit lanes are
independent simulation runs.  A clock ``tick`` latches every flip-flop
simultaneously (two-phase: all next states are computed before any Q is
updated).

With *n* lanes, one pass of the generated code simulates *n* circuit
instances at once.  Because every gate evaluation is a CPython big-int
operation, cost grows with the integer width: the sweet spot is a few
hundred lanes (the campaign default is 256), which is what makes the paper's
full flat campaign (≈1054 flip-flops × 170 injections) feasible in pure
Python.  For thousands of lanes per pass use the NumPy wide-batch backend
(:class:`~repro.sim.vectorized.NumPyWideSimulator`), which evaluates the
same generated statements over ``uint64`` lane-block arrays; for whole
injection sweeps use the fused kernel (:mod:`repro.sim.fused`).

Clock handling is cycle-based: clock nets are forced to 0 and every call to
:meth:`CompiledSimulator.tick` represents one rising edge.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netlist.core import Cell, Netlist, NetlistError
from .backend import PackedLaneMixin
from .logic import broadcast, lane_mask

__all__ = [
    "CompiledSimulator",
    "build_eval_source",
    "cached_codegen",
    "cached_eval_fn",
]

# Expression templates per library cell type; {o} output index, {i0}.. inputs.
_TEMPLATES: Dict[str, str] = {
    "INV": "v[{o}] = ~v[{i0}] & m",
    "BUF": "v[{o}] = v[{i0}]",
    "AND2": "v[{o}] = v[{i0}] & v[{i1}]",
    "AND3": "v[{o}] = v[{i0}] & v[{i1}] & v[{i2}]",
    "AND4": "v[{o}] = v[{i0}] & v[{i1}] & v[{i2}] & v[{i3}]",
    "NAND2": "v[{o}] = ~(v[{i0}] & v[{i1}]) & m",
    "NAND3": "v[{o}] = ~(v[{i0}] & v[{i1}] & v[{i2}]) & m",
    "NAND4": "v[{o}] = ~(v[{i0}] & v[{i1}] & v[{i2}] & v[{i3}]) & m",
    "OR2": "v[{o}] = v[{i0}] | v[{i1}]",
    "OR3": "v[{o}] = v[{i0}] | v[{i1}] | v[{i2}]",
    "OR4": "v[{o}] = v[{i0}] | v[{i1}] | v[{i2}] | v[{i3}]",
    "NOR2": "v[{o}] = ~(v[{i0}] | v[{i1}]) & m",
    "NOR3": "v[{o}] = ~(v[{i0}] | v[{i1}] | v[{i2}]) & m",
    "NOR4": "v[{o}] = ~(v[{i0}] | v[{i1}] | v[{i2}] | v[{i3}]) & m",
    "XOR2": "v[{o}] = v[{i0}] ^ v[{i1}]",
    "XNOR2": "v[{o}] = ~(v[{i0}] ^ v[{i1}]) & m",
    "MUX2": "v[{o}] = (v[{i0}] & ~v[{i2}] | v[{i1}] & v[{i2}]) & m",
    "AOI21": "v[{o}] = ~((v[{i0}] & v[{i1}]) | v[{i2}]) & m",
    "AOI22": "v[{o}] = ~((v[{i0}] & v[{i1}]) | (v[{i2}] & v[{i3}])) & m",
    "OAI21": "v[{o}] = ~((v[{i0}] | v[{i1}]) & v[{i2}]) & m",
    "OAI22": "v[{o}] = ~((v[{i0}] | v[{i1}]) & (v[{i2}] | v[{i3}])) & m",
    "TIE0": "v[{o}] = 0",
    "TIE1": "v[{o}] = m",
}


def build_eval_source(
    netlist: Netlist,
    net_index: Mapping[str, int],
    fallback_cells: List[Tuple[Callable, int, Tuple[int, ...]]],
    templates: Optional[Dict[str, str]] = None,
    cells: Optional[Sequence[str]] = None,
) -> str:
    """Generate the combinational-settle function source for *netlist*.

    Returns the source of ``_eval(v, m, fb)``: one statement per gate in
    levelized order, reading and writing ``v[i]`` lane vectors under the
    all-ones mask ``m``.  The statements only use ``& | ^ ~`` and indexing,
    so the same source works for any lane representation whose rows support
    those operators — Python integers (:class:`CompiledSimulator`) and
    ``uint64`` ndarray blocks (:class:`~repro.sim.vectorized.NumPyWideSimulator`)
    alike.  Cells without a template are appended to *fallback_cells* as
    ``(function, out_index, in_indices)`` and dispatched through ``fb``.

    *templates* overrides the default expression table (the numpy backend
    substitutes cheaper ``^ m`` forms for the inverting gates).  *cells*
    restricts generation to a subset of combinational cells (must already be
    in a valid evaluation order) — this is how one callable per levelized
    partition is built for cone-gated evaluation.
    """
    table = _TEMPLATES if templates is None else templates
    lines = ["def _eval(v, m, fb):"]
    order = netlist.topological_comb_order() if cells is None else list(cells)
    for cell_name in order:
        cell = netlist.cells[cell_name]
        out = net_index[cell.output_net()]
        ins = [net_index[n] for n in cell.input_nets()]
        template = table.get(cell.ctype.name)
        if template is None:
            idx = len(fallback_cells)
            fallback_cells.append((cell.ctype.function, out, tuple(ins)))
            lines.append(
                f"    v[{out}] = fb[{idx}][0]([v[i] for i in fb[{idx}][2]], m)"
            )
            continue
        fields = {"o": out}
        for pos, in_idx in enumerate(ins):
            fields[f"i{pos}"] = in_idx
        lines.append("    " + template.format(**fields))
    if len(lines) == 1:
        lines.append("    pass")
    return "\n".join(lines)


# ------------------------------------------------------------ codegen cache
#
# Source generation and ``compile()`` are O(cells) and dominate simulator
# construction on large netlists (at the 10k-FF generated composites they
# cost seconds).  Every simulator built for the same netlist generates the
# *same* source — the net index is the netlist's own deterministic
# enumeration — so the compiled code objects are cached per netlist and
# per flavor ("int" vs "numpy" templates, plain vs gated tick).  Keyed
# weakly: dropping the last netlist reference drops its code objects.
# ``exec`` of a cached code object only materializes a function object,
# which is orders of magnitude cheaper than parsing the source again.

_CODEGEN_CACHE: "weakref.WeakKeyDictionary[Netlist, Dict[tuple, object]]" = (
    weakref.WeakKeyDictionary()
)


def _cache_for(netlist: Netlist) -> Dict[tuple, object]:
    cache = _CODEGEN_CACHE.get(netlist)
    if cache is None:
        cache = {}
        _CODEGEN_CACHE[netlist] = cache
    return cache


def cached_eval_fn(
    netlist: Netlist,
    net_index: Mapping[str, int],
    fallback_cells: List[Tuple[Callable, int, Tuple[int, ...]]],
    templates: Optional[Dict[str, str]] = None,
    flavor: str = "int",
) -> Callable:
    """Compile-once-per-netlist variant of :func:`build_eval_source` + exec.

    The generated source bakes fallback-dispatch indices starting at 0, so
    *fallback_cells* must be the (empty) per-instance table the returned
    function will be called with; the cached fallback entries are re-extended
    into it.  *flavor* namespaces the cache per template table ("int" /
    "numpy") — the cell/net counts in the key guard against a netlist
    mutated after its code was cached.
    """
    key = ("eval", flavor, len(netlist.cells), len(netlist.nets))
    cache = _cache_for(netlist)
    entry = cache.get(key)
    if entry is None:
        fresh: List[Tuple[Callable, int, Tuple[int, ...]]] = []
        source = build_eval_source(netlist, net_index, fresh, templates=templates)
        code = compile(source, f"<repro-eval-{flavor}:{netlist.name}>", "exec")
        entry = (code, tuple(fresh))
        cache[key] = entry
    code, entries = entry
    fallback_cells.extend(entries)
    namespace: Dict[str, object] = {}
    exec(code, namespace)  # noqa: S102 - generated from our own netlist
    return namespace["_eval"]  # type: ignore[return-value]


def cached_codegen(
    netlist: Netlist, key: tuple, fn_name: str, build_source: Callable[[], str]
) -> Callable:
    """Per-netlist cached compile of a generated function (tick flavors).

    *build_source* is only invoked on a cache miss; the returned function is
    a fresh object bound to a fresh namespace, so instances never share
    state through it.
    """
    cache = _cache_for(netlist)
    code = cache.get(key)
    if code is None:
        code = compile(build_source(), f"<repro-{fn_name}:{netlist.name}>", "exec")
        cache[key] = code
    namespace: Dict[str, object] = {}
    exec(code, namespace)  # noqa: S102 - generated from our own netlist
    return namespace[fn_name]  # type: ignore[return-value]


class CompiledSimulator(PackedLaneMixin):
    """Cycle-based bit-parallel simulator for a mapped :class:`Netlist`.

    Parameters
    ----------
    netlist:
        The design to simulate.  Must validate (no combinational cycles).
    n_lanes:
        Number of parallel simulation lanes (bits per net value).

    Notes
    -----
    The evaluation/tick order expected by callers is::

        sim.reset()
        for cycle in range(n):
            sim.set_input(...)        # drive primary inputs
            sim.eval_comb()           # settle combinational logic
            ... observe outputs ...
            sim.tick()                # rising clock edge

    After mutating flip-flop state directly (:meth:`flip_ff`,
    :meth:`load_ff_state_packed`), call :meth:`eval_comb` before observing
    nets.
    """

    #: Registry name under which :func:`repro.sim.backend.create_backend`
    #: builds this class.
    name = "compiled"

    def __init__(self, netlist: Netlist, n_lanes: int = 1) -> None:
        netlist.validate()
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.mask = lane_mask(n_lanes)

        self.net_index: Dict[str, int] = {}
        for i, name in enumerate(netlist.nets):
            self.net_index[name] = i
        self.values: List[int] = [0] * len(self.net_index)

        self.flip_flops: List[Cell] = netlist.flip_flops()
        self.ff_index: Dict[str, int] = {ff.name: i for i, ff in enumerate(self.flip_flops)}
        self._ff_q: List[int] = [self.net_index[ff.output_net()] for ff in self.flip_flops]
        self._ff_d: List[int] = [
            self.net_index[ff.connections["D"]] for ff in self.flip_flops
        ]
        self._ff_rn: List[Optional[int]] = [
            self.net_index[ff.connections["RN"]] if "RN" in ff.connections else None
            for ff in self.flip_flops
        ]
        self._clock_nets = [self.net_index[c] for c in netlist.clocks if c in self.net_index]

        self._fallback_cells: List[Tuple[Callable, int, Tuple[int, ...]]] = []
        self._eval_fn = self._compile_eval()
        self._tick_fn = self._compile_tick()

    # ------------------------------------------------------------ compiling

    def _compile_eval(self) -> Callable[[List[int], int, list], None]:
        return cached_eval_fn(self.netlist, self.net_index, self._fallback_cells)

    def _build_tick_source(self) -> str:
        lines = ["def _tick(v, m):"]
        assigns = []
        for i, (q, d, rn) in enumerate(zip(self._ff_q, self._ff_d, self._ff_rn)):
            if rn is None:
                lines.append(f"    t{i} = v[{d}]")
            else:
                lines.append(f"    t{i} = v[{d}] & v[{rn}]")
            assigns.append(f"    v[{q}] = t{i}")
        lines.extend(assigns)
        if not self._ff_q:
            lines.append("    pass")
        return "\n".join(lines)

    def _compile_tick(self) -> Callable[[List[int], int], None]:
        key = ("tick", "int", len(self.netlist.cells))
        return cached_codegen(self.netlist, key, "_tick", self._build_tick_source)

    # ------------------------------------------------- partitioned evaluation

    def compile_partition_evals(
        self, partitions: Sequence[Sequence[str]]
    ) -> List[Callable[[List[int], int, list], None]]:
        """Compile one ``_eval``-style callable per cell partition.

        Each entry of *partitions* must be a valid intra-partition evaluation
        order (see :func:`repro.netlist.levelize.levelize`); calling every
        callable in partition order is equivalent to one :meth:`eval_comb`
        pass minus the clock forcing.  All callables share this simulator's
        fallback-cell table.
        """
        fns: List[Callable[[List[int], int, list], None]] = []
        for cells in partitions:
            source = build_eval_source(
                self.netlist, self.net_index, self._fallback_cells, cells=cells
            )
            namespace: Dict[str, object] = {}
            exec(source, namespace)  # noqa: S102 - generated from our own netlist
            fns.append(namespace["_eval"])  # type: ignore[arg-type]
        return fns

    def compile_gated_tick(self) -> Callable[[List[int], int, int, int], None]:
        """Compile a clock edge gated per flip-flop by a golden-write mask.

        Returns ``_tick_gated(v, m, gw, gs)``: flip-flop *i* latches normally
        when bit *i* of ``gw`` is clear, and is instead overwritten with the
        broadcast golden bit *i* of ``gs`` (the packed golden state *after*
        the edge) when set.  The scheduler uses this to avoid evaluating the
        D-cone of flip-flops that provably hold golden values.
        """
        key = ("tick", "int-gated", len(self.netlist.cells))
        return cached_codegen(
            self.netlist, key, "_tick_gated", self._build_gated_tick_source
        )

    def _build_gated_tick_source(self) -> str:
        lines = ["def _tick_gated(v, m, gw, gs):"]
        assigns = []
        for i, (q, d, rn) in enumerate(zip(self._ff_q, self._ff_d, self._ff_rn)):
            lines.append(f"    if (gw >> {i}) & 1:")
            lines.append(f"        t{i} = m if (gs >> {i}) & 1 else 0")
            lines.append("    else:")
            if rn is None:
                lines.append(f"        t{i} = v[{d}]")
            else:
                lines.append(f"        t{i} = v[{d}] & v[{rn}]")
            assigns.append(f"    v[{q}] = t{i}")
        lines.extend(assigns)
        if not self._ff_q:
            lines.append("    pass")
        return "\n".join(lines)

    # -------------------------------------------------------------- control

    def resize_lanes(self, n_lanes: int) -> None:
        """Change the number of parallel lanes.

        The generated code is lane-count independent (the mask is threaded
        through), so resizing is O(nets): values are cleared to avoid stale
        bits from wider previous runs.  Reload state afterwards.
        """
        self.n_lanes = n_lanes
        self.mask = lane_mask(n_lanes)
        for i in range(len(self.values)):
            self.values[i] = 0

    def reset(self, ff_value: int = 0) -> None:
        """Zero all nets and force every flip-flop output to *ff_value*."""
        fill = broadcast(ff_value, self.mask)
        for i in range(len(self.values)):
            self.values[i] = 0
        for q in self._ff_q:
            self.values[q] = fill
        self.eval_comb()

    def set_input(self, name: str, bit: int) -> None:
        """Drive primary input *name* with a scalar 0/1 on every lane."""
        self.values[self.net_index[name]] = broadcast(bit, self.mask)

    def set_input_lanes(self, name: str, value: int) -> None:
        """Drive primary input *name* with a per-lane bit-parallel value."""
        self.values[self.net_index[name]] = value & self.mask

    def eval_comb(self) -> None:
        """Propagate values through the combinational logic (one full pass)."""
        for clk in self._clock_nets:
            self.values[clk] = 0
        self._eval_fn(self.values, self.mask, self._fallback_cells)

    def tick(self) -> None:
        """Rising clock edge: latch D (gated by sync RN) into every Q."""
        self._tick_fn(self.values, self.mask)

    # apply_inputs / step / get_word / set_word / output_vector come from
    # PackedLaneMixin.

    # ------------------------------------------------------------ observing

    def get(self, net_name: str) -> int:
        """Bit-parallel value of a net (after :meth:`eval_comb`)."""
        return self.values[self.net_index[net_name]]

    def get_bit(self, net_name: str, lane: int = 0) -> int:
        """Value of a net on one lane."""
        return (self.values[self.net_index[net_name]] >> lane) & 1

    # ------------------------------------------------------- flip-flop state

    def ff_state_packed(self, lane: int = 0) -> int:
        """State of every flip-flop in one lane, packed one bit per FF.

        Bit *i* of the result is the Q value of ``netlist.flip_flops()[i]``.
        """
        packed = 0
        values = self.values
        for i, q in enumerate(self._ff_q):
            packed |= ((values[q] >> lane) & 1) << i
        return packed

    def load_ff_state_packed(self, packed: int) -> None:
        """Broadcast a packed single-lane FF state onto every lane."""
        mask = self.mask
        values = self.values
        for i, q in enumerate(self._ff_q):
            values[q] = mask if (packed >> i) & 1 else 0

    def flip_ff(self, ff: str | int, lanes: int) -> None:
        """XOR the Q output of a flip-flop on the selected *lanes*.

        This is the SEU injection primitive: it emulates the simulator
        command the paper uses to invert the value stored in a flip-flop.
        """
        index = self.ff_index[ff] if isinstance(ff, str) else ff
        self.values[self._ff_q[index]] ^= lanes & self.mask

    def ff_divergence(self, golden_packed: int) -> int:
        """Per-lane mask of lanes whose FF state differs from *golden_packed*."""
        diff = 0
        values = self.values
        mask = self.mask
        for i, q in enumerate(self._ff_q):
            golden = mask if (golden_packed >> i) & 1 else 0
            diff |= values[q] ^ golden
            if diff == mask:
                break
        return diff

    # --------------------------------------------------------- lane algebra
    #
    # For this backend a lane vector IS a Python int, so the SimBackend lane
    # algebra collapses to (near-)identities; they exist so fault-simulation
    # code can stay generic over the lane representation.

    def broadcast(self, bit: int) -> int:
        """Lane vector with every lane equal to *bit*."""
        return self.mask if bit else 0

    def lane_vec(self, lane: int) -> int:
        """Lane vector with only *lane* set."""
        return 1 << lane

    def read_vec(self, value_idx: int) -> int:
        """Value of net row *value_idx* (ints are immutable: no copy needed)."""
        return self.values[value_idx]

    def vec_to_int(self, vec: int) -> int:
        """Packed per-lane mask of *vec* (already an int here)."""
        return vec & self.mask

    def vec_any(self, vec: int) -> bool:
        """True if any active lane of *vec* is set."""
        return bool(vec & self.mask)

    def vec_is_full(self, vec: int) -> bool:
        """True if every active lane of *vec* is set."""
        return (vec & self.mask) == self.mask

    def gather_lanes(self, vec: int, lanes: Sequence[int]) -> int:
        """Pack the selected lanes of *vec* into a dense Python-int mask.

        Bit *j* of the result is lane ``lanes[j]`` of *vec* — the compaction
        primitive: surviving lanes gathered here and scattered into a
        narrower batch preserve their per-lane state exactly.
        """
        out = 0
        for j, lane in enumerate(lanes):
            out |= ((vec >> lane) & 1) << j
        return out

    def scatter_lanes(self, vec: int, lanes: Sequence[int], bits: int) -> int:
        """Copy of *vec* with lane ``lanes[j]`` set to bit *j* of *bits*.

        The inverse of :meth:`gather_lanes`; used to drop repacked or
        freshly activated per-lane state into an existing lane vector
        without disturbing the other lanes.
        """
        for j, lane in enumerate(lanes):
            bit = 1 << lane
            if (bits >> j) & 1:
                vec |= bit
            else:
                vec &= ~bit
        return vec & self.mask

    def diverging_rows(
        self,
        row_golden: Sequence[Tuple[int, int]],
        active: int,
    ) -> Tuple[int, int]:
        """Active-lane divergence of value rows against broadcast golden bits.

        *row_golden* is a sequence of ``(value_idx, golden_bit)`` pairs.
        Returns ``(diff, rows)``: ``diff`` is the union of diverging lanes
        (active lanes where any row differs from its golden bit) and bit *k*
        of ``rows`` is set when row *k* itself diverges — the per-flip-flop
        frontier probe the cone-gated scheduler runs at every retirement
        check.
        """
        diff = 0
        rows = 0
        values = self.values
        mask = self.mask
        for k, (idx, bit) in enumerate(row_golden):
            d = (values[idx] ^ (mask if bit else 0)) & active
            if d:
                diff |= d
                rows |= 1 << k
        return diff, rows

    # ----------------------------------------------------------------- misc

    @property
    def n_flip_flops(self) -> int:
        """Number of flip-flops in the design (lane-state width)."""
        return len(self.flip_flops)
