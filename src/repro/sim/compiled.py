"""Compiled, levelized, bit-parallel cycle simulator.

This is the campaign workhorse of the reproduction.  The netlist's
combinational logic is levelized (topologically ordered) once and translated
into a single generated Python function — one statement per gate, operating
on Python integers whose bit lanes are independent simulation runs.  A
clock ``tick`` latches every flip-flop simultaneously (two-phase: all next
states are computed before any Q is updated).

With *n* lanes, one pass of the generated code simulates *n* circuit
instances at once; the fault-injection campaign uses this to run hundreds of
SEU scenarios per sweep, which is what makes the paper's full flat campaign
(≈1054 flip-flops × 170 injections) feasible in pure Python.

Clock handling is cycle-based: clock nets are forced to 0 and every call to
:meth:`CompiledSimulator.tick` represents one rising edge.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..netlist.core import Cell, Netlist, NetlistError
from .logic import broadcast, lane_mask

__all__ = ["CompiledSimulator"]

# Expression templates per library cell type; {o} output index, {i0}.. inputs.
_TEMPLATES: Dict[str, str] = {
    "INV": "v[{o}] = ~v[{i0}] & m",
    "BUF": "v[{o}] = v[{i0}]",
    "AND2": "v[{o}] = v[{i0}] & v[{i1}]",
    "AND3": "v[{o}] = v[{i0}] & v[{i1}] & v[{i2}]",
    "AND4": "v[{o}] = v[{i0}] & v[{i1}] & v[{i2}] & v[{i3}]",
    "NAND2": "v[{o}] = ~(v[{i0}] & v[{i1}]) & m",
    "NAND3": "v[{o}] = ~(v[{i0}] & v[{i1}] & v[{i2}]) & m",
    "NAND4": "v[{o}] = ~(v[{i0}] & v[{i1}] & v[{i2}] & v[{i3}]) & m",
    "OR2": "v[{o}] = v[{i0}] | v[{i1}]",
    "OR3": "v[{o}] = v[{i0}] | v[{i1}] | v[{i2}]",
    "OR4": "v[{o}] = v[{i0}] | v[{i1}] | v[{i2}] | v[{i3}]",
    "NOR2": "v[{o}] = ~(v[{i0}] | v[{i1}]) & m",
    "NOR3": "v[{o}] = ~(v[{i0}] | v[{i1}] | v[{i2}]) & m",
    "NOR4": "v[{o}] = ~(v[{i0}] | v[{i1}] | v[{i2}] | v[{i3}]) & m",
    "XOR2": "v[{o}] = v[{i0}] ^ v[{i1}]",
    "XNOR2": "v[{o}] = ~(v[{i0}] ^ v[{i1}]) & m",
    "MUX2": "v[{o}] = (v[{i0}] & ~v[{i2}] | v[{i1}] & v[{i2}]) & m",
    "AOI21": "v[{o}] = ~((v[{i0}] & v[{i1}]) | v[{i2}]) & m",
    "AOI22": "v[{o}] = ~((v[{i0}] & v[{i1}]) | (v[{i2}] & v[{i3}])) & m",
    "OAI21": "v[{o}] = ~((v[{i0}] | v[{i1}]) & v[{i2}]) & m",
    "OAI22": "v[{o}] = ~((v[{i0}] | v[{i1}]) & (v[{i2}] | v[{i3}])) & m",
    "TIE0": "v[{o}] = 0",
    "TIE1": "v[{o}] = m",
}


class CompiledSimulator:
    """Cycle-based bit-parallel simulator for a mapped :class:`Netlist`.

    Parameters
    ----------
    netlist:
        The design to simulate.  Must validate (no combinational cycles).
    n_lanes:
        Number of parallel simulation lanes (bits per net value).

    Notes
    -----
    The evaluation/tick order expected by callers is::

        sim.reset()
        for cycle in range(n):
            sim.set_input(...)        # drive primary inputs
            sim.eval_comb()           # settle combinational logic
            ... observe outputs ...
            sim.tick()                # rising clock edge

    After mutating flip-flop state directly (:meth:`flip_ff`,
    :meth:`load_ff_state`), call :meth:`eval_comb` before observing nets.
    """

    def __init__(self, netlist: Netlist, n_lanes: int = 1) -> None:
        netlist.validate()
        self.netlist = netlist
        self.n_lanes = n_lanes
        self.mask = lane_mask(n_lanes)

        self.net_index: Dict[str, int] = {}
        for i, name in enumerate(netlist.nets):
            self.net_index[name] = i
        self.values: List[int] = [0] * len(self.net_index)

        self.flip_flops: List[Cell] = netlist.flip_flops()
        self.ff_index: Dict[str, int] = {ff.name: i for i, ff in enumerate(self.flip_flops)}
        self._ff_q: List[int] = [self.net_index[ff.output_net()] for ff in self.flip_flops]
        self._ff_d: List[int] = [
            self.net_index[ff.connections["D"]] for ff in self.flip_flops
        ]
        self._ff_rn: List[Optional[int]] = [
            self.net_index[ff.connections["RN"]] if "RN" in ff.connections else None
            for ff in self.flip_flops
        ]
        self._clock_nets = [self.net_index[c] for c in netlist.clocks if c in self.net_index]

        self._fallback_cells: List[Tuple[Callable, int, Tuple[int, ...]]] = []
        self._eval_fn = self._compile_eval()
        self._tick_fn = self._compile_tick()

    # ------------------------------------------------------------ compiling

    def _compile_eval(self) -> Callable[[List[int], int, list], None]:
        lines = ["def _eval(v, m, fb):"]
        order = self.netlist.topological_comb_order()
        for cell_name in order:
            cell = self.netlist.cells[cell_name]
            out = self.net_index[cell.output_net()]
            ins = [self.net_index[n] for n in cell.input_nets()]
            template = _TEMPLATES.get(cell.ctype.name)
            if template is None:
                idx = len(self._fallback_cells)
                self._fallback_cells.append((cell.ctype.function, out, tuple(ins)))
                lines.append(
                    f"    v[{out}] = fb[{idx}][0]([v[i] for i in fb[{idx}][2]], m)"
                )
                continue
            fields = {"o": out}
            for pos, idx in enumerate(ins):
                fields[f"i{pos}"] = idx
            lines.append("    " + template.format(**fields))
        if len(lines) == 1:
            lines.append("    pass")
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102 - generated from our own netlist
        return namespace["_eval"]  # type: ignore[return-value]

    def _compile_tick(self) -> Callable[[List[int], int], None]:
        lines = ["def _tick(v, m):"]
        assigns = []
        for i, (q, d, rn) in enumerate(zip(self._ff_q, self._ff_d, self._ff_rn)):
            if rn is None:
                lines.append(f"    t{i} = v[{d}]")
            else:
                lines.append(f"    t{i} = v[{d}] & v[{rn}]")
            assigns.append(f"    v[{q}] = t{i}")
        lines.extend(assigns)
        if not self._ff_q:
            lines.append("    pass")
        namespace: Dict[str, object] = {}
        exec("\n".join(lines), namespace)  # noqa: S102
        return namespace["_tick"]  # type: ignore[return-value]

    # -------------------------------------------------------------- control

    def resize_lanes(self, n_lanes: int) -> None:
        """Change the number of parallel lanes.

        The generated code is lane-count independent (the mask is threaded
        through), so resizing is O(nets): values are cleared to avoid stale
        bits from wider previous runs.  Reload state afterwards.
        """
        self.n_lanes = n_lanes
        self.mask = lane_mask(n_lanes)
        for i in range(len(self.values)):
            self.values[i] = 0

    def reset(self, ff_value: int = 0) -> None:
        """Zero all nets and force every flip-flop output to *ff_value*."""
        fill = broadcast(ff_value, self.mask)
        for i in range(len(self.values)):
            self.values[i] = 0
        for q in self._ff_q:
            self.values[q] = fill
        self.eval_comb()

    def set_input(self, name: str, bit: int) -> None:
        """Drive primary input *name* with a scalar 0/1 on every lane."""
        self.values[self.net_index[name]] = broadcast(bit, self.mask)

    def set_input_lanes(self, name: str, value: int) -> None:
        """Drive primary input *name* with a per-lane bit-parallel value."""
        self.values[self.net_index[name]] = value & self.mask

    def apply_inputs(self, assignments: Mapping[str, int]) -> None:
        """Drive several inputs with scalar values at once."""
        for name, bit in assignments.items():
            self.set_input(name, bit)

    def eval_comb(self) -> None:
        """Propagate values through the combinational logic (one full pass)."""
        for clk in self._clock_nets:
            self.values[clk] = 0
        self._eval_fn(self.values, self.mask, self._fallback_cells)

    def tick(self) -> None:
        """Rising clock edge: latch D (gated by sync RN) into every Q."""
        self._tick_fn(self.values, self.mask)

    def step(self, assignments: Mapping[str, int] | None = None) -> None:
        """Convenience: drive inputs, settle logic, clock the registers."""
        if assignments:
            self.apply_inputs(assignments)
        self.eval_comb()
        self.tick()

    # ------------------------------------------------------------ observing

    def get(self, net_name: str) -> int:
        """Bit-parallel value of a net (after :meth:`eval_comb`)."""
        return self.values[self.net_index[net_name]]

    def get_bit(self, net_name: str, lane: int = 0) -> int:
        return (self.values[self.net_index[net_name]] >> lane) & 1

    def get_word(self, bus: str, width: int, lane: int = 0) -> int:
        """Read nets ``bus[0] .. bus[width-1]`` of one lane as an integer."""
        word = 0
        for bit in range(width):
            word |= self.get_bit(f"{bus}[{bit}]", lane) << bit
        return word

    def set_word(self, bus: str, width: int, value: int) -> None:
        """Drive input nets ``bus[0..width-1]`` from an integer (broadcast)."""
        for bit in range(width):
            self.set_input(f"{bus}[{bit}]", (value >> bit) & 1)

    # ------------------------------------------------------- flip-flop state

    def ff_state_packed(self, lane: int = 0) -> int:
        """State of every flip-flop in one lane, packed one bit per FF.

        Bit *i* of the result is the Q value of ``netlist.flip_flops()[i]``.
        """
        packed = 0
        values = self.values
        for i, q in enumerate(self._ff_q):
            packed |= ((values[q] >> lane) & 1) << i
        return packed

    def load_ff_state_packed(self, packed: int) -> None:
        """Broadcast a packed single-lane FF state onto every lane."""
        mask = self.mask
        values = self.values
        for i, q in enumerate(self._ff_q):
            values[q] = mask if (packed >> i) & 1 else 0

    def flip_ff(self, ff: str | int, lanes: int) -> None:
        """XOR the Q output of a flip-flop on the selected *lanes*.

        This is the SEU injection primitive: it emulates the simulator
        command the paper uses to invert the value stored in a flip-flop.
        """
        index = self.ff_index[ff] if isinstance(ff, str) else ff
        self.values[self._ff_q[index]] ^= lanes & self.mask

    def ff_divergence(self, golden_packed: int) -> int:
        """Per-lane mask of lanes whose FF state differs from *golden_packed*."""
        diff = 0
        values = self.values
        mask = self.mask
        for i, q in enumerate(self._ff_q):
            golden = mask if (golden_packed >> i) & 1 else 0
            diff |= values[q] ^ golden
            if diff == mask:
                break
        return diff

    # ----------------------------------------------------------------- misc

    @property
    def n_flip_flops(self) -> int:
        return len(self.flip_flops)

    def output_vector(self, lane: int = 0) -> int:
        """All primary outputs of one lane, packed in ``netlist.outputs`` order."""
        packed = 0
        for j, name in enumerate(self.netlist.outputs):
            packed |= self.get_bit(name, lane) << j
        return packed
