"""Testbench framework for the compiled cycle simulator.

A :class:`Testbench` bundles everything the paper's fault-injection flow
needs to replay a workload deterministically:

* an **input schedule** — the open-loop stimulus (packet writes, read
  strobes, reset), packed one bit per primary input per cycle;
* optional **loopback paths** — reactive connections from DUT outputs back to
  DUT inputs with a fixed delay.  The paper's testbench loops the XGMII TX
  interface back into the XGMII RX interface; modelling this reactively is
  essential, because a fault that corrupts the TX stream must be *seen again*
  by the RX engine rather than overwritten by golden stimulus;
* the **golden trace**: per-cycle packed flip-flop states and primary-output
  vectors recorded from a fault-free run, used both as the fault campaign's
  reference and as the source of the dynamic (signal-activity) features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from .compiled import CompiledSimulator
from .logic import lane_mask

__all__ = ["ScheduleBuilder", "LoopbackPath", "GoldenTrace", "Testbench"]


@dataclass(frozen=True)
class LoopbackPath:
    """A delayed wire from DUT outputs back to DUT inputs.

    ``sources[i]`` (a primary-output net) drives ``targets[i]`` (a primary
    input net) *delay* cycles later.
    """

    sources: Tuple[str, ...]
    targets: Tuple[str, ...]
    delay: int = 1

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.targets):
            raise ValueError("loopback sources/targets length mismatch")
        if self.delay < 1:
            raise ValueError("loopback delay must be >= 1 cycle")


class ScheduleBuilder:
    """Builds a packed open-loop input schedule.

    Values persist until overwritten (level-sensitive semantics), which
    mirrors how a procedural HDL testbench drives DUT inputs.

    Example
    -------
    >>> sb = ScheduleBuilder(["rst_n", "valid"])
    >>> sb.drive(0, "rst_n", 0)
    >>> sb.drive(5, "rst_n", 1)
    >>> sb.pulse(10, "valid")
    >>> packed = sb.compile(12)
    """

    def __init__(self, input_names: Sequence[str]) -> None:
        self.input_names = list(input_names)
        self._index = {name: i for i, name in enumerate(self.input_names)}
        self._changes: Dict[int, Dict[str, int]] = {}
        self.length_hint = 0

    def drive(self, cycle: int, name: str, bit: int) -> None:
        """Set *name* to *bit* from *cycle* onward."""
        if name not in self._index:
            raise KeyError(f"unknown input {name!r}")
        self._changes.setdefault(cycle, {})[name] = 1 if bit else 0
        self.length_hint = max(self.length_hint, cycle + 1)

    def pulse(self, cycle: int, name: str, width: int = 1) -> None:
        """Assert *name* for *width* cycles starting at *cycle*."""
        self.drive(cycle, name, 1)
        self.drive(cycle + width, name, 0)

    def drive_word(self, cycle: int, bus: str, width: int, value: int) -> None:
        """Drive ``bus[0..width-1]`` from an integer at *cycle*."""
        for bit in range(width):
            self.drive(cycle, f"{bus}[{bit}]", (value >> bit) & 1)

    def compile(self, n_cycles: int) -> List[int]:
        """Produce the packed per-cycle input vectors (bit *i* = input *i*)."""
        packed: List[int] = []
        current = [0] * len(self.input_names)
        for cycle in range(n_cycles):
            for name, bit in self._changes.get(cycle, {}).items():
                current[self._index[name]] = bit
            vector = 0
            for i, bit in enumerate(current):
                if bit:
                    vector |= 1 << i
            packed.append(vector)
        return packed


@dataclass
class GoldenTrace:
    """Recorded fault-free run of a testbench.

    Attributes
    ----------
    ff_state:
        ``ff_state[c]`` packs the Q value of every flip-flop (bit *i* = FF
        *i* in ``netlist.flip_flops()`` order) at the *start* of cycle *c*,
        i.e. before that cycle's combinational settle.  One extra entry at
        index ``n_cycles`` holds the final state.
    outputs:
        ``outputs[c]`` packs every primary output (``netlist.outputs``
        order) as observed during cycle *c* after combinational settle.
    applied_inputs:
        The input vector actually applied each cycle, including loopback
        overrides — replaying these open-loop reproduces the run exactly.
    """

    n_cycles: int
    ff_names: List[str]
    input_names: List[str]
    output_names: List[str]
    ff_state: List[int]
    outputs: List[int]
    applied_inputs: List[int]

    def ff_bit(self, ff_index: int, cycle: int) -> int:
        return (self.ff_state[cycle] >> ff_index) & 1

    def output_bit(self, out_index: int, cycle: int) -> int:
        return (self.outputs[cycle] >> out_index) & 1

    def ff_toggle_counts(self) -> List[int]:
        """Per flip-flop: number of 0→1 and 1→0 transitions over the run."""
        counts = [0] * len(self.ff_names)
        for cycle in range(self.n_cycles):
            changed = self.ff_state[cycle] ^ self.ff_state[cycle + 1]
            while changed:
                low = changed & -changed
                counts[low.bit_length() - 1] += 1
                changed ^= low
        return counts

    def ff_ones_counts(self) -> List[int]:
        """Per flip-flop: number of cycles spent at logic 1."""
        counts = [0] * len(self.ff_names)
        for cycle in range(self.n_cycles):
            state = self.ff_state[cycle]
            while state:
                low = state & -state
                counts[low.bit_length() - 1] += 1
                state ^= low
        return counts


class Testbench:
    """Deterministic workload driver for a :class:`Netlist`.

    (Despite the name this is a library class, not a pytest test —
    ``__test__`` opts out of test collection.)

    Parameters
    ----------
    netlist:
        Design under test.
    schedule:
        Packed open-loop input vectors from :meth:`ScheduleBuilder.compile`.
    loopbacks:
        Reactive output→input paths (evaluated from the possibly-faulty DUT
        outputs during fault simulation).
    name:
        Label used in reports and cache keys.
    """

    __test__ = False

    def __init__(
        self,
        netlist: Netlist,
        schedule: List[int],
        loopbacks: Sequence[LoopbackPath] = (),
        name: str = "tb",
    ) -> None:
        self.netlist = netlist
        self.schedule = schedule
        self.loopbacks = list(loopbacks)
        self.name = name
        self.input_names = list(netlist.inputs)
        self.output_names = list(netlist.outputs)
        self._in_index = {n: i for i, n in enumerate(self.input_names)}
        self._out_index = {n: i for i, n in enumerate(self.output_names)}
        for path in self.loopbacks:
            for src in path.sources:
                if src not in self._out_index:
                    raise ValueError(f"loopback source {src!r} is not a primary output")
            for dst in path.targets:
                if dst not in self._in_index:
                    raise ValueError(f"loopback target {dst!r} is not a primary input")

    @property
    def n_cycles(self) -> int:
        return len(self.schedule)

    # ---------------------------------------------------------------- golden

    def run_golden(self) -> GoldenTrace:
        """Run the fault-free simulation and record the full trajectory."""
        sim = CompiledSimulator(self.netlist, n_lanes=1)
        sim.reset()
        ff_state: List[int] = []
        outputs: List[int] = []
        applied: List[int] = []
        # Loopback history: per path, per tap, a list of past output bits.
        history = {
            id(path): [[0] * path.delay for _ in path.sources] for path in self.loopbacks
        }
        for cycle in range(self.n_cycles):
            ff_state.append(sim.ff_state_packed())
            vector = self.schedule[cycle]
            for path in self.loopbacks:
                taps = history[id(path)]
                for i, dst in enumerate(path.targets):
                    bit = taps[i][cycle % path.delay]
                    idx = self._in_index[dst]
                    vector = (vector & ~(1 << idx)) | (bit << idx)
            for i, name in enumerate(self.input_names):
                sim.set_input(name, (vector >> i) & 1)
            applied.append(vector)
            sim.eval_comb()
            out_vec = sim.output_vector()
            outputs.append(out_vec)
            for path in self.loopbacks:
                taps = history[id(path)]
                for i, src in enumerate(path.sources):
                    taps[i][cycle % path.delay] = (out_vec >> self._out_index[src]) & 1
            sim.tick()
        ff_state.append(sim.ff_state_packed())
        return GoldenTrace(
            n_cycles=self.n_cycles,
            ff_names=[ff.name for ff in sim.flip_flops],
            input_names=self.input_names,
            output_names=self.output_names,
            ff_state=ff_state,
            outputs=outputs,
            applied_inputs=applied,
        )

    # ------------------------------------------------------------- utilities

    def output_index(self, net: str) -> int:
        return self._out_index[net]

    def input_index(self, net: str) -> int:
        return self._in_index[net]
