"""Synthesis-attribute features (paper section III-B, second group).

The paper obtains these from Synopsys Design Compiler; here they come from
our own synthesis pass (:mod:`repro.synth`), which records the same
attributes in the mapped netlist:

* **drive strength** selected for the flip-flop by the sizing pass,
* **combinational fan-in** — combinational cells in the input cone up to
  the previous flip-flop stage,
* **combinational fan-out** — combinational cells driven by the output up
  to the next stage,
* **combinational path depth** at the flip-flop's output.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..netlist.core import Netlist
from .graph import CircuitGraph

__all__ = ["SYNTHESIS_FEATURES", "extract_synthesis"]

SYNTHESIS_FEATURES: Tuple[str, ...] = (
    "drive_strength",
    "comb_fan_in",
    "comb_fan_out",
    "comb_path_depth",
)


def extract_synthesis(netlist: Netlist, graph: CircuitGraph | None = None) -> Dict[str, Dict[str, float]]:
    """Synthesis feature dict per flip-flop name."""
    graph = graph if graph is not None else CircuitGraph(netlist)
    features: Dict[str, Dict[str, float]] = {}
    for name in graph.ff_names:
        cell = netlist.cells[name]
        features[name] = {
            "drive_strength": float(cell.drive),
            "comb_fan_in": float(len(graph.input_cones[name].comb_cells)),
            "comb_fan_out": float(len(graph.output_cones[name].comb_cells)),
            "comb_path_depth": float(graph.comb_depth_from(name)),
        }
    return features
