"""Synthesis-attribute features (paper section III-B, second group).

The paper obtains these from Synopsys Design Compiler; here they come from
our own synthesis pass (:mod:`repro.synth`), which records the same
attributes in the mapped netlist:

* **drive strength** selected for the flip-flop by the sizing pass,
* **combinational fan-in** — combinational cells in the input cone up to
  the previous flip-flop stage,
* **combinational fan-out** — combinational cells driven by the output up
  to the next stage,
* **combinational path depth** at the flip-flop's output.

Like the structural group, the quantities are served from a
:class:`~repro.features.vectorized.CircuitStats` container (batched engine
by default, networkx traversal as the differential reference).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..netlist.core import Netlist
from .graph import CircuitGraph
from .vectorized import CircuitStats

__all__ = ["SYNTHESIS_FEATURES", "extract_synthesis"]

SYNTHESIS_FEATURES: Tuple[str, ...] = (
    "drive_strength",
    "comb_fan_in",
    "comb_fan_out",
    "comb_path_depth",
)


def extract_synthesis(
    netlist: Netlist,
    graph: Optional[CircuitGraph] = None,
    stats: Optional[CircuitStats] = None,
) -> Dict[str, Dict[str, float]]:
    """Synthesis feature dict per flip-flop name."""
    from .structural import resolve_stats

    stats = resolve_stats(netlist, graph, stats)
    features: Dict[str, Dict[str, float]] = {}
    for i, name in enumerate(stats.ff_names):
        features[name] = {
            "drive_strength": float(stats.drive_strength[i]),
            "comb_fan_in": float(stats.comb_fan_in[i]),
            "comb_fan_out": float(stats.comb_fan_out[i]),
            "comb_path_depth": float(stats.comb_path_depth[i]),
        }
    return features
