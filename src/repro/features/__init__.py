"""Per-flip-flop feature extraction (structural, synthesis, dynamic)."""

from .dataset import Dataset
from .dynamic import DYNAMIC_FEATURES, extract_dynamic
from .extended import EXTENDED_FEATURES, extend_dataset, extract_extended
from .extractor import ALL_FEATURES, FEATURE_GROUPS, FeatureExtractor, build_dataset
from .graph import CircuitGraph, ConeSummary
from .structural import STRUCTURAL_FEATURES, bus_membership, extract_structural
from .synthesis import SYNTHESIS_FEATURES, extract_synthesis
from .vectorized import CircuitStats, compute_circuit_stats

__all__ = [
    "CircuitStats",
    "compute_circuit_stats",
    "Dataset",
    "DYNAMIC_FEATURES",
    "extract_dynamic",
    "EXTENDED_FEATURES",
    "extend_dataset",
    "extract_extended",
    "ALL_FEATURES",
    "FEATURE_GROUPS",
    "FeatureExtractor",
    "build_dataset",
    "CircuitGraph",
    "ConeSummary",
    "STRUCTURAL_FEATURES",
    "bus_membership",
    "extract_structural",
    "SYNTHESIS_FEATURES",
    "extract_synthesis",
]
