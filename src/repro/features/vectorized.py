"""Batched (vectorized) netlist statistics for the feature extractor.

The seed extractor walked a networkx cone per flip-flop — thousands of
Python graph traversals on the paper-scale MAC.  This module computes the
same per-flip-flop quantities from whole-netlist reachability masks instead:

* the **forward source masks** of :func:`repro.netlist.levelize.source_masks`
  (which flip-flops / primary inputs can influence each net) give fan-in
  cones, and the mirror-image **sink masks**
  (:func:`repro.netlist.levelize.sink_masks`) give fan-out cones — one pass
  over the netlist each, instead of one traversal per flip-flop;
* per-cell cone membership counts (combinational fan-in/fan-out, constant
  drivers) reduce to column popcounts over those masks, evaluated with
  NumPy ``unpackbits``;
* the flip-flop-level graph is held as adjacency bitsets, over which the
  transitive closure (SCC condensation + bitset DP), the per-primary-I/O
  stage-distance BFS sweeps and the feedback-loop search all run without
  touching networkx.

:class:`CircuitStats` is the engine-neutral result container; the networkx
:class:`~repro.features.graph.CircuitGraph` can produce the same container
(`CircuitGraph.stats()`), which the test suite uses as a differential
reference — the two engines must agree bit-for-bit on every circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..netlist.levelize import sink_masks, source_masks

__all__ = ["CircuitStats", "compute_circuit_stats"]


@dataclass
class CircuitStats:
    """Per-flip-flop graph quantities feeding the structural/synthesis groups.

    All lists are indexed by position in ``netlist.flip_flops()`` order
    (``ff_names`` gives the name per index).  ``pi_distances`` /
    ``po_distances`` hold one stage-distance entry per reaching primary
    input / reachable primary output, in primary-port declaration order —
    the same order the networkx reference produces, so aggregate features
    match exactly.
    """

    ff_names: List[str]
    ff_fan_in: List[int]
    ff_fan_out: List[int]
    total_from: List[int]
    total_to: List[int]
    conn_from_pi: List[int]
    conn_to_po: List[int]
    pi_distances: List[List[int]]
    po_distances: List[List[int]]
    const_drivers: List[int]
    feedback_depth: List[int]
    drive_strength: List[int]
    comb_fan_in: List[int]
    comb_fan_out: List[int]
    comb_path_depth: List[int]

    @property
    def n_ffs(self) -> int:
        return len(self.ff_names)


# ------------------------------------------------------------------ helpers


def _popcount_columns(masks: List[int], n_bits: int) -> List[int]:
    """``counts[i]`` = number of *masks* with bit *i* set (NumPy unpack)."""
    if not masks or n_bits == 0:
        return [0] * n_bits
    n_bytes = (n_bits + 7) // 8
    buf = b"".join(m.to_bytes(n_bytes, "little") for m in masks)
    rows = np.frombuffer(buf, dtype=np.uint8).reshape(len(masks), n_bytes)
    bits = np.unpackbits(rows, axis=1, bitorder="little")[:, :n_bits]
    return bits.sum(axis=0, dtype=np.int64).tolist()


def _iter_bits(mask: int):
    """Yield set bit positions of *mask*, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _transpose_masks(masks: List[int], n_cols: int) -> List[int]:
    """Bit-transpose: result[j] has bit i set iff masks[i] has bit j set."""
    out = [0] * n_cols
    for i, mask in enumerate(masks):
        bit = 1 << i
        for j in _iter_bits(mask):
            out[j] |= bit
    return out


def _strongly_connected_components(succ: List[int]) -> Tuple[List[int], List[List[int]]]:
    """Iterative Tarjan over adjacency bitsets.

    Returns ``(scc_of, components)`` with components emitted in reverse
    topological order (every component precedes its predecessors), exactly
    like networkx's condensation topological sort reversed.
    """
    n = len(succ)
    index_of = [-1] * n
    lowlink = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    scc_of = [-1] * n
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if index_of[root] != -1:
            continue
        work = [(root, iter(_iter_bits(succ[root])))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if index_of[nxt] == -1:
                    index_of[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    work.append((nxt, iter(_iter_bits(succ[nxt]))))
                    advanced = True
                    break
                if on_stack[nxt]:
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc_of[member] = len(components)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return scc_of, components


def _bfs_distances(
    start_mask: int, adjacency: List[int], record: List[List[int]]
) -> None:
    """Level-order sweep from *start_mask* (distance 1), appending the
    distance of every newly reached flip-flop to its ``record`` list."""
    frontier = start_mask
    visited = frontier
    dist = 1
    while frontier:
        for i in _iter_bits(frontier):
            record[i].append(dist)
        nxt = 0
        for i in _iter_bits(frontier):
            nxt |= adjacency[i]
        frontier = nxt & ~visited
        visited |= frontier
        dist += 1


# --------------------------------------------------------------- main entry


def compute_circuit_stats(netlist: Netlist) -> CircuitStats:
    """Compute every structural/synthesis graph quantity in batched passes."""
    flip_flops = netlist.flip_flops()
    ff_names = [ff.name for ff in flip_flops]
    n_ff = len(ff_names)
    clock_nets = set(netlist.clocks)

    net_ff_mask, net_input_mask = source_masks(netlist)
    ff_sink_mask, out_sink_mask = sink_masks(netlist)

    # Per-FF input-cone source masks (backward from D/RN, clock excluded).
    in_ff_mask: List[int] = []
    in_pi_mask: List[int] = []
    for ff in flip_flops:
        fm = im = 0
        for net in ff.data_input_nets():
            if net in clock_nets:
                continue
            fm |= net_ff_mask.get(net, 0)
            im |= net_input_mask.get(net, 0)
        in_ff_mask.append(fm)
        in_pi_mask.append(im)

    q_nets = [ff.output_net() for ff in flip_flops]
    ff_fan_in = [m.bit_count() for m in in_ff_mask]
    conn_from_pi = [m.bit_count() for m in in_pi_mask]
    ff_fan_out = [ff_sink_mask.get(q, 0).bit_count() for q in q_nets]
    conn_to_po = [out_sink_mask.get(q, 0).bit_count() for q in q_nets]

    # Cone-membership counts over combinational cells (ties counted apart).
    comb_cells = [c for c in netlist.combinational_cells() if not c.is_tie]
    tie_cells = [c for c in netlist.combinational_cells() if c.is_tie]
    comb_fan_in = _popcount_columns(
        [ff_sink_mask.get(c.output_net(), 0) for c in comb_cells], n_ff
    )
    comb_fan_out = _popcount_columns(
        [net_ff_mask.get(c.output_net(), 0) for c in comb_cells], n_ff
    )
    const_drivers = [0] * n_ff
    for tie in tie_cells:
        for i in _iter_bits(ff_sink_mask.get(tie.output_net(), 0)):
            const_drivers[i] += 1

    # Flip-flop-level graph as adjacency bitsets: edge i -> j iff i's Q lies
    # in the combinational fan-in cone of j's D/RN.
    pred = in_ff_mask
    succ = _transpose_masks(pred, n_ff)

    # Transitive closure on the SCC condensation (bitset DP, as before).
    scc_of, components = _strongly_connected_components(succ)
    n_scc = len(components)
    sizes = [len(c) for c in components]
    scc_succ = [0] * n_scc
    for i in range(n_ff):
        si = scc_of[i]
        for j in _iter_bits(succ[i]):
            sj = scc_of[j]
            if sj != si:
                scc_succ[si] |= 1 << sj
    scc_pred = _transpose_masks(scc_succ, n_scc)

    # Components arrive successors-first, so reach_down resolves in emitted
    # order and reach_up in the reverse.
    reach_down = [0] * n_scc
    for s in range(n_scc):
        bits = 0
        for t in _iter_bits(scc_succ[s]):
            bits |= reach_down[t] | (1 << t)
        reach_down[s] = bits
    reach_up = [0] * n_scc
    for s in range(n_scc - 1, -1, -1):
        bits = 0
        for t in _iter_bits(scc_pred[s]):
            bits |= reach_up[t] | (1 << t)
        reach_up[s] = bits

    def population(bits: int) -> int:
        return sum(sizes[s] for s in _iter_bits(bits))

    total_from = [0] * n_ff
    total_to = [0] * n_ff
    on_cycle = [False] * n_ff
    down_pop = [population(bits) for bits in reach_down]
    up_pop = [population(bits) for bits in reach_up]
    for i in range(n_ff):
        s = scc_of[i]
        own = sizes[s]
        self_loop = bool((succ[i] >> i) & 1)
        own_count = own if own > 1 else (1 if self_loop else 0)
        total_to[i] = down_pop[s] + own_count
        total_from[i] = up_pop[s] + own_count
        on_cycle[i] = own > 1 or self_loop

    # Stage distances: one bitset BFS per (non-clock) primary input over the
    # successor masks, one per primary output over the predecessor masks.
    pi_direct = _transpose_masks(in_pi_mask, len(netlist.inputs))
    pi_distances: List[List[int]] = [[] for _ in range(n_ff)]
    for p, net in enumerate(netlist.inputs):
        if net in clock_nets:
            continue
        _bfs_distances(pi_direct[p], succ, pi_distances)
    po_distances: List[List[int]] = [[] for _ in range(n_ff)]
    for net in netlist.outputs:
        _bfs_distances(net_ff_mask.get(net, 0), pred, po_distances)

    # Minimum feedback depth: level sweep from each on-cycle FF's successors.
    feedback_depth = [-1] * n_ff
    for i in range(n_ff):
        if not on_cycle[i]:
            continue
        frontier = succ[i]
        if (frontier >> i) & 1:
            feedback_depth[i] = 1
            continue
        visited = frontier
        depth = 1
        while frontier:
            depth += 1
            nxt = 0
            for j in _iter_bits(frontier):
                nxt |= succ[j]
            if (nxt >> i) & 1:
                feedback_depth[i] = depth
                break
            frontier = nxt & ~visited
            visited |= frontier

    # Longest combinational chain downstream of each net, sinks-first.
    depth_down: Dict[str, int] = {}

    def net_depth(net_name: str) -> int:
        best = 0
        for sink in netlist.nets[net_name].sinks:
            cell = netlist.cells[sink.cell]
            if cell.is_sequential:
                continue
            best = max(best, 1 + depth_down[cell.output_net()])
        return best

    for cell_name in reversed(netlist.topological_comb_order()):
        out = netlist.cells[cell_name].output_net()
        depth_down[out] = net_depth(out)
    comb_path_depth = [net_depth(q) for q in q_nets]

    return CircuitStats(
        ff_names=ff_names,
        ff_fan_in=ff_fan_in,
        ff_fan_out=ff_fan_out,
        total_from=total_from,
        total_to=total_to,
        conn_from_pi=conn_from_pi,
        conn_to_po=conn_to_po,
        pi_distances=pi_distances,
        po_distances=po_distances,
        const_drivers=const_drivers,
        feedback_depth=feedback_depth,
        drive_strength=[ff.drive for ff in flip_flops],
        comb_fan_in=comb_fan_in,
        comb_fan_out=comb_fan_out,
        comb_path_depth=comb_path_depth,
    )
