"""Feature/label dataset container.

Couples the per-flip-flop feature matrix with the per-flip-flop FDR labels
from a fault campaign, in a fixed flip-flop order, with CSV/JSON
persistence.  This is the object handed to the ML layer.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """Per-flip-flop features ``X`` and FDR labels ``y``.

    Attributes
    ----------
    ff_names:
        Row order of the matrix.
    feature_names:
        Column order.
    X:
        float64 matrix of shape ``(n_ffs, n_features)``.
    y:
        float64 vector of FDR labels in ``[0, 1]``.
    groups:
        Optional mapping of feature-group name (``structural``,
        ``synthesis``, ``dynamic``) to column names, used by ablations.
    meta:
        Free-form provenance (circuit, injections, seeds, …).
    """

    ff_names: List[str]
    feature_names: List[str]
    X: np.ndarray
    y: np.ndarray
    groups: Dict[str, List[str]] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.X.shape != (len(self.ff_names), len(self.feature_names)):
            raise ValueError(
                f"X shape {self.X.shape} does not match "
                f"{len(self.ff_names)} rows x {len(self.feature_names)} columns"
            )
        if self.y.shape != (len(self.ff_names),):
            raise ValueError("y length does not match the number of flip-flops")

    @property
    def n_samples(self) -> int:
        return len(self.ff_names)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    # ----------------------------------------------------------- selection

    def column(self, feature: str) -> np.ndarray:
        return self.X[:, self.feature_names.index(feature)]

    def select_features(self, names: Sequence[str]) -> "Dataset":
        """Dataset restricted to the given feature columns."""
        idx = [self.feature_names.index(n) for n in names]
        groups = {
            g: [n for n in cols if n in names] for g, cols in self.groups.items()
        }
        return Dataset(
            ff_names=list(self.ff_names),
            feature_names=list(names),
            X=self.X[:, idx].copy(),
            y=self.y.copy(),
            groups={g: cols for g, cols in groups.items() if cols},
            meta=dict(self.meta),
        )

    def select_groups(self, group_names: Sequence[str]) -> "Dataset":
        """Dataset restricted to the named feature groups."""
        names: List[str] = []
        for group in group_names:
            names.extend(self.groups[group])
        return self.select_features(names)

    def subset(self, row_indices: Sequence[int]) -> "Dataset":
        idx = list(row_indices)
        return Dataset(
            ff_names=[self.ff_names[i] for i in idx],
            feature_names=list(self.feature_names),
            X=self.X[idx].copy(),
            y=self.y[idx].copy(),
            groups=dict(self.groups),
            meta=dict(self.meta),
        )

    # --------------------------------------------------------- persistence

    def to_csv(self) -> str:
        """CSV with one row per flip-flop: name, features..., fdr."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["ff_name", *self.feature_names, "fdr"])
        for i, name in enumerate(self.ff_names):
            writer.writerow(
                [name, *(repr(float(v)) for v in self.X[i]), repr(float(self.y[i]))]
            )
        return buffer.getvalue()

    def to_json(self) -> str:
        return json.dumps(
            {
                "ff_names": self.ff_names,
                "feature_names": self.feature_names,
                "X": self.X.tolist(),
                "y": self.y.tolist(),
                "groups": self.groups,
                "meta": self.meta,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "Dataset":
        payload = json.loads(text)
        return cls(
            ff_names=payload["ff_names"],
            feature_names=payload["feature_names"],
            X=np.array(payload["X"], dtype=np.float64),
            y=np.array(payload["y"], dtype=np.float64),
            groups=payload.get("groups", {}),
            meta=payload.get("meta", {}),
        )

    @classmethod
    def from_csv(cls, text: str) -> "Dataset":
        reader = csv.reader(io.StringIO(text))
        header = next(reader)
        if header[0] != "ff_name" or header[-1] != "fdr":
            raise ValueError("unrecognized dataset CSV header")
        feature_names = header[1:-1]
        ff_names: List[str] = []
        rows: List[List[float]] = []
        labels: List[float] = []
        for row in reader:
            if not row:
                continue
            ff_names.append(row[0])
            rows.append([float(v) for v in row[1:-1]])
            labels.append(float(row[-1]))
        return cls(
            ff_names=ff_names,
            feature_names=feature_names,
            X=np.array(rows, dtype=np.float64),
            y=np.array(labels, dtype=np.float64),
        )
