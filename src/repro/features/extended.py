"""Extended feature set (paper §V: "further features should be considered").

Four additional per-flip-flop features built from *net-level* activity of a
fault-free workload run — quantities the paper's own citations ([3]-[5])
relate to logical masking, but which its feature set only captures at the
flip-flop outputs:

``d_input_at_one``
    signal probability of the D input net (how often the sampled value is 1);
``d_input_toggle_rate``
    toggle rate of the D input net (how often the FF samples a *new* value —
    a proxy for the fraction of cycles in which an upset is overwritten
    within one cycle);
``cone_avg_toggle_rate``
    mean toggle rate over the nets of the input cone (activity of the logic
    computing the next state);
``fanout_avg_at_one``
    mean signal probability over the nets of the output cone (biased
    downstream logic masks upsets more often — logical de-rating).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..netlist.core import Netlist
from ..sim.activity import NetActivity, collect_net_activity
from ..sim.testbench import Testbench
from .dataset import Dataset
from .graph import CircuitGraph

__all__ = ["EXTENDED_FEATURES", "extract_extended", "extend_dataset"]

EXTENDED_FEATURES: Tuple[str, ...] = (
    "d_input_at_one",
    "d_input_toggle_rate",
    "cone_avg_toggle_rate",
    "fanout_avg_at_one",
)


def extract_extended(
    netlist: Netlist,
    net_activity: Dict[str, NetActivity],
    graph: CircuitGraph | None = None,
) -> Dict[str, Dict[str, float]]:
    """Extended feature dict per flip-flop name."""
    graph = graph if graph is not None else CircuitGraph(netlist)
    features: Dict[str, Dict[str, float]] = {}
    for name in graph.ff_names:
        ff = netlist.cells[name]
        d_net = ff.connections["D"]
        d_activity = net_activity[d_net]
        in_cone = graph.input_cones[name]
        cone_rates = [
            net_activity[netlist.cells[c].output_net()].toggle_rate
            for c in in_cone.comb_cells
        ]
        out_cone = graph.output_cones[name]
        fanout_probs = [
            net_activity[netlist.cells[c].output_net()].at_one
            for c in out_cone.comb_cells
        ]
        features[name] = {
            "d_input_at_one": d_activity.at_one,
            "d_input_toggle_rate": d_activity.toggle_rate,
            "cone_avg_toggle_rate": float(np.mean(cone_rates)) if cone_rates else 0.0,
            "fanout_avg_at_one": float(np.mean(fanout_probs)) if fanout_probs else 0.0,
        }
    return features


def extend_dataset(dataset: Dataset, netlist: Netlist, testbench: Testbench) -> Dataset:
    """Append the four extended feature columns to a labelled dataset.

    The net-level activity pass re-runs the workload once; rows keep the
    dataset's flip-flop order, and the new columns are registered under the
    ``extended`` feature group for ablations.
    """
    net_activity = collect_net_activity(testbench)
    extended = extract_extended(netlist, net_activity)
    new_columns = np.array(
        [[extended[name][col] for col in EXTENDED_FEATURES] for name in dataset.ff_names],
        dtype=np.float64,
    )
    groups = {g: list(cols) for g, cols in dataset.groups.items()}
    groups["extended"] = list(EXTENDED_FEATURES)
    return Dataset(
        ff_names=list(dataset.ff_names),
        feature_names=list(dataset.feature_names) + list(EXTENDED_FEATURES),
        X=np.hstack([dataset.X, new_columns]),
        y=dataset.y.copy(),
        groups=groups,
        meta=dict(dataset.meta),
    )
