"""Structural per-flip-flop features (paper section III-B, first group).

All fifteen structural quantities the paper defines, extracted from the
:class:`~repro.features.graph.CircuitGraph`:

fan-in/fan-out, transitive flip-flop counts, primary-I/O connection counts,
min/avg/max stage proximities to primary inputs and outputs, bus membership
(position/length, recovered from the ``name[index]`` bit-naming convention
of the synthesized netlist), constant-driver connections, and feedback-loop
presence/depth.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from ..netlist.core import Netlist
from .graph import CircuitGraph

__all__ = ["STRUCTURAL_FEATURES", "bus_membership", "extract_structural"]

STRUCTURAL_FEATURES: Tuple[str, ...] = (
    "ff_fan_in",
    "ff_fan_out",
    "total_ffs_from",
    "total_ffs_to",
    "conn_from_primary_input",
    "conn_to_primary_output",
    "proximity_from_pi_min",
    "proximity_from_pi_avg",
    "proximity_from_pi_max",
    "proximity_to_po_min",
    "proximity_to_po_avg",
    "proximity_to_po_max",
    "part_of_bus",
    "bus_position",
    "bus_length",
    "conn_to_const_drivers",
    "has_feedback_loop",
    "feedback_loop_depth",
)

_BUS_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def bus_membership(ff_names: Sequence[str]) -> Dict[str, Tuple[int, int, int]]:
    """Recover ``(part_of_bus, position, length)`` per flip-flop from names.

    Flip-flop instances are named after the register bit they implement
    (``ff_rx_crc[7]``); bits sharing a base name form a bus.  Singleton
    "buses" are treated as scalars, mirroring how a netlist-based extractor
    would see a one-bit register.
    """
    groups: Dict[str, List[Tuple[int, str]]] = defaultdict(list)
    scalar: List[str] = []
    for name in ff_names:
        match = _BUS_RE.match(name)
        if match:
            groups[match.group("base")].append((int(match.group("index")), name))
        else:
            scalar.append(name)
    result: Dict[str, Tuple[int, int, int]] = {}
    for base, bits in groups.items():
        if len(bits) == 1:
            result[bits[0][1]] = (0, -1, 0)
            continue
        length = len(bits)
        for index, name in bits:
            result[name] = (1, index, length)
    for name in scalar:
        result[name] = (0, -1, 0)
    return result


def _stats(values: Sequence[int]) -> Tuple[float, float, float]:
    """(min, avg, max) with the paper's -1 sentinel for empty sets."""
    if not values:
        return (-1.0, -1.0, -1.0)
    return (float(min(values)), sum(values) / len(values), float(max(values)))


def extract_structural(netlist: Netlist, graph: CircuitGraph | None = None) -> Dict[str, Dict[str, float]]:
    """Structural feature dict per flip-flop name."""
    graph = graph if graph is not None else CircuitGraph(netlist)
    total_from, total_to = graph.transitive_counts()
    pi_dist = graph.pi_stage_distances()
    po_dist = graph.po_stage_distances()
    buses = bus_membership(graph.ff_names)

    features: Dict[str, Dict[str, float]] = {}
    for name in graph.ff_names:
        in_cone = graph.input_cones[name]
        out_cone = graph.output_cones[name]
        pi_min, pi_avg, pi_max = _stats(pi_dist[name])
        po_min, po_avg, po_max = _stats(po_dist[name])
        on_cycle = total_to[name] > 0 and name in _descendant_cache(graph)[name]
        loop_depth = graph.feedback_depth(name, on_cycle)
        part, position, length = buses[name]
        features[name] = {
            "ff_fan_in": float(len(in_cone.ff_sources)),
            "ff_fan_out": float(len(out_cone.ff_sinks)),
            "total_ffs_from": float(total_from[name]),
            "total_ffs_to": float(total_to[name]),
            "conn_from_primary_input": float(len(in_cone.primary_inputs)),
            "conn_to_primary_output": float(len(out_cone.primary_outputs)),
            "proximity_from_pi_min": pi_min,
            "proximity_from_pi_avg": pi_avg,
            "proximity_from_pi_max": pi_max,
            "proximity_to_po_min": po_min,
            "proximity_to_po_avg": po_avg,
            "proximity_to_po_max": po_max,
            "part_of_bus": float(part),
            "bus_position": float(position),
            "bus_length": float(length),
            "conn_to_const_drivers": float(in_cone.const_drivers),
            "has_feedback_loop": 1.0 if loop_depth > 0 else 0.0,
            "feedback_loop_depth": float(loop_depth),
        }
    return features


_DESC_CACHE: Dict[int, Dict[str, set]] = {}


def _descendant_cache(graph: CircuitGraph) -> Dict[str, set]:
    """Per-FF self-reachability helper (ff in its own descendant set)."""
    key = id(graph)
    cached = _DESC_CACHE.get(key)
    if cached is not None:
        return cached
    import networkx as nx

    ff_graph = graph.ff_only_graph()
    condensed = nx.condensation(ff_graph)
    members = {n: set(condensed.nodes[n]["members"]) for n in condensed.nodes}
    result: Dict[str, set] = {}
    for node in condensed.nodes:
        group = members[node]
        if len(group) > 1:
            for ff in group:
                result[ff] = {ff}
        else:
            (ff,) = group
            result[ff] = {ff} if ff_graph.has_edge(ff, ff) else set()
    _DESC_CACHE.clear()
    _DESC_CACHE[key] = result
    return result
