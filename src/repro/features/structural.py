"""Structural per-flip-flop features (paper section III-B, first group).

All fifteen structural quantities the paper defines: fan-in/fan-out,
transitive flip-flop counts, primary-I/O connection counts, min/avg/max
stage proximities to primary inputs and outputs, bus membership
(position/length, recovered from the ``name[index]`` bit-naming convention
of the synthesized netlist), constant-driver connections, and feedback-loop
presence/depth.

The graph quantities come from a :class:`~repro.features.vectorized.CircuitStats`
container — computed by the batched engine
(:func:`~repro.features.vectorized.compute_circuit_stats`, the default) or
by the networkx traversal reference
(:meth:`~repro.features.graph.CircuitGraph.stats`); both yield identical
feature values.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from .graph import CircuitGraph
from .vectorized import CircuitStats, compute_circuit_stats

__all__ = ["STRUCTURAL_FEATURES", "bus_membership", "extract_structural"]

STRUCTURAL_FEATURES: Tuple[str, ...] = (
    "ff_fan_in",
    "ff_fan_out",
    "total_ffs_from",
    "total_ffs_to",
    "conn_from_primary_input",
    "conn_to_primary_output",
    "proximity_from_pi_min",
    "proximity_from_pi_avg",
    "proximity_from_pi_max",
    "proximity_to_po_min",
    "proximity_to_po_avg",
    "proximity_to_po_max",
    "part_of_bus",
    "bus_position",
    "bus_length",
    "conn_to_const_drivers",
    "has_feedback_loop",
    "feedback_loop_depth",
)

_BUS_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def bus_membership(ff_names: Sequence[str]) -> Dict[str, Tuple[int, int, int]]:
    """Recover ``(part_of_bus, position, length)`` per flip-flop from names.

    Flip-flop instances are named after the register bit they implement
    (``ff_rx_crc[7]``); bits sharing a base name form a bus.  Singleton
    "buses" are treated as scalars, mirroring how a netlist-based extractor
    would see a one-bit register.
    """
    groups: Dict[str, List[Tuple[int, str]]] = defaultdict(list)
    scalar: List[str] = []
    for name in ff_names:
        match = _BUS_RE.match(name)
        if match:
            groups[match.group("base")].append((int(match.group("index")), name))
        else:
            scalar.append(name)
    result: Dict[str, Tuple[int, int, int]] = {}
    for base, bits in groups.items():
        if len(bits) == 1:
            result[bits[0][1]] = (0, -1, 0)
            continue
        length = len(bits)
        for index, name in bits:
            result[name] = (1, index, length)
    for name in scalar:
        result[name] = (0, -1, 0)
    return result


def _stats(values: Sequence[int]) -> Tuple[float, float, float]:
    """(min, avg, max) with the paper's -1 sentinel for empty sets."""
    if not values:
        return (-1.0, -1.0, -1.0)
    return (float(min(values)), sum(values) / len(values), float(max(values)))


def resolve_stats(
    netlist: Netlist,
    graph: Optional[CircuitGraph] = None,
    stats: Optional[CircuitStats] = None,
) -> CircuitStats:
    """Pick the quantity provider: explicit stats > traversal graph > batched."""
    if stats is not None:
        return stats
    if graph is not None:
        return graph.stats()
    return compute_circuit_stats(netlist)


def extract_structural(
    netlist: Netlist,
    graph: Optional[CircuitGraph] = None,
    stats: Optional[CircuitStats] = None,
) -> Dict[str, Dict[str, float]]:
    """Structural feature dict per flip-flop name."""
    stats = resolve_stats(netlist, graph, stats)
    buses = bus_membership(stats.ff_names)

    features: Dict[str, Dict[str, float]] = {}
    for i, name in enumerate(stats.ff_names):
        pi_min, pi_avg, pi_max = _stats(stats.pi_distances[i])
        po_min, po_avg, po_max = _stats(stats.po_distances[i])
        loop_depth = stats.feedback_depth[i]
        part, position, length = buses[name]
        features[name] = {
            "ff_fan_in": float(stats.ff_fan_in[i]),
            "ff_fan_out": float(stats.ff_fan_out[i]),
            "total_ffs_from": float(stats.total_from[i]),
            "total_ffs_to": float(stats.total_to[i]),
            "conn_from_primary_input": float(stats.conn_from_pi[i]),
            "conn_to_primary_output": float(stats.conn_to_po[i]),
            "proximity_from_pi_min": pi_min,
            "proximity_from_pi_avg": pi_avg,
            "proximity_from_pi_max": pi_max,
            "proximity_to_po_min": po_min,
            "proximity_to_po_avg": po_avg,
            "proximity_to_po_max": po_max,
            "part_of_bus": float(part),
            "bus_position": float(position),
            "bus_length": float(length),
            "conn_to_const_drivers": float(stats.const_drivers[i]),
            "has_feedback_loop": 1.0 if loop_depth > 0 else 0.0,
            "feedback_loop_depth": float(loop_depth),
        }
    return features
