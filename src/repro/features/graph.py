"""Graph analysis of a gate-level netlist.

The paper converts the netlist "into a graph representation" so that "graph
algorithms, such as Dijkstra's algorithm to find the shortest path, could be
used to extract the features".  :class:`CircuitGraph` provides that layer:

* per-flip-flop *combinational cones* (backward from the D/RN pins, forward
  from the Q pin), stopping at register boundaries — these yield direct
  fan-in/fan-out, primary-I/O connections, constant-driver counts and
  combinational cell counts;
* a *flip-flop-level graph* (one node per flip-flop, plus primary inputs
  and outputs) whose edges are direct through-combinational connections —
  transitive closures, stage distances (BFS: Dijkstra with unit weights)
  and feedback loops are computed on it.

The clock network is excluded throughout, as in the paper.

Since the vectorized extractor (:mod:`repro.features.vectorized`) became the
default engine, this per-flip-flop traversal path serves as the independent
differential reference: :meth:`CircuitGraph.stats` produces the same
:class:`~repro.features.vectorized.CircuitStats` container, and the test
suite asserts both engines agree exactly on every library circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..netlist.core import Cell, Netlist

__all__ = ["ConeSummary", "CircuitGraph"]


@dataclass
class ConeSummary:
    """Result of a combinational cone traversal for one flip-flop."""

    ff_sources: Set[str] = field(default_factory=set)
    ff_sinks: Set[str] = field(default_factory=set)
    primary_inputs: Set[str] = field(default_factory=set)
    primary_outputs: Set[str] = field(default_factory=set)
    comb_cells: Set[str] = field(default_factory=set)
    const_drivers: int = 0


class CircuitGraph:
    """Netlist connectivity analysis used by the feature extractor."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.ff_names: List[str] = [ff.name for ff in netlist.flip_flops()]
        self._clock_nets = set(netlist.clocks)
        self.input_cones: Dict[str, ConeSummary] = {}
        self.output_cones: Dict[str, ConeSummary] = {}
        for ff in netlist.flip_flops():
            self.input_cones[ff.name] = self._trace_input_cone(ff)
            self.output_cones[ff.name] = self._trace_output_cone(ff)
        self.ff_graph = self._build_ff_graph()
        self._depth_memo: Dict[str, int] = {}

    # ------------------------------------------------------------- tracing

    def _trace_input_cone(self, ff: Cell) -> ConeSummary:
        """Backward traversal from the FF's data pins to the previous stage."""
        cone = ConeSummary()
        stack = [n for n in ff.data_input_nets() if n not in self._clock_nets]
        visited: Set[str] = set()
        while stack:
            net_name = stack.pop()
            if net_name in visited:
                continue
            visited.add(net_name)
            net = self.netlist.nets[net_name]
            if net.is_input:
                cone.primary_inputs.add(net_name)
                continue
            if net.driver is None:
                continue
            cell = self.netlist.cells[net.driver.cell]
            if cell.is_sequential:
                cone.ff_sources.add(cell.name)
            elif cell.is_tie:
                cone.const_drivers += 1
            else:
                cone.comb_cells.add(cell.name)
                stack.extend(cell.input_nets())
        return cone

    def _trace_output_cone(self, ff: Cell) -> ConeSummary:
        """Forward traversal from the FF's Q pin to the next stage."""
        cone = ConeSummary()
        stack = [ff.output_net()]
        visited: Set[str] = set()
        while stack:
            net_name = stack.pop()
            if net_name in visited:
                continue
            visited.add(net_name)
            net = self.netlist.nets[net_name]
            if net.is_output:
                cone.primary_outputs.add(net_name)
            for sink in net.sinks:
                cell = self.netlist.cells[sink.cell]
                if cell.is_sequential:
                    if sink.pin != "CK":
                        cone.ff_sinks.add(cell.name)
                else:
                    cone.comb_cells.add(cell.name)
                    stack.append(cell.output_net())
        return cone

    # ------------------------------------------------------------ ff graph

    @staticmethod
    def pi_node(name: str) -> str:
        return f"PI:{name}"

    @staticmethod
    def po_node(name: str) -> str:
        return f"PO:{name}"

    def _build_ff_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self.ff_names)
        for name, cone in self.output_cones.items():
            for sink in cone.ff_sinks:
                graph.add_edge(name, sink)
            for po in cone.primary_outputs:
                graph.add_edge(name, self.po_node(po))
        for name, cone in self.input_cones.items():
            for pi in cone.primary_inputs:
                graph.add_edge(self.pi_node(pi), name)
        return graph

    def ff_only_graph(self) -> nx.DiGraph:
        """Sub-graph restricted to flip-flop nodes."""
        return self.ff_graph.subgraph(self.ff_names).copy()

    # ------------------------------------------------------ reachability

    def transitive_counts(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """``(total_from, total_to)`` per flip-flop.

        ``total_from[ff]`` counts flip-flops whose faults can reach *ff*'s
        input (ancestors in the FF graph); ``total_to[ff]`` counts
        flip-flops influenced by *ff* (descendants).  Computed on the
        strongly-connected-component condensation with bitset DP so the
        closure is near-linear in practice.
        """
        graph = self.ff_only_graph()
        condensed = nx.condensation(graph)
        order = list(nx.topological_sort(condensed))
        n_scc = condensed.number_of_nodes()
        members: Dict[int, List[str]] = {
            node: list(condensed.nodes[node]["members"]) for node in condensed.nodes
        }
        sizes = {node: len(members[node]) for node in condensed.nodes}

        # reach_down[s] = bitset of SCCs reachable from s (excluding s itself).
        reach_down: Dict[int, int] = {}
        for node in reversed(order):
            bits = 0
            for succ in condensed.successors(node):
                bits |= reach_down[succ] | (1 << succ)
            reach_down[node] = bits
        reach_up: Dict[int, int] = {}
        for node in order:
            bits = 0
            for pred in condensed.predecessors(node):
                bits |= reach_up[pred] | (1 << pred)
            reach_up[node] = bits

        def population(bits: int) -> int:
            total = 0
            while bits:
                low = bits & -bits
                total += sizes[low.bit_length() - 1]
                bits ^= low
            return total

        scc_of = {}
        for node in condensed.nodes:
            for member in members[node]:
                scc_of[member] = node

        total_from: Dict[str, int] = {}
        total_to: Dict[str, int] = {}
        self_loops = {n for n in graph.nodes if graph.has_edge(n, n)}
        for ff in self.ff_names:
            scc = scc_of[ff]
            own = sizes[scc]
            # Members of the same SCC are mutually reachable; a singleton
            # SCC includes itself only via an explicit self-loop.
            own_count = own if own > 1 else (1 if ff in self_loops else 0)
            total_to[ff] = population(reach_down[scc]) + own_count
            total_from[ff] = population(reach_up[scc]) + own_count
        return total_from, total_to

    # --------------------------------------------------------- proximities

    def pi_stage_distances(self) -> Dict[str, List[int]]:
        """Per flip-flop: stage distances from every reaching primary input.

        A direct PI→FF combinational connection is one stage; each further
        register boundary adds one (unit-weight shortest paths — Dijkstra on
        an unweighted graph reduces to BFS).
        """
        distances: Dict[str, List[int]] = {ff: [] for ff in self.ff_names}
        for net in self.netlist.inputs:
            if net in self._clock_nets:
                continue
            source = self.pi_node(net)
            if source not in self.ff_graph:
                continue
            lengths = nx.single_source_shortest_path_length(self.ff_graph, source)
            for node, dist in lengths.items():
                if node in distances and dist >= 1:
                    distances[node].append(dist)
        return distances

    def po_stage_distances(self) -> Dict[str, List[int]]:
        """Per flip-flop: stage distances to every reachable primary output."""
        reversed_graph = self.ff_graph.reverse(copy=False)
        distances: Dict[str, List[int]] = {ff: [] for ff in self.ff_names}
        for net in self.netlist.outputs:
            source = self.po_node(net)
            if source not in reversed_graph:
                continue
            lengths = nx.single_source_shortest_path_length(reversed_graph, source)
            for node, dist in lengths.items():
                if node in distances and dist >= 1:
                    distances[node].append(dist)
        return distances

    # ------------------------------------------------------ feedback loops

    def feedback_depth(self, ff_name: str, reachable_self: bool) -> int:
        """Minimum number of stages around a feedback loop through *ff_name*.

        Returns -1 when the flip-flop is on no cycle.  A comb-only feedback
        (Q feeding the own D cone) has depth 1.
        """
        if not reachable_self:
            return -1
        graph = self.ff_graph
        frontier = [s for s in graph.successors(ff_name) if s in self.input_cones]
        if ff_name in frontier:
            return 1
        visited = set(frontier)
        depth = 1
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for succ in graph.successors(node):
                    if succ == ff_name:
                        return depth
                    if succ not in visited and succ in self.input_cones:
                        visited.add(succ)
                        next_frontier.append(succ)
            frontier = next_frontier
        return -1

    # ---------------------------------------------------------------- SCC

    def self_reachable(self) -> Dict[str, bool]:
        """Per flip-flop: does it lie on a flip-flop-level cycle?

        True when the flip-flop's SCC has more than one member or it carries
        an explicit self-loop edge.
        """
        ff_graph = self.ff_only_graph()
        condensed = nx.condensation(ff_graph)
        result: Dict[str, bool] = {}
        for node in condensed.nodes:
            group = condensed.nodes[node]["members"]
            if len(group) > 1:
                for ff in group:
                    result[ff] = True
            else:
                (ff,) = group
                result[ff] = ff_graph.has_edge(ff, ff)
        return result

    # ------------------------------------------------- stats (differential)

    def stats(self) -> "CircuitStats":
        """The full per-flip-flop quantity set, via the traversal engine.

        Produces the same :class:`~repro.features.vectorized.CircuitStats`
        the vectorized engine computes — the differential-test contract is
        that both containers are equal on any netlist.
        """
        from .vectorized import CircuitStats

        total_from, total_to = self.transitive_counts()
        pi_dist = self.pi_stage_distances()
        po_dist = self.po_stage_distances()
        reachable = self.self_reachable()
        return CircuitStats(
            ff_names=list(self.ff_names),
            ff_fan_in=[len(self.input_cones[n].ff_sources) for n in self.ff_names],
            ff_fan_out=[len(self.output_cones[n].ff_sinks) for n in self.ff_names],
            total_from=[total_from[n] for n in self.ff_names],
            total_to=[total_to[n] for n in self.ff_names],
            conn_from_pi=[len(self.input_cones[n].primary_inputs) for n in self.ff_names],
            conn_to_po=[len(self.output_cones[n].primary_outputs) for n in self.ff_names],
            pi_distances=[pi_dist[n] for n in self.ff_names],
            po_distances=[po_dist[n] for n in self.ff_names],
            const_drivers=[self.input_cones[n].const_drivers for n in self.ff_names],
            feedback_depth=[
                self.feedback_depth(n, reachable[n]) for n in self.ff_names
            ],
            drive_strength=[self.netlist.cells[n].drive for n in self.ff_names],
            comb_fan_in=[len(self.input_cones[n].comb_cells) for n in self.ff_names],
            comb_fan_out=[len(self.output_cones[n].comb_cells) for n in self.ff_names],
            comb_path_depth=[self.comb_depth_from(n) for n in self.ff_names],
        )

    # ------------------------------------------------------------- depths

    def comb_depth_from(self, ff_name: str) -> int:
        """Longest combinational path (gate count) from the FF's output."""
        ff = self.netlist.cells[ff_name]
        return self._net_depth(ff.output_net())

    def _net_depth(self, net_name: str) -> int:
        memo = self._depth_memo
        cached = memo.get(net_name)
        if cached is not None:
            return cached
        memo[net_name] = 0  # breaks pathological recursion; netlist is acyclic
        net = self.netlist.nets[net_name]
        best = 0
        for sink in net.sinks:
            cell = self.netlist.cells[sink.cell]
            if cell.is_sequential:
                continue
            best = max(best, 1 + self._net_depth(cell.output_net()))
        memo[net_name] = best
        return best
