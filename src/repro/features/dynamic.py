"""Dynamic (signal-activity) features (paper section III-B, third group).

Obtained "by simulating the gate-level netlist with the corresponding
testbench and tracing the signal changes at the output of the flip-flops":
the @0 and @1 time ratios and the number of state changes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..sim.activity import ActivityTrace
from ..sim.testbench import GoldenTrace

__all__ = ["DYNAMIC_FEATURES", "extract_dynamic"]

DYNAMIC_FEATURES: Tuple[str, ...] = (
    "at_zero",
    "at_one",
    "state_changes",
)


def extract_dynamic(golden: GoldenTrace) -> Dict[str, Dict[str, float]]:
    """Dynamic feature dict per flip-flop name, from a recorded golden run."""
    activity = ActivityTrace.from_golden(golden)
    features: Dict[str, Dict[str, float]] = {}
    for i, name in enumerate(activity.ff_names):
        features[name] = {
            "at_zero": activity.at_zero[i],
            "at_one": activity.at_one[i],
            "state_changes": float(activity.state_changes[i]),
        }
    return features
