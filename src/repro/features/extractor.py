"""Feature extraction orchestration.

Combines the three feature groups of paper section III-B — structural,
synthesis and dynamic — into a single per-flip-flop matrix, and assembles a
labelled :class:`~repro.features.dataset.Dataset` when paired with a fault
campaign's FDR results.

Graph-derived quantities are computed once per netlist by the batched
engine (:mod:`repro.features.vectorized`); pass ``engine="networkx"`` to
run the original per-flip-flop traversal path instead (used as the
differential reference in tests and benchmarks).  Both engines produce
bit-identical matrices.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..faultinjection.campaign import CampaignResult
from ..netlist.core import Netlist
from ..sim.testbench import GoldenTrace
from .dataset import Dataset
from .dynamic import DYNAMIC_FEATURES, extract_dynamic
from .graph import CircuitGraph
from .structural import STRUCTURAL_FEATURES, extract_structural
from .synthesis import SYNTHESIS_FEATURES, extract_synthesis
from .vectorized import CircuitStats, compute_circuit_stats

__all__ = ["FeatureExtractor", "build_dataset", "ALL_FEATURES", "FEATURE_GROUPS"]

ALL_FEATURES: List[str] = [
    *STRUCTURAL_FEATURES,
    *SYNTHESIS_FEATURES,
    *DYNAMIC_FEATURES,
]

FEATURE_GROUPS: Dict[str, List[str]] = {
    "structural": list(STRUCTURAL_FEATURES),
    "synthesis": list(SYNTHESIS_FEATURES),
    "dynamic": list(DYNAMIC_FEATURES),
}

ENGINES = ("vectorized", "networkx")


class FeatureExtractor:
    """Extracts the full paper feature set for every flip-flop of a netlist."""

    def __init__(self, netlist: Netlist, engine: str = "vectorized") -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
        self.netlist = netlist
        self.engine = engine
        self.stats: CircuitStats = (
            compute_circuit_stats(netlist)
            if engine == "vectorized"
            else CircuitGraph(netlist).stats()
        )
        self.ff_names: List[str] = list(self.stats.ff_names)

    def extract(self, golden: GoldenTrace) -> Dict[str, Dict[str, float]]:
        """Per-flip-flop feature dictionaries (all groups merged)."""
        structural = extract_structural(self.netlist, stats=self.stats)
        synthesis = extract_synthesis(self.netlist, stats=self.stats)
        dynamic = extract_dynamic(golden)
        merged: Dict[str, Dict[str, float]] = {}
        for name in self.ff_names:
            row: Dict[str, float] = {}
            row.update(structural[name])
            row.update(synthesis[name])
            row.update(dynamic[name])
            merged[name] = row
        return merged

    def matrix(self, golden: GoldenTrace) -> np.ndarray:
        """Feature matrix in ``netlist.flip_flops()`` row order."""
        features = self.extract(golden)
        rows = [
            [features[name][col] for col in ALL_FEATURES] for name in self.ff_names
        ]
        return np.array(rows, dtype=np.float64)


def build_dataset(
    netlist: Netlist,
    golden: GoldenTrace,
    campaign: CampaignResult,
    meta: Optional[Dict[str, object]] = None,
    engine: str = "vectorized",
) -> Dataset:
    """Assemble the labelled dataset from features and campaign FDR results.

    Rows are restricted to flip-flops present in the campaign (a training
    subset campaign yields a training subset dataset) *and* actually
    measured by it — a flip-flop with zero injections has an undefined FDR
    (``nan``), which must not become a training label.
    """
    extractor = FeatureExtractor(netlist, engine=engine)
    features = extractor.extract(golden)
    ff_names = [
        name
        for name in extractor.ff_names
        if name in campaign.results and campaign.results[name].n_injections > 0
    ]
    X = np.array(
        [[features[name][col] for col in ALL_FEATURES] for name in ff_names],
        dtype=np.float64,
    )
    y = np.array([campaign.results[name].fdr for name in ff_names], dtype=np.float64)
    dataset_meta: Dict[str, object] = {
        "circuit": netlist.name,
        "n_injections": campaign.n_injections,
        "campaign_seed": campaign.seed,
        "features_engine": engine,
    }
    if meta:
        dataset_meta.update(meta)
    return Dataset(
        ff_names=ff_names,
        feature_names=list(ALL_FEATURES),
        X=X,
        y=y,
        groups={g: list(cols) for g, cols in FEATURE_GROUPS.items()},
        meta=dataset_meta,
    )
