"""Feature extraction orchestration.

Combines the three feature groups of paper section III-B — structural,
synthesis and dynamic — into a single per-flip-flop matrix, and assembles a
labelled :class:`~repro.features.dataset.Dataset` when paired with a fault
campaign's FDR results.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..faultinjection.campaign import CampaignResult
from ..netlist.core import Netlist
from ..sim.testbench import GoldenTrace
from .dataset import Dataset
from .dynamic import DYNAMIC_FEATURES, extract_dynamic
from .graph import CircuitGraph
from .structural import STRUCTURAL_FEATURES, extract_structural
from .synthesis import SYNTHESIS_FEATURES, extract_synthesis

__all__ = ["FeatureExtractor", "build_dataset", "ALL_FEATURES", "FEATURE_GROUPS"]

ALL_FEATURES: List[str] = [
    *STRUCTURAL_FEATURES,
    *SYNTHESIS_FEATURES,
    *DYNAMIC_FEATURES,
]

FEATURE_GROUPS: Dict[str, List[str]] = {
    "structural": list(STRUCTURAL_FEATURES),
    "synthesis": list(SYNTHESIS_FEATURES),
    "dynamic": list(DYNAMIC_FEATURES),
}


class FeatureExtractor:
    """Extracts the full paper feature set for every flip-flop of a netlist."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.graph = CircuitGraph(netlist)

    def extract(self, golden: GoldenTrace) -> Dict[str, Dict[str, float]]:
        """Per-flip-flop feature dictionaries (all groups merged)."""
        structural = extract_structural(self.netlist, self.graph)
        synthesis = extract_synthesis(self.netlist, self.graph)
        dynamic = extract_dynamic(golden)
        merged: Dict[str, Dict[str, float]] = {}
        for name in self.graph.ff_names:
            row: Dict[str, float] = {}
            row.update(structural[name])
            row.update(synthesis[name])
            row.update(dynamic[name])
            merged[name] = row
        return merged

    def matrix(self, golden: GoldenTrace) -> np.ndarray:
        """Feature matrix in ``netlist.flip_flops()`` row order."""
        features = self.extract(golden)
        rows = [
            [features[name][col] for col in ALL_FEATURES] for name in self.graph.ff_names
        ]
        return np.array(rows, dtype=np.float64)


def build_dataset(
    netlist: Netlist,
    golden: GoldenTrace,
    campaign: CampaignResult,
    meta: Optional[Dict[str, object]] = None,
) -> Dataset:
    """Assemble the labelled dataset from features and campaign FDR results.

    Rows are restricted to flip-flops present in the campaign (a training
    subset campaign yields a training subset dataset).
    """
    extractor = FeatureExtractor(netlist)
    features = extractor.extract(golden)
    ff_names = [name for name in extractor.graph.ff_names if name in campaign.results]
    X = np.array(
        [[features[name][col] for col in ALL_FEATURES] for name in ff_names],
        dtype=np.float64,
    )
    y = np.array([campaign.results[name].fdr for name in ff_names], dtype=np.float64)
    dataset_meta: Dict[str, object] = {
        "circuit": netlist.name,
        "n_injections": campaign.n_injections,
        "campaign_seed": campaign.seed,
    }
    if meta:
        dataset_meta.update(meta)
    return Dataset(
        ff_names=ff_names,
        feature_names=list(ALL_FEATURES),
        X=X,
        y=y,
        groups={g: list(cols) for g, cols in FEATURE_GROUPS.items()},
        meta=dataset_meta,
    )
