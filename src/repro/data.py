"""Dataset generation and caching — for any registered circuit.

One call produces the labelled per-flip-flop dataset the paper's section IV
trains on: build the circuit, run its registered workload, run the full
flat statistical fault-injection campaign, extract features, assemble the
:class:`~repro.features.dataset.Dataset`.  Results are cached as JSON under
``.repro_cache/`` keyed by a hash of the generation parameters, because the
full campaign (1012 flip-flops × 170 injections on the MAC) takes minutes.

The circuit, workload builder and failure criterion are all pluggable: a
:class:`DatasetSpec` names a circuit from
:mod:`repro.circuits.library`, the workload comes from the registry in
:mod:`repro.circuits.workloads`, and ``criterion="auto"`` resolves to the
registered default (the paper's packet criterion for the MAC presets, the
strict any-output criterion for the library circuits).

Three MAC scales are predefined (``tiny``/``mini``/``full``), and
:func:`circuit_preset` / :func:`transfer_presets` produce equivalent specs
for every library circuit — the inputs of the cross-circuit transfer
experiment.

Every cached dataset records its provenance in ``Dataset.meta`` — the
generating spec, the campaign content address, the backend/scheduler and
the code version — plus a ``schema_version``; caches written by an older
schema self-invalidate instead of silently loading.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from . import __version__
from .campaigns.executor import CampaignEngine
from .campaigns.spec import CampaignSpec, build_context
from .circuits.library import LIBRARY_CIRCUITS, get_circuit
from .circuits.workloads import Workload, build_workload_for, default_criterion
from .faultinjection.campaign import CampaignResult
from .faultinjection.faults import canonical_fault_model
from .features.dataset import Dataset
from .features.extractor import build_dataset
from .netlist.core import Netlist
from .obs import get_telemetry

__all__ = [
    "DatasetSpec",
    "DATASET_PRESETS",
    "DATASET_SCHEMA_VERSION",
    "circuit_preset",
    "transfer_presets",
    "generate_dataset",
    "get_dataset",
    "default_cache_dir",
]

#: Bumped whenever the cached-dataset layout or the feature semantics
#: change; caches stamped with an older (or missing) version regenerate.
#: Version 3 added the ``fault_model`` provenance column (PR 8).
DATASET_SCHEMA_VERSION = 3


@dataclass(frozen=True)
class DatasetSpec:
    """All parameters that determine a generated dataset.

    The six workload knobs are interpreted by the circuit's registered
    builder: frames/lengths/inter-frame gap for the MAC presets, stimulus
    bursts/lengths/idle gap for the generic burst testbench.
    ``criterion="auto"`` defers to the workload registry's default for the
    circuit.
    """

    circuit: str = "xgmac_mini"
    n_frames: int = 8
    min_len: int = 4
    max_len: int = 7
    gap: int = 14
    workload_seed: int = 1
    n_injections: int = 60
    campaign_seed: int = 0
    criterion: str = "auto"
    #: Registered fault model labelling the dataset (canonicalized by the
    #: campaign spec; see :mod:`repro.faultinjection.faults`).  The default
    #: ``"seu"`` is excluded from the cache key so pre-registry SEU dataset
    #: caches keep their content addresses.
    fault_model: str = "seu"

    def cache_key(self) -> str:
        payload_dict = asdict(self)
        payload_dict["fault_model"] = canonical_fault_model(self.fault_model)
        if payload_dict["fault_model"] == "seu":
            payload_dict.pop("fault_model")
        payload = json.dumps(payload_dict, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


DATASET_PRESETS: Dict[str, DatasetSpec] = {
    "tiny": DatasetSpec(
        circuit="xgmac_tiny",
        n_frames=5,
        min_len=2,
        max_len=3,
        gap=12,
        n_injections=24,
    ),
    "mini": DatasetSpec(
        circuit="xgmac_mini",
        n_frames=8,
        min_len=4,
        max_len=7,
        gap=14,
        n_injections=60,
    ),
    "full": DatasetSpec(
        circuit="xgmac",
        n_frames=12,
        min_len=8,
        max_len=24,
        gap=30,
        n_injections=170,
    ),
}

#: Workload/budget knobs per scale for the per-circuit presets.
_CIRCUIT_SCALES: Dict[str, Dict[str, int]] = {
    "tiny": dict(n_frames=4, min_len=2, max_len=4, gap=8, n_injections=24),
    "mini": dict(n_frames=8, min_len=4, max_len=7, gap=12, n_injections=60),
    "full": dict(n_frames=16, min_len=6, max_len=12, gap=16, n_injections=170),
}


def circuit_preset(circuit: str, scale: str = "tiny") -> DatasetSpec:
    """A :class:`DatasetSpec` for any registered circuit at a named scale.

    The circuit the scale's MAC preset was hand-tuned for gets exactly that
    preset (:data:`DATASET_PRESETS`); every other circuit — library or MAC —
    gets the scale's generic workload/budget knobs, so all specs returned
    for one *scale* share the same injection budget.
    """
    try:
        knobs = _CIRCUIT_SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; choose from {sorted(_CIRCUIT_SCALES)}"
        ) from None
    if DATASET_PRESETS[scale].circuit == circuit:
        return DATASET_PRESETS[scale]
    return DatasetSpec(circuit=circuit, **knobs)


def transfer_presets(
    scale: str = "tiny", circuits: Optional[Iterable[str]] = None
) -> Dict[str, DatasetSpec]:
    """Per-circuit dataset specs for the cross-circuit transfer experiment.

    Defaults to every library circuit (:data:`~repro.circuits.library.LIBRARY_CIRCUITS`).
    """
    chosen = list(circuits) if circuits is not None else list(LIBRARY_CIRCUITS)
    return {circuit: circuit_preset(circuit, scale) for circuit in chosen}


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in CWD."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def build_workload(spec: DatasetSpec) -> Tuple[Netlist, Workload]:
    """Synthesize the circuit and construct its registered workload."""
    netlist = get_circuit(spec.circuit)
    workload = build_workload_for(
        spec.circuit,
        netlist,
        n_frames=spec.n_frames,
        min_len=spec.min_len,
        max_len=spec.max_len,
        gap=spec.gap,
        seed=spec.workload_seed,
    )
    return netlist, workload


def generate_dataset(
    spec: DatasetSpec,
    jobs: int = 1,
    campaign_cache_dir: Optional[Path] = None,
    backend: str = "compiled",
    scheduler: str = "adaptive",
) -> Tuple[Dataset, CampaignResult]:
    """Run the full reference flow for *spec* (no dataset caching).

    The fault campaign runs on the :class:`~repro.campaigns.CampaignEngine`
    in ``legacy`` schedule mode, which is draw-for-draw identical to the
    historical serial runner — so datasets are bit-stable across ``jobs``
    counts, backends and schedulers — while gaining sharded execution and
    (when *campaign_cache_dir* is set) snapshot reuse and resumability.

    The returned dataset's ``meta`` records full label provenance: the
    generating spec, the campaign spec's content address, the simulation
    backend and execution scheduler, and the package version.
    """
    campaign_spec = CampaignSpec.from_dataset_spec(
        spec, schedule="legacy", backend=backend, scheduler=scheduler
    )
    # Instantiate the environment exactly as sharded worker processes do
    # (circuit, workload and criterion all resolve from the campaign spec),
    # so serial and jobs > 1 runs can never diverge in construction.
    context = build_context(campaign_spec)
    # Record the golden trace up front so its span is a sibling of the
    # campaign span in the trace, not buried inside it.
    golden = context.ensure_golden()
    engine = CampaignEngine(
        campaign_spec, jobs=jobs, cache_dir=campaign_cache_dir, context=context
    )
    campaign = engine.run()
    with get_telemetry().tracer.span(
        "features", circuit=spec.circuit, n_ff=len(campaign.results)
    ):
        dataset = build_dataset(
            context.netlist,
            golden,
            campaign,
            meta={
                "schema_version": DATASET_SCHEMA_VERSION,
                "spec": asdict(spec),
                "criterion": campaign_spec.criterion,
                "fault_model": campaign_spec.fault_model,
                "campaign_key": campaign_spec.cache_key(),
                "backend": backend,
                "scheduler": scheduler,
                "schedule": campaign_spec.schedule,
                "code_version": __version__,
            },
        )
    return dataset, campaign


def get_dataset(
    preset: str = "mini",
    spec: Optional[DatasetSpec] = None,
    cache_dir: Optional[Path] = None,
    regenerate: bool = False,
    jobs: int = 1,
    backend: str = "compiled",
    scheduler: str = "adaptive",
) -> Dataset:
    """Load (or generate and cache) a labelled dataset.

    Either name a preset (``tiny``/``mini``/``full``) or pass an explicit
    :class:`DatasetSpec` (e.g. from :func:`circuit_preset`).  ``jobs > 1``
    shards the fault campaign across worker processes (the result is
    bit-identical to ``jobs=1``); the same *cache_dir* also holds the
    campaign result store, so an interrupted generation resumes instead of
    restarting.  A cached file whose ``meta["schema_version"]`` does not
    match :data:`DATASET_SCHEMA_VERSION` is regenerated in place.
    """
    if spec is None:
        try:
            spec = DATASET_PRESETS[preset]
        except KeyError:
            raise KeyError(
                f"unknown preset {preset!r}; choose from {sorted(DATASET_PRESETS)}"
            ) from None
    if spec.criterion == "auto":
        # Resolve against the workload registry *before* hashing, so the
        # cache key names the concrete criterion: re-registering a circuit
        # with a different default invalidates its cached labels instead of
        # silently serving ones judged under the old rules.
        spec = replace(spec, criterion=default_criterion(spec.circuit))
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    cache_file = cache_dir / f"dataset_{spec.circuit}_{spec.cache_key()}.json"
    registry = get_telemetry().registry
    if cache_file.exists() and not regenerate:
        try:
            dataset = Dataset.from_json(cache_file.read_text())
        except (ValueError, KeyError):
            dataset = None  # corrupt cache entry: fall through and rebuild
        if (
            dataset is not None
            and dataset.meta.get("schema_version") == DATASET_SCHEMA_VERSION
        ):
            registry.counter("dataset.cache_hit").inc()
            return dataset
    registry.counter("dataset.cache_miss").inc()
    with get_telemetry().tracer.span(
        "dataset", circuit=spec.circuit, n_injections=spec.n_injections
    ):
        dataset, _campaign = generate_dataset(
            spec,
            jobs=jobs,
            campaign_cache_dir=cache_dir,
            backend=backend,
            scheduler=scheduler,
        )
        cache_dir.mkdir(parents=True, exist_ok=True)
        cache_file.write_text(dataset.to_json())
    return dataset
