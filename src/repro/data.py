"""Dataset generation and caching.

One call produces the labelled per-flip-flop dataset the paper's section IV
trains on: build the MAC netlist, run the frame workload, run the full flat
statistical fault-injection campaign, extract features, assemble the
:class:`~repro.features.dataset.Dataset`.  Results are cached as JSON under
``.repro_cache/`` keyed by a hash of the generation parameters, because the
full campaign (1012 flip-flops × 170 injections) takes minutes.

Three scales are predefined: ``tiny`` (seconds; unit tests), ``mini``
(default; CI benchmarks) and ``full`` (the paper-scale configuration).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from .campaigns.executor import CampaignEngine
from .campaigns.spec import CampaignContext, CampaignSpec
from .circuits.library import get_circuit
from .circuits.workloads import XgMacWorkload, build_xgmac_workload
from .faultinjection.campaign import CampaignResult
from .faultinjection.classify import PacketInterfaceCriterion
from .features.dataset import Dataset
from .features.extractor import build_dataset
from .netlist.core import Netlist

__all__ = ["DatasetSpec", "DATASET_PRESETS", "generate_dataset", "get_dataset", "default_cache_dir"]


@dataclass(frozen=True)
class DatasetSpec:
    """All parameters that determine a generated dataset."""

    circuit: str = "xgmac_mini"
    n_frames: int = 8
    min_len: int = 4
    max_len: int = 7
    gap: int = 14
    workload_seed: int = 1
    n_injections: int = 60
    campaign_seed: int = 0

    def cache_key(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


DATASET_PRESETS: Dict[str, DatasetSpec] = {
    "tiny": DatasetSpec(
        circuit="xgmac_tiny",
        n_frames=5,
        min_len=2,
        max_len=3,
        gap=12,
        n_injections=24,
    ),
    "mini": DatasetSpec(
        circuit="xgmac_mini",
        n_frames=8,
        min_len=4,
        max_len=7,
        gap=14,
        n_injections=60,
    ),
    "full": DatasetSpec(
        circuit="xgmac",
        n_frames=12,
        min_len=8,
        max_len=24,
        gap=30,
        n_injections=170,
    ),
}


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_CACHE_DIR`` or ``.repro_cache`` in CWD."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def build_workload(spec: DatasetSpec) -> Tuple[Netlist, XgMacWorkload]:
    """Synthesize the circuit and construct the frame workload for *spec*."""
    netlist = get_circuit(spec.circuit)
    workload = build_xgmac_workload(
        netlist,
        n_frames=spec.n_frames,
        min_len=spec.min_len,
        max_len=spec.max_len,
        gap=spec.gap,
        seed=spec.workload_seed,
    )
    return netlist, workload


def generate_dataset(
    spec: DatasetSpec,
    jobs: int = 1,
    campaign_cache_dir: Optional[Path] = None,
) -> Tuple[Dataset, CampaignResult]:
    """Run the full reference flow for *spec* (no dataset caching).

    The fault campaign runs on the :class:`~repro.campaigns.CampaignEngine`
    in ``legacy`` schedule mode, which is draw-for-draw identical to the
    historical serial runner — so datasets are bit-stable across ``jobs``
    counts — while gaining sharded execution and (when
    *campaign_cache_dir* is set) snapshot reuse and resumability.
    """
    netlist, workload = build_workload(spec)
    criterion = PacketInterfaceCriterion(workload.valid_nets, workload.data_nets)
    campaign_spec = CampaignSpec.from_dataset_spec(spec, schedule="legacy")
    context = CampaignContext(netlist=netlist, workload=workload, criterion=criterion)
    engine = CampaignEngine(
        campaign_spec, jobs=jobs, cache_dir=campaign_cache_dir, context=context
    )
    campaign = engine.run()
    dataset = build_dataset(
        netlist,
        context.ensure_golden(),
        campaign,
        meta={"spec": asdict(spec)},
    )
    return dataset, campaign


def get_dataset(
    preset: str = "mini",
    spec: Optional[DatasetSpec] = None,
    cache_dir: Optional[Path] = None,
    regenerate: bool = False,
    jobs: int = 1,
) -> Dataset:
    """Load (or generate and cache) a labelled dataset.

    Either name a preset (``tiny``/``mini``/``full``) or pass an explicit
    :class:`DatasetSpec`.  ``jobs > 1`` shards the fault campaign across
    worker processes (the result is bit-identical to ``jobs=1``); the same
    *cache_dir* also holds the campaign result store, so an interrupted
    generation resumes instead of restarting.
    """
    if spec is None:
        try:
            spec = DATASET_PRESETS[preset]
        except KeyError:
            raise KeyError(
                f"unknown preset {preset!r}; choose from {sorted(DATASET_PRESETS)}"
            ) from None
    cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
    cache_file = cache_dir / f"dataset_{spec.circuit}_{spec.cache_key()}.json"
    if cache_file.exists() and not regenerate:
        return Dataset.from_json(cache_file.read_text())
    dataset, _campaign = generate_dataset(spec, jobs=jobs, campaign_cache_dir=cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    cache_file.write_text(dataset.to_json())
    return dataset
