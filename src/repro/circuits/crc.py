"""CRC-32 generator (IEEE 802.3 polynomial).

The 10GE MAC computes a CRC over every transmitted frame and checks it on
reception; payload corruption detected through a CRC mismatch is one of the
paper's failure classes.  This module provides both an integer golden model
and an RTL byte-wise update network.

The update network is derived *from* the golden model by superposition: a
CRC step is linear over GF(2), so the expression for each next-state bit is
the XOR of exactly those current-state/data bits whose unit vectors flip it.
This keeps the RTL correct by construction against the golden model.

The register uses an all-zero initial value (rather than 802.3's inverted
init/final-complement), so a receiver that runs the CRC over payload plus
appended CRC ends at zero for an intact frame.  The masking/propagation
behaviour exercised by fault injection is identical.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from ..netlist.core import Netlist
from ..synth.expr import Expr, Not, Xor, ZERO
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import Word, const_word, mux_word, reduce_and

__all__ = [
    "CRC32_POLY",
    "crc32_step",
    "crc32_bytes",
    "crc32_update_word",
    "crc_bytes_msb_first",
    "make_crc32",
]

CRC32_POLY = 0x04C11DB7
_MASK32 = 0xFFFFFFFF


def crc32_step(crc: int, byte: int) -> int:
    """Golden model: advance a 32-bit CRC register by one data byte.

    MSB-first bit processing with polynomial :data:`CRC32_POLY`.
    """
    crc = (crc ^ (byte << 24)) & _MASK32
    for _ in range(8):
        if crc & 0x80000000:
            crc = ((crc << 1) ^ CRC32_POLY) & _MASK32
        else:
            crc = (crc << 1) & _MASK32
    return crc


def crc32_bytes(data: Sequence[int], crc: int = 0) -> int:
    """CRC of a byte sequence starting from *crc*."""
    for byte in data:
        crc = crc32_step(crc, byte)
    return crc


def crc_bytes_msb_first(crc: int) -> Tuple[int, int, int, int]:
    """Split a CRC value into the four bytes transmitted MSB first."""
    return ((crc >> 24) & 0xFF, (crc >> 16) & 0xFF, (crc >> 8) & 0xFF, crc & 0xFF)


@lru_cache(maxsize=None)
def _update_masks() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Superposition masks: which crc/data bits feed each next-state bit.

    Returns ``(crc_masks, data_masks)`` where bit *j* of ``crc_masks[i]``
    means current CRC bit *j* participates in next CRC bit *i*.
    """
    crc_cols = [crc32_step(1 << j, 0) for j in range(32)]
    data_cols = [crc32_step(0, 1 << j) for j in range(8)]
    crc_masks = []
    data_masks = []
    for i in range(32):
        cmask = 0
        for j in range(32):
            if (crc_cols[j] >> i) & 1:
                cmask |= 1 << j
        dmask = 0
        for j in range(8):
            if (data_cols[j] >> i) & 1:
                dmask |= 1 << j
        crc_masks.append(cmask)
        data_masks.append(dmask)
    return tuple(crc_masks), tuple(data_masks)


def crc32_update_word(crc: Sequence[Expr], data: Sequence[Expr]) -> Word:
    """RTL byte-wise CRC update network.

    Parameters
    ----------
    crc:
        32 expression bits, LSB first (bit *i* is CRC bit *i*).
    data:
        8 expression bits, LSB first.

    Returns
    -------
    The 32 next-state expressions, LSB first.
    """
    if len(crc) != 32 or len(data) != 8:
        raise ValueError("crc32_update_word expects 32 crc bits and 8 data bits")
    crc_masks, data_masks = _update_masks()
    next_bits: Word = []
    for i in range(32):
        terms: List[Expr] = []
        for j in range(32):
            if (crc_masks[i] >> j) & 1:
                terms.append(crc[j])
        for j in range(8):
            if (data_masks[i] >> j) & 1:
                terms.append(data[j])
        next_bits.append(Xor.of(*terms) if terms else ZERO)
    return next_bits


# --------------------------------------------------------------------------
# Stand-alone circuit (synthesized, with primary I/O) for the library.
# --------------------------------------------------------------------------


def make_crc32(name: str = "crc32") -> Netlist:
    """Stand-alone byte-wise CRC-32 engine.

    Feeds the update network from a data-byte input while ``en`` is high and
    synchronously clears on ``clear``; exposes the low CRC byte and an
    all-zero flag (the intact-frame check of the receive path).  The 32-bit
    state register behind a deep XOR network makes this the most
    XOR-dominated circuit in the library.
    """
    module = Module(name)
    enable = module.input("en")
    clear = module.input("clear")
    data = module.input_bus("data", 8)
    crc = module.reg_bus("crc", 32)
    advanced = mux_word(enable, crc32_update_word(crc, data), crc)
    module.next(crc, mux_word(clear, const_word(0, 32), advanced))
    module.output_bus("crc_low", list(crc[:8]))
    module.output("crc_zero", reduce_and([Not.of(bit) for bit in crc]))
    return synthesize(module)
