"""Frame-streaming workload for the MAC core (the paper's testbench).

Mirrors the testbench the paper describes for the 10GE MAC: it "writes
several packets to the transmit packet interface", the XGMII TX interface
"is looped back to the XGMII RX interface", the frames are processed by the
receive engine, and "the testbench reads frames from the packet receive
interface".  The record of sent and received packets is the golden reference
for the fault-injection campaign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from ..sim.testbench import GoldenTrace, LoopbackPath, ScheduleBuilder, Testbench
from .crc import crc32_bytes, crc_bytes_msb_first

__all__ = [
    "XgMacWorkload",
    "build_xgmac_workload",
    "decode_rx_stream",
    "expected_rx_entries",
]

RESET_CYCLES = 4


@dataclass
class XgMacWorkload:
    """A fully specified MAC workload.

    Attributes
    ----------
    testbench:
        Open-loop schedule + XGMII loopback, ready for golden/fault runs.
    frames:
        The payloads written to the TX packet interface, in order.
    active_window:
        ``(first, last)`` cycle range during which traffic is in flight —
        the paper injects faults "during the active phase of the
        simulation, when packets are sent and received".
    valid_nets / data_nets:
        Primary outputs forming the functional-failure criterion (the
        packet receive interface).
    """

    testbench: Testbench
    frames: List[List[int]]
    active_window: Tuple[int, int]
    valid_nets: List[str]
    data_nets: List[str]


def build_xgmac_workload(
    netlist: Netlist,
    n_frames: int = 10,
    min_len: int = 6,
    max_len: int = 16,
    gap: int = 14,
    seed: int = 1,
    drain_cycles: int = 160,
) -> XgMacWorkload:
    """Build the frame-streaming workload for a synthesized MAC netlist.

    Frame payloads and lengths are drawn from a seeded RNG so the workload
    is fully reproducible.  Pacing (one write per cycle, *gap* idle cycles
    between frames) keeps the TX FIFO from overflowing for the default
    presets.
    """
    rng = random.Random(seed)
    frames = [
        [rng.randrange(256) for _ in range(rng.randint(min_len, max_len))]
        for _ in range(n_frames)
    ]

    sb = ScheduleBuilder(netlist.inputs)
    sb.drive(0, "rst_n", 0)
    sb.drive(RESET_CYCLES, "rst_n", 1)
    sb.drive(RESET_CYCLES + 2, "pkt_rx_ren", 1)

    cycle = RESET_CYCLES + 2
    if "cfg_wen" in netlist.nets and netlist.nets["cfg_wen"].is_input:
        for i in range(4):
            sb.drive(cycle, "cfg_wen", 1)
            sb.drive_word(cycle, "cfg_addr", 3, i)
            sb.drive_word(cycle, "cfg_wdata", 8, rng.randrange(256))
            cycle += 1
        sb.drive(cycle, "cfg_wen", 0)
        cycle += 2

    first_active = cycle
    for payload in frames:
        for i, byte in enumerate(payload):
            sb.drive(cycle, "pkt_tx_val", 1)
            sb.drive(cycle, "pkt_tx_sop", 1 if i == 0 else 0)
            sb.drive(cycle, "pkt_tx_eop", 1 if i == len(payload) - 1 else 0)
            sb.drive_word(cycle, "pkt_tx_data", 8, byte)
            cycle += 1
        sb.drive(cycle, "pkt_tx_val", 0)
        sb.drive(cycle, "pkt_tx_eop", 0)
        cycle += gap
    last_activity = cycle + drain_cycles // 2
    total_cycles = cycle + drain_cycles

    loopbacks = [
        LoopbackPath(
            sources=tuple([f"xgmii_txd[{i}]" for i in range(8)] + ["xgmii_txc"]),
            targets=tuple([f"xgmii_rxd[{i}]" for i in range(8)] + ["xgmii_rxc"]),
            delay=1,
        )
    ]
    testbench = Testbench(netlist, sb.compile(total_cycles), loopbacks, name="xgmac_frames")
    data_nets = [f"pkt_rx_data[{i}]" for i in range(8)] + ["pkt_rx_sop", "pkt_rx_eop"]
    return XgMacWorkload(
        testbench=testbench,
        frames=frames,
        active_window=(first_active, last_activity),
        valid_nets=["pkt_rx_val"],
        data_nets=data_nets,
    )


def expected_rx_entries(frames: Sequence[Sequence[int]]) -> List[Tuple[int, int, int]]:
    """Expected RX FIFO stream: ``(byte, sop, eop)`` per entry.

    Each frame yields its payload bytes (first one flagged SOP) followed by
    a status entry with the CRC-ok bit set — assuming fault-free transport.
    """
    entries: List[Tuple[int, int, int]] = []
    for payload in frames:
        for i, byte in enumerate(payload):
            entries.append((byte, 1 if i == 0 else 0, 0))
        entries.append((0x01, 0, 1))
    return entries


def decode_rx_stream(trace: GoldenTrace) -> List[Tuple[int, int, int]]:
    """Extract the received ``(byte, sop, eop)`` entries from a golden trace."""
    out_index = {name: i for i, name in enumerate(trace.output_names)}
    val_bit = out_index["pkt_rx_val"]
    data_bits = [out_index[f"pkt_rx_data[{i}]"] for i in range(8)]
    sop_bit = out_index["pkt_rx_sop"]
    eop_bit = out_index["pkt_rx_eop"]
    entries: List[Tuple[int, int, int]] = []
    for cycle in range(trace.n_cycles):
        vector = trace.outputs[cycle]
        if (vector >> val_bit) & 1:
            byte = 0
            for j, bit in enumerate(data_bits):
                byte |= ((vector >> bit) & 1) << j
            entries.append((byte, (vector >> sop_bit) & 1, (vector >> eop_bit) & 1))
    return entries
