"""Workload construction: the paper's MAC testbench plus generic testbenches.

The original (and still headline) workload mirrors the testbench the paper
describes for the 10GE MAC: it "writes several packets to the transmit
packet interface", the XGMII TX interface "is looped back to the XGMII RX
interface", the frames are processed by the receive engine, and "the
testbench reads frames from the packet receive interface".  The record of
sent and received packets is the golden reference for the fault-injection
campaign.

Beyond the MAC, every circuit in :mod:`repro.circuits.library` gets a
workload through the **workload registry**: circuit names (exact or prefix)
map to a builder plus a default failure-criterion kind.  Builders share one
signature — ``(netlist, n_frames, min_len, max_len, gap, seed)`` — so a
:class:`repro.data.DatasetSpec` describes any circuit's workload with the
same six knobs; for the generic burst testbench they read as *number of
stimulus bursts*, *burst length range* and *idle gap*.  Register a builder
with :func:`register_workload` to open a new circuit family to the dataset
and experiment layers (see ``docs/experiments.md``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist.core import Netlist
from ..sim.testbench import GoldenTrace, LoopbackPath, ScheduleBuilder, Testbench
from .crc import crc32_bytes, crc_bytes_msb_first

__all__ = [
    "Workload",
    "XgMacWorkload",
    "build_xgmac_workload",
    "build_burst_workload",
    "make_burst_builder",
    "build_workload_for",
    "register_workload",
    "default_criterion",
    "decode_rx_stream",
    "expected_rx_entries",
]

RESET_CYCLES = 4


@dataclass
class Workload:
    """A fully specified injection workload for one circuit.

    Attributes
    ----------
    testbench:
        Compiled stimulus schedule (plus any loopbacks), ready for
        golden/fault runs.
    active_window:
        ``(first, last)`` cycle range during which stimulus is in flight —
        the paper injects faults "during the active phase of the
        simulation, when packets are sent and received".
    valid_nets / data_nets:
        Primary outputs forming a packet-style failure criterion (strobes
        vs. payload).  Circuits without a streaming interface leave these
        empty and rely on the ``any_output`` criterion instead.
    """

    testbench: Testbench
    active_window: Tuple[int, int]
    valid_nets: List[str] = field(default_factory=list)
    data_nets: List[str] = field(default_factory=list)


@dataclass
class XgMacWorkload(Workload):
    """The MAC workload: a :class:`Workload` plus the frame record.

    ``frames`` holds the payloads written to the TX packet interface, in
    order — the golden reference for :func:`expected_rx_entries`.
    """

    frames: List[List[int]] = field(default_factory=list)


def build_xgmac_workload(
    netlist: Netlist,
    n_frames: int = 10,
    min_len: int = 6,
    max_len: int = 16,
    gap: int = 14,
    seed: int = 1,
    drain_cycles: int = 160,
) -> XgMacWorkload:
    """Build the frame-streaming workload for a synthesized MAC netlist.

    Frame payloads and lengths are drawn from a seeded RNG so the workload
    is fully reproducible.  Pacing (one write per cycle, *gap* idle cycles
    between frames) keeps the TX FIFO from overflowing for the default
    presets.
    """
    rng = random.Random(seed)
    frames = [
        [rng.randrange(256) for _ in range(rng.randint(min_len, max_len))]
        for _ in range(n_frames)
    ]

    sb = ScheduleBuilder(netlist.inputs)
    sb.drive(0, "rst_n", 0)
    sb.drive(RESET_CYCLES, "rst_n", 1)
    sb.drive(RESET_CYCLES + 2, "pkt_rx_ren", 1)

    cycle = RESET_CYCLES + 2
    if "cfg_wen" in netlist.nets and netlist.nets["cfg_wen"].is_input:
        for i in range(4):
            sb.drive(cycle, "cfg_wen", 1)
            sb.drive_word(cycle, "cfg_addr", 3, i)
            sb.drive_word(cycle, "cfg_wdata", 8, rng.randrange(256))
            cycle += 1
        sb.drive(cycle, "cfg_wen", 0)
        cycle += 2

    first_active = cycle
    for payload in frames:
        for i, byte in enumerate(payload):
            sb.drive(cycle, "pkt_tx_val", 1)
            sb.drive(cycle, "pkt_tx_sop", 1 if i == 0 else 0)
            sb.drive(cycle, "pkt_tx_eop", 1 if i == len(payload) - 1 else 0)
            sb.drive_word(cycle, "pkt_tx_data", 8, byte)
            cycle += 1
        sb.drive(cycle, "pkt_tx_val", 0)
        sb.drive(cycle, "pkt_tx_eop", 0)
        cycle += gap
    last_activity = cycle + drain_cycles // 2
    total_cycles = cycle + drain_cycles

    loopbacks = [
        LoopbackPath(
            sources=tuple([f"xgmii_txd[{i}]" for i in range(8)] + ["xgmii_txc"]),
            targets=tuple([f"xgmii_rxd[{i}]" for i in range(8)] + ["xgmii_rxc"]),
            delay=1,
        )
    ]
    testbench = Testbench(netlist, sb.compile(total_cycles), loopbacks, name="xgmac_frames")
    data_nets = [f"pkt_rx_data[{i}]" for i in range(8)] + ["pkt_rx_sop", "pkt_rx_eop"]
    return XgMacWorkload(
        testbench=testbench,
        frames=frames,
        active_window=(first_active, last_activity),
        valid_nets=["pkt_rx_val"],
        data_nets=data_nets,
    )


def build_burst_workload(
    netlist: Netlist,
    n_frames: int = 8,
    min_len: int = 4,
    max_len: int = 7,
    gap: int = 14,
    seed: int = 1,
    drain_cycles: int = 24,
    bias: Optional[Dict[str, float]] = None,
) -> Workload:
    """Generic seeded burst testbench for any synthesized circuit.

    Releases reset, then drives *n_frames* bursts of random values on every
    non-clock, non-reset primary input — each burst between *min_len* and
    *max_len* cycles long, separated by *gap* idle cycles (inputs return to
    zero).  This exercises both the active datapath and the quiescent-state
    behaviour that dominates un-reset storage bits, mirroring the traffic /
    idle alternation of the MAC frame workload at library-circuit scale.

    *bias* maps input names to their per-cycle probability of driving 1
    (default 0.5) — the hook circuit registrations use to shape stimulus for
    control inputs (a synchronous clear that fires half the time would wipe
    a counter before any fault can propagate).

    The schedule is fully determined by the knobs and the netlist's port
    list, so workers and cache keys reproduce it exactly.
    """
    rng = random.Random(seed)
    bias = bias or {}
    data_inputs = [
        name
        for name in netlist.inputs
        if name not in netlist.clocks and name != "rst_n"
    ]

    sb = ScheduleBuilder(netlist.inputs)
    has_reset = "rst_n" in netlist.nets and netlist.nets["rst_n"].is_input
    if has_reset:
        sb.drive(0, "rst_n", 0)
        sb.drive(RESET_CYCLES, "rst_n", 1)
    cycle = (RESET_CYCLES if has_reset else 0) + 2

    first_active = cycle
    for _ in range(n_frames):
        burst_len = rng.randint(min_len, max_len)
        for _ in range(burst_len):
            for name in data_inputs:
                bit = 1 if rng.random() < bias.get(name, 0.5) else 0
                sb.drive(cycle, name, bit)
            cycle += 1
        for name in data_inputs:
            sb.drive(cycle, name, 0)
        cycle += gap
    last_activity = cycle + drain_cycles // 2
    total_cycles = cycle + drain_cycles

    testbench = Testbench(netlist, sb.compile(total_cycles), name=f"{netlist.name}_burst")
    return Workload(
        testbench=testbench,
        active_window=(first_active, last_activity),
        valid_nets=[],
        data_nets=list(netlist.outputs),
    )


# --------------------------------------------------------------- registry

WorkloadBuilder = Callable[..., Workload]


@dataclass(frozen=True)
class WorkloadEntry:
    """One registered workload family: builder plus default criterion kind."""

    builder: WorkloadBuilder
    criterion: str


#: Exact-name entries take precedence; prefix entries (``"xgmac"``) cover
#: whole circuit families.  ``criterion`` names one of the kinds resolved by
#: :func:`repro.campaigns.spec.build_context`: ``packet`` (the paper's
#: strobe+payload rules over valid/data nets), ``observed`` (any deviation
#: on the workload's valid/data nets) or ``any_output`` (any deviation on
#: any primary output).
_WORKLOADS_EXACT: Dict[str, WorkloadEntry] = {}
_WORKLOADS_PREFIX: Dict[str, WorkloadEntry] = {}


def register_workload(
    circuit: str,
    builder: WorkloadBuilder,
    criterion: str = "any_output",
    prefix: bool = False,
) -> None:
    """Register *builder* as the workload for *circuit*.

    With ``prefix=True`` the entry covers every circuit whose name starts
    with *circuit* (longest registered prefix wins).  The builder must
    accept ``(netlist, n_frames=..., min_len=..., max_len=..., gap=...,
    seed=...)`` and return a :class:`Workload`.
    """
    if prefix:
        _WORKLOADS_PREFIX[circuit] = WorkloadEntry(builder, criterion)
    else:
        _WORKLOADS_EXACT[circuit] = WorkloadEntry(builder, criterion)


def _lookup(circuit: str) -> WorkloadEntry:
    entry = _WORKLOADS_EXACT.get(circuit)
    if entry is not None:
        return entry
    best: Optional[str] = None
    for prefix in _WORKLOADS_PREFIX:
        if circuit.startswith(prefix) and (best is None or len(prefix) > len(best)):
            best = prefix
    if best is not None:
        return _WORKLOADS_PREFIX[best]
    # Default family: the generic burst testbench with the strict criterion.
    return WorkloadEntry(build_burst_workload, "any_output")


def build_workload_for(
    circuit: str,
    netlist: Netlist,
    n_frames: int = 8,
    min_len: int = 4,
    max_len: int = 7,
    gap: int = 14,
    seed: int = 1,
) -> Workload:
    """Build the registered workload for *circuit* on *netlist*."""
    entry = _lookup(circuit)
    return entry.builder(
        netlist,
        n_frames=n_frames,
        min_len=min_len,
        max_len=max_len,
        gap=gap,
        seed=seed,
    )


def default_criterion(circuit: str) -> str:
    """The registered failure-criterion kind for *circuit*."""
    return _lookup(circuit).criterion


def make_burst_builder(
    observed: Optional[Sequence[str]] = None,
    bias: Optional[Dict[str, float]] = None,
) -> WorkloadBuilder:
    """A burst-workload builder with fixed observation points and stimulus bias.

    Restricting observation to the circuit's functional interface (the
    count MSB of a counter, the serial output of a shift register …) is
    what makes library-circuit FDR non-trivial: a fault is a failure only
    if it *reaches* those nets within the workload, so deep or rarely read
    state earns the same logical derating the paper measures on the MAC.
    *bias* shapes the stimulus (see :func:`build_burst_workload`).
    """

    def build(netlist: Netlist, **kwargs) -> Workload:
        workload = build_burst_workload(netlist, bias=bias, **kwargs)
        if observed is not None:
            missing = [n for n in observed if n not in netlist.outputs]
            if missing:
                raise ValueError(
                    f"observed nets {missing} are not outputs of {netlist.name}"
                )
            workload.data_nets = list(observed)
        return workload

    return build


register_workload("xgmac", build_xgmac_workload, criterion="packet", prefix=True)
# Library circuits: each family watches its functional interface.  Counters
# are judged by their count MSB and terminal count (low-bit flips must carry
# far enough within the workload to matter), shift registers by the serial
# output, LFSRs by the PRBS tap, the Gray counter by its MSB, the FSM by its
# Moore outputs; the FIFO and CRC interfaces are inherently maskable (unread
# entries, not-yet-propagated high CRC bits), so every output counts there.
_COUNTER_BIAS = {"en": 0.8, "clear": 0.04}
register_workload(
    "counter8",
    make_burst_builder(["count[7]", "count[4]", "tc"], bias=_COUNTER_BIAS),
    criterion="observed",
)
register_workload(
    "counter16",
    make_burst_builder(["count[15]", "count[5]", "tc"], bias=_COUNTER_BIAS),
    criterion="observed",
)
register_workload(
    "counter",
    make_burst_builder(["tc"], bias=_COUNTER_BIAS),
    criterion="observed",
    prefix=True,
)
register_workload("shiftreg", make_burst_builder(["dout"]), criterion="observed", prefix=True)
register_workload("lfsr", make_burst_builder(["prbs[0]"]), criterion="observed", prefix=True)
register_workload("gray8", make_burst_builder(["gray[7]"]), criterion="observed")
register_workload("fsm_ctrl", make_burst_builder(["busy", "done"]), criterion="observed")
register_workload("fifo", build_burst_workload, criterion="any_output", prefix=True)
register_workload("crc32", build_burst_workload, criterion="any_output")
# Generated composites (circuits/generator.py): bursts with a mostly-on
# advance enable (stalled pipelines/meshes propagate nothing) and a rare
# synchronous clear; every reduced output counts.
_GENERATED_BIAS = {"en": 0.9, "clear": 0.02}
register_workload(
    "mesh", make_burst_builder(bias=_GENERATED_BIAS), criterion="any_output", prefix=True
)
register_workload(
    "pipe", make_burst_builder(bias=_GENERATED_BIAS), criterion="any_output", prefix=True
)


def expected_rx_entries(frames: Sequence[Sequence[int]]) -> List[Tuple[int, int, int]]:
    """Expected RX FIFO stream: ``(byte, sop, eop)`` per entry.

    Each frame yields its payload bytes (first one flagged SOP) followed by
    a status entry with the CRC-ok bit set — assuming fault-free transport.
    """
    entries: List[Tuple[int, int, int]] = []
    for payload in frames:
        for i, byte in enumerate(payload):
            entries.append((byte, 1 if i == 0 else 0, 0))
        entries.append((0x01, 0, 1))
    return entries


def decode_rx_stream(trace: GoldenTrace) -> List[Tuple[int, int, int]]:
    """Extract the received ``(byte, sop, eop)`` entries from a golden trace."""
    out_index = {name: i for i, name in enumerate(trace.output_names)}
    val_bit = out_index["pkt_rx_val"]
    data_bits = [out_index[f"pkt_rx_data[{i}]"] for i in range(8)]
    sop_bit = out_index["pkt_rx_sop"]
    eop_bit = out_index["pkt_rx_eop"]
    entries: List[Tuple[int, int, int]] = []
    for cycle in range(trace.n_cycles):
        vector = trace.outputs[cycle]
        if (vector >> val_bit) & 1:
            byte = 0
            for j, bit in enumerate(data_bits):
                byte |= ((vector >> bit) & 1) << j
            entries.append((byte, (vector >> sop_bit) & 1, (vector >> eop_bit) & 1))
    return entries
