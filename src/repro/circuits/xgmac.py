"""A 10GE-MAC-style Ethernet MAC core (the paper's device under test).

The paper evaluates its methodology on the OpenCores 10GE MAC: a core with
"control logic, state machines, FIFOs and memory interfaces" that moves
frames between a user packet interface and an XGMII PHY interface.  This
module rebuilds that architecture from scratch on our RTL substrate, scaled
to an 8-bit datapath:

* **TX path** — user packet write interface → TX FIFO → transmit FSM that
  frames the payload with XGMII control codes and appends a CRC-32;
* **XGMII interface** — byte + control-bit lanes using start (0xFB),
  terminate (0xFD) and idle (0x07) control codes, registered outputs and
  registered RX inputs (the testbench loops TX back into RX, as in the
  paper);
* **RX path** — receive FSM with a four-byte delay line that strips the
  trailing CRC, a running CRC checker, RX FIFO, and a user packet read
  interface; every frame is terminated in the FIFO by a status entry
  (``bit0`` = CRC ok, ``bit1`` = aborted);
* **statistics counters** (saturating) and a small **config/status register
  file**, giving the design the quasi-static state populations a real MAC
  has.

Presets (:data:`XGMAC_PRESETS`) size the FIFOs/counters: ``full`` lands
within a few percent of the paper's 1054 flip-flops, ``mini``/``tiny`` are
faster variants for tests and CI benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..netlist.core import Netlist
from ..synth.expr import And, Const, Expr, Mux, Not, Or, Sig
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import (
    add,
    const_word,
    decode,
    eq_const,
    inc,
    lt,
    mux_word,
    onehot_mux,
    reduce_and,
    resize,
)
from .counters import add_counter, add_saturating_counter
from .crc import crc32_update_word
from .fifo import add_sync_fifo
from .fsm import FSM

__all__ = ["XgMacConfig", "XGMAC_PRESETS", "build_xgmac_module", "make_xgmac"]

IDLE_CODE = 0x07
START_CODE = 0xFB
TERM_CODE = 0xFD


@dataclass(frozen=True)
class XgMacConfig:
    """Size parameters of the MAC."""

    name: str
    fifo_depth: int = 32
    stat_width: int = 16
    with_config_regs: bool = True
    len_width: int = 11


XGMAC_PRESETS: Dict[str, XgMacConfig] = {
    "xgmac_tiny": XgMacConfig("xgmac_tiny", fifo_depth=4, stat_width=4, with_config_regs=False, len_width=5),
    "xgmac_mini": XgMacConfig("xgmac_mini", fifo_depth=8, stat_width=8, with_config_regs=True, len_width=8),
    "xgmac": XgMacConfig("xgmac", fifo_depth=32, stat_width=16, with_config_regs=True, len_width=11),
}


def build_xgmac_module(config: XgMacConfig) -> Module:
    """Build the RTL module for the MAC described by *config*."""
    m = Module(config.name)

    # ----------------------------------------------------------- interfaces
    tx_data = m.input_bus("pkt_tx_data", 8)
    tx_sop = m.input("pkt_tx_sop")
    tx_eop = m.input("pkt_tx_eop")
    tx_val = m.input("pkt_tx_val")
    rx_ren = m.input("pkt_rx_ren")
    rxd_pin = m.input_bus("xgmii_rxd", 8)
    rxc_pin = m.input("xgmii_rxc")

    # Registered XGMII RX inputs (input staging flops).
    rxd = m.reg_bus("rxd_q", 8)
    m.next(rxd, rxd_pin)
    rxc = m.reg("rxc_q")
    m.next(rxc, rxc_pin)

    # ------------------------------------------------------------ TX path
    txf = add_sync_fifo(
        m,
        "txf",
        width=10,
        depth=config.fifo_depth,
        wr_en=tx_val,
        wr_data=list(tx_data) + [tx_sop, tx_eop],
        rd_en=Sig("tx_rd_en"),
    )
    head_data = txf.rd_data[:8]
    head_eop = txf.rd_data[9]
    m.output("pkt_tx_full", txf.full)

    # Complete frames currently buffered (an EOP was written, not yet read).
    fa_width = max(3, config.fifo_depth.bit_length())
    frames_avail = m.reg_bus("tx_frames_avail", fa_width)
    fa_inc = m.assign("fa_inc", And.of(txf.do_write, tx_eop))
    fa_dec = m.assign("fa_dec", And.of(txf.do_read, head_eop))
    fa_plus = inc(frames_avail)
    fa_minus, _ = add(frames_avail, const_word((1 << fa_width) - 1, fa_width))
    fa_next = mux_word(
        And.of(fa_inc, Not.of(fa_dec)),
        fa_plus,
        mux_word(And.of(fa_dec, Not.of(fa_inc)), fa_minus, frames_avail),
    )
    m.next(frames_avail, fa_next)
    frame_ready = m.assign("tx_frame_ready", Not.of(reduce_and([Not.of(b) for b in frames_avail])))

    tx_fsm = FSM(m, "tx", ["IDLE", "START", "DATA", "CRC", "TERM", "IFG"])
    crc_idx = m.reg_bus("tx_crc_idx", 2)
    ifg_cnt = m.reg_bus("tx_ifg", 2)
    in_idle = m.assign("tx_in_idle", tx_fsm.is_in("IDLE"))
    in_start = m.assign("tx_in_start", tx_fsm.is_in("START"))
    in_data = m.assign("tx_in_data", tx_fsm.is_in("DATA"))
    in_crc = m.assign("tx_in_crc", tx_fsm.is_in("CRC"))
    in_term = m.assign("tx_in_term", tx_fsm.is_in("TERM"))
    in_ifg = m.assign("tx_in_ifg", tx_fsm.is_in("IFG"))

    tx_fsm.transition("IDLE", frame_ready, "START")
    tx_fsm.transition("START", Const(1), "DATA")
    tx_fsm.transition("DATA", head_eop, "CRC")
    tx_fsm.transition("CRC", eq_const(crc_idx, 3), "TERM")
    tx_fsm.transition("TERM", Const(1), "IFG")
    tx_fsm.transition("IFG", eq_const(ifg_cnt, 3), "IDLE")
    tx_fsm.build()

    m.assign("tx_rd_en", in_data)
    m.next(crc_idx, mux_word(in_crc, inc(crc_idx), const_word(0, 2)))
    m.next(ifg_cnt, mux_word(in_ifg, inc(ifg_cnt), const_word(0, 2)))

    tx_crc = m.reg_bus("tx_crc", 32)
    tx_crc_upd = crc32_update_word(tx_crc, head_data)
    m.next(
        tx_crc,
        mux_word(in_start, const_word(0, 32), mux_word(in_data, tx_crc_upd, tx_crc)),
    )

    # CRC bytes transmitted MSB first: byte k carries crc bits [24-8k .. 31-8k].
    crc_bytes = [tx_crc[24:32], tx_crc[16:24], tx_crc[8:16], tx_crc[0:8]]
    crc_byte = onehot_mux(decode(crc_idx), crc_bytes)

    txd_next = mux_word(
        in_start,
        const_word(START_CODE, 8),
        mux_word(
            in_data,
            head_data,
            mux_word(
                in_crc,
                crc_byte,
                mux_word(in_term, const_word(TERM_CODE, 8), const_word(IDLE_CODE, 8)),
            ),
        ),
    )
    txc_next = Or.of(in_idle, in_start, in_term, in_ifg)
    txd_reg = m.reg_bus("txd_reg", 8)
    txc_reg = m.reg("txc_reg")
    m.next(txd_reg, txd_next)
    m.next(txc_reg, txc_next)
    m.output_bus("xgmii_txd", txd_reg)
    m.output("xgmii_txc", txc_reg)

    # ------------------------------------------------------------ RX path
    is_start = m.assign("rx_is_start", And.of(rxc, eq_const(rxd, START_CODE)))
    is_term = m.assign("rx_is_term", And.of(rxc, eq_const(rxd, TERM_CODE)))

    rx_fsm = FSM(m, "rx", ["IDLE", "DATA"])
    in_rx_data = m.assign("rx_in_data", rx_fsm.is_in("DATA"))
    data_event = m.assign("rx_data_event", And.of(in_rx_data, Not.of(rxc)))
    term_event = m.assign("rx_term_event", And.of(in_rx_data, is_term))
    abort_event = m.assign(
        "rx_abort_event", And.of(in_rx_data, rxc, Not.of(is_term), Not.of(is_start))
    )
    rx_fsm.transition("IDLE", is_start, "DATA")
    rx_fsm.transition("DATA", is_start, "DATA")
    rx_fsm.transition("DATA", Or.of(term_event, abort_event), "IDLE")
    rx_fsm.build()

    # Four-byte delay line withholding the CRC field from the RX FIFO.
    dl = [m.reg_bus(f"rx_dl{i}", 8, resettable=False) for i in range(4)]
    m.next_en(dl[0], data_event, rxd)
    for i in range(1, 4):
        m.next_en(dl[i], data_event, dl[i - 1])
    dl_count = m.reg_bus("rx_dl_count", 3)
    dl_full = m.assign("rx_dl_full", eq_const(dl_count, 4))
    dl_next = mux_word(And.of(data_event, Not.of(dl_full)), inc(dl_count), dl_count)
    m.next(dl_count, mux_word(is_start, const_word(0, 3), dl_next))

    rx_crc = m.reg_bus("rx_crc", 32)
    rx_crc_upd = crc32_update_word(rx_crc, rxd)
    m.next(
        rx_crc,
        mux_word(is_start, const_word(0, 32), mux_word(data_event, rx_crc_upd, rx_crc)),
    )
    crc_ok = m.assign("rx_crc_ok", reduce_and([Not.of(b) for b in rx_crc]))

    rx_first = m.reg("rx_first")
    data_write = m.assign("rx_data_write", And.of(data_event, dl_full))
    status_write = m.assign("rx_status_write", Or.of(term_event, abort_event))
    m.next(
        rx_first,
        Mux.of(is_start, Const(1), Mux.of(data_write, Const(0), rx_first)),
    )

    status_byte = resize([crc_ok, abort_event], 8)
    data_entry = list(dl[3]) + [Sig("rx_first"), Const(0)]
    status_entry = status_byte + [Const(0), Const(1)]
    rxf = add_sync_fifo(
        m,
        "rxf",
        width=10,
        depth=config.fifo_depth,
        wr_en=Or.of(data_write, status_write),
        wr_data=mux_word(status_write, status_entry, data_entry),
        rd_en=rx_ren,
    )

    # Registered packet read interface.
    rx_out = m.reg_bus("rx_out", 10)
    rx_val_q = m.reg("rx_val_q")
    m.next(rx_out, mux_word(rxf.do_read, rxf.rd_data, rx_out))
    m.next(rx_val_q, rxf.do_read)
    m.output_bus("pkt_rx_data", rx_out[:8])
    m.output("pkt_rx_sop", rx_out[8])
    m.output("pkt_rx_eop", rx_out[9])
    m.output("pkt_rx_val", rx_val_q)
    m.output("pkt_rx_avail", Not.of(rxf.empty))

    # --------------------------------------------------------- statistics
    sw = config.stat_width
    tx_frame_cnt = add_saturating_counter(m, "stat_tx_frames", sw, in_term)
    tx_byte_cnt = add_saturating_counter(m, "stat_tx_bytes", sw, in_data)
    rx_frame_cnt = add_saturating_counter(m, "stat_rx_frames", sw, term_event)
    rx_err_cnt = add_saturating_counter(
        m, "stat_rx_crc_err", sw, And.of(term_event, Not.of(crc_ok))
    )
    rx_abort_cnt = add_saturating_counter(m, "stat_rx_aborts", sw, abort_event)
    rx_byte_cnt = add_saturating_counter(m, "stat_rx_bytes", sw, data_write)
    m.output_bus("stat_tx_frames_o", tx_frame_cnt)
    m.output_bus("stat_tx_bytes_o", tx_byte_cnt)
    m.output_bus("stat_rx_frames_o", rx_frame_cnt)
    m.output_bus("stat_rx_crc_err_o", rx_err_cnt)
    m.output_bus("stat_rx_aborts_o", rx_abort_cnt)
    m.output_bus("stat_rx_bytes_o", rx_byte_cnt)

    # Frame-length monitors.
    lw = config.len_width
    tx_len = m.reg_bus("tx_len", lw)
    m.next(
        tx_len,
        mux_word(in_start, const_word(0, lw), mux_word(in_data, inc(tx_len), tx_len)),
    )
    rx_len = m.reg_bus("rx_len", lw)
    m.next(
        rx_len,
        mux_word(is_start, const_word(0, lw), mux_word(data_write, inc(rx_len), rx_len)),
    )
    rx_len_seen = m.reg("rx_len_seen")
    m.next(rx_len_seen, Or.of(rx_len_seen, term_event))
    rx_min_len = m.reg_bus("rx_min_len", lw)
    rx_max_len = m.reg_bus("rx_max_len", lw)
    new_min = Or.of(Not.of(rx_len_seen), lt(rx_len, rx_min_len))
    new_max = lt(rx_max_len, rx_len)
    m.next_en(rx_min_len, And.of(term_event, new_min), rx_len)
    m.next_en(rx_max_len, And.of(term_event, Or.of(new_max, Not.of(rx_len_seen))), rx_len)
    m.output_bus("rx_min_len_o", rx_min_len)
    m.output_bus("rx_max_len_o", rx_max_len)

    # ------------------------------------------------ config register file
    if config.with_config_regs:
        cfg_addr = m.input_bus("cfg_addr", 3)
        cfg_wdata = m.input_bus("cfg_wdata", 8)
        cfg_wen = m.input("cfg_wen")
        sel = decode(cfg_addr)
        cfg_regs: List[List[Sig]] = []
        for i in range(8):
            reg = m.reg_bus(f"cfg_reg{i}", 8)
            m.next_en(reg, And.of(cfg_wen, sel[i]), list(cfg_wdata))
            cfg_regs.append(reg)
        m.output_bus("cfg_rdata", onehot_mux(sel, cfg_regs))

    return m


def make_xgmac(preset: str = "xgmac_mini") -> Netlist:
    """Synthesize one of the :data:`XGMAC_PRESETS` into a gate-level netlist."""
    config = XGMAC_PRESETS.get(preset)
    if config is None:
        raise KeyError(f"unknown preset {preset!r}; choose from {sorted(XGMAC_PRESETS)}")
    return synthesize(build_xgmac_module(config))
