"""Synchronous FIFO generator.

The 10GE MAC's transmit and receive paths each buffer frames in a FIFO; in
the synthesized netlist these FIFOs contribute the bulk of the 1054
flip-flops.  This generator adds a register-file FIFO to a
:class:`~repro.synth.module.Module`:

* payload storage is built from non-resettable ``DFF`` registers (as a
  synthesis tool would leave RAM-inferred payload bits), which matters for
  the fault campaign — un-reset payload bits dominate the low-FDR
  population exactly as in the paper's circuit;
* read is first-word-fall-through (combinational head output);
* write/read enables are internally gated with full/empty, so overrun and
  underrun are structurally impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..netlist.core import Netlist
from ..synth.expr import And, Expr, Not, Sig
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import Word, decode, eq, inc, mux_word, onehot_mux

__all__ = ["FifoPorts", "add_sync_fifo", "make_fifo"]


@dataclass
class FifoPorts:
    """Hooks returned by :func:`add_sync_fifo`.

    Attributes
    ----------
    rd_data:
        Combinational head entry (valid whenever ``empty`` is low).
    empty / full:
        Status expressions.
    do_write / do_read:
        The internally gated strobes actually applied this cycle (useful for
        occupancy accounting in the surrounding design).
    """

    rd_data: Word
    empty: Expr
    full: Expr
    do_write: Expr
    do_read: Expr


def _log2_exact(value: int) -> int:
    bits = value.bit_length() - 1
    if value <= 0 or (1 << bits) != value:
        raise ValueError(f"FIFO depth must be a power of two, got {value}")
    return bits


def add_sync_fifo(
    module: Module,
    prefix: str,
    width: int,
    depth: int,
    wr_en: Expr,
    wr_data: Sequence[Expr],
    rd_en: Expr,
) -> FifoPorts:
    """Instantiate a *width* × *depth* FIFO named *prefix* inside *module*.

    ``wr_data`` must be *width* bits.  Pointers carry one extra wrap bit so
    that full/empty are distinguished without an occupancy counter.
    """
    if len(wr_data) != width:
        raise ValueError(f"{prefix}: wr_data is {len(wr_data)} bits, expected {width}")
    addr_bits = _log2_exact(depth)
    ptr_bits = addr_bits + 1

    wr_ptr = module.reg_bus(f"{prefix}_wr_ptr", ptr_bits)
    rd_ptr = module.reg_bus(f"{prefix}_rd_ptr", ptr_bits)

    same_index = eq(wr_ptr[:addr_bits], rd_ptr[:addr_bits])
    wrap_equal = Not.of(wr_ptr[addr_bits] ^ rd_ptr[addr_bits])
    empty = module.assign(f"{prefix}_empty", And.of(same_index, wrap_equal))
    full = module.assign(f"{prefix}_full", And.of(same_index, Not.of(wrap_equal)))

    do_write = module.assign(f"{prefix}_do_write", And.of(wr_en, Not.of(full)))
    do_read = module.assign(f"{prefix}_do_read", And.of(rd_en, Not.of(empty)))

    module.next(wr_ptr, mux_word(do_write, inc(wr_ptr), wr_ptr))
    module.next(rd_ptr, mux_word(do_read, inc(rd_ptr), rd_ptr))

    wr_sel = decode(wr_ptr[:addr_bits])
    rd_sel = decode(rd_ptr[:addr_bits])

    mem_words: List[List[Sig]] = []
    for entry in range(depth):
        word = module.reg_bus(f"{prefix}_mem{entry}", width, resettable=False)
        module.next_en(word, And.of(do_write, wr_sel[entry]), list(wr_data))
        mem_words.append(word)

    rd_data = module.assign_bus(f"{prefix}_rd_data", onehot_mux(rd_sel, mem_words))

    return FifoPorts(
        rd_data=[Sig(s.name) for s in rd_data],
        empty=empty,
        full=full,
        do_write=do_write,
        do_read=do_read,
    )


# --------------------------------------------------------------------------
# Stand-alone circuit (synthesized, with primary I/O) for the library.
# --------------------------------------------------------------------------


def make_fifo(width: int = 4, depth: int = 4, name: str = "fifo") -> Netlist:
    """Stand-alone synchronous FIFO with first-word-fall-through read.

    The un-reset payload registers give this circuit the same low-FDR
    population the MAC's frame buffers exhibit, at library-circuit scale.
    """
    module = Module(f"{name}{width}x{depth}")
    wr_en = module.input("wr_en")
    wr_data = module.input_bus("wr_data", width)
    rd_en = module.input("rd_en")
    ports = add_sync_fifo(module, "f", width, depth, wr_en, wr_data, rd_en)
    module.output_bus("rd_data", ports.rd_data)
    module.output("empty", ports.empty)
    module.output("full", ports.full)
    module.output("rd_val", ports.do_read)
    return synthesize(module)
