"""Finite-state-machine builder.

The MAC's transmit and receive engines are control FSMs; this helper builds
binary-encoded state registers with a priority transition list, the way a
synthesis tool encodes an RTL ``case`` statement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..synth.expr import Expr, Mux, Sig
from ..synth.module import Module
from ..synth.wordlib import Word, const_word, eq_const, mux_word

__all__ = ["FSM"]


@dataclass
class _Transition:
    source: str
    condition: Expr
    target: str


class FSM:
    """Binary-encoded Moore state machine inside a :class:`Module`.

    Usage::

        fsm = FSM(module, "tx", ["IDLE", "DATA", "CRC"])
        fsm.transition("IDLE", start_cond, "DATA")
        fsm.transition("DATA", end_cond, "CRC")
        fsm.transition("CRC", Const(1), "IDLE")
        in_data = fsm.is_in("DATA")
        fsm.build()

    Transitions from the same source state are prioritized in the order they
    were added (earlier wins); a state with no matching transition holds.
    The reset state is the first state name (encoded as 0, matching the
    registers' reset value).
    """

    def __init__(self, module: Module, prefix: str, states: Sequence[str]) -> None:
        if len(states) < 2:
            raise ValueError("an FSM needs at least two states")
        if len(set(states)) != len(states):
            raise ValueError("duplicate state names")
        self.module = module
        self.prefix = prefix
        self.states = list(states)
        self.encoding: Dict[str, int] = {name: i for i, name in enumerate(self.states)}
        width = max(1, math.ceil(math.log2(len(self.states))))
        self.state_reg: List[Sig] = module.reg_bus(f"{prefix}_state", width)
        self._transitions: List[_Transition] = []
        self._built = False

    @property
    def width(self) -> int:
        return len(self.state_reg)

    def is_in(self, state: str) -> Expr:
        """Expression asserted while the FSM is in *state*."""
        return eq_const(self.state_reg, self.encoding[state])

    def transition(self, source: str, condition: Expr, target: str) -> None:
        """Add a prioritized transition edge."""
        if self._built:
            raise RuntimeError("FSM already built")
        for name in (source, target):
            if name not in self.encoding:
                raise KeyError(f"unknown state {name!r}")
        self._transitions.append(_Transition(source, condition, target))

    def build(self) -> None:
        """Emit the next-state logic.  Call exactly once, after all edges."""
        if self._built:
            raise RuntimeError("FSM already built")
        self._built = True
        next_state: Word = list(self.state_reg)  # default: hold
        # Later-added transitions are applied first in the mux chain so that
        # earlier-added ones override them (priority order).
        for tr in reversed(self._transitions):
            take = self.is_in(tr.source) & tr.condition
            target_word = const_word(self.encoding[tr.target], self.width)
            next_state = mux_word(take, target_word, next_state)
        self.module.next(self.state_reg, next_state)
