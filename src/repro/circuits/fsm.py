"""Finite-state-machine builder.

The MAC's transmit and receive engines are control FSMs; this helper builds
binary-encoded state registers with a priority transition list, the way a
synthesis tool encodes an RTL ``case`` statement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..netlist.core import Netlist
from ..synth.expr import Expr, Mux, Or, Sig
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import Word, const_word, eq_const, mux_word, reduce_and

__all__ = ["FSM", "make_fsm_controller"]


@dataclass
class _Transition:
    source: str
    condition: Expr
    target: str


class FSM:
    """Binary-encoded Moore state machine inside a :class:`Module`.

    Usage::

        fsm = FSM(module, "tx", ["IDLE", "DATA", "CRC"])
        fsm.transition("IDLE", start_cond, "DATA")
        fsm.transition("DATA", end_cond, "CRC")
        fsm.transition("CRC", Const(1), "IDLE")
        in_data = fsm.is_in("DATA")
        fsm.build()

    Transitions from the same source state are prioritized in the order they
    were added (earlier wins); a state with no matching transition holds.
    The reset state is the first state name (encoded as 0, matching the
    registers' reset value).
    """

    def __init__(self, module: Module, prefix: str, states: Sequence[str]) -> None:
        if len(states) < 2:
            raise ValueError("an FSM needs at least two states")
        if len(set(states)) != len(states):
            raise ValueError("duplicate state names")
        self.module = module
        self.prefix = prefix
        self.states = list(states)
        self.encoding: Dict[str, int] = {name: i for i, name in enumerate(self.states)}
        width = max(1, math.ceil(math.log2(len(self.states))))
        self.state_reg: List[Sig] = module.reg_bus(f"{prefix}_state", width)
        self._transitions: List[_Transition] = []
        self._built = False

    @property
    def width(self) -> int:
        return len(self.state_reg)

    def is_in(self, state: str) -> Expr:
        """Expression asserted while the FSM is in *state*."""
        return eq_const(self.state_reg, self.encoding[state])

    def transition(self, source: str, condition: Expr, target: str) -> None:
        """Add a prioritized transition edge."""
        if self._built:
            raise RuntimeError("FSM already built")
        for name in (source, target):
            if name not in self.encoding:
                raise KeyError(f"unknown state {name!r}")
        self._transitions.append(_Transition(source, condition, target))

    def build(self) -> None:
        """Emit the next-state logic.  Call exactly once, after all edges."""
        if self._built:
            raise RuntimeError("FSM already built")
        self._built = True
        next_state: Word = list(self.state_reg)  # default: hold
        # Later-added transitions are applied first in the mux chain so that
        # earlier-added ones override them (priority order).
        for tr in reversed(self._transitions):
            take = self.is_in(tr.source) & tr.condition
            target_word = const_word(self.encoding[tr.target], self.width)
            next_state = mux_word(take, target_word, next_state)
        self.module.next(self.state_reg, next_state)


# --------------------------------------------------------------------------
# Stand-alone circuit (synthesized, with primary I/O) for the library.
# --------------------------------------------------------------------------


def make_fsm_controller(timer_bits: int = 4, name: str = "fsm_ctrl") -> Netlist:
    """Stand-alone run-control FSM with an embedded timer.

    A four-state Moore controller (IDLE → RUN → WAIT/DONE → IDLE) driving a
    *timer_bits*-wide run timer: ``start`` launches a run, ``stop`` pauses
    it, the timer's terminal count completes it, ``ack`` returns to idle.
    Control-dominated logic — the opposite end of the spectrum from the
    datapath-heavy FIFO and CRC circuits.
    """
    from .counters import add_counter

    module = Module(name)
    start = module.input("start")
    stop = module.input("stop")
    ack = module.input("ack")

    fsm = FSM(module, "ctl", ["IDLE", "RUN", "WAIT", "DONE"])
    in_run = fsm.is_in("RUN")
    timer = add_counter(module, "timer", timer_bits, in_run, fsm.is_in("IDLE"))
    at_max = reduce_and(list(timer))

    fsm.transition("IDLE", start, "RUN")
    fsm.transition("RUN", at_max, "DONE")
    fsm.transition("RUN", stop, "WAIT")
    fsm.transition("WAIT", start, "RUN")
    fsm.transition("WAIT", ack, "IDLE")
    fsm.transition("DONE", ack, "IDLE")
    fsm.build()

    module.output("busy", Or.of(in_run, fsm.is_in("WAIT")))
    module.output("done", fsm.is_in("DONE"))
    module.output_bus("count", timer)
    return synthesize(module)
