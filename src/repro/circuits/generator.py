"""Parameterized large-circuit generator: 2k–100k flip-flop composites.

The paper's pitch is that statistical fault injection stays affordable at
*design* scale, but the handwritten library tops out at the ~1k-FF MAC —
every scaling claim past that was extrapolation.  This module generates
synthesizable composites whose flip-flop count is a free parameter, so the
campaign substrate (compiled/fused kernels, the adaptive scheduler, the
warm-start cache) is exercised two orders of magnitude past the MAC with
*measured* numbers (see ``benchmarks/bench_scale.py``).

Two families are provided:

``make_mesh_mac(rows, cols, width)``
    A systolic mesh of multiply-accumulate-like cells: each cell holds a
    *width*-bit operand register (shifted west→east along its row) and a
    *width*-bit accumulator (combining the operand with the accumulator of
    the cell to the north).  Column parities are the primary outputs.  The
    mesh has short local cones (adder + mux per cell), which keeps synthesis
    and levelization shallow while the flip-flop count scales as
    ``2 × rows × cols × width``.

``make_pipeline(stages, width)``
    A deep pipelined datapath: one *width*-bit register per stage, each
    stage applying an alternating mix step (ripple-carry add of a per-stage
    round constant, or a nonlinear chi-style substitution) to the previous
    stage.  Flip-flop count is ``stages × width`` and the state-propagation
    depth equals the stage count, the opposite corner of the design space
    from the wide, shallow mesh.

Both families take an ``en`` advance input, are fully deterministic (no RNG
— round constants are derived from the stage index), and register generic
burst workloads, so any preset drops into datasets, campaigns, the verify
oracle and the benchmarks exactly like a handwritten circuit.  The presets
in :data:`GENERATED_PRESETS` are registered in the circuit library but are
deliberately *excluded* from ``LIBRARY_CIRCUITS`` — the transfer experiments
sweep that list, and a 100k-FF mesh does not belong in a tiny-preset sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..netlist.core import Netlist
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import add, const_word, mux_word

__all__ = [
    "GENERATED_PRESETS",
    "make_mesh_mac",
    "make_pipeline",
    "mesh_ff_count",
    "pipeline_ff_count",
]


def mesh_ff_count(rows: int, cols: int, width: int) -> int:
    """Flip-flops in ``make_mesh_mac(rows, cols, width)`` (operand + accumulator)."""
    return 2 * rows * cols * width


def pipeline_ff_count(stages: int, width: int) -> int:
    """Flip-flops in ``make_pipeline(stages, width)`` (one register per stage)."""
    return stages * width


def make_mesh_mac(rows: int, cols: int, width: int = 8) -> Netlist:
    """Systolic mesh of MAC-like cells with ``2*rows*cols*width`` flip-flops.

    Cell ``(r, c)`` holds an operand register ``h`` fed from its western
    neighbour (row input for column 0) and an accumulator ``a`` updated as
    ``a + (h & a_north)`` while ``en`` is high; ``clear`` zeroes the
    accumulators synchronously.  Each column's bottom accumulator is
    XOR-reduced to one primary output, so a corrupted accumulator bit stays
    observable without widening the interface by ``cols × width`` nets.
    """
    if rows < 1 or cols < 1 or width < 1:
        raise ValueError("mesh dimensions must be positive")
    m = Module(f"mesh{rows}x{cols}x{width}")
    en = m.input("en")
    clear = m.input("clear")
    row_in = [m.input_bus(f"row_in{r}", width) for r in range(rows)]
    h = [[m.reg_bus(f"h_{r}_{c}", width) for c in range(cols)] for r in range(rows)]
    acc = [[m.reg_bus(f"a_{r}_{c}", width) for c in range(cols)] for r in range(rows)]
    zero = const_word(0, width)
    for r in range(rows):
        for c in range(cols):
            west = row_in[r] if c == 0 else h[r][c - 1]
            m.next_en(h[r][c], en, west)
            north = acc[r - 1][c] if r > 0 else h[r][c]
            term = [hb & nb for hb, nb in zip(h[r][c], north)]
            total, _carry = add(acc[r][c], term)
            m.next(acc[r][c], mux_word(clear, zero, mux_word(en, total, acc[r][c])))
    for c in range(cols):
        bits = acc[rows - 1][c]
        parity = bits[0]
        for bit in bits[1:]:
            parity = parity ^ bit
        m.output(f"col_parity[{c}]", parity)
    return synthesize(m)


def _round_constant(stage: int, width: int) -> int:
    """Deterministic per-stage constant (Weyl sequence on the golden ratio)."""
    return (0x9E3779B1 * (stage + 1)) & ((1 << width) - 1)


def make_pipeline(stages: int, width: int = 16) -> Netlist:
    """Deep pipelined datapath with ``stages*width`` flip-flops.

    Stage 0 captures ``din``; stage ``i+1`` applies, alternately, a
    ripple-carry addition of a per-stage round constant or a chi-style
    nonlinear substitution (``b[j] ^= ~b[j+1] & b[j+2]``, indices mod
    *width*) to stage ``i`` — a long, narrow dependence chain whose
    levelized depth grows with the stage count.  Outputs are the last
    stage's bits plus a whole-pipe parity tap.
    """
    if stages < 1 or width < 3:
        raise ValueError("need at least 1 stage and width >= 3 (chi step)")
    m = Module(f"pipe{stages}x{width}")
    en = m.input("en")
    din = m.input_bus("din", width)
    regs = [m.reg_bus(f"s{i}", width) for i in range(stages)]
    m.next_en(regs[0], en, din)
    for i in range(1, stages):
        prev = regs[i - 1]
        if i % 2 == 0:
            mixed, _carry = add(prev, const_word(_round_constant(i, width), width))
        else:
            mixed = [
                prev[j] ^ (~prev[(j + 1) % width] & prev[(j + 2) % width])
                for j in range(width)
            ]
        m.next_en(regs[i], en, mixed)
    last = regs[-1]
    for j in range(width):
        m.output(f"dout[{j}]", last[j])
    parity = regs[0][0]
    for reg in regs:
        parity = parity ^ reg[width - 1]
    m.output("pipe_parity", parity)
    return synthesize(m)


def _mesh_preset(rows: int, cols: int, width: int) -> Callable[[], Netlist]:
    def build() -> Netlist:
        return make_mesh_mac(rows, cols, width)

    return build


def _pipe_preset(stages: int, width: int) -> Callable[[], Netlist]:
    def build() -> Netlist:
        return make_pipeline(stages, width)

    return build


#: Named generated circuits spanning ~128 to 100k flip-flops.  The suffix is
#: the flip-flop count; ``mesh_tiny`` exists for tests and the verify oracle
#: (small enough to brute-force), the 2k presets are the CI scale-smoke
#: budget, and the 10k/100k presets are the headline scaling measurements.
GENERATED_PRESETS: Dict[str, Callable[[], Netlist]] = {
    "mesh_tiny": _mesh_preset(2, 4, 8),  # 128 FFs
    "mesh_2k": _mesh_preset(8, 16, 8),  # 2,048 FFs
    "mesh_10k": _mesh_preset(16, 40, 8),  # 10,240 FFs
    "mesh_100k": _mesh_preset(50, 125, 8),  # 100,000 FFs
    "pipe_2k": _pipe_preset(128, 16),  # 2,048 FFs
    "pipe_10k": _pipe_preset(320, 32),  # 10,240 FFs
}

#: Flip-flop counts per preset, for size-aware consumers (benchmarks, docs)
#: that should not have to synthesize a 100k-FF netlist to learn its size.
GENERATED_FF_COUNTS: Dict[str, int] = {
    "mesh_tiny": mesh_ff_count(2, 4, 8),
    "mesh_2k": mesh_ff_count(8, 16, 8),
    "mesh_10k": mesh_ff_count(16, 40, 8),
    "mesh_100k": mesh_ff_count(50, 125, 8),
    "pipe_2k": pipeline_ff_count(128, 16),
    "pipe_10k": pipeline_ff_count(320, 32),
}

#: Registration order for the library (sorted for a stable registry layout).
GENERATED_CIRCUITS: List[str] = sorted(GENERATED_PRESETS)
