"""Benchmark circuit generators: FIFOs, CRC, FSMs, counters and the MAC."""

from .counters import (
    add_counter,
    add_lfsr,
    add_saturating_counter,
    add_shift_register,
    make_counter,
    make_gray_counter,
    make_lfsr,
    make_shift_register,
)
from .crc import (
    CRC32_POLY,
    crc32_bytes,
    crc32_step,
    crc32_update_word,
    crc_bytes_msb_first,
    make_crc32,
)
from .fifo import FifoPorts, add_sync_fifo, make_fifo
from .fsm import FSM, make_fsm_controller
from .library import (
    CIRCUIT_BUILDERS,
    LIBRARY_CIRCUITS,
    available_circuits,
    get_circuit,
)
from .workloads import (
    Workload,
    XgMacWorkload,
    build_burst_workload,
    build_workload_for,
    build_xgmac_workload,
    decode_rx_stream,
    default_criterion,
    expected_rx_entries,
    make_burst_builder,
    register_workload,
)
from .xgmac import XGMAC_PRESETS, XgMacConfig, build_xgmac_module, make_xgmac

__all__ = [
    "add_counter",
    "add_lfsr",
    "add_saturating_counter",
    "add_shift_register",
    "make_counter",
    "make_gray_counter",
    "make_lfsr",
    "make_shift_register",
    "CRC32_POLY",
    "crc32_bytes",
    "crc32_step",
    "crc32_update_word",
    "crc_bytes_msb_first",
    "make_crc32",
    "FifoPorts",
    "add_sync_fifo",
    "make_fifo",
    "FSM",
    "make_fsm_controller",
    "CIRCUIT_BUILDERS",
    "LIBRARY_CIRCUITS",
    "available_circuits",
    "get_circuit",
    "Workload",
    "XgMacWorkload",
    "build_burst_workload",
    "build_workload_for",
    "build_xgmac_workload",
    "decode_rx_stream",
    "default_criterion",
    "expected_rx_entries",
    "make_burst_builder",
    "register_workload",
    "XGMAC_PRESETS",
    "XgMacConfig",
    "build_xgmac_module",
    "make_xgmac",
]
