"""Benchmark circuit generators: FIFOs, CRC, FSMs, counters and the MAC."""

from .counters import (
    add_counter,
    add_lfsr,
    add_saturating_counter,
    add_shift_register,
    make_counter,
    make_gray_counter,
    make_lfsr,
    make_shift_register,
)
from .crc import CRC32_POLY, crc32_bytes, crc32_step, crc32_update_word, crc_bytes_msb_first
from .fifo import FifoPorts, add_sync_fifo
from .fsm import FSM
from .library import CIRCUIT_BUILDERS, available_circuits, get_circuit
from .workloads import (
    XgMacWorkload,
    build_xgmac_workload,
    decode_rx_stream,
    expected_rx_entries,
)
from .xgmac import XGMAC_PRESETS, XgMacConfig, build_xgmac_module, make_xgmac

__all__ = [
    "add_counter",
    "add_lfsr",
    "add_saturating_counter",
    "add_shift_register",
    "make_counter",
    "make_gray_counter",
    "make_lfsr",
    "make_shift_register",
    "CRC32_POLY",
    "crc32_bytes",
    "crc32_step",
    "crc32_update_word",
    "crc_bytes_msb_first",
    "FifoPorts",
    "add_sync_fifo",
    "FSM",
    "CIRCUIT_BUILDERS",
    "available_circuits",
    "get_circuit",
    "XgMacWorkload",
    "build_xgmac_workload",
    "decode_rx_stream",
    "expected_rx_entries",
    "XGMAC_PRESETS",
    "XgMacConfig",
    "build_xgmac_module",
    "make_xgmac",
]
