"""Registry of benchmark circuits.

Maps circuit names to generator functions so datasets, examples and tests
can request designs by name (``get_circuit("xgmac_mini")``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..netlist.core import Netlist
from .counters import make_counter, make_gray_counter, make_lfsr, make_shift_register
from .crc import make_crc32
from .fifo import make_fifo
from .fsm import make_fsm_controller
from .generator import GENERATED_CIRCUITS, GENERATED_PRESETS
from .xgmac import XGMAC_PRESETS, make_xgmac

__all__ = [
    "CIRCUIT_BUILDERS",
    "GENERATED_CIRCUITS",
    "LIBRARY_CIRCUITS",
    "get_circuit",
    "available_circuits",
]


def _preset_builder(name: str) -> Callable[[], Netlist]:
    def build() -> Netlist:
        return make_xgmac(name)

    return build


CIRCUIT_BUILDERS: Dict[str, Callable[[], Netlist]] = {
    "counter8": lambda: make_counter(8),
    "counter16": lambda: make_counter(16),
    "shiftreg8": lambda: make_shift_register(8),
    "shiftreg16": lambda: make_shift_register(16),
    "lfsr8": lambda: make_lfsr(8),
    "lfsr16": lambda: make_lfsr(16),
    "gray8": lambda: make_gray_counter(8),
    "fifo4x4": lambda: make_fifo(4, 4),
    "fifo8x4": lambda: make_fifo(8, 4),
    "crc32": make_crc32,
    "fsm_ctrl": lambda: make_fsm_controller(4),
}
for _preset in XGMAC_PRESETS:
    CIRCUIT_BUILDERS[_preset] = _preset_builder(_preset)
CIRCUIT_BUILDERS.update(GENERATED_PRESETS)

#: The small self-contained circuits (everything except the MAC presets and
#: the generated 2k–100k-FF composites) — the population the cross-circuit
#: transfer experiment sweeps.  The generated presets stay out: sweeping a
#: tiny-preset experiment over a 100k-FF mesh is never what a caller means.
LIBRARY_CIRCUITS: List[str] = sorted(
    name
    for name in CIRCUIT_BUILDERS
    if not name.startswith("xgmac") and name not in GENERATED_PRESETS
)


def get_circuit(name: str) -> Netlist:
    """Build the named benchmark circuit."""
    try:
        builder = CIRCUIT_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown circuit {name!r}; available: {available_circuits()}") from None
    return builder()


def available_circuits() -> List[str]:
    """Names of all registered benchmark circuits."""
    return sorted(CIRCUIT_BUILDERS)
