"""Small sequential building blocks and standalone test circuits.

These serve two roles: reusable pieces inside larger designs (saturating
and wrapping counters, shift registers) and a zoo of small self-contained
circuits used throughout the test suite and examples.
"""

from __future__ import annotations

from typing import List, Sequence

from ..netlist.core import Netlist
from ..synth.expr import And, Const, Expr, Mux, Not, Sig
from ..synth.module import Module
from ..synth.synthesis import synthesize
from ..synth.wordlib import Word, add, const_word, eq_const, inc, mux_word, reduce_and

__all__ = [
    "add_counter",
    "add_saturating_counter",
    "add_shift_register",
    "add_lfsr",
    "make_counter",
    "make_shift_register",
    "make_lfsr",
    "make_gray_counter",
]

#: Feedback taps (XOR positions) for maximal-length Fibonacci LFSRs.
_LFSR_TAPS = {
    3: (2, 1),
    4: (3, 2),
    5: (4, 2),
    7: (6, 5),
    8: (7, 5, 4, 3),
    16: (15, 14, 12, 3),
}


def add_counter(module: Module, name: str, width: int, enable: Expr, clear: Expr = Const(0)) -> List[Sig]:
    """Wrapping up-counter; *clear* (synchronous) wins over *enable*."""
    count = module.reg_bus(name, width)
    advanced = inc(count, enable)
    module.next(count, mux_word(clear, const_word(0, width), advanced))
    return count


def add_saturating_counter(module: Module, name: str, width: int, enable: Expr) -> List[Sig]:
    """Up-counter that sticks at all-ones instead of wrapping."""
    count = module.reg_bus(name, width)
    at_max = reduce_and(list(count))
    module.next_en(count, And.of(enable, Not.of(at_max)), inc(count))
    return count


def add_shift_register(
    module: Module, name: str, width: int, data_in: Expr, enable: Expr = Const(1)
) -> List[Sig]:
    """Serial-in shift register; bit 0 is the newest sample."""
    stages = module.reg_bus(name, width)
    module.next_en(stages[0], enable, data_in)
    for i in range(1, width):
        module.next_en(stages[i], enable, stages[i - 1])
    return stages


def add_lfsr(module: Module, name: str, width: int, enable: Expr = Const(1)) -> List[Sig]:
    """Fibonacci LFSR with an all-zero lockup escape.

    Registers reset to zero, so the feedback XNORs in the lockup-escape term
    to self-start from the reset state.
    """
    taps = _LFSR_TAPS.get(width)
    if taps is None:
        raise ValueError(f"no tap table for width {width}")
    state = module.reg_bus(name, width)
    feedback: Expr = Const(0)
    for tap in taps:
        feedback = feedback ^ state[tap]
    all_zero = reduce_and([Not.of(bit) for bit in state])
    feedback = feedback ^ all_zero
    module.next_en(state[0], enable, feedback)
    for i in range(1, width):
        module.next_en(state[i], enable, state[i - 1])
    return state


# --------------------------------------------------------------------------
# Stand-alone circuits (synthesized, with primary I/O) for tests/examples.
# --------------------------------------------------------------------------


def make_counter(width: int = 8, name: str = "counter") -> Netlist:
    """Enable-gated wrapping counter with a terminal-count output."""
    module = Module(f"{name}{width}")
    enable = module.input("en")
    clear = module.input("clear")
    count = add_counter(module, "cnt", width, enable, clear)
    module.output_bus("count", count)
    module.output("tc", eq_const(count, (1 << width) - 1))
    return synthesize(module)


def make_shift_register(width: int = 8, name: str = "shiftreg") -> Netlist:
    """Serial-in/parallel-out shift register."""
    module = Module(f"{name}{width}")
    din = module.input("din")
    enable = module.input("en")
    stages = add_shift_register(module, "sr", width, din, enable)
    module.output_bus("q", stages)
    module.output("dout", stages[-1])
    return synthesize(module)


def make_lfsr(width: int = 8, name: str = "lfsr") -> Netlist:
    """Free-running LFSR pseudo-random generator."""
    module = Module(f"{name}{width}")
    enable = module.input("en")
    state = add_lfsr(module, "lfsr", width, enable)
    module.output_bus("prbs", state)
    return synthesize(module)


def make_gray_counter(width: int = 8, name: str = "gray") -> Netlist:
    """Binary counter with a Gray-coded output stage."""
    module = Module(f"{name}{width}")
    enable = module.input("en")
    count = add_counter(module, "bin", width, enable)
    gray: Word = [count[i] ^ count[i + 1] for i in range(width - 1)] + [count[width - 1]]
    module.output_bus("gray", gray)
    return synthesize(module)
