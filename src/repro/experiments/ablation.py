"""Ablation experiment: value of each feature group.

Section V: "further features should be considered to improve the overall
performance of the models … and the value of each feature needs to be
evaluated separately."  This experiment quantifies that value at the group
level: k-NN and SVR are evaluated with only-structural, only-synthesis,
only-dynamic features, with each group left out, and with the full set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.model_selection import StratifiedRegressionKFold, cross_validate
from .common import CV_FOLDS, TRAIN_SIZE, paper_models

__all__ = ["AblationResult", "run_ablation"]


@dataclass
class AblationResult:
    """R² per (feature configuration, model)."""

    models: List[str] = field(default_factory=list)
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_text(self) -> str:
        headers = ["Features", *(f"{m} R2" for m in self.models)]
        table_rows = [
            [config, *(self.rows[config][m] for m in self.models)] for config in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                "Feature-group ablation — test R² "
                f"(cv = {CV_FOLDS}, training size = {TRAIN_SIZE:.0%})"
            ),
        )


def run_ablation(
    dataset: Dataset,
    model_names: Sequence[str] = ("k-NN", "SVR w/ RBF Kernel"),
    cv_folds: int = CV_FOLDS,
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
) -> AblationResult:
    """Group-level feature ablation on a labelled dataset."""
    if not dataset.groups:
        raise ValueError("dataset carries no feature-group metadata")
    group_names = list(dataset.groups)
    configs: Dict[str, List[str]] = {"all": group_names}
    for group in group_names:
        configs[f"only {group}"] = [group]
    if len(group_names) > 2:
        for group in group_names:
            configs[f"without {group}"] = [g for g in group_names if g != group]

    all_models = paper_models()
    chosen = {name: all_models[name] for name in model_names}
    result = AblationResult(models=list(chosen))
    splitter = StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed)
    for config_name, groups in configs.items():
        subset = dataset.select_groups(groups)
        scores: Dict[str, float] = {}
        for model_name, model in chosen.items():
            outcome = cross_validate(
                model,
                subset.X,
                subset.y,
                cv=splitter,
                train_size=train_size,
                random_state=seed,
            )
            scores[model_name] = outcome.mean_test("r2")
        result.rows[config_name] = scores
    return result
