"""Command-line experiment runner.

Usage::

    python -m repro.experiments table1 --scale mini
    python -m repro.experiments fig2 fig3 fig4 --scale full --out results/
    python -m repro.experiments all --scale tiny

Scales map to the dataset presets of :mod:`repro.data`: ``tiny`` (seconds),
``mini`` (default, < 1 min), ``full`` (the paper-scale configuration —
1012 flip-flops × 170 injections; several minutes on first run, cached
afterwards).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..data import get_dataset
from .ablation import run_ablation
from .figures import FIGURE_MODELS, run_figure
from .future_work import run_future_work
from .extended_features import run_extended_features
from .importance import run_importance
from .table1 import run_table1
from .tuning import run_tuning

EXPERIMENTS = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "future-work",
    "ablation",
    "tuning",
    "importance",
    "extended-features",
]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ["all"],
        help="which experiments to run",
    )
    parser.add_argument("--scale", default="mini", choices=["tiny", "mini", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None, help="directory for CSV/JSON outputs")
    parser.add_argument("--regenerate", action="store_true", help="ignore the dataset cache")
    args = parser.parse_args(argv)

    requested = EXPERIMENTS if "all" in args.experiments else args.experiments
    print(f"Loading dataset (scale={args.scale}) ...", flush=True)
    dataset = get_dataset(args.scale, regenerate=args.regenerate)
    print(f"dataset: {dataset.n_samples} flip-flops x {dataset.n_features} features\n")

    out_dir = args.out
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    for experiment in requested:
        print(f"=== {experiment} ===", flush=True)
        if experiment == "table1":
            result = run_table1(dataset, seed=args.seed)
            print(result.as_text())
            print(f"\nshape holds (LLS worst, k-NN ~ SVR): {result.shape_holds()}")
            if out_dir:
                (out_dir / "table1.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment in FIGURE_MODELS:
            result = run_figure(dataset, experiment, seed=args.seed)
            print(result.as_text())
            if out_dir:
                (out_dir / f"{experiment}a_prediction.csv").write_text(result.prediction_csv())
                (out_dir / f"{experiment}b_learning_curve.csv").write_text(result.curve_csv())
        elif experiment == "future-work":
            result = run_future_work(dataset, seed=args.seed)
            print(result.as_text())
            print(f"\nbest future-work model: {result.best_model()}")
            if out_dir:
                (out_dir / "future_work.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment == "ablation":
            result = run_ablation(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                (out_dir / "ablation.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment == "tuning":
            result = run_tuning(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                payload = {"best_params": result.best_params, "best_scores": result.best_scores}
                (out_dir / "tuning.json").write_text(json.dumps(payload, indent=2, default=str))
        elif experiment == "extended-features":
            result = run_extended_features(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                payload = {"baseline_r2": result.baseline_r2, "extended_r2": result.extended_r2}
                (out_dir / "extended_features.json").write_text(json.dumps(payload, indent=2))
        elif experiment == "importance":
            result = run_importance(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                rows = result.result.as_rows()
                (out_dir / "importance.json").write_text(json.dumps(rows, indent=2))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
