"""Command-line experiment runner.

Usage::

    python -m repro.experiments table1 --scale mini
    python -m repro.experiments fig2 fig3 fig4 --scale full --out results/
    python -m repro.experiments all --scale tiny --jobs 4
    python -m repro.experiments transfer --preset tiny
    python -m repro.experiments transfer --preset tiny --circuits counter16 fifo4x4 crc32 lfsr16
    python -m repro.experiments campaign --scale mini --jobs 4 --injections 170
    python -m repro.experiments campaign --scale tiny --fault-model mbu:size=3
    python -m repro.experiments seu-mbu --scale mini
    python -m repro.experiments verify --seeds 50 --scale mini

Scales map to the dataset presets of :mod:`repro.data`: ``tiny`` (seconds),
``mini`` (default, < 1 min), ``full`` (the paper-scale configuration —
1012 flip-flops × 170 injections; several minutes on first run, cached
afterwards).

Every experiment resolves through the unified
:class:`~repro.experiments.spec.ExperimentRunner`: the CLI builds one
:class:`~repro.experiments.spec.ExperimentSpec` per requested experiment
and one shared :class:`~repro.experiments.spec.ExperimentContext`, so a
batch of experiments on one scale loads its labelled dataset exactly once.

The ``transfer`` experiment runs the cross-circuit matrix (train on
circuit A, test on circuit B, over the whole circuit library by default);
``--preset`` picks the per-circuit dataset scale and ``--circuits``
restricts the sweep.  ``--jobs N`` shards the fault-injection campaigns
across N worker processes (results are bit-identical to a serial run);
``--cache-dir`` relocates the dataset cache and the campaign result store.
The ``seu-mbu`` experiment trains the paper models on the scale's SEU
dataset and scores them on a fault-model-transfer target dataset of the
same circuit (``--fault-model`` picks the target label family; default
``mbu:size=3,radius=1,seed=0`` — see ``docs/fault_models.md``).
The ``campaign`` command runs the parallel campaign engine directly
(``stream`` schedule, so repeated runs with growing ``--injections`` only
simulate the delta) and prints its economics; ``--backend
{compiled,numpy,fused}`` selects the simulation substrate (see
``docs/simulators.md``) without affecting results, and ``--fault-model``
swaps the injected fault family (cache identities stay separate per
model).

The ``verify`` command fuzzes ``--seeds`` random circuits and cross-checks
the compiled simulator, the event-driven simulator, the reference oracle and
the fault injector on each (see :mod:`repro.verify`); any divergence makes
the command exit non-zero and prints the reproducing seed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..campaigns import (
    DEFAULT_TARGET_MARGIN,
    SAMPLING_POLICIES,
    CampaignEngine,
    CampaignSpec,
)
from ..faultinjection.scheduler import EXECUTION_SCHEDULERS
from ..data import DATASET_PRESETS, default_cache_dir
from ..obs import JsonlSink, LiveProgressSink, Telemetry, get_telemetry, use_telemetry
from ..sim.backend import BACKEND_NAMES
from ..verify import verify_seeds
from .spec import ExperimentContext, ExperimentRunner, ExperimentSpec

#: Event subset written by ``--metrics-out`` (and the default telemetry
#: file under ``--out``): the run's identity, its phase spans and the final
#: metrics rollup — no per-shard progress chatter.
METRICS_EVENTS = ("provenance", "span_begin", "span_end", "metrics")

EXPERIMENTS = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "future-work",
    "ablation",
    "tuning",
    "importance",
    "extended-features",
    "transfer",
    "seu-mbu",
]

#: ``all`` expands to the single-dataset experiments; the transfer matrix
#: and the SEU→MBU fault-model transfer sweep their own extra datasets and
#: are requested explicitly.
ALL_EXPERIMENTS = [e for e in EXPERIMENTS if e not in ("transfer", "seu-mbu")]


def run_campaign_command(args, cache_dir: Path, out_dir: Optional[Path]) -> None:
    """Drive the parallel campaign engine directly and print its economics."""
    dataset_spec = DATASET_PRESETS[args.scale]
    spec = CampaignSpec.from_dataset_spec(
        dataset_spec,
        schedule="stream",
        n_injections=args.injections,
        backend=args.backend,
        scheduler=args.scheduler,
        policy=args.policy,
        target_margin=args.target_margin,
        fault_model=args.fault_model,
    )
    if args.circuit is not None:
        from dataclasses import replace as dc_replace

        from ..circuits.workloads import default_criterion

        spec = dc_replace(
            spec, circuit=args.circuit, criterion=default_criterion(args.circuit)
        )
    policy_label = (
        f"{spec.policy}(margin={spec.target_margin})"
        if spec.policy == "sequential"
        else spec.policy
    )
    print(
        f"=== campaign === circuit={spec.circuit} injections={spec.n_injections} "
        f"fault_model={spec.fault_model} "
        f"backend={spec.backend} scheduler={spec.scheduler} "
        f"policy={policy_label} jobs={args.jobs} "
        f"cache={cache_dir}",
        flush=True,
    )
    retry = None
    if args.shard_timeout is not None or args.shard_retries is not None:
        from ..campaigns.supervisor import RetryPolicy

        retry_kwargs = {}
        if args.shard_timeout is not None:
            retry_kwargs["shard_timeout"] = args.shard_timeout
        if args.shard_retries is not None:
            retry_kwargs["max_attempts"] = args.shard_retries
        retry = RetryPolicy(**retry_kwargs)
    engine = CampaignEngine(
        spec,
        jobs=args.jobs,
        cache_dir=cache_dir,
        retry=retry,
        # --live renders progress through the telemetry sink instead of
        # printed shard lines (both would fight over the terminal).
        progress=(
            None
            if args.live
            else lambda done, total: print(f"  shard {done}/{total}", flush=True)
        ),
    )
    # Record the golden trace in the parent before any workers fork: a
    # broken workload fails here with one clean traceback instead of in N
    # pool workers, and the telemetry stream carries the full
    # synthesize -> golden_trace -> campaign phase sequence (workers
    # re-derive their own golden but attach no sinks).
    engine.context.ensure_golden()
    # --profile-out installs a CLI-wide profiler in main(); nesting a second
    # cProfile inside it raises, so the local one only runs on its own.
    profiler = None
    if args.profile and args.profile_out is None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = engine.run()
    finally:
        if profiler is not None:
            profiler.disable()
    report = engine.last_report
    n_ffs = len(result.results)
    total_injections = sum(r.n_injections for r in result.results.values())
    print(f"flip-flops: {n_ffs}, injections: {total_injections}")
    print(
        f"forward runs: {result.n_forward_runs} "
        f"(lane amortization {total_injections / max(1, result.n_forward_runs):.1f}x)"
    )
    if report.cache_hit:
        print("result store: exact snapshot hit, zero forward simulations")
    else:
        print(
            f"result store: reused {report.base_injections} injections/ff, "
            f"resumed {report.resumed_buckets} buckets, "
            f"executed {report.executed_forward_runs} forward runs "
            f"across {report.n_shards} shards"
        )
    if spec.policy == "sequential" and engine.last_policy_meta:
        meta = engine.last_policy_meta
        print(
            f"policy: {meta['rounds']} rounds, "
            f"{meta['total_injections']}/{meta['flat_injections']} injections "
            f"({meta['injections_saved']} saved), realized margin "
            f"max {meta['realized_margin_max']:.4f} / "
            f"mean {meta['realized_margin_mean']:.4f}"
        )
    if report.retries or report.pool_rebuilds or report.quarantined_shards:
        print(
            f"robustness: {report.retries} shard retries, "
            f"{report.pool_rebuilds} pool rebuilds, "
            f"{len(report.quarantined_shards)} quarantined shards"
            + (" (degraded to serial)" if report.degraded_serial else "")
        )
        for entry in report.quarantined_shards:
            print(f"  quarantined shard {entry['shard']}: {entry['reason']}")
    print(f"mean FDR: {result.mean_fdr():.4f}, wall: {report.wall_seconds:.2f}s")
    if profiler is not None:
        import pstats

        print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile_top)
    if out_dir is not None:
        (out_dir / "campaign.json").write_text(result.to_json())


def run_verify_command(args, out_dir: Optional[Path]) -> int:
    """Sweep fuzz seeds through the differential harness; 0 = all agree."""
    print(
        f"=== verify === seeds={args.seeds} (base {args.seed}) scale={args.scale}",
        flush=True,
    )

    def progress(done: int, total: int, report) -> None:
        status = "ok" if report.ok else "DIVERGED"
        print(
            f"  seed {report.seed}: {report.n_cells} cells, {report.n_ffs} FFs, "
            f"{report.comparisons} comparisons, "
            f"{report.injections_checked} injections — {status}",
            flush=True,
        )

    summary = verify_seeds(
        args.seeds, scale=args.scale, seed_base=args.seed, progress=progress
    )
    print(
        f"checked {summary.n_seeds} circuits: {summary.n_comparisons} cross-backend "
        f"comparisons, {summary.n_injections_checked} injector replays "
        f"in {summary.wall_seconds:.2f}s "
        f"({summary.comparisons_per_second():,.0f} comparisons/s)"
    )
    if out_dir is not None:
        payload = {
            "n_seeds": summary.n_seeds,
            "n_comparisons": summary.n_comparisons,
            "n_injections_checked": summary.n_injections_checked,
            "wall_seconds": summary.wall_seconds,
            "failing_seeds": [r.seed for r in summary.failing],
        }
        (out_dir / "verify.json").write_text(json.dumps(payload, indent=2))
    if not summary.ok:
        for report in summary.failing:
            for divergence in report.divergences:
                print(f"  seed {report.seed}: {divergence}")
        print(
            "DIVERGENCE — reproduce with "
            f"`python -m repro.experiments verify --seeds 1 "
            f"--seed {summary.failing[0].seed} --scale {args.scale}`"
        )
        return 1
    print("all backends agree")

    from ..verify.diff import run_generated_check

    print("=== generated === circuit=mesh_tiny", flush=True)
    gen_start = time.perf_counter()
    gen_divergences, gen_checked = run_generated_check(
        circuit="mesh_tiny", seed=args.seed
    )
    if gen_divergences:
        for divergence in gen_divergences:
            print(f"  mesh_tiny: {divergence}")
        print("GENERATED DIVERGENCE — injector disagrees on generated circuit")
        return 1
    print(
        f"  mesh_tiny: {gen_checked} injector+scheduler replays agree "
        f"in {time.perf_counter() - gen_start:.2f}s"
    )

    if args.chaos_trials > 0:
        from ..verify.chaos import ChaosTrialError, run_chaos_trials

        print(
            f"=== chaos === trials={args.chaos_trials} (base {args.seed}) "
            f"jobs={max(2, args.jobs)}",
            flush=True,
        )
        try:
            reports = run_chaos_trials(
                args.chaos_trials,
                jobs=max(2, args.jobs),
                seed_base=args.seed,
            )
        except ChaosTrialError as exc:
            print(f"CHAOS DIVERGENCE — {exc}")
            return 1
        for report in reports:
            faults = ", ".join(
                f"{kind}={count}" for kind, count in report.faults.items() if count
            )
            print(
                f"  trial {report.trial} ({report.flavor}): recovered "
                f"bit-identically in {report.wall_seconds:.2f}s — "
                f"{report.retries} retries, {report.pool_rebuilds} rebuilds, "
                f"{report.corrupt_files} quarantined files"
                + (f" [{faults}]" if faults else "")
            )
        if out_dir is not None:
            payload = [
                {
                    "trial": r.trial,
                    "flavor": r.flavor,
                    "seed": r.seed,
                    "matched": r.matched,
                    "retries": r.retries,
                    "pool_rebuilds": r.pool_rebuilds,
                    "quarantined": r.quarantined,
                    "corrupt_files": r.corrupt_files,
                    "faults": r.faults,
                    "wall_seconds": r.wall_seconds,
                }
                for r in reports
            ]
            (out_dir / "chaos.json").write_text(json.dumps(payload, indent=2))
        print("campaign engine recovered bit-identically from every fault plan")
    return 0


def build_spec(experiment: str, args) -> ExperimentSpec:
    """Map one CLI experiment request onto an :class:`ExperimentSpec`."""
    if experiment == "transfer":
        return ExperimentSpec.make(
            "transfer",
            scale=args.preset if args.preset is not None else args.scale,
            seed=args.seed,
            circuits=args.circuits,
            model=args.transfer_model,
        )
    if experiment == "seu-mbu":
        return ExperimentSpec.make(
            "seu-mbu",
            scale=args.scale,
            seed=args.seed,
            fault_model=args.fault_model,
        )
    return ExperimentSpec.make(experiment, scale=args.scale, seed=args.seed)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ["all", "campaign", "verify"],
        help="which experiments to run ('transfer' sweeps the cross-circuit "
        "matrix; 'campaign' drives the parallel fault-injection engine "
        "directly; 'verify' differential-tests the simulation backends on "
        "fuzzed circuits)",
    )
    parser.add_argument("--scale", default="mini", choices=["tiny", "mini", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--preset",
        default=None,
        choices=["tiny", "mini", "full"],
        help="transfer experiment only: per-circuit dataset scale "
        "(defaults to --scale)",
    )
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        help="transfer experiment only: restrict the matrix to these circuits "
        "(default: the whole library)",
    )
    parser.add_argument(
        "--transfer-model",
        default="k-NN",
        help="transfer experiment only: paper model to transfer (default: k-NN)",
    )
    parser.add_argument(
        "--fault-model",
        default=None,
        help="fault model applied per injection site: a registry spec such as "
        "'seu', 'mbu:size=3,radius=1,seed=0', 'stuck0', 'stuck1' or "
        "'intermittent:period=8,on=2' (see docs/fault_models.md). The "
        "campaign command defaults to 'seu'; the seu-mbu experiment uses "
        "it as the transfer *target* label family (default: "
        "mbu:size=3,radius=1,seed=0)",
    )
    parser.add_argument("--out", type=Path, default=None, help="directory for CSV/JSON outputs")
    parser.add_argument("--regenerate", action="store_true", help="ignore the dataset cache")
    parser.add_argument(
        "--jobs", type=int, default=1, help="campaign worker processes (default: 1, serial)"
    )
    parser.add_argument(
        "--backend",
        default="compiled",
        choices=list(BACKEND_NAMES),
        help="campaign simulation substrate (results are backend-invariant; "
        "see docs/simulators.md)",
    )
    parser.add_argument(
        "--scheduler",
        default="adaptive",
        choices=list(EXECUTION_SCHEDULERS),
        help="campaign execution strategy: 'adaptive' keeps lanes full via "
        "mixed-cycle refill, 'batch' runs one forward simulation per time "
        "slot (results are scheduler-invariant; see docs/performance.md)",
    )
    parser.add_argument(
        "--policy",
        default="flat",
        choices=list(SAMPLING_POLICIES),
        help="campaign sampling policy: 'flat' spends the full budget on "
        "every flip-flop (the paper protocol), 'sequential' retires "
        "flip-flops once their Wilson interval half-width falls under "
        "--target-margin and reallocates the freed budget (see "
        "docs/campaigns.md)",
    )
    parser.add_argument(
        "--target-margin",
        type=float,
        default=DEFAULT_TARGET_MARGIN,
        help="sequential policy only: retire a flip-flop once its 95%% "
        "Wilson interval half-width is at or under this value "
        f"(default: {DEFAULT_TARGET_MARGIN}, the paper's margin of error; "
        "0 disables early stopping — fixed-seed equivalence mode)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="campaign command only: wrap the run in cProfile and print the "
        "top functions by cumulative time",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="how many rows of the cProfile report to print (default: 25)",
    )
    parser.add_argument(
        "--profile-out",
        type=Path,
        default=None,
        help="profile the whole invocation and write the stats to this file "
        "(valid pstats input: `python -m pstats <file>`); implies profiling "
        "even without --profile",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="write telemetry JSONL (provenance stamp, phase spans, final "
        "metrics snapshot) to this file; defaults to <out>/telemetry.jsonl "
        "when --out is set",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help="write the *full* telemetry event stream (spans, metrics and "
        "per-shard progress events) to this JSONL file",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="render campaign progress as a single self-updating terminal "
        "line (throughput + ETA) instead of per-shard log lines",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="dataset cache + campaign result store location "
        "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--injections",
        type=int,
        default=None,
        help="campaign command only: override the scale's injections per flip-flop",
    )
    parser.add_argument(
        "--circuit",
        default=None,
        help="campaign command only: run on this registered circuit instead "
        "of the scale's xgmac preset (e.g. a generated composite like "
        "'mesh_2k'; the circuit's registered failure criterion applies)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=25,
        help="verify command only: number of fuzzed circuits to cross-check "
        "(seeds --seed .. --seed + N - 1)",
    )
    parser.add_argument(
        "--chaos-trials",
        type=int,
        default=0,
        help="verify command only: additionally run N seeded chaos trials "
        "(worker kills, shard timeouts, torn store writes) asserting the "
        "supervised executor recovers bit-identically (see "
        "docs/robustness.md; default: 0, disabled)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="campaign command only: per-shard deadline in seconds; a shard "
        "exceeding it is retried on a rebuilt worker pool (default: no "
        "deadline)",
    )
    parser.add_argument(
        "--shard-retries",
        type=int,
        default=None,
        help="campaign command only: executions granted to one shard before "
        "it is quarantined (default: 3)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.injections is not None and args.injections < 1:
        parser.error("--injections must be >= 1")
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")
    if args.chaos_trials < 0:
        parser.error("--chaos-trials must be >= 0")
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        parser.error("--shard-timeout must be positive")
    if args.shard_retries is not None and args.shard_retries < 1:
        parser.error("--shard-retries must be >= 1")
    if not 0.0 <= args.target_margin < 1.0:
        parser.error("--target-margin must be in [0, 1)")

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    out_dir = args.out
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    telemetry = build_telemetry(args, out_dir)
    profiler = None
    if args.profile_out is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        with use_telemetry(telemetry):
            telemetry.emit_provenance(
                argv=list(argv) if argv is not None else sys.argv[1:],
                experiments=args.experiments,
                scale=args.scale,
                jobs=args.jobs,
                backend=args.backend,
                scheduler=args.scheduler,
                policy=args.policy,
            )
            return dispatch(args, cache_dir, out_dir)
    finally:
        if profiler is not None:
            profiler.disable()
            args.profile_out.parent.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(str(args.profile_out))
            if args.profile:
                import pstats

                print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
                pstats.Stats(profiler).sort_stats("cumulative").print_stats(
                    args.profile_top
                )
        telemetry.flush_metrics()
        telemetry.close()


def build_telemetry(args, out_dir: Optional[Path]) -> Telemetry:
    """Assemble the run's telemetry from the CLI flags.

    Every run with an ``--out`` directory records a provenance-stamped
    telemetry file even without explicit flags (``<out>/telemetry.jsonl``,
    metrics-event subset); ``--metrics-out`` relocates it, ``--trace-out``
    adds the full event stream, ``--live`` the terminal progress line.
    """
    telemetry = Telemetry()
    metrics_out = args.metrics_out
    if metrics_out is None and out_dir is not None:
        metrics_out = out_dir / "telemetry.jsonl"
    if metrics_out is not None:
        telemetry.add_sink(JsonlSink(metrics_out, events=METRICS_EVENTS))
    if args.trace_out is not None:
        telemetry.add_sink(JsonlSink(args.trace_out))
    if args.live:
        telemetry.add_sink(LiveProgressSink())
    return telemetry


def dispatch(args, cache_dir: Path, out_dir: Optional[Path]) -> int:
    """Run the requested commands/experiments (current telemetry applies)."""
    if "all" in args.experiments:
        requested = list(ALL_EXPERIMENTS)
    else:
        requested = [e for e in args.experiments if e not in ("campaign", "verify")]
    if "verify" in args.experiments:
        status = run_verify_command(args, out_dir)
        if status != 0:
            return status
        if not requested and "campaign" not in args.experiments:
            return 0
        print()
    if "campaign" in args.experiments:
        run_campaign_command(args, cache_dir, out_dir)
        if not requested:
            return 0
        print()

    runner = ExperimentRunner(
        context=ExperimentContext(
            cache_dir=cache_dir,
            jobs=args.jobs,
            regenerate=args.regenerate,
            backend=args.backend,
            scheduler=args.scheduler,
        )
    )
    if any(e != "transfer" for e in requested):
        print(f"Loading dataset (scale={args.scale}) ...", flush=True)
        dataset = runner.context.dataset(preset=args.scale)
        print(f"dataset: {dataset.n_samples} flip-flops x {dataset.n_features} features\n")

    for experiment in requested:
        print(f"=== {experiment} ===", flush=True)
        outcome = runner.run(build_spec(experiment, args))
        with get_telemetry().tracer.span("report", experiment=experiment):
            print(outcome.text)
            if out_dir:
                outcome.write_exports(out_dir)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
