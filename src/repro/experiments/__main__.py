"""Command-line experiment runner.

Usage::

    python -m repro.experiments table1 --scale mini
    python -m repro.experiments fig2 fig3 fig4 --scale full --out results/
    python -m repro.experiments all --scale tiny --jobs 4
    python -m repro.experiments campaign --scale mini --jobs 4 --injections 170
    python -m repro.experiments verify --seeds 50 --scale mini

Scales map to the dataset presets of :mod:`repro.data`: ``tiny`` (seconds),
``mini`` (default, < 1 min), ``full`` (the paper-scale configuration —
1012 flip-flops × 170 injections; several minutes on first run, cached
afterwards).

``--jobs N`` shards the fault-injection campaign across N worker processes
(results are bit-identical to a serial run); ``--cache-dir`` relocates the
dataset cache and the campaign result store.  The ``campaign`` command runs
the parallel campaign engine directly (``stream`` schedule, so repeated runs
with growing ``--injections`` only simulate the delta) and prints its
economics; ``--backend {compiled,numpy,fused}`` selects the simulation
substrate (see ``docs/simulators.md``) without affecting results.

The ``verify`` command fuzzes ``--seeds`` random circuits and cross-checks
the compiled simulator, the event-driven simulator, the reference oracle and
the fault injector on each (see :mod:`repro.verify`); any divergence makes
the command exit non-zero and prints the reproducing seed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..campaigns import CampaignEngine, CampaignSpec
from ..faultinjection.scheduler import EXECUTION_SCHEDULERS
from ..data import DATASET_PRESETS, default_cache_dir, get_dataset
from ..sim.backend import BACKEND_NAMES
from ..verify import verify_seeds
from .ablation import run_ablation
from .figures import FIGURE_MODELS, run_figure
from .future_work import run_future_work
from .extended_features import run_extended_features
from .importance import run_importance
from .table1 import run_table1
from .tuning import run_tuning

EXPERIMENTS = [
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "future-work",
    "ablation",
    "tuning",
    "importance",
    "extended-features",
]


def run_campaign_command(args, cache_dir: Path, out_dir: Optional[Path]) -> None:
    """Drive the parallel campaign engine directly and print its economics."""
    dataset_spec = DATASET_PRESETS[args.scale]
    spec = CampaignSpec.from_dataset_spec(
        dataset_spec,
        schedule="stream",
        n_injections=args.injections,
        backend=args.backend,
        scheduler=args.scheduler,
    )
    print(
        f"=== campaign === circuit={spec.circuit} injections={spec.n_injections} "
        f"backend={spec.backend} scheduler={spec.scheduler} jobs={args.jobs} "
        f"cache={cache_dir}",
        flush=True,
    )
    engine = CampaignEngine(
        spec,
        jobs=args.jobs,
        cache_dir=cache_dir,
        progress=lambda done, total: print(f"  shard {done}/{total}", flush=True),
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        result = engine.run()
    finally:
        if profiler is not None:
            profiler.disable()
    report = engine.last_report
    n_ffs = len(result.results)
    total_injections = sum(r.n_injections for r in result.results.values())
    print(f"flip-flops: {n_ffs}, injections: {total_injections}")
    print(
        f"forward runs: {result.n_forward_runs} "
        f"(lane amortization {total_injections / max(1, result.n_forward_runs):.1f}x)"
    )
    if report.cache_hit:
        print("result store: exact snapshot hit, zero forward simulations")
    else:
        print(
            f"result store: reused {report.base_injections} injections/ff, "
            f"resumed {report.resumed_buckets} buckets, "
            f"executed {report.executed_forward_runs} forward runs "
            f"across {report.n_shards} shards"
        )
    print(f"mean FDR: {result.mean_fdr():.4f}, wall: {report.wall_seconds:.2f}s")
    if profiler is not None:
        import pstats

        print(f"\n--- cProfile: top {args.profile_top} by cumulative time ---")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(args.profile_top)
    if out_dir is not None:
        (out_dir / "campaign.json").write_text(result.to_json())


def run_verify_command(args, out_dir: Optional[Path]) -> int:
    """Sweep fuzz seeds through the differential harness; 0 = all agree."""
    print(
        f"=== verify === seeds={args.seeds} (base {args.seed}) scale={args.scale}",
        flush=True,
    )

    def progress(done: int, total: int, report) -> None:
        status = "ok" if report.ok else "DIVERGED"
        print(
            f"  seed {report.seed}: {report.n_cells} cells, {report.n_ffs} FFs, "
            f"{report.comparisons} comparisons, "
            f"{report.injections_checked} injections — {status}",
            flush=True,
        )

    summary = verify_seeds(
        args.seeds, scale=args.scale, seed_base=args.seed, progress=progress
    )
    print(
        f"checked {summary.n_seeds} circuits: {summary.n_comparisons} cross-backend "
        f"comparisons, {summary.n_injections_checked} injector replays "
        f"in {summary.wall_seconds:.2f}s "
        f"({summary.comparisons_per_second():,.0f} comparisons/s)"
    )
    if out_dir is not None:
        payload = {
            "n_seeds": summary.n_seeds,
            "n_comparisons": summary.n_comparisons,
            "n_injections_checked": summary.n_injections_checked,
            "wall_seconds": summary.wall_seconds,
            "failing_seeds": [r.seed for r in summary.failing],
        }
        (out_dir / "verify.json").write_text(json.dumps(payload, indent=2))
    if not summary.ok:
        for report in summary.failing:
            for divergence in report.divergences:
                print(f"  seed {report.seed}: {divergence}")
        print(
            "DIVERGENCE — reproduce with "
            f"`python -m repro.experiments verify --seeds 1 "
            f"--seed {summary.failing[0].seed} --scale {args.scale}`"
        )
        return 1
    print("all backends agree")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ["all", "campaign", "verify"],
        help="which experiments to run ('campaign' drives the parallel "
        "fault-injection engine directly; 'verify' differential-tests the "
        "simulation backends on fuzzed circuits)",
    )
    parser.add_argument("--scale", default="mini", choices=["tiny", "mini", "full"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None, help="directory for CSV/JSON outputs")
    parser.add_argument("--regenerate", action="store_true", help="ignore the dataset cache")
    parser.add_argument(
        "--jobs", type=int, default=1, help="campaign worker processes (default: 1, serial)"
    )
    parser.add_argument(
        "--backend",
        default="compiled",
        choices=list(BACKEND_NAMES),
        help="campaign simulation substrate (results are backend-invariant; "
        "see docs/simulators.md)",
    )
    parser.add_argument(
        "--scheduler",
        default="adaptive",
        choices=list(EXECUTION_SCHEDULERS),
        help="campaign execution strategy: 'adaptive' keeps lanes full via "
        "mixed-cycle refill, 'batch' runs one forward simulation per time "
        "slot (results are scheduler-invariant; see docs/performance.md)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="campaign command only: wrap the run in cProfile and print the "
        "top functions by cumulative time",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        help="how many rows of the cProfile report to print (default: 25)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="dataset cache + campaign result store location "
        "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--injections",
        type=int,
        default=None,
        help="campaign command only: override the scale's injections per flip-flop",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=25,
        help="verify command only: number of fuzzed circuits to cross-check "
        "(seeds --seed .. --seed + N - 1)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.injections is not None and args.injections < 1:
        parser.error("--injections must be >= 1")
    if args.seeds < 1:
        parser.error("--seeds must be >= 1")

    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    out_dir = args.out
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    if "all" in args.experiments:
        requested = list(EXPERIMENTS)
    else:
        requested = [e for e in args.experiments if e not in ("campaign", "verify")]
    if "verify" in args.experiments:
        status = run_verify_command(args, out_dir)
        if status != 0:
            return status
        if not requested and "campaign" not in args.experiments:
            return 0
        print()
    if "campaign" in args.experiments:
        run_campaign_command(args, cache_dir, out_dir)
        if not requested:
            return 0
        print()

    print(f"Loading dataset (scale={args.scale}) ...", flush=True)
    dataset = get_dataset(
        args.scale, cache_dir=cache_dir, regenerate=args.regenerate, jobs=args.jobs
    )
    print(f"dataset: {dataset.n_samples} flip-flops x {dataset.n_features} features\n")

    for experiment in requested:
        print(f"=== {experiment} ===", flush=True)
        if experiment == "table1":
            result = run_table1(dataset, seed=args.seed)
            print(result.as_text())
            print(f"\nshape holds (LLS worst, k-NN ~ SVR): {result.shape_holds()}")
            if out_dir:
                (out_dir / "table1.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment in FIGURE_MODELS:
            result = run_figure(dataset, experiment, seed=args.seed)
            print(result.as_text())
            if out_dir:
                (out_dir / f"{experiment}a_prediction.csv").write_text(result.prediction_csv())
                (out_dir / f"{experiment}b_learning_curve.csv").write_text(result.curve_csv())
        elif experiment == "future-work":
            result = run_future_work(dataset, seed=args.seed)
            print(result.as_text())
            print(f"\nbest future-work model: {result.best_model()}")
            if out_dir:
                (out_dir / "future_work.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment == "ablation":
            result = run_ablation(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                (out_dir / "ablation.json").write_text(json.dumps(result.rows, indent=2))
        elif experiment == "tuning":
            result = run_tuning(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                payload = {"best_params": result.best_params, "best_scores": result.best_scores}
                (out_dir / "tuning.json").write_text(json.dumps(payload, indent=2, default=str))
        elif experiment == "extended-features":
            result = run_extended_features(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                payload = {"baseline_r2": result.baseline_r2, "extended_r2": result.extended_r2}
                (out_dir / "extended_features.json").write_text(json.dumps(payload, indent=2))
        elif experiment == "importance":
            result = run_importance(dataset, seed=args.seed)
            print(result.as_text())
            if out_dir:
                rows = result.result.as_rows()
                (out_dir / "importance.json").write_text(json.dumps(rows, indent=2))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
