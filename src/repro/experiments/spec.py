"""Declarative experiment specifications and the unified runner.

Every experiment in this package — the paper reproductions (Table I,
Figs. 2-4) and the extensions (future-work models, ablation, tuning,
permutation importance, extended features, cross-circuit transfer) — runs
behind one protocol:

* an :class:`ExperimentSpec` names the experiment, the dataset scale, the
  seed and any experiment-specific options (a frozen, hashable value — two
  equal specs describe the same run);
* an :class:`ExperimentContext` owns the shared resources: the dataset
  cache directory, campaign parallelism, and an in-memory dataset memo so
  a batch of experiments on one scale generates/loads its dataset once;
* the :class:`ExperimentRunner` resolves the spec against the registered
  protocol (:func:`register_experiment`) and returns a uniform
  :class:`ExperimentOutcome` — the raw result object, the rendered text,
  and the export files the CLI writes under ``--out``.

The CLI (``python -m repro.experiments``) is a thin argparse shell over
this module; scripted users can drive the same runner directly::

    from repro.experiments.spec import ExperimentRunner, ExperimentSpec

    runner = ExperimentRunner(jobs=4)
    outcome = runner.run(ExperimentSpec.make("table1", scale="mini"))
    print(outcome.text)

See ``docs/experiments.md`` for the catalogue and extension points.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..data import (
    DatasetSpec,
    default_cache_dir,
    get_dataset,
)
from ..features.dataset import Dataset
from ..obs import get_telemetry

__all__ = [
    "ExperimentSpec",
    "ExperimentOutcome",
    "ExperimentContext",
    "ExperimentRunner",
    "register_experiment",
    "available_experiments",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully determined experiment run.

    ``options`` is a sorted tuple of ``(key, value)`` pairs so the spec
    stays hashable; build specs through :meth:`make` and read options
    through :meth:`option`.
    """

    experiment: str
    scale: str = "mini"
    seed: int = 0
    options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(
        cls, experiment: str, scale: str = "mini", seed: int = 0, **options: object
    ) -> "ExperimentSpec":
        frozen = tuple(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in sorted(options.items())
            if v is not None
        )
        return cls(experiment=experiment, scale=scale, seed=seed, options=frozen)

    def option(self, key: str, default: object = None) -> object:
        for k, v in self.options:
            if k == key:
                return v
        return default


@dataclass
class ExperimentOutcome:
    """Uniform result envelope: raw object, rendered text, export files."""

    spec: ExperimentSpec
    result: object
    text: str
    exports: Dict[str, str] = field(default_factory=dict)

    def write_exports(self, out_dir: Path) -> List[Path]:
        """Write every export file under *out_dir*; returns written paths."""
        out_dir.mkdir(parents=True, exist_ok=True)
        written = []
        for name, content in self.exports.items():
            path = out_dir / name
            path.write_text(content)
            written.append(path)
        return written


class ExperimentContext:
    """Shared resources for a batch of experiment runs.

    Datasets are memoized per generation spec, so running ``table1`` and
    ``ablation`` back to back loads the labelled dataset once — and the
    disk-level dataset/campaign caches below this memo make even the first
    load cheap on a warm cache directory.
    """

    def __init__(
        self,
        cache_dir: Optional[Path] = None,
        jobs: int = 1,
        regenerate: bool = False,
        backend: str = "compiled",
        scheduler: str = "adaptive",
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.jobs = jobs
        self.regenerate = regenerate
        self.backend = backend
        self.scheduler = scheduler
        self._datasets: Dict[DatasetSpec, Dataset] = {}

    def dataset(
        self, preset: Optional[str] = None, spec: Optional[DatasetSpec] = None
    ) -> Dataset:
        """Load (or generate) the dataset for a preset name or explicit spec."""
        if spec is None:
            if preset is None:
                raise ValueError("pass a preset name or a DatasetSpec")
            from ..data import DATASET_PRESETS

            spec = DATASET_PRESETS[preset]
        cached = self._datasets.get(spec)
        if cached is None:
            cached = get_dataset(
                spec=spec,
                cache_dir=self.cache_dir,
                regenerate=self.regenerate,
                jobs=self.jobs,
                backend=self.backend,
                scheduler=self.scheduler,
            )
            self._datasets[spec] = cached
        return cached


Protocol = Callable[[ExperimentContext, ExperimentSpec], ExperimentOutcome]

_REGISTRY: Dict[str, Protocol] = {}


def register_experiment(name: str) -> Callable[[Protocol], Protocol]:
    """Decorator: enroll a protocol function under *name*."""

    def decorate(fn: Protocol) -> Protocol:
        _REGISTRY[name] = fn
        return fn

    return decorate


def available_experiments() -> List[str]:
    """Names of every registered experiment protocol."""
    return sorted(_REGISTRY)


class ExperimentRunner:
    """Resolves :class:`ExperimentSpec` objects against the registry."""

    def __init__(
        self, context: Optional[ExperimentContext] = None, **context_kwargs
    ) -> None:
        if context is not None and context_kwargs:
            raise ValueError("pass a context or context kwargs, not both")
        self.context = context if context is not None else ExperimentContext(**context_kwargs)

    def run(self, spec: ExperimentSpec) -> ExperimentOutcome:
        try:
            protocol = _REGISTRY[spec.experiment]
        except KeyError:
            raise KeyError(
                f"unknown experiment {spec.experiment!r}; "
                f"available: {available_experiments()}"
            ) from None
        # The protocol body covers dataset load/generation *and* model
        # fitting; the nested dataset/campaign spans carve out their share,
        # so this span's self-time is the training cost.
        with get_telemetry().tracer.span(
            "train", experiment=spec.experiment, scale=spec.scale, seed=spec.seed
        ):
            return protocol(self.context, spec)

    def run_named(
        self, experiment: str, scale: str = "mini", seed: int = 0, **options: object
    ) -> ExperimentOutcome:
        return self.run(ExperimentSpec.make(experiment, scale=scale, seed=seed, **options))


# ---------------------------------------------------------------- protocols
#
# Each protocol reproduces exactly what the pre-runner CLI did for its
# experiment: same entry function, same arguments, same rendered text and
# the same export payloads — the runner only unifies the plumbing.


@register_experiment("table1")
def _table1(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .table1 import run_table1

    dataset = ctx.dataset(preset=spec.scale)
    result = run_table1(dataset, seed=spec.seed)
    text = (
        result.as_text()
        + f"\n\nshape holds (LLS worst, k-NN ~ SVR): {result.shape_holds()}"
    )
    exports = {"table1.json": json.dumps(result.rows, indent=2)}
    return ExperimentOutcome(spec=spec, result=result, text=text, exports=exports)


def _figure(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .figures import run_figure

    dataset = ctx.dataset(preset=spec.scale)
    result = run_figure(dataset, spec.experiment, seed=spec.seed)
    exports = {
        f"{spec.experiment}a_prediction.csv": result.prediction_csv(),
        f"{spec.experiment}b_learning_curve.csv": result.curve_csv(),
    }
    return ExperimentOutcome(
        spec=spec, result=result, text=result.as_text(), exports=exports
    )


for _fig in ("fig2", "fig3", "fig4"):
    _REGISTRY[_fig] = _figure


@register_experiment("future-work")
def _future_work(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .future_work import run_future_work

    dataset = ctx.dataset(preset=spec.scale)
    result = run_future_work(dataset, seed=spec.seed)
    text = result.as_text() + f"\n\nbest future-work model: {result.best_model()}"
    exports = {"future_work.json": json.dumps(result.rows, indent=2)}
    return ExperimentOutcome(spec=spec, result=result, text=text, exports=exports)


@register_experiment("ablation")
def _ablation(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .ablation import run_ablation

    dataset = ctx.dataset(preset=spec.scale)
    result = run_ablation(dataset, seed=spec.seed)
    exports = {"ablation.json": json.dumps(result.rows, indent=2)}
    return ExperimentOutcome(
        spec=spec, result=result, text=result.as_text(), exports=exports
    )


@register_experiment("tuning")
def _tuning(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .tuning import run_tuning

    dataset = ctx.dataset(preset=spec.scale)
    result = run_tuning(dataset, seed=spec.seed)
    payload = {"best_params": result.best_params, "best_scores": result.best_scores}
    exports = {"tuning.json": json.dumps(payload, indent=2, default=str)}
    return ExperimentOutcome(
        spec=spec, result=result, text=result.as_text(), exports=exports
    )


@register_experiment("importance")
def _importance(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .importance import run_importance

    dataset = ctx.dataset(preset=spec.scale)
    result = run_importance(dataset, seed=spec.seed)
    exports = {"importance.json": json.dumps(result.result.as_rows(), indent=2)}
    return ExperimentOutcome(
        spec=spec, result=result, text=result.as_text(), exports=exports
    )


@register_experiment("extended-features")
def _extended_features(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    from .extended_features import run_extended_features

    dataset = ctx.dataset(preset=spec.scale)
    result = run_extended_features(dataset, seed=spec.seed)
    payload = {"baseline_r2": result.baseline_r2, "extended_r2": result.extended_r2}
    exports = {"extended_features.json": json.dumps(payload, indent=2)}
    return ExperimentOutcome(
        spec=spec, result=result, text=result.as_text(), exports=exports
    )


# The transfer protocols live in (and register from) their own modules.
from . import transfer as _transfer  # noqa: E402,F401  (registration side effect)
from . import fault_transfer as _fault_transfer  # noqa: E402,F401  (registration side effect)
