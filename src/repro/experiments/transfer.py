"""Cross-circuit transfer matrix: train on circuit A, predict circuit B.

The paper's promise is that a trained FDR predictor generalizes so that
"the effort of the fault injection campaigns could be further reduced" on
new designs.  This experiment measures that promise directly across the
circuit library: for every ordered pair of registered circuits it trains a
paper model on A's complete labelled dataset and scores the prediction on
B, producing an R²/MAE matrix.  The diagonal uses the paper's in-circuit
protocol (train on a 50 % split, score the held-out half), so it is
directly comparable to the Table I numbers.

Because the features are circuit-generic (same columns on every netlist)
and datasets come from :func:`repro.data.transfer_presets` through the
shared cache, a matrix over N circuits costs N campaigns — not N², and
nothing at all once the datasets are cached.

Run it as ``python -m repro.experiments transfer --preset tiny`` or through
the unified runner (``ExperimentSpec.make("transfer", scale="tiny")``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import transfer_presets
from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.base import clone
from ..ml.metrics import all_metrics
from ..ml.model_selection import train_test_split
from .common import TRAIN_SIZE, paper_models
from .spec import (
    ExperimentContext,
    ExperimentOutcome,
    ExperimentSpec,
    register_experiment,
)

__all__ = ["TransferResult", "run_transfer"]


@dataclass
class TransferResult:
    """R² and MAE for every (train circuit, test circuit) pair."""

    circuits: List[str]
    model_name: str
    r2: Dict[str, Dict[str, float]] = field(default_factory=dict)
    mae: Dict[str, Dict[str, float]] = field(default_factory=dict)
    n_samples: Dict[str, int] = field(default_factory=dict)

    def as_text(self) -> str:
        headers = ["train \\ test", *self.circuits]
        rows = [
            [a, *(self.r2[a][b] for b in self.circuits)] for a in self.circuits
        ]
        matrix = format_table(
            headers,
            rows,
            title=(
                f"Cross-circuit transfer — test R² ({self.model_name}; "
                "diagonal: in-circuit 50% split)"
            ),
        )
        summary = (
            f"\ncircuits: "
            + ", ".join(f"{c} ({self.n_samples[c]} FFs)" for c in self.circuits)
            + f"\nmean off-diagonal R²: {self.mean_transfer_r2():.3f}"
        )
        return matrix + summary

    def mean_transfer_r2(self) -> float:
        values = [
            self.r2[a][b]
            for a in self.circuits
            for b in self.circuits
            if a != b
        ]
        return float(np.mean(values)) if values else float("nan")

    def best_source(self, target: str) -> str:
        """The training circuit that transfers best onto *target*."""
        candidates = [a for a in self.circuits if a != target]
        if not candidates:
            raise ValueError(
                f"no transfer sources for {target!r}: the matrix holds only "
                f"{self.circuits}"
            )
        return max(candidates, key=lambda a: self.r2[a][target])

    def to_json(self) -> str:
        return json.dumps(
            {
                "model": self.model_name,
                "circuits": self.circuits,
                "n_samples": self.n_samples,
                "r2": self.r2,
                "mae": self.mae,
            },
            indent=2,
        )


def run_transfer(
    datasets: Dict[str, Dataset],
    model_name: str = "k-NN",
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
) -> TransferResult:
    """Train-on-A / test-on-B over every ordered pair of *datasets*.

    Off-diagonal cells fit on circuit A's full dataset and score on all of
    B; diagonal cells follow the paper's in-circuit protocol (stratified
    *train_size* split).  All models are the paper pipelines, so scaling is
    refit per training circuit.
    """
    circuits = list(datasets)
    result = TransferResult(
        circuits=circuits,
        model_name=model_name,
        n_samples={c: datasets[c].n_samples for c in circuits},
    )
    fitted = {}
    for a in circuits:
        model = clone(paper_models()[model_name])
        model.fit(datasets[a].X, datasets[a].y)
        fitted[a] = model
    for a in circuits:
        result.r2[a] = {}
        result.mae[a] = {}
        for b in circuits:
            if a == b:
                metrics = _diagonal_metrics(
                    datasets[a], model_name, train_size=train_size, seed=seed
                )
            else:
                pred = fitted[a].predict(datasets[b].X)
                metrics = all_metrics(datasets[b].y, pred)
            result.r2[a][b] = round(float(metrics["r2"]), 4)
            result.mae[a][b] = round(float(metrics["mae"]), 4)
    return result


#: Smallest training split the paper models accept (k-NN needs k = 3 rows).
_MIN_TRAIN_ROWS = 3


def _diagonal_metrics(
    dataset: Dataset, model_name: str, train_size: float, seed: int
) -> Dict[str, float]:
    """The paper's in-circuit protocol for one circuit (matrix diagonal).

    Tiny circuits (an FSM has six flip-flops) can undershoot the models'
    minimum training size at the paper's 50 % split; the split fraction is
    raised just enough to keep ``_MIN_TRAIN_ROWS`` training rows while
    always holding at least one row out.
    """
    n = dataset.n_samples
    if n < _MIN_TRAIN_ROWS + 1:
        # Too small for any held-out protocol: score the fit on itself
        # (optimistic, but defined — and obvious from the circuit size).
        model = clone(paper_models()[model_name])
        model.fit(dataset.X, dataset.y)
        return all_metrics(dataset.y, model.predict(dataset.X))
    split = None
    if n >= 2 * _MIN_TRAIN_ROWS:
        try:
            candidate = train_test_split(
                dataset.X,
                dataset.y,
                train_size=train_size,
                random_state=seed,
                stratify_bins=10,
            )
            if len(candidate[2]) >= _MIN_TRAIN_ROWS:
                split = candidate
        except ValueError:
            pass  # stratified split degenerated on a tiny label set
    if split is None:
        cut = min(max(_MIN_TRAIN_ROWS, int(round(train_size * n))), n - 1)
        split = train_test_split(
            dataset.X, dataset.y, train_size=cut / n, random_state=seed
        )
    X_tr, X_te, y_tr, y_te, _, _ = split
    model = clone(paper_models()[model_name])
    model.fit(X_tr, y_tr)
    return all_metrics(y_te, model.predict(X_te))


@register_experiment("transfer")
def _transfer_protocol(ctx: ExperimentContext, spec: ExperimentSpec) -> ExperimentOutcome:
    """Registry protocol: resolve circuits, pull cached datasets, run."""
    circuits: Optional[Sequence[str]] = spec.option("circuits")
    model_name = str(spec.option("model", "k-NN"))
    known_models = paper_models()
    if model_name not in known_models:
        # Fail before the (expensive) per-circuit campaigns, not after.
        raise KeyError(
            f"unknown transfer model {model_name!r}; choose from {sorted(known_models)}"
        )
    presets = transfer_presets(spec.scale, circuits)
    datasets = {
        circuit: ctx.dataset(spec=preset) for circuit, preset in presets.items()
    }
    result = run_transfer(datasets, model_name=model_name, seed=spec.seed)
    return ExperimentOutcome(
        spec=spec,
        result=result,
        text=result.as_text(),
        exports={"transfer.json": result.to_json()},
    )
