"""Experiment runners: one per table/figure of the paper, plus extensions."""

from .ablation import AblationResult, run_ablation
from .common import (
    CV_FOLDS,
    LEARNING_CURVE_SIZES,
    PAPER_TABLE1,
    TRAIN_SIZE,
    future_work_models,
    paper_models,
)
from .extended_features import ExtendedFeaturesResult, run_extended_features
from .figures import FIGURE_MODELS, FigureResult, run_figure
from .future_work import FutureWorkResult, run_future_work
from .importance import ImportanceResult, run_importance
from .spec import (
    ExperimentContext,
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    available_experiments,
    register_experiment,
)
from .table1 import Table1Result, run_table1
from .transfer import TransferResult, run_transfer
from .tuning import TuningResult, run_tuning

__all__ = [
    "ExperimentContext",
    "ExperimentOutcome",
    "ExperimentRunner",
    "ExperimentSpec",
    "available_experiments",
    "register_experiment",
    "TransferResult",
    "run_transfer",
    "AblationResult",
    "run_ablation",
    "CV_FOLDS",
    "LEARNING_CURVE_SIZES",
    "PAPER_TABLE1",
    "TRAIN_SIZE",
    "future_work_models",
    "paper_models",
    "ExtendedFeaturesResult",
    "run_extended_features",
    "FIGURE_MODELS",
    "FigureResult",
    "run_figure",
    "FutureWorkResult",
    "run_future_work",
    "ImportanceResult",
    "run_importance",
    "Table1Result",
    "run_table1",
    "TuningResult",
    "run_tuning",
]
