"""Experiments: Figures 2, 3 and 4.

For each model (Fig. 2 = Linear Least Squares, Fig. 3 = k-NN, Fig. 4 = SVR)
the paper shows:

(a) the prediction of one example train/test fold at training size 50 % —
    true FDR vs predicted FDR per flip-flop, plus the per-flip-flop
    prediction error;
(b) the learning curve — train and test R² versus the fraction of data used
    for training, under 10-fold cross-validation.

This module regenerates both as data series (with CSV export) and ASCII
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..features.dataset import Dataset
from ..flow.textview import ascii_series_plot, ascii_xy_plot, series_to_csv
from ..ml.base import BaseEstimator, clone
from ..ml.model_selection import (
    LearningCurveResult,
    StratifiedRegressionKFold,
    learning_curve,
    train_test_split,
)
from .common import CV_FOLDS, LEARNING_CURVE_SIZES, TRAIN_SIZE, paper_models

__all__ = ["FigureResult", "run_figure", "FIGURE_MODELS"]

#: Figure number -> paper model name.
FIGURE_MODELS: Dict[str, str] = {
    "fig2": "Linear Least Squares",
    "fig3": "k-NN",
    "fig4": "SVR w/ RBF Kernel",
}


@dataclass
class FigureResult:
    """Data behind one paper figure (both subfigures)."""

    figure: str
    model_name: str
    # Subfigure (a): example fold prediction.
    train_true: np.ndarray = field(default_factory=lambda: np.empty(0))
    train_pred: np.ndarray = field(default_factory=lambda: np.empty(0))
    test_true: np.ndarray = field(default_factory=lambda: np.empty(0))
    test_pred: np.ndarray = field(default_factory=lambda: np.empty(0))
    # Subfigure (b): learning curve.
    curve: Optional[LearningCurveResult] = None

    @property
    def train_error(self) -> np.ndarray:
        return self.train_pred - self.train_true

    @property
    def test_error(self) -> np.ndarray:
        return self.test_pred - self.test_true

    # ----------------------------------------------------------- rendering

    def prediction_csv(self) -> str:
        """CSV of the (a) subfigure series."""
        return series_to_csv(
            {
                "train_true": self.train_true.tolist(),
                "train_pred": self.train_pred.tolist(),
                "test_true": self.test_true.tolist(),
                "test_pred": self.test_pred.tolist(),
            }
        )

    def curve_csv(self) -> str:
        """CSV of the (b) subfigure series."""
        if self.curve is None:
            return ""
        return series_to_csv(
            {
                "train_size": self.curve.train_sizes,
                "train_r2": self.curve.mean_train(),
                "test_r2": self.curve.mean_test(),
                "test_r2_std": self.curve.std_test(),
            }
        )

    def as_text(self) -> str:
        lines: List[str] = []
        index_test = list(range(len(self.test_true)))
        lines.append(
            ascii_xy_plot(
                {
                    "true": (index_test, self.test_true.tolist()),
                    "predicted": (index_test, self.test_pred.tolist()),
                },
                title=f"{self.figure}a — {self.model_name}: test-fold prediction "
                f"(training size = {TRAIN_SIZE:.0%})",
                y_range=(-0.2, 1.2),
                height=14,
            )
        )
        lines.append(
            ascii_xy_plot(
                {"error": (index_test, self.test_error.tolist())},
                title=f"{self.figure}a — model prediction error (test)",
                height=10,
            )
        )
        if self.curve is not None:
            lines.append(
                ascii_series_plot(
                    self.curve.train_sizes,
                    {
                        "train R2": self.curve.mean_train(),
                        "test R2": self.curve.mean_test(),
                    },
                    title=f"{self.figure}b — learning curve (cv = {CV_FOLDS})",
                    y_range=(-0.2, 1.05),
                    height=14,
                )
            )
        return "\n\n".join(lines)


def run_figure(
    dataset: Dataset,
    figure: str,
    cv_folds: int = CV_FOLDS,
    train_size: float = TRAIN_SIZE,
    curve_sizes: Sequence[float] = LEARNING_CURVE_SIZES,
    seed: int = 0,
    with_curve: bool = True,
) -> FigureResult:
    """Regenerate one of Figs. 2/3/4 on a labelled dataset."""
    try:
        model_name = FIGURE_MODELS[figure]
    except KeyError:
        raise KeyError(f"unknown figure {figure!r}; choose from {sorted(FIGURE_MODELS)}") from None
    model = paper_models()[model_name]

    # (a) one example split at the table's training size.
    X_train, X_test, y_train, y_test, _, _ = train_test_split(
        dataset.X, dataset.y, train_size=train_size, random_state=seed, stratify_bins=10
    )
    fitted = clone(model)
    fitted.fit(X_train, y_train)
    result = FigureResult(
        figure=figure,
        model_name=model_name,
        train_true=y_train,
        train_pred=fitted.predict(X_train),
        test_true=y_test,
        test_pred=fitted.predict(X_test),
    )

    # (b) the learning curve over training sizes.
    if with_curve:
        max_size = 1.0 - 1.0 / cv_folds  # the CV split caps usable training data
        sizes = [s for s in curve_sizes if s <= max_size + 1e-9]
        result.curve = learning_curve(
            model,
            dataset.X,
            dataset.y,
            train_sizes=sizes,
            cv=StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed),
            random_state=seed,
        )
    return result
