"""SEU→MBU fault-model transfer: do single-bit labels predict cluster labels?

The paper trains per-flip-flop FDR predictors on single-bit SEU campaigns.
The pitch — fault sensitivity is a function of netlist structure — only
carries weight if the learned mapping survives a change of *label family*:
a spatially-correlated multi-bit upset disturbs a whole placement
neighborhood, so its per-anchor FDR is a different (usually higher)
quantity than the SEU FDR of the same flip-flop.

This experiment measures that transfer directly on one circuit: every
paper model is fit on the circuit's SEU-labelled dataset and scored
against an independently generated target-model dataset (default
``mbu:size=3,radius=1,seed=0``) over the *same* flip-flops and features.
The in-circuit SEU split (the Table I protocol) is reported next to each
transfer row, so the cost of crossing label families is visible at a
glance.

Run it as ``python -m repro.experiments seu-mbu --scale mini`` or through
the unified runner (``ExperimentSpec.make("seu-mbu", scale="mini")``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data import DATASET_PRESETS
from ..faultinjection.faults import canonical_fault_model
from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.base import clone
from ..ml.metrics import all_metrics
from .common import TRAIN_SIZE, paper_models
from .spec import (
    ExperimentContext,
    ExperimentOutcome,
    ExperimentSpec,
    register_experiment,
)
from .transfer import _diagonal_metrics

__all__ = ["DEFAULT_TARGET_MODEL", "FaultTransferResult", "run_fault_transfer"]

#: Target label family of the headline experiment: a 3-bit cluster over the
#: radius-1 structural neighborhood (see ``docs/fault_models.md``).
DEFAULT_TARGET_MODEL = "mbu:size=3,radius=1,seed=0"


@dataclass
class FaultTransferResult:
    """Per-model R²/MAE of SEU-trained predictors on target-model labels."""

    circuit: str
    target_model: str
    n_samples: int
    seu_mean_fdr: float
    target_mean_fdr: float
    #: ``rows[model] = {"seu_r2", "seu_mae", "transfer_r2", "transfer_mae"}``
    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_text(self) -> str:
        headers = ["Model", "SEU R²", "SEU MAE", "→ R²", "→ MAE"]
        table_rows = [
            [
                name,
                row["seu_r2"],
                row["seu_mae"],
                row["transfer_r2"],
                row["transfer_mae"],
            ]
            for name, row in self.rows.items()
        ]
        table = format_table(
            headers,
            table_rows,
            title=(
                f"SEU → {self.target_model} transfer on {self.circuit} "
                "(SEU columns: in-circuit 50% split)"
            ),
        )
        summary = (
            f"\nlabels: {self.n_samples} flip-flops, mean FDR "
            f"{self.seu_mean_fdr:.3f} (seu) vs {self.target_mean_fdr:.3f} "
            f"({self.target_model})"
            f"\nbest transfer model: {self.best_model()} "
            f"(R² {self.rows[self.best_model()]['transfer_r2']:.3f})"
        )
        return table + summary

    def best_model(self) -> str:
        return max(self.rows, key=lambda name: self.rows[name]["transfer_r2"])

    def to_json(self) -> str:
        return json.dumps(
            {
                "circuit": self.circuit,
                "target_model": self.target_model,
                "n_samples": self.n_samples,
                "seu_mean_fdr": self.seu_mean_fdr,
                "target_mean_fdr": self.target_mean_fdr,
                "rows": self.rows,
            },
            indent=2,
        )


def run_fault_transfer(
    seu_dataset: Dataset,
    target_dataset: Dataset,
    model_names: Optional[Sequence[str]] = None,
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
) -> FaultTransferResult:
    """Fit every paper model on SEU labels, score on target-model labels.

    Both datasets must describe the same flip-flops of the same circuit
    (identical workload/feature rows; only the label campaign differs).
    The transfer cells fit on the *full* SEU dataset — the realistic use:
    the SEU campaign exists, the MBU campaign is what one hopes to skip.
    """
    if list(seu_dataset.ff_names) != list(target_dataset.ff_names):
        raise ValueError(
            "fault-model transfer needs identical flip-flop rows; got "
            f"{len(seu_dataset.ff_names)} vs {len(target_dataset.ff_names)} "
            "mismatching names"
        )
    names = list(model_names) if model_names is not None else list(paper_models())
    known = paper_models()
    result = FaultTransferResult(
        circuit=str(seu_dataset.meta.get("circuit", "?")),
        target_model=str(
            target_dataset.meta.get("fault_model", DEFAULT_TARGET_MODEL)
        ),
        n_samples=seu_dataset.n_samples,
        seu_mean_fdr=float(np.mean(seu_dataset.y)),
        target_mean_fdr=float(np.mean(target_dataset.y)),
    )
    for name in names:
        baseline = _diagonal_metrics(
            seu_dataset, name, train_size=train_size, seed=seed
        )
        model = clone(known[name])
        model.fit(seu_dataset.X, seu_dataset.y)
        transfer = all_metrics(target_dataset.y, model.predict(target_dataset.X))
        result.rows[name] = {
            "seu_r2": round(float(baseline["r2"]), 4),
            "seu_mae": round(float(baseline["mae"]), 4),
            "transfer_r2": round(float(transfer["r2"]), 4),
            "transfer_mae": round(float(transfer["mae"]), 4),
        }
    return result


@register_experiment("seu-mbu")
def _fault_transfer_protocol(
    ctx: ExperimentContext, spec: ExperimentSpec
) -> ExperimentOutcome:
    """Registry protocol: pull the SEU and target-model datasets, run."""
    target_model = canonical_fault_model(
        str(spec.option("fault_model", DEFAULT_TARGET_MODEL))
    )
    model_names: Optional[Sequence[str]] = spec.option("models")
    if model_names is not None:
        known = paper_models()
        unknown = [m for m in model_names if m not in known]
        if unknown:
            raise KeyError(
                f"unknown transfer models {unknown}; choose from {sorted(known)}"
            )
    base_spec = DATASET_PRESETS[spec.scale]
    seu_dataset = ctx.dataset(spec=base_spec)
    target_dataset = ctx.dataset(spec=replace(base_spec, fault_model=target_model))
    result = run_fault_transfer(
        seu_dataset, target_dataset, model_names=model_names, seed=spec.seed
    )
    return ExperimentOutcome(
        spec=spec,
        result=result,
        text=result.as_text(),
        exports={"fault_transfer.json": result.to_json()},
    )
