"""Extension experiment: per-feature value (paper section V).

"the value of each feature needs to be evaluated separately" — this
experiment fits the best nonlinear paper model (k-NN) on a training split
and ranks every feature by permutation importance on the held-out split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.base import clone
from ..ml.inspection import PermutationImportanceResult, permutation_importance
from ..ml.model_selection import train_test_split
from .common import TRAIN_SIZE, paper_models

__all__ = ["ImportanceResult", "run_importance"]


@dataclass
class ImportanceResult:
    """Permutation-importance ranking of the paper's feature set."""

    model_name: str
    baseline_r2: float
    result: PermutationImportanceResult = None  # type: ignore[assignment]

    def as_text(self, top: int = 15) -> str:
        rows = self.result.as_rows()[:top]
        return format_table(
            ["Feature", "R2 drop (mean)", "std"],
            rows,
            title=(
                f"Permutation importance — {self.model_name}, "
                f"held-out R2 = {self.baseline_r2:.3f}"
            ),
        )


def run_importance(
    dataset: Dataset,
    model_name: str = "k-NN",
    train_size: float = TRAIN_SIZE,
    n_repeats: int = 5,
    seed: int = 0,
) -> ImportanceResult:
    """Rank the paper's features by held-out permutation importance."""
    model = clone(paper_models()[model_name])
    X_tr, X_te, y_tr, y_te, _, _ = train_test_split(
        dataset.X, dataset.y, train_size=train_size, random_state=seed, stratify_bins=10
    )
    model.fit(X_tr, y_tr)
    result = permutation_importance(
        model,
        X_te,
        y_te,
        feature_names=dataset.feature_names,
        n_repeats=n_repeats,
        random_state=seed,
    )
    return ImportanceResult(
        model_name=model_name,
        baseline_r2=result.baseline_score,
        result=result,
    )
