"""Experiment: Table I — model comparison.

Reproduces "PERFORMANCE RESULTS FOR DIFFERENT REGRESSION MODELS (CROSS
VALIDATION = 10, TRAINING SIZE = 50 %)": MAE, MAX, RMSE, EV and R² for the
Linear Least Squares, k-NN and SVR models on the per-flip-flop FDR dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.model_selection import StratifiedRegressionKFold, cross_validate
from .common import CV_FOLDS, PAPER_TABLE1, TRAIN_SIZE, paper_models

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """Measured Table I rows plus the paper's reference values."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)
    paper: Dict[str, Dict[str, float]] = field(default_factory=lambda: dict(PAPER_TABLE1))

    def as_text(self) -> str:
        headers = ["Model", "MAE", "MAX", "RMSE", "EV", "R2"]
        table_rows: List[List[object]] = []
        for model, metrics in self.rows.items():
            table_rows.append(
                [model, metrics["mae"], metrics["max"], metrics["rmse"], metrics["ev"], metrics["r2"]]
            )
        measured = format_table(
            headers,
            table_rows,
            title="Table I — measured (cross validation = 10, training size = 50 %)",
        )
        paper_rows = [
            [m, v["mae"], v["max"], v["rmse"], v["ev"], v["r2"]] for m, v in self.paper.items()
        ]
        reference = format_table(headers, paper_rows, title="Table I — paper reference")
        return measured + "\n\n" + reference

    def shape_holds(self) -> bool:
        """The paper's qualitative claim: LLS is clearly worst; k-NN ≈ SVR.

        Checks that both nonlinear models beat the linear baseline by a wide
        R² margin and land within 0.15 R² of each other.
        """
        r2 = {m: v["r2"] for m, v in self.rows.items()}
        lls = r2["Linear Least Squares"]
        knn = r2["k-NN"]
        svr = r2["SVR w/ RBF Kernel"]
        return knn > lls + 0.1 and svr > lls + 0.1 and abs(knn - svr) < 0.15


def run_table1(
    dataset: Dataset,
    cv_folds: int = CV_FOLDS,
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
) -> Table1Result:
    """Run the Table I protocol on a labelled dataset."""
    result = Table1Result()
    splitter = StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed)
    for name, model in paper_models().items():
        outcome = cross_validate(
            model,
            dataset.X,
            dataset.y,
            cv=splitter,
            train_size=train_size,
            random_state=seed,
        )
        result.rows[name] = outcome.summary()
    return result
