"""Extension experiment: the paper's hyperparameter-tuning protocol.

Section III-A: hyperparameters are found by "first evaluat[ing] the model
with randomly selected values … (random search).  Afterwards a more detailed
grid search is performed within the region of the values obtained by the
random search."  This experiment runs that two-stage protocol for k-NN and
SVR and reports the recovered hyperparameters next to the paper's
(k = 3 / Manhattan; C = 3.5, γ = 0.055, ε = 0.025).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.model_selection import StratifiedRegressionKFold
from ..ml.neighbors import KNeighborsRegressor
from ..ml.pipeline import Pipeline
from ..ml.preprocessing import StandardScaler
from ..ml.search import Choice, LogUniform, Uniform, random_then_grid_search
from ..ml.svr import SVR

__all__ = ["TuningResult", "run_tuning"]

PAPER_HYPERPARAMETERS = {
    "k-NN": {"knn__n_neighbors": 3, "knn__metric": "manhattan"},
    "SVR w/ RBF Kernel": {"svr__C": 3.5, "svr__gamma": 0.055, "svr__epsilon": 0.025},
}


@dataclass
class TuningResult:
    """Best hyperparameters and CV scores found by random+grid search."""

    best_params: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    best_scores: Dict[str, float] = field(default_factory=dict)
    paper_params: Dict[str, Dict[str, Any]] = field(
        default_factory=lambda: dict(PAPER_HYPERPARAMETERS)
    )

    def as_text(self) -> str:
        rows = []
        for model, params in self.best_params.items():
            pretty = ", ".join(
                f"{k.split('__')[-1]}={v:.3g}" if isinstance(v, float) else f"{k.split('__')[-1]}={v}"
                for k, v in sorted(params.items())
            )
            paper = ", ".join(
                f"{k.split('__')[-1]}={v}" for k, v in sorted(self.paper_params[model].items())
            )
            rows.append([model, pretty, f"{self.best_scores[model]:.3f}", paper])
        return format_table(
            ["Model", "Found (random+grid)", "CV R2", "Paper"],
            rows,
            title="Hyperparameter search (paper section III-A protocol)",
        )


def run_tuning(
    dataset: Dataset,
    n_random: int = 12,
    cv_folds: int = 5,
    seed: int = 0,
) -> TuningResult:
    """Two-stage random+grid hyperparameter search for k-NN and SVR."""
    result = TuningResult()
    cv = StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed)

    knn = Pipeline([("scaler", StandardScaler()), ("knn", KNeighborsRegressor())])
    knn_search = random_then_grid_search(
        knn,
        {
            "knn__n_neighbors": Choice(tuple(range(1, 16))),
            "knn__metric": Choice(("manhattan", "euclidean", "chebyshev")),
            "knn__weights": Choice(("distance", "uniform")),
        },
        dataset.X,
        dataset.y,
        n_random=n_random,
        cv=cv,
        random_state=seed,
    )
    result.best_params["k-NN"] = knn_search.best_params
    result.best_scores["k-NN"] = knn_search.best_score

    svr = Pipeline([("scaler", StandardScaler()), ("svr", SVR())])
    svr_search = random_then_grid_search(
        svr,
        {
            "svr__C": LogUniform(0.1, 30.0),
            "svr__gamma": LogUniform(0.005, 1.0),
            "svr__epsilon": Uniform(0.005, 0.15),
        },
        dataset.X,
        dataset.y,
        n_random=n_random,
        cv=cv,
        random_state=seed,
    )
    result.best_params["SVR w/ RBF Kernel"] = svr_search.best_params
    result.best_scores["SVR w/ RBF Kernel"] = svr_search.best_score
    return result
