"""Extension experiment: do additional features help? (paper §V).

"Additionally, further features should be considered to improve the overall
performance of the models."  This experiment appends the four net-activity
features of :mod:`repro.features.extended` to the paper's feature set and
re-runs the Table I protocol for k-NN and SVR, reporting the R² delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..data import DatasetSpec, build_workload
from ..features.dataset import Dataset
from ..features.extended import extend_dataset
from ..flow.textview import format_table
from ..ml.model_selection import StratifiedRegressionKFold, cross_validate
from .common import CV_FOLDS, TRAIN_SIZE, paper_models

__all__ = ["ExtendedFeaturesResult", "run_extended_features"]


@dataclass
class ExtendedFeaturesResult:
    """R² with the paper feature set vs. paper + extended."""

    baseline_r2: Dict[str, float] = field(default_factory=dict)
    extended_r2: Dict[str, float] = field(default_factory=dict)

    def as_text(self) -> str:
        rows = []
        for model in self.baseline_r2:
            base = self.baseline_r2[model]
            ext = self.extended_r2[model]
            rows.append([model, base, ext, ext - base])
        return format_table(
            ["Model", "paper features R2", "+extended R2", "delta"],
            rows,
            title=(
                "Extended feature set (paper section V) — "
                f"cv = {CV_FOLDS}, training size = {TRAIN_SIZE:.0%}"
            ),
        )


def run_extended_features(
    dataset: Dataset,
    cv_folds: int = CV_FOLDS,
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
) -> ExtendedFeaturesResult:
    """Compare the paper feature set against paper + extended features.

    The dataset must carry its generation spec in ``meta['spec']`` (datasets
    from :mod:`repro.data` do), so the workload can be re-run for the
    net-level activity pass.
    """
    spec_dict = dataset.meta.get("spec")
    if not spec_dict:
        raise ValueError("dataset lacks meta['spec']; regenerate via repro.data")
    netlist, workload = build_workload(DatasetSpec(**spec_dict))
    enriched = extend_dataset(dataset, netlist, workload.testbench)

    result = ExtendedFeaturesResult()
    cv = StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed)
    for name in ("k-NN", "SVR w/ RBF Kernel"):
        model = paper_models()[name]
        base = cross_validate(
            model, dataset.X, dataset.y, cv=cv, train_size=train_size, random_state=seed
        )
        ext = cross_validate(
            model, enriched.X, enriched.y, cv=cv, train_size=train_size, random_state=seed
        )
        result.baseline_r2[name] = base.mean_test("r2")
        result.extended_r2[name] = ext.mean_test("r2")
    return result
