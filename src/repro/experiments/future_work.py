"""Extension experiment: the paper's future-work models.

Section V: "The focus for future work should lie on evaluating further
non-linear models, such as Decision Tree Regressor, Multi-Layer Perception
Neural Networks, or using boosting algorithms."  This experiment evaluates
exactly those models under the same protocol as Table I, so their rows are
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..features.dataset import Dataset
from ..flow.textview import format_table
from ..ml.model_selection import StratifiedRegressionKFold, cross_validate
from .common import CV_FOLDS, TRAIN_SIZE, future_work_models, paper_models

__all__ = ["FutureWorkResult", "run_future_work"]


@dataclass
class FutureWorkResult:
    """Table-I-style rows for the future-work models (plus k-NN baseline)."""

    rows: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_text(self) -> str:
        headers = ["Model", "MAE", "MAX", "RMSE", "EV", "R2"]
        table_rows: List[List[object]] = [
            [m, v["mae"], v["max"], v["rmse"], v["ev"], v["r2"]] for m, v in self.rows.items()
        ]
        return format_table(
            headers,
            table_rows,
            title=(
                "Future-work models (paper section V) — same protocol as Table I "
                f"(cv = {CV_FOLDS}, training size = {TRAIN_SIZE:.0%})"
            ),
        )

    def best_model(self) -> str:
        return max(self.rows, key=lambda m: self.rows[m]["r2"])


def run_future_work(
    dataset: Dataset,
    cv_folds: int = CV_FOLDS,
    train_size: float = TRAIN_SIZE,
    seed: int = 0,
    include_baseline: bool = True,
) -> FutureWorkResult:
    """Evaluate decision tree, random forest, gradient boosting and MLP."""
    result = FutureWorkResult()
    models = dict(future_work_models(random_state=seed))
    if include_baseline:
        models["k-NN (baseline)"] = paper_models()["k-NN"]
    splitter = StratifiedRegressionKFold(n_splits=cv_folds, random_state=seed)
    for name, model in models.items():
        outcome = cross_validate(
            model, dataset.X, dataset.y, cv=splitter, train_size=train_size, random_state=seed
        )
        result.rows[name] = outcome.summary()
    return result
