"""Shared experiment machinery: paper models, protocol constants.

The three Table-I models with the paper's tuned hyperparameters:

* Linear Least Squares (no hyperparameters),
* k-NN with ``k = 3`` and the Manhattan distance, inverse-distance weights,
* SVR with RBF kernel, ``C = 3.5``, ``γ = 0.055``, ``ε = 0.025``

and the future-work models (section V).  Distance/kernel models run behind a
standard scaler inside a pipeline, as they must for this mixed-scale feature
set.
"""

from __future__ import annotations

from typing import Dict, List

from ..ml.base import BaseEstimator
from ..ml.ensemble import GradientBoostingRegressor, RandomForestRegressor
from ..ml.linear import LinearLeastSquares
from ..ml.mlp import MLPRegressor
from ..ml.neighbors import KNeighborsRegressor
from ..ml.pipeline import Pipeline
from ..ml.preprocessing import StandardScaler
from ..ml.svr import SVR
from ..ml.tree import DecisionTreeRegressor

__all__ = [
    "CV_FOLDS",
    "TRAIN_SIZE",
    "LEARNING_CURVE_SIZES",
    "paper_models",
    "future_work_models",
    "PAPER_TABLE1",
]

#: The paper's protocol: "cross validation fold of 10 and training size of 50 %".
CV_FOLDS = 10
TRAIN_SIZE = 0.5
#: Training sizes swept by the learning curves (Figs. 2b/3b/4b).
LEARNING_CURVE_SIZES = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Paper Table I reference values (for EXPERIMENTS.md comparison).
PAPER_TABLE1 = {
    "Linear Least Squares": {"mae": 0.165, "max": 0.944, "rmse": 0.218, "ev": 0.520, "r2": 0.519},
    "k-NN": {"mae": 0.050, "max": 0.907, "rmse": 0.124, "ev": 0.843, "r2": 0.842},
    "SVR w/ RBF Kernel": {"mae": 0.063, "max": 0.849, "rmse": 0.124, "ev": 0.845, "r2": 0.844},
}


def paper_models() -> Dict[str, BaseEstimator]:
    """The three models of Table I with the paper's hyperparameters."""
    return {
        "Linear Least Squares": LinearLeastSquares(),
        "k-NN": Pipeline(
            [
                ("scaler", StandardScaler()),
                (
                    "knn",
                    KNeighborsRegressor(n_neighbors=3, metric="manhattan", weights="distance"),
                ),
            ]
        ),
        "SVR w/ RBF Kernel": Pipeline(
            [
                ("scaler", StandardScaler()),
                ("svr", SVR(C=3.5, gamma=0.055, epsilon=0.025, kernel="rbf")),
            ]
        ),
    }


def future_work_models(random_state: int = 0) -> Dict[str, BaseEstimator]:
    """The models the paper names as future work (section V)."""
    return {
        "Decision Tree": DecisionTreeRegressor(max_depth=12, min_samples_leaf=2),
        "Random Forest": RandomForestRegressor(
            n_estimators=60, min_samples_leaf=2, random_state=random_state
        ),
        "Gradient Boosting": GradientBoostingRegressor(
            n_estimators=150, max_depth=3, learning_rate=0.1, random_state=random_state
        ),
        "MLP": Pipeline(
            [
                ("scaler", StandardScaler()),
                (
                    "mlp",
                    MLPRegressor(
                        hidden_layer_sizes=(64, 32),
                        max_epochs=200,
                        random_state=random_state,
                    ),
                ),
            ]
        ),
    }
