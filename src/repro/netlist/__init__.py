"""Gate-level netlist substrate: cell library, data model, Verilog I/O."""

from .cells import (
    DEFAULT_LIBRARY,
    DRIVE_STRENGTHS,
    CellKind,
    CellLibrary,
    CellType,
    default_library,
)
from .core import Cell, Net, Netlist, NetlistError, NetlistStats, PinRef
from .verilog import parse_verilog, write_verilog

__all__ = [
    "DEFAULT_LIBRARY",
    "DRIVE_STRENGTHS",
    "CellKind",
    "CellLibrary",
    "CellType",
    "default_library",
    "Cell",
    "Net",
    "Netlist",
    "NetlistError",
    "NetlistStats",
    "PinRef",
    "parse_verilog",
    "write_verilog",
]
