"""Gate-level netlist data model.

A :class:`Netlist` is a flat (non-hierarchical) mapped design: a set of
primary ports, nets and standard-cell instances from a
:class:`~repro.netlist.cells.CellLibrary`.  This is the substrate everything
else in the reproduction consumes — the simulators, the fault injector and
the feature extractor all operate on this model, exactly as the paper's flow
operates on the post-synthesis gate-level netlist of the 10GE MAC.

Connectivity is stored on the nets: every net knows its single driver (a cell
output pin or a primary input) and all of its sinks (cell input pins and
primary outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .cells import DEFAULT_LIBRARY, CellKind, CellLibrary, CellType

__all__ = [
    "PinRef",
    "Net",
    "Cell",
    "Netlist",
    "NetlistError",
    "NetlistStats",
]


class NetlistError(Exception):
    """Raised for structural violations (double drivers, unknown pins, …)."""


@dataclass(frozen=True)
class PinRef:
    """Reference to one pin of one cell instance."""

    cell: str
    pin: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.cell}.{self.pin}"


@dataclass
class Net:
    """A single-bit wire.

    Attributes
    ----------
    name:
        Unique net name.  Bus bits use the ``base[idx]`` convention, which the
        feature extractor later exploits to recover bus membership.
    driver:
        The cell output pin driving the net, or ``None`` when the net is
        driven by a primary input (``is_input``) or still unconnected.
    sinks:
        Cell input pins reading the net.
    is_input / is_output:
        Whether the net is attached to a primary port.
    """

    name: str
    driver: Optional[PinRef] = None
    sinks: List[PinRef] = field(default_factory=list)
    is_input: bool = False
    is_output: bool = False

    @property
    def has_driver(self) -> bool:
        return self.driver is not None or self.is_input

    def fanout(self) -> int:
        """Number of sinks (cell pins plus the primary-output pad, if any)."""
        return len(self.sinks) + (1 if self.is_output else 0)


@dataclass
class Cell:
    """A placed standard-cell instance.

    Attributes
    ----------
    name:
        Unique instance name (hierarchical paths flattened with ``/``).
    ctype:
        The library archetype.
    drive:
        Drive strength (1, 2 or 4 for X1/X2/X4).
    connections:
        Mapping of pin name to net name.  All pins must be connected before
        the netlist validates.
    """

    name: str
    ctype: CellType
    drive: int = 1
    connections: Dict[str, str] = field(default_factory=dict)

    @property
    def type_name(self) -> str:
        return f"{self.ctype.name}_X{self.drive}"

    @property
    def is_sequential(self) -> bool:
        return self.ctype.is_sequential

    @property
    def is_tie(self) -> bool:
        return self.ctype.is_tie

    def input_nets(self) -> List[str]:
        """Nets connected to input pins, in pin order (skips unconnected)."""
        return [self.connections[p] for p in self.ctype.inputs if p in self.connections]

    def output_net(self) -> str:
        try:
            return self.connections[self.ctype.output]
        except KeyError as exc:
            raise NetlistError(f"cell {self.name!r} output is unconnected") from exc

    def data_input_nets(self) -> List[str]:
        """Input nets excluding the clock pin (for sequential cells)."""
        return [
            self.connections[p]
            for p in self.ctype.inputs
            if p != "CK" and p in self.connections
        ]


@dataclass(frozen=True)
class NetlistStats:
    """Summary statistics of a netlist (mirrors a synthesis report)."""

    n_cells: int
    n_combinational: int
    n_sequential: int
    n_tie: int
    n_nets: int
    n_inputs: int
    n_outputs: int
    total_area: float
    max_logic_depth: int


class Netlist:
    """A flat gate-level netlist.

    Parameters
    ----------
    name:
        Design name.
    library:
        Cell library the instances are drawn from; defaults to the bundled
        NanGate-like library.
    """

    def __init__(self, name: str, library: CellLibrary | None = None) -> None:
        self.name = name
        self.library = library if library is not None else DEFAULT_LIBRARY
        self.nets: Dict[str, Net] = {}
        self.cells: Dict[str, Cell] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []
        self.clocks: List[str] = []
        self._topo_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------ nets

    def add_net(self, name: str) -> Net:
        """Create (or return the existing) net called *name*."""
        net = self.nets.get(name)
        if net is None:
            net = Net(name=name)
            self.nets[name] = net
            self._topo_cache = None
        return net

    def add_input(self, name: str, *, is_clock: bool = False) -> Net:
        """Declare a primary input (optionally marking it as a clock root)."""
        net = self.add_net(name)
        if net.driver is not None:
            raise NetlistError(f"primary input {name!r} already driven by {net.driver}")
        if not net.is_input:
            net.is_input = True
            self.inputs.append(name)
        if is_clock and name not in self.clocks:
            self.clocks.append(name)
        return net

    def add_output(self, name: str) -> Net:
        """Declare a primary output attached to net *name*."""
        net = self.add_net(name)
        if not net.is_output:
            net.is_output = True
            self.outputs.append(name)
        return net

    # ----------------------------------------------------------------- cells

    def add_cell(
        self,
        name: str,
        type_name: str,
        connections: Dict[str, str],
        *,
        drive: int = 1,
    ) -> Cell:
        """Instantiate a library cell.

        ``connections`` maps pin names to net names; nets are created on
        demand.  Driving an already-driven net raises :class:`NetlistError`.
        """
        if name in self.cells:
            raise NetlistError(f"duplicate cell instance {name!r}")
        ctype = self.library.get(type_name)
        if ctype is None:
            base, drive_from_name = self.library.parse_full_name(type_name)
            ctype = self.library[base]
            drive = drive_from_name
        if drive not in self.library.drive_strengths:
            raise NetlistError(f"cell {name!r}: unsupported drive X{drive}")
        cell = Cell(name=name, ctype=ctype, drive=drive)
        valid_pins = set(ctype.inputs) | set(ctype.outputs)
        for pin, net_name in connections.items():
            if pin not in valid_pins:
                raise NetlistError(f"cell {name!r}: unknown pin {pin!r} on {ctype.name}")
            net = self.add_net(net_name)
            if pin in ctype.outputs:
                if net.driver is not None:
                    raise NetlistError(
                        f"net {net_name!r} has two drivers: {net.driver} and {name}.{pin}"
                    )
                if net.is_input:
                    raise NetlistError(
                        f"net {net_name!r} is a primary input but driven by {name}.{pin}"
                    )
                net.driver = PinRef(name, pin)
            else:
                net.sinks.append(PinRef(name, pin))
            cell.connections[pin] = net_name
        self.cells[name] = cell
        self._topo_cache = None
        return cell

    # ------------------------------------------------------------ inspection

    def flip_flops(self) -> List[Cell]:
        """All sequential cell instances, in deterministic (insertion) order."""
        return [c for c in self.cells.values() if c.is_sequential]

    def flip_flop_names(self) -> List[str]:
        return [c.name for c in self.cells.values() if c.is_sequential]

    def combinational_cells(self) -> List[Cell]:
        return [
            c
            for c in self.cells.values()
            if c.ctype.kind in (CellKind.COMBINATIONAL, CellKind.TIE)
        ]

    def net_driver_cell(self, net_name: str) -> Optional[Cell]:
        """The cell driving *net_name*, or ``None`` for primary inputs."""
        driver = self.nets[net_name].driver
        return self.cells[driver.cell] if driver is not None else None

    def __contains__(self, cell_name: str) -> bool:
        return cell_name in self.cells

    def __len__(self) -> int:
        return len(self.cells)

    # -------------------------------------------------------------- ordering

    def topological_comb_order(self) -> List[str]:
        """Combinational cells sorted so every cell follows its comb drivers.

        Flip-flop outputs and primary inputs are sources; a cycle through
        combinational logic raises :class:`NetlistError` (such netlists are
        not simulatable by the cycle-based engines).
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        comb = self.combinational_cells()
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {c.name: [] for c in comb}
        for cell in comb:
            count = 0
            for net_name in cell.input_nets():
                net = self.nets[net_name]
                if net.driver is None:
                    continue
                driver_cell = self.cells[net.driver.cell]
                if driver_cell.is_sequential:
                    continue
                dependents[driver_cell.name].append(cell.name)
                count += 1
            indegree[cell.name] = count
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(comb):
            stuck = sorted(name for name, deg in indegree.items() if deg > 0)
            raise NetlistError(
                f"combinational cycle involving {len(stuck)} cells, e.g. {stuck[:5]}"
            )
        self._topo_cache = order
        return list(order)

    def logic_depth(self) -> Dict[str, int]:
        """Per-net combinational depth (number of gates from a source)."""
        depth: Dict[str, int] = {}
        for name, net in self.nets.items():
            if net.is_input or (
                net.driver is not None and self.cells[net.driver.cell].is_sequential
            ):
                depth[name] = 0
        for cell_name in self.topological_comb_order():
            cell = self.cells[cell_name]
            in_depth = max((depth.get(n, 0) for n in cell.input_nets()), default=0)
            depth[cell.output_net()] = in_depth + 1
        return depth

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check structural sanity; raise :class:`NetlistError` on violation.

        Verifies that every net has exactly one driver, every cell pin is
        connected, every primary output is driven, and the combinational
        logic is acyclic.
        """
        for name, net in self.nets.items():
            if not net.has_driver and net.fanout() > 0:
                raise NetlistError(f"net {name!r} has sinks but no driver")
        for cell in self.cells.values():
            for pin in cell.ctype.inputs + cell.ctype.outputs:
                if pin not in cell.connections:
                    raise NetlistError(f"cell {cell.name!r} pin {pin!r} unconnected")
        for out in self.outputs:
            if not self.nets[out].has_driver:
                raise NetlistError(f"primary output {out!r} undriven")
        for ff in self.flip_flops():
            ck = ff.connections.get("CK")
            if ck is None:
                raise NetlistError(f"flip-flop {ff.name!r} has no clock")
        self.topological_comb_order()

    # ------------------------------------------------------------------ misc

    def stats(self) -> NetlistStats:
        """Synthesis-report-style summary of the design."""
        comb = seq = tie = 0
        area = 0.0
        for cell in self.cells.values():
            if cell.is_sequential:
                seq += 1
            elif cell.is_tie:
                tie += 1
            else:
                comb += 1
            area += cell.ctype.area * cell.drive
        depth = self.logic_depth()
        return NetlistStats(
            n_cells=len(self.cells),
            n_combinational=comb,
            n_sequential=seq,
            n_tie=tie,
            n_nets=len(self.nets),
            n_inputs=len(self.inputs),
            n_outputs=len(self.outputs),
            total_area=area,
            max_logic_depth=max(depth.values(), default=0),
        )

    def iter_cells(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Netlist {self.name!r}: {len(self.cells)} cells, "
            f"{len(self.nets)} nets, {len(self.flip_flops())} FFs>"
        )
