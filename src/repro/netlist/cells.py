"""NanGate FreePDK45-like standard-cell library.

The paper synthesizes the 10GE MAC core onto the NanGate FreePDK45 Open Cell
Library.  This module provides the equivalent in-repo substrate: a small but
realistic standard-cell library with combinational gates, sequential elements
and tie cells, each available in several drive strengths.

Logic functions are expressed as *bit-parallel* operations on Python integers:
every bit lane of the integer is an independent simulation run.  ``mask``
selects the active lanes (``mask = (1 << n_lanes) - 1``) and is required to
keep Python's infinite-precision complement (``~``) bounded.

Example
-------
>>> lib = default_library()
>>> nand2 = lib["NAND2"]
>>> nand2.evaluate([0b1100, 0b1010], mask=0b1111)
7
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

__all__ = [
    "CellKind",
    "CellType",
    "CellLibrary",
    "default_library",
    "DRIVE_STRENGTHS",
]

#: Drive strengths available for every cell, mirroring NanGate's X1/X2/X4.
DRIVE_STRENGTHS: Tuple[int, ...] = (1, 2, 4)


class CellKind:
    """Enumeration of cell categories used by netlist tooling."""

    COMBINATIONAL = "combinational"
    SEQUENTIAL = "sequential"
    TIE = "tie"


LogicFunction = Callable[[Sequence[int], int], int]


def _fn_inv(inputs: Sequence[int], mask: int) -> int:
    return ~inputs[0] & mask


def _fn_buf(inputs: Sequence[int], mask: int) -> int:
    return inputs[0] & mask


def _fn_and(inputs: Sequence[int], mask: int) -> int:
    # No in-place ops on `mask`: lane vectors may be mutable ndarray blocks
    # (see repro.sim.vectorized), and `value &= term` would corrupt the
    # caller's shared mask.
    value = mask
    for term in inputs:
        value = value & term
    return value


def _fn_nand(inputs: Sequence[int], mask: int) -> int:
    return ~_fn_and(inputs, mask) & mask


def _fn_or(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for term in inputs:
        value |= term
    return value & mask


def _fn_nor(inputs: Sequence[int], mask: int) -> int:
    return ~_fn_or(inputs, mask) & mask


def _fn_xor(inputs: Sequence[int], mask: int) -> int:
    value = 0
    for term in inputs:
        value ^= term
    return value & mask


def _fn_xnor(inputs: Sequence[int], mask: int) -> int:
    return ~_fn_xor(inputs, mask) & mask


def _fn_mux2(inputs: Sequence[int], mask: int) -> int:
    # MUX2(A, B, S) = S ? B : A
    a, b, s = inputs
    return ((a & ~s) | (b & s)) & mask


def _fn_aoi21(inputs: Sequence[int], mask: int) -> int:
    # AOI21(A, B, C) = !((A & B) | C)
    a, b, c = inputs
    return ~((a & b) | c) & mask


def _fn_aoi22(inputs: Sequence[int], mask: int) -> int:
    a, b, c, d = inputs
    return ~((a & b) | (c & d)) & mask


def _fn_oai21(inputs: Sequence[int], mask: int) -> int:
    # OAI21(A, B, C) = !((A | B) & C)
    a, b, c = inputs
    return ~((a | b) & c) & mask


def _fn_oai22(inputs: Sequence[int], mask: int) -> int:
    a, b, c, d = inputs
    return ~((a | b) & (c | d)) & mask


def _fn_tie0(inputs: Sequence[int], mask: int) -> int:
    return 0


def _fn_tie1(inputs: Sequence[int], mask: int) -> int:
    return mask


@dataclass(frozen=True)
class CellType:
    """A standard-cell archetype (e.g. ``NAND2``), drive-strength agnostic.

    Attributes
    ----------
    name:
        Library name of the cell, such as ``"NAND2"``.
    inputs:
        Ordered input pin names.
    outputs:
        Ordered output pin names (all library cells are single-output).
    kind:
        One of :class:`CellKind`.
    function:
        Bit-parallel logic function for combinational and tie cells; ``None``
        for sequential cells whose behaviour lives in the simulator.
    area:
        Relative cell area at drive strength X1, loosely based on NanGate.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    kind: str = CellKind.COMBINATIONAL
    function: LogicFunction | None = None
    area: float = 1.0

    def evaluate(self, input_values: Sequence[int], mask: int) -> int:
        """Evaluate the cell's logic function over bit-parallel lanes."""
        if self.function is None:
            raise ValueError(f"cell type {self.name!r} has no combinational function")
        if len(input_values) != len(self.inputs):
            raise ValueError(
                f"cell type {self.name!r} expects {len(self.inputs)} inputs, "
                f"got {len(input_values)}"
            )
        return self.function(input_values, mask)

    @property
    def output(self) -> str:
        """Name of the single output pin."""
        return self.outputs[0]

    @property
    def is_sequential(self) -> bool:
        return self.kind == CellKind.SEQUENTIAL

    @property
    def is_tie(self) -> bool:
        return self.kind == CellKind.TIE


@dataclass
class CellLibrary:
    """A named collection of :class:`CellType` entries.

    The library behaves like a read-only mapping from type name to
    :class:`CellType` and additionally knows which drive strengths are legal.
    """

    name: str
    cell_types: Dict[str, CellType] = field(default_factory=dict)
    drive_strengths: Tuple[int, ...] = DRIVE_STRENGTHS

    def add(self, cell_type: CellType) -> None:
        if cell_type.name in self.cell_types:
            raise ValueError(f"duplicate cell type {cell_type.name!r}")
        self.cell_types[cell_type.name] = cell_type

    def __getitem__(self, name: str) -> CellType:
        return self.cell_types[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cell_types

    def __iter__(self):
        return iter(self.cell_types.values())

    def __len__(self) -> int:
        return len(self.cell_types)

    def get(self, name: str, default: CellType | None = None) -> CellType | None:
        return self.cell_types.get(name, default)

    def sequential_types(self) -> Tuple[CellType, ...]:
        return tuple(ct for ct in self if ct.is_sequential)

    def combinational_types(self) -> Tuple[CellType, ...]:
        return tuple(ct for ct in self if ct.kind == CellKind.COMBINATIONAL)

    def full_name(self, type_name: str, drive: int) -> str:
        """Return the NanGate-style instance type name, e.g. ``NAND2_X2``."""
        if drive not in self.drive_strengths:
            raise ValueError(f"unsupported drive strength X{drive}")
        return f"{type_name}_X{drive}"

    def parse_full_name(self, full_name: str) -> Tuple[str, int]:
        """Split ``NAND2_X2`` into ``("NAND2", 2)``.

        Names without a drive suffix default to drive strength 1.
        """
        base, sep, suffix = full_name.rpartition("_X")
        if sep and suffix.isdigit() and base in self.cell_types:
            return base, int(suffix)
        if full_name in self.cell_types:
            return full_name, 1
        raise KeyError(f"unknown cell type {full_name!r}")


def _combinational(name: str, pins: Sequence[str], fn: LogicFunction, area: float) -> CellType:
    return CellType(
        name=name,
        inputs=tuple(pins),
        outputs=("Z",),
        kind=CellKind.COMBINATIONAL,
        function=fn,
        area=area,
    )


def default_library() -> CellLibrary:
    """Build the default NanGate FreePDK45-like library.

    Sequential cells:

    ``DFF``
        Positive-edge D flip-flop; pins ``D``, ``CK`` -> ``Q``.
    ``DFFR``
        D flip-flop with synchronous active-low reset; pins ``D``, ``RN``,
        ``CK`` -> ``Q``.  (NanGate's reset is asynchronous; under the
        cycle-based simulators used here the distinction is unobservable
        because reset is only toggled on clock boundaries.)
    """
    lib = CellLibrary(name="freepdk45ish")

    lib.add(_combinational("INV", ("A",), _fn_inv, area=0.53))
    lib.add(_combinational("BUF", ("A",), _fn_buf, area=0.80))
    for width in (2, 3, 4):
        pins = tuple("ABCD"[:width])
        scale = 0.4 * width
        lib.add(_combinational(f"AND{width}", pins, _fn_and, area=0.8 + scale))
        lib.add(_combinational(f"NAND{width}", pins, _fn_nand, area=0.5 + scale))
        lib.add(_combinational(f"OR{width}", pins, _fn_or, area=0.8 + scale))
        lib.add(_combinational(f"NOR{width}", pins, _fn_nor, area=0.5 + scale))
    lib.add(_combinational("XOR2", ("A", "B"), _fn_xor, area=1.6))
    lib.add(_combinational("XNOR2", ("A", "B"), _fn_xnor, area=1.6))
    lib.add(_combinational("MUX2", ("A", "B", "S"), _fn_mux2, area=1.9))
    lib.add(_combinational("AOI21", ("A", "B", "C"), _fn_aoi21, area=1.1))
    lib.add(_combinational("AOI22", ("A", "B", "C", "D"), _fn_aoi22, area=1.3))
    lib.add(_combinational("OAI21", ("A", "B", "C"), _fn_oai21, area=1.1))
    lib.add(_combinational("OAI22", ("A", "B", "C", "D"), _fn_oai22, area=1.3))

    lib.add(
        CellType(
            name="TIE0",
            inputs=(),
            outputs=("Z",),
            kind=CellKind.TIE,
            function=_fn_tie0,
            area=0.3,
        )
    )
    lib.add(
        CellType(
            name="TIE1",
            inputs=(),
            outputs=("Z",),
            kind=CellKind.TIE,
            function=_fn_tie1,
            area=0.3,
        )
    )

    lib.add(
        CellType(
            name="DFF",
            inputs=("D", "CK"),
            outputs=("Q",),
            kind=CellKind.SEQUENTIAL,
            function=None,
            area=4.5,
        )
    )
    lib.add(
        CellType(
            name="DFFR",
            inputs=("D", "RN", "CK"),
            outputs=("Q",),
            kind=CellKind.SEQUENTIAL,
            function=None,
            area=5.2,
        )
    )
    return lib


#: Module-level singleton used by most of the code base.
DEFAULT_LIBRARY = default_library()
