"""Build-time levelization of a netlist into topologically ordered partitions.

The cycle simulators evaluate every combinational gate every cycle.  For
fault simulation that is usually far more work than necessary: a faulty run
deviates from the golden trajectory only inside the *cone of divergence* —
the logic transitively fed by flip-flops (or reactive loopback inputs) whose
value currently differs from golden.  To skip the rest of the circuit
soundly, the evaluation order must be cut into units whose dependencies are
known *at build time*:

* the combinational cells are sorted by logic level (every cell's fan-in
  lives at a strictly smaller level) and chunked into **partitions** of
  roughly ``target_cells`` cells.  Any chunking of the level-sorted order is
  topologically valid, so each partition can be compiled into its own
  evaluation callable (see :func:`repro.sim.compiled.build_eval_source`);
* every partition carries the **transitive source masks** of its cells: which
  flip-flop outputs and which primary inputs can influence any net the
  partition computes.  At run time, a partition whose sources carry no
  diverging lane provably computes golden values and can be skipped;
* every partition carries its **predecessor closure**: the set of partitions
  that must have been evaluated for its own inputs to be current.  Consumers
  (flip-flop D/RN pins, failure-criterion nets, loopback taps) turn their
  divergence state into a "need set" by OR-ing the closures of the
  partitions that drive them.

The module is pure netlist analysis — it knows nothing about lanes, golden
traces or criteria.  :mod:`repro.faultinjection.scheduler` combines these
masks with the injector's divergence frontier to gate evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Netlist

__all__ = [
    "Partition",
    "LevelizedDesign",
    "levelize",
    "ff_spread_masks",
    "source_masks",
    "sink_masks",
]

#: Default partition size.  Small partitions gate more precisely but cost one
#: extra dispatch per partition per cycle; ~100 cells keeps dispatch below a
#: percent of evaluation cost on CPython while still splitting the xgmac
#: netlist into ~50 independently skippable units.
DEFAULT_TARGET_CELLS = 96


@dataclass(frozen=True)
class Partition:
    """One topologically closed chunk of the combinational logic.

    Attributes
    ----------
    index:
        Position in evaluation order (partition *i* only reads nets produced
        by partitions ``< i``, flip-flop outputs and primary inputs).
    cells:
        Member cell names in valid intra-partition evaluation order.
    ff_mask / input_mask:
        Transitive sources: bit *i* of ``ff_mask`` is set when flip-flop *i*
        (``netlist.flip_flops()`` order) can influence a net this partition
        computes; ``input_mask`` likewise over ``netlist.inputs``.
    closure_mask:
        This partition and all transitive predecessors as a bitmask over
        partition indices — the evaluation set needed to make every net of
        this partition current.
    """

    index: int
    cells: Tuple[str, ...]
    ff_mask: int
    input_mask: int
    closure_mask: int


@dataclass
class LevelizedDesign:
    """Partitioning of one netlist plus per-net source/producer maps.

    ``net_partition`` maps a combinational-cell-driven net to the partition
    that computes it; flip-flop outputs and primary inputs are absent (their
    values are maintained by the tick/stimulus machinery, never by a
    partition).  ``net_ff_mask`` / ``net_input_mask`` give every net's
    transitive sources in the same bit order as :class:`Partition`.
    """

    netlist: Netlist
    partitions: List[Partition]
    net_partition: Dict[str, int]
    net_ff_mask: Dict[str, int]
    net_input_mask: Dict[str, int]

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def source_masks(self, net: str) -> Tuple[int, int]:
        """``(ff_mask, input_mask)`` of the transitive sources of *net*."""
        return self.net_ff_mask.get(net, 0), self.net_input_mask.get(net, 0)

    def closure_of_net(self, net: str) -> int:
        """Partitions that must be evaluated for *net* to be current.

        Zero for nets driven by a flip-flop or primary input — those are
        always current.
        """
        part = self.net_partition.get(net)
        if part is None:
            return 0
        return self.partitions[part].closure_mask


def source_masks(netlist: Netlist) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Transitive *source* masks per net: ``(net_ff_mask, net_input_mask)``.

    Bit *i* of ``net_ff_mask[n]`` is set when flip-flop *i*
    (``netlist.flip_flops()`` order) can influence net *n* through
    combinational logic only; ``net_input_mask`` likewise over
    ``netlist.inputs``.  Seeded at the sequential/input roots and propagated
    in topological order — any topological order is valid, so this is the
    partition-free core that both :func:`levelize` and the vectorized
    feature extractor build on.
    """
    ff_index = {ff.name: i for i, ff in enumerate(netlist.flip_flops())}
    input_index = {name: i for i, name in enumerate(netlist.inputs)}

    net_ff_mask: Dict[str, int] = {}
    net_input_mask: Dict[str, int] = {}
    for name, net in netlist.nets.items():
        if net.is_input:
            net_input_mask[name] = 1 << input_index[name]
        if net.driver is not None:
            cell = netlist.cells[net.driver.cell]
            if cell.is_sequential:
                net_ff_mask[name] = 1 << ff_index[cell.name]

    for cell_name in netlist.topological_comb_order():
        cell = netlist.cells[cell_name]
        fm = im = 0
        for in_net in cell.input_nets():
            fm |= net_ff_mask.get(in_net, 0)
            im |= net_input_mask.get(in_net, 0)
        out = cell.output_net()
        net_ff_mask[out] = fm
        net_input_mask[out] = im
    return net_ff_mask, net_input_mask


def levelize(
    netlist: Netlist, target_cells: int = DEFAULT_TARGET_CELLS
) -> LevelizedDesign:
    """Partition *netlist*'s combinational logic into level-ordered chunks.

    Cells are stably sorted by logic level (topological-order ties), so any
    contiguous chunking respects dependencies: a cell at level *L* reads only
    nets produced at levels ``< L`` (or flip-flop/primary-input sources).
    """
    if target_cells < 1:
        raise ValueError("target_cells must be >= 1")
    order = netlist.topological_comb_order()
    depth = netlist.logic_depth()

    net_ff_mask, net_input_mask = source_masks(netlist)

    # Stable level-major order: sort the topological order by level.
    position = {name: i for i, name in enumerate(order)}
    levelized = sorted(order, key=lambda c: (depth[netlist.cells[c].output_net()], position[c]))

    # Chunk into partitions and resolve producer partitions per net.
    chunks: List[List[str]] = [
        levelized[i : i + target_cells] for i in range(0, len(levelized), target_cells)
    ] or []
    net_partition: Dict[str, int] = {}
    for index, cells in enumerate(chunks):
        for cell_name in cells:
            net_partition[netlist.cells[cell_name].output_net()] = index

    partitions: List[Partition] = []
    for index, cells in enumerate(chunks):
        fm = im = 0
        direct = 0
        for cell_name in cells:
            cell = netlist.cells[cell_name]
            out = cell.output_net()
            fm |= net_ff_mask.get(out, 0)
            im |= net_input_mask.get(out, 0)
            for in_net in cell.input_nets():
                producer = net_partition.get(in_net)
                if producer is not None and producer != index:
                    direct |= 1 << producer
        closure = direct | (1 << index)
        # Predecessors are strictly earlier, so their closures are final.
        remaining = direct
        while remaining:
            low = remaining & -remaining
            closure |= partitions[low.bit_length() - 1].closure_mask
            remaining ^= low
        partitions.append(
            Partition(
                index=index,
                cells=tuple(cells),
                ff_mask=fm,
                input_mask=im,
                closure_mask=closure,
            )
        )

    return LevelizedDesign(
        netlist=netlist,
        partitions=partitions,
        net_partition=net_partition,
        net_ff_mask=net_ff_mask,
        net_input_mask=net_input_mask,
    )


def sink_masks(netlist: Netlist) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Transitive *sink* masks per net: ``(net_ff_sink_mask, net_output_mask)``.

    The mirror image of the source masks :func:`levelize` computes: bit *i*
    of ``net_ff_sink_mask[n]`` is set when net *n* can influence the data
    input (D/RN — clock pins excluded) of flip-flop *i* through combinational
    logic only; ``net_output_mask`` likewise over ``netlist.outputs``.  These
    are the building blocks of the vectorized feature extractor: a
    combinational cell lies in flip-flop *i*'s input cone exactly when bit
    *i* is set in the sink mask of the cell's output net.
    """
    ff_index = {ff.name: i for i, ff in enumerate(netlist.flip_flops())}
    out_index = {name: i for i, name in enumerate(netlist.outputs)}
    cell_out = {name: cell.output_net() for name, cell in netlist.cells.items()}
    ff_sink: Dict[str, int] = {}
    out_mask: Dict[str, int] = {}

    def finalize(net_name: str) -> None:
        net = netlist.nets[net_name]
        fm = 0
        om = 1 << out_index[net_name] if net.is_output else 0
        for sink in net.sinks:
            cell = netlist.cells[sink.cell]
            if cell.is_sequential:
                if sink.pin != "CK":
                    fm |= 1 << ff_index[cell.name]
            else:
                sink_out = cell_out[sink.cell]
                fm |= ff_sink.get(sink_out, 0)
                om |= out_mask.get(sink_out, 0)
        ff_sink[net_name] = fm
        out_mask[net_name] = om

    # Combinational outputs in reverse topological order: every comb sink's
    # own output mask is final before its input nets are visited.
    for cell_name in reversed(netlist.topological_comb_order()):
        finalize(cell_out[cell_name])
    # Source nets (flip-flop outputs, primary inputs) only read finalized
    # comb masks, so any order works.
    for net_name in netlist.nets:
        if net_name not in ff_sink:
            finalize(net_name)
    return ff_sink, out_mask


def ff_spread_masks(netlist: Netlist, design: Optional[LevelizedDesign] = None) -> List[int]:
    """One-tick divergence adjacency between flip-flops.

    ``masks[i]`` has bit *j* set when flip-flop *j* can become diverging one
    clock edge after flip-flop *i* diverged — i.e. *i*'s Q lies in the
    combinational fan-in cone of *j*'s D or RN pin.  Used to expand the
    divergence frontier conservatively between exact checks.
    """
    if design is None:
        design = levelize(netlist)
    flip_flops = netlist.flip_flops()
    masks = [0] * len(flip_flops)
    for j, ff in enumerate(flip_flops):
        cone = 0
        for pin in ("D", "RN"):
            net = ff.connections.get(pin)
            if net is not None:
                cone |= design.net_ff_mask.get(net, 0)
        target = 1 << j
        while cone:
            low = cone & -cone
            masks[low.bit_length() - 1] |= target
            cone ^= low
    return masks
