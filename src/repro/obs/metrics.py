"""Dependency-free metrics primitives with mergeable snapshots.

A :class:`MetricsRegistry` owns named instruments — :class:`Counter`,
:class:`Gauge`, :class:`Histogram` and :class:`Timer` — and can serialize
the whole set into a :class:`MetricsSnapshot`: a plain-JSON payload that
merges with other snapshots.  Merging is the backbone of multi-process
telemetry (the same pattern the campaign engine uses for its per-shard
counter accumulator): worker processes record into their own registry,
return ``registry.snapshot()`` with the shard payload, and the executor
absorbs every snapshot into its live registry.

Merge semantics are chosen so that snapshot merging is **associative and
commutative** with the empty snapshot as identity (property-tested in
``tests/test_obs.py``):

* counters add;
* gauges carry ``(sum, count, min, max)`` of every ``set()`` call — the
  merged *value* is the observation mean, and the extremes survive;
* histograms (and timers, which are histograms over seconds) carry
  ``(count, sum, min, max)`` plus power-of-two magnitude buckets, which
  add bucket-wise.

Nothing here imports anything outside the standard library, so every layer
of the engine can record metrics without dependency concerns.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "MetricsSnapshot",
]


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase; use a Gauge for deltas")
        self.value += n

    def to_payload(self) -> int:
        return self.value


class Gauge:
    """Point-in-time observation with mergeable aggregates.

    ``value`` is the most recent ``set()`` in *this* process; the snapshot
    payload carries ``(sum, count, min, max)`` so merged gauges report the
    mean of every observation across processes (last-write-wins would not
    be commutative).
    """

    __slots__ = ("name", "value", "sum", "count", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_payload(self) -> Dict[str, float]:
        return {
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


def _bucket_of(value: float) -> str:
    """Power-of-two magnitude bucket key for *value* (JSON-safe string)."""
    if value <= 0.0:
        return "0"
    return str(math.frexp(value)[1])  # exponent e with 0.5 <= m < 1, v = m*2^e


class Histogram:
    """Distribution summary: count/sum/min/max + log2 magnitude buckets."""

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        key = _bucket_of(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }


class Timer(Histogram):
    """A histogram over wall-clock seconds, with a context-manager helper."""

    def time(self) -> "_TimerContext":
        return _TimerContext(self)


class _TimerContext:
    __slots__ = ("timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self.timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        self.timer.observe(time.perf_counter() - self._start)


def _merge_gauge(a: Dict, b: Dict) -> Dict:
    lo = [v for v in (a.get("min"), b.get("min")) if v is not None]
    hi = [v for v in (a.get("max"), b.get("max")) if v is not None]
    return {
        "sum": a.get("sum", 0.0) + b.get("sum", 0.0),
        "count": a.get("count", 0) + b.get("count", 0),
        "min": min(lo) if lo else None,
        "max": max(hi) if hi else None,
    }


def _merge_hist(a: Dict, b: Dict) -> Dict:
    merged = _merge_gauge(a, b)
    buckets = dict(a.get("buckets", {}))
    for key, n in b.get("buckets", {}).items():
        buckets[key] = buckets.get(key, 0) + n
    merged["buckets"] = buckets
    return merged


class MetricsSnapshot:
    """Immutable-ish, mergeable, JSON-serializable registry state."""

    def __init__(self, payload: Optional[Dict] = None) -> None:
        payload = payload or {}
        self.counters: Dict[str, int] = dict(payload.get("counters", {}))
        self.gauges: Dict[str, Dict] = {
            k: dict(v) for k, v in payload.get("gauges", {}).items()
        }
        self.hists: Dict[str, Dict] = {
            k: _copy_hist(v) for k, v in payload.get("hists", {}).items()
        }

    # ------------------------------------------------------------- identity

    def to_payload(self) -> Dict:
        return {
            "counters": dict(self.counters),
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "hists": {k: _copy_hist(v) for k, v in self.hists.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "MetricsSnapshot":
        return cls(payload)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.hists)

    # ---------------------------------------------------------------- merge

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot combining *self* and *other* (either order)."""
        out = MetricsSnapshot(self.to_payload())
        for name, value in other.counters.items():
            out.counters[name] = out.counters.get(name, 0) + value
        for name, payload in other.gauges.items():
            out.gauges[name] = _merge_gauge(out.gauges.get(name, {}), payload)
        for name, payload in other.hists.items():
            out.hists[name] = _merge_hist(out.hists.get(name, {}), payload)
        return out

    def gauge_mean(self, name: str) -> float:
        g = self.gauges.get(name, {})
        return g["sum"] / g["count"] if g.get("count") else 0.0


def _copy_hist(payload: Dict) -> Dict:
    out = dict(payload)
    out["buckets"] = dict(payload.get("buckets", {}))
    return out


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able at any time."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        # isinstance, not exact type: a Timer satisfies histogram() lookups
        # (it is one), which merged snapshots rely on — absorbed histogram
        # payloads materialize as Timers so later timer() calls still work.
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(sorted(self._instruments.items()))

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> MetricsSnapshot:
        """The registry's current state as a mergeable snapshot."""
        snap = MetricsSnapshot()
        for name, instrument in self._instruments.items():
            if isinstance(instrument, Counter):
                if instrument.value:
                    snap.counters[name] = instrument.value
            elif isinstance(instrument, (Timer, Histogram)):
                if instrument.count:
                    snap.hists[name] = instrument.to_payload()
            elif isinstance(instrument, Gauge):
                if instrument.count:
                    snap.gauges[name] = instrument.to_payload()
        return snap

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        """Merge *snapshot* (e.g. from a worker process) into the live
        instruments, preserving instrument types."""
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, payload in snapshot.gauges.items():
            gauge = self.gauge(name)
            merged = _merge_gauge(gauge.to_payload(), payload)
            gauge.sum = merged["sum"]
            gauge.count = merged["count"]
            gauge.min = merged["min"]
            gauge.max = merged["max"]
            gauge.value = gauge.mean()
        for name, payload in snapshot.hists.items():
            hist = self._get(name, Timer) if name not in self._instruments else self._instruments[name]
            if not isinstance(hist, Histogram):
                raise TypeError(f"metric {name!r} is not a histogram")
            merged = _merge_hist(hist.to_payload(), payload)
            hist.count = merged["count"]
            hist.sum = merged["sum"]
            hist.min = merged["min"]
            hist.max = merged["max"]
            hist.buckets = merged["buckets"]
