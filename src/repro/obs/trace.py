"""Span-based tracing of the implicit pipeline phases.

The engine's end-to-end flow has always had phases — synthesize → golden
trace → campaign → features → dataset → train → report — but they only
existed as code structure.  :class:`Tracer` makes them explicit: a
``with tracer.span("campaign", circuit="xgmac"):`` block

* emits a ``span_begin`` / ``span_end`` event pair (with a stable span id,
  the parent span id, the attributes, and the wall-clock duration) to the
  owning telemetry's sinks, and
* records the duration into the metrics registry as the
  ``phase.<name>_seconds`` timer — so phase timings survive in metrics
  snapshots even when no event sink is attached (worker processes, for
  example, have no sinks; their phase timers ride back to the executor
  inside the merged snapshot).

Event schema (one JSON object per line in a
:class:`~repro.obs.sinks.JsonlSink` stream)::

    {"event": "span_begin", "ts": <unix>, "span": 3, "parent": 1,
     "name": "campaign", "attrs": {"circuit": "xgmac"}}
    {"event": "span_end",   "ts": <unix>, "span": 3, "parent": 1,
     "name": "campaign", "seconds": 12.81, "attrs": {...}}

See ``docs/observability.md`` for the full schema catalogue.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

__all__ = ["Tracer", "PIPELINE_PHASES"]

#: The canonical pipeline phases, in flow order.  Spans are not limited to
#: these names, but every phase in this tuple is instrumented somewhere in
#: the engine.
PIPELINE_PHASES = (
    "synthesize",
    "golden_trace",
    "campaign",
    "features",
    "dataset",
    "train",
    "report",
)


class Tracer:
    """Emits nested span events through one :class:`~repro.obs.Telemetry`."""

    def __init__(self, telemetry: "Telemetry") -> None:
        self._telemetry = telemetry
        self._next_id = 1
        self._stack: List[int] = []

    @property
    def current_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Trace one phase: emit begin/end events, record the phase timer."""
        telemetry = self._telemetry
        span_id = self._next_id
        self._next_id += 1
        parent = self.current_span
        self._stack.append(span_id)
        emit = telemetry.active
        if emit:
            telemetry.emit(
                {
                    "event": "span_begin",
                    "span": span_id,
                    "parent": parent,
                    "name": name,
                    "attrs": attrs,
                }
            )
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            self._stack.pop()
            telemetry.registry.timer(f"phase.{name}_seconds").observe(seconds)
            if emit:
                telemetry.emit(
                    {
                        "event": "span_end",
                        "span": span_id,
                        "parent": parent,
                        "name": name,
                        "seconds": round(seconds, 6),
                        "attrs": attrs,
                    }
                )
