"""Campaign telemetry: metrics registry, phase spans, pluggable sinks.

This package is the engine's first-class observability surface (the
"metrics surface" item on the roadmap): every layer — campaign executor,
adaptive scheduler, result store, simulation backends, dataset layer,
experiment runner — reports into the *current* :class:`Telemetry`:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges,
  histograms and timers whose snapshots merge across processes (worker
  processes return ``registry.snapshot()`` with each shard payload and the
  executor absorbs them, exactly like the campaign counter accumulator);
* :class:`~repro.obs.trace.Tracer` — span events over the pipeline phases
  (synthesize → golden trace → campaign → features → dataset → train →
  report), emitted as a structured JSONL stream;
* sinks (:mod:`repro.obs.sinks`) — JSONL file, in-memory capture for
  tests, and a live TTY progress line with throughput/ETA.

The default telemetry has a live registry but **no sinks**: metrics are
always recorded (a handful of dict operations per shard — measured < 2%
on the scheduler benchmark), while event emission, which is the expensive
part, only happens once a sink is attached (``Telemetry.active``).

Scoped use::

    from repro.obs import Telemetry, use_telemetry
    from repro.obs.sinks import JsonlSink

    telemetry = Telemetry(sinks=[JsonlSink("run.jsonl")])
    with use_telemetry(telemetry):
        run_campaign(spec)          # every layer reports into `telemetry`
    telemetry.close()

See ``docs/observability.md`` for the event schema and the CLI flags
(``--metrics-out``, ``--trace-out``, ``--live``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    Timer,
)
from .sinks import JsonlSink, LiveProgressSink, MemorySink, NullSink, Sink
from .trace import PIPELINE_PHASES, Tracer

__all__ = [
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "ProgressThrottle",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Tracer",
    "PIPELINE_PHASES",
    "Sink",
    "JsonlSink",
    "MemorySink",
    "LiveProgressSink",
    "NullSink",
]


class Telemetry:
    """One registry + one tracer + any number of sinks."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sinks: Optional[Sequence[Sink]] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sinks: List[Sink] = list(sinks) if sinks is not None else []
        self.tracer = Tracer(self)

    @property
    def active(self) -> bool:
        """Whether any sink is attached (event emission short-circuits
        entirely when not)."""
        return bool(self.sinks)

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def emit(self, event: Dict) -> None:
        """Stamp *event* with a wall-clock ``ts`` and fan out to sinks."""
        if not self.sinks:
            return
        event.setdefault("ts", round(time.time(), 6))
        for sink in self.sinks:
            if sink.accepts(event):
                sink.emit(event)

    def emit_provenance(self, **attrs: object) -> None:
        """The run's identity stamp — emitted once, first, per output file."""
        import platform as _platform

        from .. import __version__

        self.emit(
            {
                "event": "provenance",
                "code_version": __version__,
                "python": _platform.python_version(),
                "machine": _platform.machine(),
                **attrs,
            }
        )

    def flush_metrics(self, label: str = "final") -> MetricsSnapshot:
        """Emit the registry's current snapshot as a ``metrics`` event."""
        snapshot = self.registry.snapshot()
        self.emit(
            {"event": "metrics", "label": label, "metrics": snapshot.to_payload()}
        )
        return snapshot

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
        self.sinks = []


#: Process-wide current telemetry.  The default records metrics but emits
#: nothing (no sinks); worker processes start from this and the executor
#: absorbs their snapshots.
_CURRENT = Telemetry()


def get_telemetry() -> Telemetry:
    """The telemetry instance every instrumented layer reports into."""
    return _CURRENT


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install *telemetry* as current; returns the previous instance."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Scope *telemetry* as current for the duration of the block."""
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)


class ProgressThrottle:
    """Rate-limits a ``callback(done, total)`` without losing the ends.

    The campaign executor used to invoke its progress callback after every
    shard; on sharded paper-scale runs that is hundreds of calls (and, via
    the CLI, hundreds of printed lines) for a bar nobody can read.  The
    throttle forwards the **first** call, any call at least
    ``min_interval`` seconds after the last forwarded one, and — always —
    the **final** call (``done == total``), so consumers observe the exact
    terminal counts (regression-tested in ``tests/test_obs.py``).

    ``min_interval=0`` forwards everything (the pre-throttle behavior).
    """

    def __init__(
        self,
        callback: Callable[[int, int], None],
        min_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.callback = callback
        self.min_interval = min_interval
        self.clock = clock
        self._last: Optional[float] = None
        self.forwarded = 0
        self.suppressed = 0

    def __call__(self, done: int, total: int) -> None:
        now = self.clock()
        if (
            done >= total
            or self._last is None
            or now - self._last >= self.min_interval
        ):
            self._last = now
            self.forwarded += 1
            self.callback(done, total)
        else:
            self.suppressed += 1
