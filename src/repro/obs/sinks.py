"""Pluggable telemetry sinks: JSONL files, in-memory capture, live TTY.

A sink receives every telemetry event (a plain dict; see
``docs/observability.md`` for the schema) via :meth:`Sink.emit`.  Sinks may
restrict themselves to an event subset with the ``events`` filter — the
CLI's ``--metrics-out`` attaches a :class:`JsonlSink` limited to span,
metrics and provenance events while ``--trace-out`` captures the full
stream, and ``--live`` attaches a :class:`LiveProgressSink` that renders
``progress`` events as a single self-updating terminal line with
throughput and ETA.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

__all__ = ["Sink", "JsonlSink", "MemorySink", "LiveProgressSink", "NullSink"]


class Sink:
    """Base sink: accepts every event, does nothing."""

    def __init__(self, events: Optional[Sequence[str]] = None) -> None:
        #: ``None`` accepts every event type.
        self.events = frozenset(events) if events is not None else None

    def accepts(self, event: Dict) -> bool:
        return self.events is None or event.get("event") in self.events

    def emit(self, event: Dict) -> None:  # pragma: no cover - interface
        pass

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Explicit no-op sink (useful to force ``Telemetry.active`` on)."""

    def emit(self, event: Dict) -> None:
        pass


class MemorySink(Sink):
    """Collects events in a list — the test/debugging sink."""

    def __init__(self, events: Optional[Sequence[str]] = None) -> None:
        super().__init__(events)
        self.records: List[Dict] = []

    def emit(self, event: Dict) -> None:
        self.records.append(event)

    def of_type(self, event_type: str) -> List[Dict]:
        return [e for e in self.records if e.get("event") == event_type]


class JsonlSink(Sink):
    """Appends one JSON object per event to a file.

    Lines are flushed as they are written, so a crashed or interrupted run
    still leaves a readable prefix — the same durability stance as the
    campaign store's checkpoints.
    """

    def __init__(
        self, path: Path, events: Optional[Sequence[str]] = None
    ) -> None:
        super().__init__(events)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = open(self.path, "a")

    def emit(self, event: Dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class LiveProgressSink(Sink):
    """Single self-updating progress line for interactive runs.

    Renders ``progress`` events (``scope``, ``done``, ``total`` and
    optional ``injections_per_sec`` / ``eta_seconds`` fields) as::

        campaign 12/32 shards | 38% | 45,210 inj/s | ETA 0:42

    Writes carriage-return updates only when the stream is a TTY; on a
    plain pipe each update becomes its own line, so logs stay readable.
    """

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        super().__init__(events=("progress",))
        self.stream = stream if stream is not None else sys.stderr
        self._dirty = False

    @staticmethod
    def _fmt_eta(seconds: float) -> str:
        seconds = max(0, int(round(seconds)))
        return f"{seconds // 60}:{seconds % 60:02d}"

    def render(self, event: Dict) -> str:
        parts = [
            f"{event.get('scope', 'run')} "
            f"{event.get('done', 0)}/{event.get('total', 0)} "
            f"{event.get('unit', 'shards')}"
        ]
        total = event.get("total") or 0
        if total:
            parts.append(f"{100.0 * event.get('done', 0) / total:.0f}%")
        rate = event.get("injections_per_sec")
        if rate:
            parts.append(f"{rate:,.0f} inj/s")
        eta = event.get("eta_seconds")
        if eta is not None:
            parts.append(f"ETA {self._fmt_eta(eta)}")
        return " | ".join(parts)

    def emit(self, event: Dict) -> None:
        line = self.render(event)
        if self.stream.isatty():
            self.stream.write("\r\x1b[2K" + line)
            self._dirty = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
