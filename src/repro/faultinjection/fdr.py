"""Functional De-Rating estimation statistics.

The Functional De-Rating factor of a flip-flop is "the number of simulation
runs with a functional failure divided by the number of total simulation
runs" — a binomial proportion.  This module adds the supporting statistics a
campaign planner needs: confidence intervals on the estimate and the classic
statistical-fault-injection sample-size formula used to justify injection
counts like the paper's 170 per flip-flop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from scipy import stats

__all__ = ["FdrEstimate", "wilson_interval", "required_sample_size"]


@dataclass(frozen=True)
class FdrEstimate:
    """A per-flip-flop FDR estimate with its sampling uncertainty."""

    n_injections: int
    n_failures: int
    confidence: float = 0.95

    @property
    def fdr(self) -> float:
        """Point estimate: failures / injections.

        ``nan`` when no injections were run: "no evidence" must not be
        conflated with "never fails" (0.0 is a *strong* claim at the
        bottom of the FDR range).  Consumers that aggregate estimates
        filter non-finite values explicitly.
        """
        if self.n_injections == 0:
            return float("nan")
        return self.n_failures / self.n_injections

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson score confidence interval of the FDR."""
        return wilson_interval(self.n_failures, self.n_injections, self.confidence)

    @property
    def margin(self) -> float:
        """Half-width of the confidence interval."""
        low, high = self.interval
        return (high - low) / 2.0


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because FDR values cluster at 0
    and 1, where the Wald interval collapses.
    """
    if trials == 0:
        return (0.0, 1.0)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    low = max(0.0, centre - half)
    high = min(1.0, centre + half)
    # At the boundaries the exact Wilson endpoints are 0/1; avoid returning
    # a bound that excludes the point estimate by a floating-point ulp.
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (low, high)


def required_sample_size(
    population: Optional[int],
    margin: float = 0.05,
    confidence: float = 0.95,
    p: float = 0.5,
) -> int:
    """Number of fault injections for a target error margin.

    Implements the statistical fault-injection sizing formula (Leveugle et
    al., DATE 2009)::

        n = N / (1 + e^2 * (N - 1) / (z^2 * p * (1 - p)))

    where *N* is the fault-universe size (``None`` for an effectively
    infinite universe), *e* the margin of error, *z* the normal quantile of
    the confidence level and *p* the a-priori failure probability (0.5 is
    the conservative worst case).

    With ``margin=0.075`` and 95 % confidence, the infinite-universe size is
    ≈171 — the paper's 170 injections per flip-flop.

    The result is always in ``[1, population]``: a one-element universe
    needs exactly its one sample regardless of margin, a sample can never
    exceed the universe it is drawn from (guards float roundoff in the
    finite-population correction), and *p* arbitrarily close to 0 or 1
    still requires at least one observation.  ``p`` itself must lie
    strictly inside ``(0, 1)`` — at the endpoints the prior asserts the
    outcome and the formula degenerates to a division by zero.
    """
    if not 0.0 < margin < 1.0:
        raise ValueError("margin must be in (0, 1)")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    base = z * z * p * (1 - p) / (margin * margin)
    if population is None:
        return max(1, math.ceil(base))
    if population <= 0:
        raise ValueError("population must be positive")
    n = population / (1 + margin * margin * (population - 1) / (z * z * p * (1 - p)))
    return min(population, max(1, math.ceil(n)))
