"""Bit-parallel SEU forward simulation against a golden trajectory.

One :meth:`FaultInjector.run_batch` call simulates up to ``max_lanes``
injections *at the same cycle* simultaneously: lane *j* of every net value
is the run in which flip-flop ``ff_indices[j]`` was inverted.  Three
ingredients make the paper's full flat campaign tractable:

1. **Golden-state restart** — the fault run starts from the recorded golden
   flip-flop state at the injection cycle, not from reset;
2. **Reactive loopback replay** — loopback inputs (XGMII TX→RX) are fed from
   the *faulty* run's own outputs, while open-loop stimulus is replayed from
   the golden record;
3. **Early retirement** — a lane whose *relevant* flip-flop state and
   loopback pipeline have re-converged to golden can never deviate again and
   stops being interesting; the batch ends as soon as every lane has either
   failed or converged.  Relevant flip-flops are those with a structural
   path to the criterion outputs or loopback sources — a fault lingering
   only in, say, a statistics counter is provably benign and does not keep
   the batch alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.core import Netlist
from ..sim.compiled import CompiledSimulator
from ..sim.testbench import GoldenTrace, Testbench
from .classify import FailureCriterion

__all__ = ["FaultInjector", "BatchOutcome", "relevant_flip_flops"]


def relevant_flip_flops(netlist: Netlist, observable_nets: Sequence[str]) -> Set[str]:
    """Flip-flops with a structural path (through any logic) to *observable_nets*.

    Backward reachability over the netlist: from each observable net through
    combinational cones and flip-flop D/RN pins.  A flip-flop outside this
    set cannot influence the observables, ever.
    """
    relevant: Set[str] = set()
    visited: Set[str] = set()
    stack = list(observable_nets)
    while stack:
        net_name = stack.pop()
        if net_name in visited:
            continue
        visited.add(net_name)
        driver = netlist.nets[net_name].driver
        if driver is None:
            continue
        cell = netlist.cells[driver.cell]
        if cell.is_sequential:
            relevant.add(cell.name)
            stack.extend(cell.data_input_nets())
        else:
            stack.extend(cell.input_nets())
    return relevant


@dataclass
class BatchOutcome:
    """Result of one injection batch.

    ``latencies[lane]`` is the error latency of a failed lane: the number of
    cycles between the SEU and the first observable deviation under the
    failure criterion (0 = visible in the injection cycle itself).
    """

    failed_mask: int
    n_lanes: int
    cycles_simulated: int
    latencies: Dict[int, int] = field(default_factory=dict)

    def failed_lanes(self) -> List[int]:
        return [j for j in range(self.n_lanes) if (self.failed_mask >> j) & 1]


@dataclass
class _LoopTap:
    """One bit of a loopback path: source output → delayed target input."""

    source_value_idx: int
    target_value_idx: int
    source_out_bit: int
    delay: int
    slots: List[int]


class FaultInjector:
    """Forward SEU simulator bound to one netlist/testbench/golden trace."""

    def __init__(
        self,
        netlist: Netlist,
        testbench: Testbench,
        golden: GoldenTrace,
        criterion: FailureCriterion,
        check_interval: int = 8,
    ) -> None:
        self.netlist = netlist
        self.testbench = testbench
        self.golden = golden
        self.check_interval = max(1, check_interval)
        self.sim = CompiledSimulator(netlist, n_lanes=1)
        self._criterion = criterion.bind(netlist, self.sim)

        self._input_value_idx = [self.sim.net_index[n] for n in testbench.input_names]
        out_bit = {name: i for i, name in enumerate(netlist.outputs)}

        self._taps: List[_LoopTap] = []
        lb_target_inputs: Set[int] = set()
        for path in testbench.loopbacks:
            for src, dst in zip(path.sources, path.targets):
                self._taps.append(
                    _LoopTap(
                        source_value_idx=self.sim.net_index[src],
                        target_value_idx=self.sim.net_index[dst],
                        source_out_bit=out_bit[src],
                        delay=path.delay,
                        slots=[0] * path.delay,
                    )
                )
                lb_target_inputs.add(self.sim.net_index[dst])
        # Inputs driven open-loop (everything except loopback targets).
        self._open_inputs = [
            (i, idx)
            for i, idx in enumerate(self._input_value_idx)
            if idx not in lb_target_inputs
        ]

        observables = criterion.observable_nets() + [
            src for path in testbench.loopbacks for src in path.sources
        ]
        relevant = relevant_flip_flops(netlist, observables)
        self.relevant_ff_names = relevant
        self._relevant_pairs: List[Tuple[int, int]] = []
        for ff_index, ff in enumerate(self.sim.flip_flops):
            if ff.name in relevant:
                q_idx = self.sim.net_index[ff.output_net()]
                self._relevant_pairs.append((q_idx, ff_index))

    # ----------------------------------------------------------------- API

    def ff_index(self, ff_name: str) -> int:
        return self.sim.ff_index[ff_name]

    def run_batch(
        self,
        cycle: int,
        ff_indices: Sequence[int],
        horizon: Optional[int] = None,
    ) -> BatchOutcome:
        """Simulate one SEU per lane, all injected at *cycle*.

        Returns the per-lane failure mask.  The forward run stops at the end
        of the golden trace, after *horizon* cycles, or as soon as every
        lane has failed or re-converged to golden — whichever comes first.
        """
        golden = self.golden
        if not 0 <= cycle < golden.n_cycles:
            raise ValueError(f"injection cycle {cycle} outside trace [0, {golden.n_cycles})")
        n = len(ff_indices)
        sim = self.sim
        sim.resize_lanes(n)
        mask = sim.mask
        values = sim.values

        sim.load_ff_state_packed(golden.ff_state[cycle])
        for lane, ff_idx in enumerate(ff_indices):
            sim.flip_ff(ff_idx, 1 << lane)

        for tap in self._taps:
            for past in range(cycle - tap.delay, cycle):
                if past < 0:
                    tap.slots[past % tap.delay] = 0
                else:
                    bit = (golden.outputs[past] >> tap.source_out_bit) & 1
                    tap.slots[past % tap.delay] = mask if bit else 0

        end = golden.n_cycles
        if horizon is not None:
            end = min(end, cycle + horizon)

        failed = 0
        latencies: Dict[int, int] = {}
        criterion = self._criterion
        check = self.check_interval
        c = cycle
        while c < end:
            vec = golden.applied_inputs[c]
            for bit_pos, value_idx in self._open_inputs:
                values[value_idx] = mask if (vec >> bit_pos) & 1 else 0
            for tap in self._taps:
                values[tap.target_value_idx] = tap.slots[c % tap.delay]
            sim.eval_comb()
            newly = criterion.evaluate(values, golden.outputs[c], mask) & ~failed
            if newly:
                failed |= newly
                latency = c - cycle
                while newly:
                    low = newly & -newly
                    latencies[low.bit_length() - 1] = latency
                    newly ^= low
            for tap in self._taps:
                tap.slots[c % tap.delay] = values[tap.source_value_idx]
            sim.tick()
            c += 1
            if (c - cycle) % check == 0 or c == end:
                diverged = self._divergence(golden.ff_state[c], mask)
                diverged |= self._loopback_divergence(c, mask)
                if (failed | ~diverged) & mask == mask:
                    break
        return BatchOutcome(
            failed_mask=failed & mask,
            n_lanes=n,
            cycles_simulated=c - cycle,
            latencies=latencies,
        )

    def run_set_batch(
        self,
        cycle: int,
        net_names: Sequence[str],
        horizon: Optional[int] = None,
    ) -> BatchOutcome:
        """Simulate Single-Event Transients: lane *j* flips net ``net_names[j]``.

        Cycle-level SET model: the transient inverts the struck combinational
        net for the whole injection cycle, propagates through the downstream
        cone (subject to **logical de-rating** — controlling values on other
        gate inputs mask it), may corrupt primary outputs directly, and is
        latched by whatever flip-flops sample it on the clock edge.  From the
        next cycle on the run continues exactly like an SEU forward
        simulation.  Electrical and sub-cycle temporal de-rating are below
        this model's time resolution, as discussed in the paper's section II.
        """
        golden = self.golden
        if not 0 <= cycle < golden.n_cycles:
            raise ValueError(f"injection cycle {cycle} outside trace [0, {golden.n_cycles})")
        n = len(net_names)
        sim = self.sim
        sim.resize_lanes(n)
        mask = sim.mask
        values = sim.values

        sim.load_ff_state_packed(golden.ff_state[cycle])
        for tap in self._taps:
            for past in range(cycle - tap.delay, cycle):
                if past < 0:
                    tap.slots[past % tap.delay] = 0
                else:
                    bit = (golden.outputs[past] >> tap.source_out_bit) & 1
                    tap.slots[past % tap.delay] = mask if bit else 0

        # Injection cycle: settle fault-free, then force the struck nets and
        # re-evaluate the downstream cones with the forces held.
        vec = golden.applied_inputs[cycle]
        for bit_pos, value_idx in self._open_inputs:
            values[value_idx] = mask if (vec >> bit_pos) & 1 else 0
        for tap in self._taps:
            values[tap.target_value_idx] = tap.slots[cycle % tap.delay]
        sim.eval_comb()
        forces: Dict[int, int] = {}
        for lane, net in enumerate(net_names):
            idx = sim.net_index[net]
            forces[idx] = forces.get(idx, 0) | (1 << lane)
        self._propagate_forced(forces, mask)

        latencies: Dict[int, int] = {}
        failed = self._criterion.evaluate(values, golden.outputs[cycle], mask)
        if failed:
            probe = failed
            while probe:
                low = probe & -probe
                latencies[low.bit_length() - 1] = 0
                probe ^= low
        for tap in self._taps:
            tap.slots[cycle % tap.delay] = values[tap.source_value_idx]
        sim.tick()

        # Continue as a plain forward run from the next cycle.
        end = golden.n_cycles
        if horizon is not None:
            end = min(end, cycle + horizon)
        criterion = self._criterion
        check = self.check_interval
        c = cycle + 1
        while c < end:
            vec = golden.applied_inputs[c]
            for bit_pos, value_idx in self._open_inputs:
                values[value_idx] = mask if (vec >> bit_pos) & 1 else 0
            for tap in self._taps:
                values[tap.target_value_idx] = tap.slots[c % tap.delay]
            sim.eval_comb()
            newly = criterion.evaluate(values, golden.outputs[c], mask) & ~failed
            if newly:
                failed |= newly
                while newly:
                    low = newly & -newly
                    latencies.setdefault(low.bit_length() - 1, c - cycle)
                    newly ^= low
            for tap in self._taps:
                tap.slots[c % tap.delay] = values[tap.source_value_idx]
            sim.tick()
            c += 1
            if (c - cycle) % check == 0 or c == end:
                diverged = self._divergence(golden.ff_state[c], mask)
                diverged |= self._loopback_divergence(c, mask)
                if (failed | ~diverged) & mask == mask:
                    break
        return BatchOutcome(
            failed_mask=failed & mask,
            n_lanes=n,
            cycles_simulated=c - cycle,
            latencies=latencies,
        )

    def _propagate_forced(self, forces: Dict[int, int], mask: int) -> None:
        """Apply per-lane net inversions and re-settle the downstream logic.

        Walks the combinational cells in topological order, re-evaluating any
        cell with a dirty input; a forced net stays inverted even if its
        driver is re-evaluated (the transient dominates for the cycle).
        """
        sim = self.sim
        values = sim.values
        dirty = set()
        for idx, lane_mask_bits in forces.items():
            values[idx] ^= lane_mask_bits
            dirty.add(idx)
        for cell_name in self.netlist.topological_comb_order():
            cell = self.netlist.cells[cell_name]
            in_idxs = [sim.net_index[n] for n in cell.input_nets()]
            if not any(i in dirty for i in in_idxs):
                continue
            out_idx = sim.net_index[cell.output_net()]
            new_value = cell.ctype.evaluate([values[i] for i in in_idxs], mask)
            new_value ^= forces.get(out_idx, 0)
            if new_value != values[out_idx]:
                values[out_idx] = new_value
                dirty.add(out_idx)

    # ------------------------------------------------------------ internals

    def _divergence(self, golden_packed: int, mask: int) -> int:
        """Per-lane mask of lanes whose relevant FF state differs from golden."""
        diff = 0
        values = self.sim.values
        for q_idx, ff_index in self._relevant_pairs:
            golden = mask if (golden_packed >> ff_index) & 1 else 0
            diff |= values[q_idx] ^ golden
            if diff == mask:
                return diff
        return diff

    def _loopback_divergence(self, next_cycle: int, mask: int) -> int:
        """Lanes whose in-flight loopback values differ from the golden record."""
        diff = 0
        golden = self.golden
        for tap in self._taps:
            for past in range(max(0, next_cycle - tap.delay), next_cycle):
                if past >= golden.n_cycles:
                    continue
                bit = (golden.outputs[past] >> tap.source_out_bit) & 1
                diff |= tap.slots[past % tap.delay] ^ (mask if bit else 0)
        return diff & mask
