"""Bit-parallel SEU forward simulation against a golden trajectory.

One :meth:`FaultInjector.run_batch` call simulates up to ``max_lanes``
injections *at the same cycle* simultaneously: lane *j* of every net value
is the run in which flip-flop ``ff_indices[j]`` was inverted.  Three
ingredients make the paper's full flat campaign tractable:

1. **Golden-state restart** — the fault run starts from the recorded golden
   flip-flop state at the injection cycle, not from reset;
2. **Reactive loopback replay** — loopback inputs (XGMII TX→RX) are fed from
   the *faulty* run's own outputs, while open-loop stimulus is replayed from
   the golden record;
3. **Early retirement** — a lane whose *relevant* flip-flop state and
   loopback pipeline have re-converged to golden can never deviate again and
   stops being interesting; the batch ends as soon as every lane has either
   failed or converged.  Relevant flip-flops are those with a structural
   path to the criterion outputs or loopback sources — a fault lingering
   only in, say, a statistics counter is provably benign and does not keep
   the batch alive.

The forward simulation runs on a pluggable substrate (see
:mod:`repro.sim.backend`): ``backend="compiled"`` packs lanes into Python
integers, ``backend="numpy"`` evaluates ``uint64`` lane blocks for wide
batches, and ``backend="fused"`` code-generates one specialized sweep kernel
per (circuit, workload) that runs the whole batch loop in a single generated
function (:mod:`repro.sim.fused`).  All three produce bit-identical
verdicts and latencies — cross-checked per fuzz seed by
:mod:`repro.verify.diff`.

Campaigns should prefer :meth:`FaultInjector.run_scheduled` over many
:meth:`run_batch` calls: the adaptive scheduler
(:mod:`repro.faultinjection.scheduler`) activates each injection at its own
cycle inside one long-lived forward pass, refills lanes freed by early
retirement, compacts drained batches and gates evaluation on the divergence
cone — same verdicts, a multiple of the throughput (see
``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..netlist.core import Netlist
from ..obs import get_telemetry
from ..sim.backend import BACKEND_NAMES, create_backend
from ..sim.fused import FusedSweepKernel
from ..sim.testbench import GoldenTrace, Testbench
from .classify import FailureCriterion
from .faults import BoundFaultModel, FaultModel, InjectionPlan, parse_fault_model

__all__ = ["FaultInjector", "BatchOutcome", "relevant_flip_flops"]


def relevant_flip_flops(netlist: Netlist, observable_nets: Sequence[str]) -> Set[str]:
    """Flip-flops with a structural path (through any logic) to *observable_nets*.

    Backward reachability over the netlist: from each observable net through
    combinational cones and flip-flop D/RN pins.  A flip-flop outside this
    set cannot influence the observables, ever.
    """
    relevant: Set[str] = set()
    visited: Set[str] = set()
    stack = list(observable_nets)
    while stack:
        net_name = stack.pop()
        if net_name in visited:
            continue
        visited.add(net_name)
        driver = netlist.nets[net_name].driver
        if driver is None:
            continue
        cell = netlist.cells[driver.cell]
        if cell.is_sequential:
            relevant.add(cell.name)
            stack.extend(cell.data_input_nets())
        else:
            stack.extend(cell.input_nets())
    return relevant


def _iter_lanes(bits: int):
    """Yield the set lane indices of a packed Python-int lane mask."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


@dataclass
class BatchOutcome:
    """Result of one injection batch.

    ``latencies[lane]`` is the error latency of a failed lane: the number of
    cycles between the SEU and the first observable deviation under the
    failure criterion (0 = visible in the injection cycle itself).
    """

    failed_mask: int
    n_lanes: int
    cycles_simulated: int
    latencies: Dict[int, int] = field(default_factory=dict)

    def failed_lanes(self) -> List[int]:
        """Lane indices whose runs were classified as functional failures."""
        return list(_iter_lanes(self.failed_mask))


@dataclass
class _LoopTap:
    """One bit of a loopback path: source output → delayed target input.

    ``golden_bits[c]`` is the source output's golden value during cycle *c*,
    extracted once at injector construction — batch setup and loopback
    divergence checks used to re-shift the packed golden output vector on
    every call.
    """

    source_value_idx: int
    target_value_idx: int
    source_out_bit: int
    delay: int
    slots: List[object]
    golden_bits: List[int]


class FaultInjector:
    """Forward SEU simulator bound to one netlist/testbench/golden trace.

    Parameters
    ----------
    netlist / testbench / golden / criterion:
        The design under test, its workload driver, the recorded fault-free
        trajectory, and the functional-failure definition.
    check_interval:
        Cycles between early-retirement convergence checks (trade-off:
        smaller intervals retire lanes sooner but check more often).
    backend:
        Simulation substrate: ``"compiled"`` (default), ``"numpy"``, or
        ``"fused"``.  Verdicts and latencies are backend-invariant.
    fault_model:
        A :class:`~repro.faultinjection.faults.FaultModel`, a registry spec
        string (``"mbu:size=3,radius=1,seed=0"``), or ``None`` for the
        paper's single-bit SEU.  Models whose plans carry per-cycle forcing
        (stuck-at, intermittent) run on the cycle substrate even under
        ``backend="fused"`` — the generated sweep kernel has no re-force
        hook — and their lanes are excluded from convergence-based early
        retirement.
    """

    def __init__(
        self,
        netlist: Netlist,
        testbench: Testbench,
        golden: GoldenTrace,
        criterion: FailureCriterion,
        check_interval: int = 8,
        backend: str = "compiled",
        fault_model: "FaultModel | str | None" = None,
    ) -> None:
        if backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKEND_NAMES}"
            )
        self.netlist = netlist
        self.testbench = testbench
        self.golden = golden
        self.check_interval = max(1, check_interval)
        self.backend = backend
        self.fault_model: Optional[FaultModel] = (
            None if fault_model is None else parse_fault_model(fault_model)
        )
        # The plain SEU keeps the original one-flip fast path (``None``
        # bound model); anything else compiles per-injection plans.
        self._bound_model: Optional[BoundFaultModel] = (
            self.fault_model.bind(netlist)
            if self.fault_model is not None and self.fault_model.name != "seu"
            else None
        )
        # The fused engine replaces the per-cycle loop, not the cycle
        # simulator itself; SET injection and net bookkeeping still run on
        # the compiled substrate underneath it.
        cycle_backend = "compiled" if backend == "fused" else backend
        self.sim = create_backend(cycle_backend, netlist, n_lanes=1)
        self._criterion = criterion.bind(netlist, self.sim)
        self._fused: Optional[FusedSweepKernel] = None

        self._input_value_idx = [self.sim.net_index[n] for n in testbench.input_names]
        out_bit = {name: i for i, name in enumerate(netlist.outputs)}

        self._taps: List[_LoopTap] = []
        lb_target_inputs: Set[int] = set()
        for path in testbench.loopbacks:
            for src, dst in zip(path.sources, path.targets):
                bit = out_bit[src]
                self._taps.append(
                    _LoopTap(
                        source_value_idx=self.sim.net_index[src],
                        target_value_idx=self.sim.net_index[dst],
                        source_out_bit=bit,
                        delay=path.delay,
                        slots=[0] * path.delay,
                        golden_bits=[(out >> bit) & 1 for out in golden.outputs],
                    )
                )
                lb_target_inputs.add(self.sim.net_index[dst])
        # Inputs driven open-loop (everything except loopback targets).
        self._open_inputs = [
            (i, idx)
            for i, idx in enumerate(self._input_value_idx)
            if idx not in lb_target_inputs
        ]

        observables = criterion.observable_nets() + [
            src for path in testbench.loopbacks for src in path.sources
        ]
        relevant = relevant_flip_flops(netlist, observables)
        self.relevant_ff_names = relevant
        self._relevant_pairs: List[Tuple[int, int]] = []
        for ff_index, ff in enumerate(self.sim.flip_flops):
            if ff.name in relevant:
                q_idx = self.sim.net_index[ff.output_net()]
                self._relevant_pairs.append((q_idx, ff_index))
        # Per-cycle golden state repacked to the relevant-pair bit order,
        # filled on first use: the divergence check used to re-extract each
        # relevant bit from the full packed state on every call.
        self._relevant_golden: List[Optional[int]] = [None] * (golden.n_cycles + 1)
        # Resolved SET propagation order (built on first run_set_batch).
        self._set_plan: Optional[List[Tuple[Callable, int, Tuple[int, ...]]]] = None

    # ----------------------------------------------------------------- API

    @property
    def taps(self) -> List[_LoopTap]:
        """Resolved loopback taps (read-only; the scheduler reuses them)."""
        return self._taps

    @property
    def criterion_valid_pairs(self) -> List[Tuple[int, int]]:
        """Bound criterion strobe pairs ``(value_idx, golden_bit)``."""
        return self._criterion.valid_pairs

    @property
    def criterion_data_pairs(self) -> List[Tuple[int, int]]:
        """Bound criterion payload pairs ``(value_idx, golden_bit)``."""
        return self._criterion.data_pairs

    def relevant_golden(self, cycle: int) -> int:
        """Golden state at *cycle*, packed in relevant-pair order (cached)."""
        packed = self._relevant_golden[cycle]
        if packed is None:
            state = self.golden.ff_state[cycle]
            packed = 0
            for k, (_q_idx, ff_index) in enumerate(self._relevant_pairs):
                packed |= ((state >> ff_index) & 1) << k
            self._relevant_golden[cycle] = packed
        return packed

    def ff_index(self, ff_name: str) -> int:
        """Index of a flip-flop by instance name (lane/state ordering)."""
        return self.sim.ff_index[ff_name]

    @property
    def bound_model(self) -> Optional[BoundFaultModel]:
        """The netlist-bound fault model, or ``None`` for the SEU fast path."""
        return self._bound_model

    def injection_plan(self, ff_index: int, cycle: int) -> InjectionPlan:
        """The compiled plan executed for ``(cycle, ff_index)`` — the exact
        flips and forces any engine (and the brute-force oracle) replays."""
        if self._bound_model is None:
            return InjectionPlan(flips=(ff_index,))
        return self._bound_model.plan(ff_index, cycle)

    def run_scheduled(
        self,
        injections: Sequence[Tuple[int, int]],
        horizon: Optional[int] = None,
        max_lanes: Optional[int] = None,
        cone_gating: str = "auto",
        progress=None,
    ):
        """Run many ``(cycle, ff_index)`` injections through one adaptive
        scheduler (lane refill across cycles, compaction, cone gating).

        Returns a :class:`~repro.faultinjection.scheduler.ScheduledOutcome`
        whose verdicts/latencies are bit-identical to one
        :meth:`run_batch` lane per injection; see
        :class:`~repro.faultinjection.scheduler.AdaptiveScheduler`.
        """
        from .scheduler import AdaptiveScheduler

        scheduler = AdaptiveScheduler(
            self, max_lanes=max_lanes, cone_gating=cone_gating
        )
        return scheduler.run(injections, horizon=horizon, progress=progress)

    def fused_kernel(self) -> FusedSweepKernel:
        """Build (once) the generated sweep kernel for this workload."""
        if self._fused is None:
            self._fused = FusedSweepKernel(
                self.netlist,
                self.golden,
                open_inputs=self._open_inputs,
                clock_value_idx=[
                    self.sim.net_index[c]
                    for c in self.netlist.clocks
                    if c in self.sim.net_index
                ],
                taps=[
                    (t.source_value_idx, t.target_value_idx, t.source_out_bit, t.delay)
                    for t in self._taps
                ],
                valid_pairs=self._criterion.valid_pairs,
                data_pairs=self._criterion.data_pairs,
                relevant_pairs=self._relevant_pairs,
                check_interval=self.check_interval,
                tap_golden=[tap.golden_bits for tap in self._taps],
            )
        return self._fused

    def _record_outcome(self, outcome: BatchOutcome) -> BatchOutcome:
        """Report one forward run's lane-cycle volume to the telemetry layer.

        Coarse-grained on purpose: two counter bumps per *batch* (which
        simulates hundreds of lane-cycles), so the overhead is unmeasurable
        with telemetry sinks detached.
        """
        registry = get_telemetry().registry
        registry.counter(f"sim.{self.backend}.lane_cycles").inc(
            outcome.cycles_simulated * outcome.n_lanes
        )
        registry.counter(f"sim.{self.backend}.forward_runs").inc()
        if self.fault_model is not None:
            registry.counter(f"fault.{self.fault_model.name}.injections").inc(
                outcome.n_lanes
            )
        return outcome

    def run_batch(
        self,
        cycle: int,
        ff_indices: Sequence[int],
        horizon: Optional[int] = None,
    ) -> BatchOutcome:
        """Simulate one injection per lane, all struck at *cycle*.

        Each lane executes the configured fault model's plan for its
        flip-flop (a single flip for the default SEU, a cluster flip for
        MBUs, per-cycle forcing for stuck-at/intermittent faults).  Returns
        the per-lane failure mask.  The forward run stops at the end of the
        golden trace, after *horizon* cycles, or as soon as every lane has
        failed or re-converged to golden — whichever comes first; lanes
        with active forcing never count as converged.
        """
        golden = self.golden
        if not 0 <= cycle < golden.n_cycles:
            raise ValueError(f"injection cycle {cycle} outside trace [0, {golden.n_cycles})")
        n = len(ff_indices)
        bound = self._bound_model
        plans: Optional[List[InjectionPlan]] = None
        if bound is not None:
            plans = [bound.plan(ff_idx, cycle) for ff_idx in ff_indices]

        if self.backend == "fused" and (
            plans is None or not any(p.forces for p in plans)
        ):
            # Pure flip plans ride the generated sweep kernel (MBU clusters
            # are just multi-bit flip specs); forcing falls back to the
            # cycle substrate below.
            end = golden.n_cycles
            if horizon is not None:
                end = min(end, cycle + horizon)
            flip_spec = ff_indices if plans is None else [p.flips for p in plans]
            failed, latencies, cycles = self.fused_kernel().run_sweep(
                cycle, end, flip_spec
            )
            return self._record_outcome(
                BatchOutcome(
                    failed_mask=failed,
                    n_lanes=n,
                    cycles_simulated=cycles,
                    latencies=latencies,
                )
            )

        sim = self.sim
        sim.resize_lanes(n)
        mask = sim.mask
        values = sim.values
        zero = sim.broadcast(0)

        sim.load_ff_state_packed(golden.ff_state[cycle])
        if plans is None:
            for lane, ff_idx in enumerate(ff_indices):
                sim.flip_ff(ff_idx, 1 << lane)
        else:
            for lane, plan in enumerate(plans):
                for ff_idx in plan.flips:
                    sim.flip_ff(ff_idx, 1 << lane)

        # Per-lane forcing schedule: (plan, lane vector, Q rows to force).
        force_lanes: List[Tuple[InjectionPlan, object, List[Tuple[int, int]]]] = []
        force_vec = zero
        if plans is not None:
            ffs = sim.flip_flops
            for lane, plan in enumerate(plans):
                if plan.forces:
                    rows = [
                        (sim.net_index[ffs[f].output_net()], v)
                        for f, v in plan.forces
                    ]
                    lv = sim.lane_vec(lane)
                    force_lanes.append((plan, lv, rows))
                    force_vec = force_vec | lv

        for tap in self._taps:
            golden_bits = tap.golden_bits
            for past in range(cycle - tap.delay, cycle):
                if past < 0:
                    tap.slots[past % tap.delay] = zero
                else:
                    tap.slots[past % tap.delay] = sim.broadcast(golden_bits[past])

        end = golden.n_cycles
        if horizon is not None:
            end = min(end, cycle + horizon)

        failed = zero
        latencies: Dict[int, int] = {}
        criterion = self._criterion
        check = self.check_interval
        forced_writes = 0
        c = cycle
        while c < end:
            vec = golden.applied_inputs[c]
            for bit_pos, value_idx in self._open_inputs:
                values[value_idx] = mask if (vec >> bit_pos) & 1 else zero
            for tap in self._taps:
                values[tap.target_value_idx] = tap.slots[c % tap.delay]
            for plan, lv, rows in force_lanes:
                # Re-assert the fault on the lane's Q rows before the settle
                # (the latched value is corrupted for this cycle).
                if plan.force_active(c - cycle):
                    for q_idx, v in rows:
                        values[q_idx] = (values[q_idx] & ~lv) | (lv if v else zero)
                    forced_writes += 1
            sim.eval_comb()
            newly = criterion.evaluate(values, golden.outputs[c], mask) & ~failed
            if sim.vec_any(newly):
                failed = failed | newly
                latency = c - cycle
                for lane in _iter_lanes(sim.vec_to_int(newly)):
                    latencies[lane] = latency
            for tap in self._taps:
                tap.slots[c % tap.delay] = sim.read_vec(tap.source_value_idx)
            sim.tick()
            c += 1
            if (c - cycle) % check == 0 or c == end:
                diverged = self._divergence(c, mask)
                diverged = diverged | self._loopback_divergence(c, mask)
                # Forced lanes are only done once failed: a lane whose state
                # matches golden right now can still be re-disturbed by a
                # later duty-on cycle.
                if sim.vec_is_full(failed | (~diverged & ~force_vec)):
                    break
        if forced_writes:
            get_telemetry().registry.counter(
                f"fault.{self.fault_model.name}.forced_cycles"
            ).inc(forced_writes)
        return self._record_outcome(
            BatchOutcome(
                failed_mask=sim.vec_to_int(failed),
                n_lanes=n,
                cycles_simulated=c - cycle,
                latencies=latencies,
            )
        )

    def run_set_batch(
        self,
        cycle: int,
        net_names: Sequence[str],
        horizon: Optional[int] = None,
    ) -> BatchOutcome:
        """Simulate Single-Event Transients: lane *j* flips net ``net_names[j]``.

        Cycle-level SET model: the transient inverts the struck combinational
        net for the whole injection cycle, propagates through the downstream
        cone (subject to **logical de-rating** — controlling values on other
        gate inputs mask it), may corrupt primary outputs directly, and is
        latched by whatever flip-flops sample it on the clock edge.  From the
        next cycle on the run continues exactly like an SEU forward
        simulation.  Electrical and sub-cycle temporal de-rating are below
        this model's time resolution, as discussed in the paper's section II.

        SET sweeps always run on the cycle substrate (compiled or numpy);
        the fused kernel only specializes flip-flop SEU sweeps.
        """
        golden = self.golden
        if not 0 <= cycle < golden.n_cycles:
            raise ValueError(f"injection cycle {cycle} outside trace [0, {golden.n_cycles})")
        n = len(net_names)
        sim = self.sim
        sim.resize_lanes(n)
        mask = sim.mask
        values = sim.values
        zero = sim.broadcast(0)

        sim.load_ff_state_packed(golden.ff_state[cycle])
        for tap in self._taps:
            golden_bits = tap.golden_bits
            for past in range(cycle - tap.delay, cycle):
                if past < 0:
                    tap.slots[past % tap.delay] = zero
                else:
                    tap.slots[past % tap.delay] = sim.broadcast(golden_bits[past])

        # Injection cycle: settle fault-free, then force the struck nets and
        # re-evaluate the downstream cones with the forces held.
        vec = golden.applied_inputs[cycle]
        for bit_pos, value_idx in self._open_inputs:
            values[value_idx] = mask if (vec >> bit_pos) & 1 else zero
        for tap in self._taps:
            values[tap.target_value_idx] = tap.slots[cycle % tap.delay]
        sim.eval_comb()
        forces: Dict[int, object] = {}
        for lane, net in enumerate(net_names):
            idx = sim.net_index[net]
            forces[idx] = forces.get(idx, 0) | sim.lane_vec(lane)
        self._propagate_forced(forces, mask)

        latencies: Dict[int, int] = {}
        failed = self._criterion.evaluate(values, golden.outputs[cycle], mask)
        for lane in _iter_lanes(sim.vec_to_int(failed)):
            latencies[lane] = 0
        for tap in self._taps:
            tap.slots[cycle % tap.delay] = sim.read_vec(tap.source_value_idx)
        sim.tick()

        # Continue as a plain forward run from the next cycle.
        end = golden.n_cycles
        if horizon is not None:
            end = min(end, cycle + horizon)
        criterion = self._criterion
        check = self.check_interval
        c = cycle + 1
        while c < end:
            vec = golden.applied_inputs[c]
            for bit_pos, value_idx in self._open_inputs:
                values[value_idx] = mask if (vec >> bit_pos) & 1 else zero
            for tap in self._taps:
                values[tap.target_value_idx] = tap.slots[c % tap.delay]
            sim.eval_comb()
            newly = criterion.evaluate(values, golden.outputs[c], mask) & ~failed
            if sim.vec_any(newly):
                failed = failed | newly
                latency = c - cycle
                for lane in _iter_lanes(sim.vec_to_int(newly)):
                    latencies.setdefault(lane, latency)
            for tap in self._taps:
                tap.slots[c % tap.delay] = sim.read_vec(tap.source_value_idx)
            sim.tick()
            c += 1
            if (c - cycle) % check == 0 or c == end:
                diverged = self._divergence(c, mask)
                diverged = diverged | self._loopback_divergence(c, mask)
                if sim.vec_is_full(failed | ~diverged):
                    break
        return self._record_outcome(
            BatchOutcome(
                failed_mask=sim.vec_to_int(failed),
                n_lanes=n,
                cycles_simulated=c - cycle,
                latencies=latencies,
            )
        )

    def _propagate_forced(self, forces: Dict[int, object], mask: object) -> None:
        """Apply per-lane net inversions and re-settle the downstream logic.

        Walks the combinational cells in topological order, re-evaluating any
        cell with a dirty input; a forced net stays inverted even if its
        driver is re-evaluated (the transient dominates for the cycle).
        """
        sim = self.sim
        values = sim.values
        if self._set_plan is None:
            # Resolve the topological walk's net indices once; rebuilding
            # them per batch dominated short SET sweeps.
            self._set_plan = [
                (
                    cell.ctype.evaluate,
                    sim.net_index[cell.output_net()],
                    tuple(sim.net_index[n] for n in cell.input_nets()),
                )
                for cell_name in self.netlist.topological_comb_order()
                for cell in (self.netlist.cells[cell_name],)
            ]
        dirty = set()
        for idx, lane_bits in forces.items():
            values[idx] = values[idx] ^ lane_bits
            dirty.add(idx)
        for evaluate, out_idx, in_idxs in self._set_plan:
            if not any(i in dirty for i in in_idxs):
                continue
            new_value = evaluate([values[i] for i in in_idxs], mask)
            new_value = new_value ^ forces.get(out_idx, 0)
            if sim.vec_any(new_value ^ values[out_idx]):
                values[out_idx] = new_value
                dirty.add(out_idx)

    # ------------------------------------------------------------ internals

    def _divergence(self, cycle: int, mask: object) -> object:
        """Per-lane mask of lanes whose relevant FF state differs from golden
        at the start of *cycle*."""
        sim = self.sim
        diff = sim.broadcast(0)
        values = sim.values
        grel = self.relevant_golden(cycle)
        # Early-exit once every lane diverged, but only probe periodically:
        # vec_is_full is a method call (and an array reduction on the numpy
        # backend), so checking per flip-flop would dominate the sweep.
        for k, (q_idx, _ff_index) in enumerate(self._relevant_pairs):
            golden = mask if (grel >> k) & 1 else 0
            diff = diff | (values[q_idx] ^ golden)
            if (k & 31) == 31 and sim.vec_is_full(diff):
                return diff
        return diff

    def _loopback_divergence(self, next_cycle: int, mask: object) -> object:
        """Lanes whose in-flight loopback values differ from the golden record."""
        sim = self.sim
        diff = sim.broadcast(0)
        golden = self.golden
        for tap in self._taps:
            golden_bits = tap.golden_bits
            for past in range(max(0, next_cycle - tap.delay), next_cycle):
                if past >= golden.n_cycles:
                    continue
                bit = golden_bits[past]
                diff = diff | (tap.slots[past % tap.delay] ^ (mask if bit else 0))
        return diff & mask
