"""Fault models: the pluggable registry of injectable disturbance types.

The paper's campaign injects Single-Event Upsets: "the fault injection
mechanism is implemented by inverting the value stored in a flip-flop using
a simulator function", at random times "during the active phase of the
simulation".  That single-bit model is one entry of a registry that mirrors
the circuit-workload registry: every :class:`FaultModel` names itself, can
enumerate its injectable sites on a netlist, and compiles each (site, cycle)
injection into a deterministic :class:`InjectionPlan` that both the
bit-parallel engines and the independent brute-force oracle replay —
so every registered model is covered by the differential fuzz harness
(``python -m repro.experiments verify``).

Registered models
-----------------
``seu``
    The paper's Single-Event Upset: invert one flip-flop at one cycle.
``mbu``
    Spatially-correlated Multi-Bit Upset: flip a seeded cluster of
    flip-flops drawn from the anchor's structural neighborhood (the
    symmetric closure of :func:`repro.netlist.levelize.ff_spread_masks`,
    a placement proxy — flip-flops wired together sit together).  One
    cluster is one lane; ``size=1`` degenerates to the exact SEU.
``stuck0`` / ``stuck1``
    Persistent stuck-at faults: the flip-flop's output is forced to the
    value every cycle from injection to the end of the observation window.
``intermittent``
    Seeded duty-cycled forcing: the output is forced for ``on`` cycles out
    of every ``period``, with a per-(site, cycle) random phase — the
    marginal-contact / aging fault family.
``set``
    Single-Event Transient on a combinational net.  SETs are swept by
    :meth:`~repro.faultinjection.injector.FaultInjector.run_set_batch`, not
    by the flip-flop campaign engine; binding it to a campaign raises
    (see :class:`SetSweepModel` for the enforced contract).

Plans are pure functions of ``(model parameters, site, cycle)`` — no state
leaks from execution order — which is what makes scheduled, batched, fused
and oracle executions of the same injection comparable bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Union

from ..netlist.core import Netlist
from ..netlist.levelize import ff_spread_masks

__all__ = [
    "SeuFault",
    "SetFault",
    "InjectionPlan",
    "FaultModel",
    "BoundFaultModel",
    "FaultModelError",
    "SeuModel",
    "MbuModel",
    "StuckAtModel",
    "IntermittentModel",
    "SetSweepModel",
    "register_fault_model",
    "available_fault_models",
    "parse_fault_model",
    "canonical_fault_model",
    "ff_adjacency",
]


@dataclass(frozen=True)
class SeuFault:
    """A Single-Event Upset: invert flip-flop *ff_name* at *cycle*.

    The flip is applied to the flip-flop's Q output at the start of the
    cycle, before the cycle's combinational settle — equivalent to the
    upset having corrupted the latched state on the preceding edge.
    """

    ff_name: str
    cycle: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SEU({self.ff_name} @ {self.cycle})"


@dataclass(frozen=True)
class SetFault:
    """A Single-Event Transient on a combinational net.

    Transients are subject to electrical and temporal de-rating before ever
    being latched; the paper (and this reproduction) evaluates Functional
    De-Rating for latched upsets, so SETs never enter the statistical
    flip-flop campaign.  They are exercised only by the dedicated sweep
    path :meth:`~repro.faultinjection.injector.FaultInjector.run_set_batch`
    — a contract the registry enforces: ``parse_fault_model("set")``
    resolves, but binding it to a flip-flop campaign raises
    :class:`FaultModelError`.
    """

    net_name: str
    cycle: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SET({self.net_name} @ {self.cycle})"


# --------------------------------------------------------------------- plans


@dataclass(frozen=True)
class InjectionPlan:
    """One injection, compiled to engine-executable form.

    ``flips`` are flip-flop indices whose Q is inverted once, at the start
    of the injection cycle (before that cycle's combinational settle).
    ``forces`` are ``(ff_index, value)`` pairs re-asserted on the lane every
    *duty-on* cycle of the observation window; the duty cycle is
    ``on_cycles`` out of every ``period`` starting at ``phase`` (stuck-at
    faults are the degenerate ``period == on_cycles == 1`` case, i.e.
    always on).  A plan is a pure value: replaying it on any engine — or on
    the brute-force oracle — yields the same fault.
    """

    flips: Tuple[int, ...] = ()
    forces: Tuple[Tuple[int, int], ...] = ()
    period: int = 1
    on_cycles: int = 1
    phase: int = 0

    @property
    def persistent(self) -> bool:
        """True when the plan keeps touching state after the injection cycle
        (which disqualifies its lane from convergence-based early
        retirement)."""
        return bool(self.forces)

    def force_active(self, offset: int) -> bool:
        """Whether the forces fire at *offset* cycles past the injection."""
        if not self.forces:
            return False
        return (offset + self.phase) % self.period < self.on_cycles


class FaultModelError(ValueError):
    """A fault-model spec string or model/engine pairing is invalid."""


# --------------------------------------------------------------------- base


class FaultModel:
    """Base of all registered fault models.

    Subclasses define ``name``, their parameter set (:meth:`params`, which
    round-trips through :meth:`spec_string` / :func:`parse_fault_model`)
    and :meth:`bind`, which specializes the model to one netlist and
    returns the :class:`BoundFaultModel` the engines consume.
    """

    #: Registry name; doubles as the spec-string head.
    name: str = "?"
    #: Whether plans carry per-cycle forcing.  Forcing needs the cycle
    #: substrate's re-force hook, so the injector routes these models off
    #: the fused sweep kernel.
    has_forces: bool = False
    #: Whether the model targets flip-flops (the statistical campaign).
    #: SET sweeps target combinational nets and set this to False.
    supports_ff_campaign: bool = True

    def params(self) -> Dict[str, int]:
        """The model's parameters, as they appear in the spec string."""
        return {}

    def spec_string(self) -> str:
        """Canonical ``name:key=value,...`` form (sorted keys).

        This is the model's cache identity: two spellings that parse to the
        same parameters share campaign-store and dataset-cache entries.
        """
        params = self.params()
        if not params:
            return self.name
        return self.name + ":" + ",".join(f"{k}={params[k]}" for k in sorted(params))

    def enumerate_sites(self, netlist: Netlist) -> List[str]:
        """Injectable site names on *netlist* (flip-flops by default)."""
        return [ff.name for ff in netlist.flip_flops()]

    def bind(self, netlist: Netlist) -> "BoundFaultModel":
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.spec_string()!r})"


class BoundFaultModel:
    """A fault model specialized to one netlist.

    The single engine-facing surface: :meth:`plan` compiles a (site, cycle)
    injection to an :class:`InjectionPlan`, and :meth:`apply` is the
    packed-state transform of the plan's flips (the protocol's
    ``apply(state, lane)`` — used by the oracle and by tests that reason
    about states directly).
    """

    def __init__(
        self,
        model: FaultModel,
        netlist: Netlist,
        plan_fn: Callable[[int, int], InjectionPlan],
    ) -> None:
        self.model = model
        self.netlist = netlist
        self._plan_fn = plan_fn

    @property
    def name(self) -> str:
        return self.model.name

    @property
    def has_forces(self) -> bool:
        return self.model.has_forces

    def plan(self, ff_index: int, cycle: int) -> InjectionPlan:
        """The deterministic plan for striking *ff_index* at *cycle*."""
        return self._plan_fn(ff_index, cycle)

    def apply(self, state: int, site: int, cycle: int = 0) -> int:
        """Packed flip-flop *state* with the plan's flips applied."""
        for ff in self.plan(site, cycle).flips:
            state ^= 1 << ff
        return state


# ------------------------------------------------------------------- models


class SeuModel(FaultModel):
    """The paper's single-bit upset: one flip-flop inverted at one cycle."""

    name = "seu"

    def bind(self, netlist: Netlist) -> BoundFaultModel:
        n_ffs = len(netlist.flip_flops())

        def plan(ff_index: int, cycle: int) -> InjectionPlan:
            if not 0 <= ff_index < n_ffs:
                raise IndexError(f"flip-flop index {ff_index} out of range")
            return InjectionPlan(flips=(ff_index,))

        return BoundFaultModel(self, netlist, plan)


def ff_adjacency(netlist: Netlist) -> List[int]:
    """Undirected flip-flop neighborhood masks from netlist structure.

    Bit *j* of ``adjacency[i]`` marks flip-flops *i* and *j* as neighbors
    when either feeds the other's input cone within one cycle (the
    symmetric closure of :func:`repro.netlist.levelize.ff_spread_masks`).
    With no placement data in the flow, wiring proximity is the proxy for
    spatial proximity: registers of one functional unit — a counter, a
    shift stage, a FIFO pointer — are tightly interconnected and would be
    placed together, which is exactly the neighborhood a multi-cell upset
    strikes.  Self-loops are dropped (a cluster anchor is always included
    explicitly).
    """
    spread = ff_spread_masks(netlist)
    adjacency = list(spread)
    for i, mask in enumerate(spread):
        m = mask
        while m:
            low = m & -m
            adjacency[low.bit_length() - 1] |= 1 << i
            m ^= low
    return [mask & ~(1 << i) for i, mask in enumerate(adjacency)]


def _ball(adjacency: List[int], anchor: int, radius: int) -> List[int]:
    """Flip-flops within *radius* BFS hops of *anchor* (anchor excluded)."""
    ball = 1 << anchor
    frontier = ball
    for _ in range(radius):
        grown = 0
        m = frontier
        while m:
            low = m & -m
            grown |= adjacency[low.bit_length() - 1]
            m ^= low
        grown &= ~ball
        if not grown:
            break
        ball |= grown
        frontier = grown
    ball &= ~(1 << anchor)
    members = []
    while ball:
        low = ball & -ball
        members.append(low.bit_length() - 1)
        ball ^= low
    return members


class MbuModel(FaultModel):
    """Spatially-correlated Multi-Bit Upset clusters.

    Each injection flips the anchor flip-flop plus up to ``size - 1``
    companions sampled (seeded per anchor and cycle) from the anchor's
    structural neighborhood ball of the configured ``radius`` — BFS hops
    over :func:`ff_adjacency`.  All member flips land on the same lane in
    the same cycle, so an MBU costs exactly what an SEU costs to simulate.
    """

    name = "mbu"
    has_forces = False

    def __init__(self, size: int = 3, radius: int = 1, seed: int = 0) -> None:
        if size < 1:
            raise FaultModelError(f"mbu size must be >= 1, got {size}")
        if radius < 0:
            raise FaultModelError(f"mbu radius must be >= 0, got {radius}")
        self.size = int(size)
        self.radius = int(radius)
        self.seed = int(seed)

    def params(self) -> Dict[str, int]:
        return {"size": self.size, "radius": self.radius, "seed": self.seed}

    def neighborhood(self, netlist: Netlist, anchor: int) -> List[int]:
        """Candidate companions: the BFS ball of ``radius`` around *anchor*
        (anchor excluded), in flip-flop index order."""
        return _ball(ff_adjacency(netlist), anchor, self.radius)

    def cluster(self, netlist: Netlist, anchor: int, cycle: int) -> Tuple[int, ...]:
        """The seeded cluster struck when *anchor* is hit at *cycle*."""
        candidates = self.neighborhood(netlist, anchor)
        rng = random.Random(f"mbu:{self.seed}:{anchor}:{cycle}")
        extra = self.size - 1
        chosen = rng.sample(candidates, extra) if extra < len(candidates) else candidates
        return tuple(sorted([anchor, *chosen]))

    def bind(self, netlist: Netlist) -> BoundFaultModel:
        adjacency = ff_adjacency(netlist)
        n_ffs = len(adjacency)
        balls: Dict[int, List[int]] = {}

        def neighborhood(anchor: int) -> List[int]:
            cached = balls.get(anchor)
            if cached is None:
                cached = balls[anchor] = _ball(adjacency, anchor, self.radius)
            return cached

        def plan(ff_index: int, cycle: int) -> InjectionPlan:
            if not 0 <= ff_index < n_ffs:
                raise IndexError(f"flip-flop index {ff_index} out of range")
            candidates = neighborhood(ff_index)
            rng = random.Random(f"mbu:{self.seed}:{ff_index}:{cycle}")
            extra = self.size - 1
            chosen = (
                rng.sample(candidates, extra)
                if extra < len(candidates)
                else candidates
            )
            return InjectionPlan(flips=tuple(sorted([ff_index, *chosen])))

        bound = BoundFaultModel(self, netlist, plan)
        # Re-route the convenience accessors through the bound cache.
        bound.neighborhood = neighborhood  # type: ignore[attr-defined]
        return bound


class StuckAtModel(FaultModel):
    """Persistent stuck-at fault: Q forced to a constant from injection on.

    The forcing is re-asserted at the start of every cycle of the
    observation window (before the combinational settle), on compiled and
    NumPy backends alike; the injector falls back from the fused sweep
    kernel to the cycle substrate for these lanes.  Stuck lanes are
    excluded from convergence-based early retirement — a stuck bit that
    currently matches golden can still diverge later.
    """

    has_forces = True

    def __init__(self, value: int) -> None:
        if value not in (0, 1):
            raise FaultModelError(f"stuck-at value must be 0 or 1, got {value}")
        self.value = int(value)
        self.name = f"stuck{self.value}"

    def bind(self, netlist: Netlist) -> BoundFaultModel:
        n_ffs = len(netlist.flip_flops())

        def plan(ff_index: int, cycle: int) -> InjectionPlan:
            if not 0 <= ff_index < n_ffs:
                raise IndexError(f"flip-flop index {ff_index} out of range")
            return InjectionPlan(forces=((ff_index, self.value),))

        return BoundFaultModel(self, netlist, plan)


class IntermittentModel(FaultModel):
    """Seeded duty-cycled forcing: ``on`` cycles forced out of every
    ``period``, with a per-(site, cycle) random phase.

    Models marginal contacts and aging faults that assert intermittently
    rather than permanently.  The phase draw is keyed by model seed, site
    and injection cycle, so a given injection replays identically on every
    engine and on the brute-force oracle.
    """

    name = "intermittent"
    has_forces = True

    def __init__(
        self, period: int = 8, on: int = 2, value: int = 0, seed: int = 0
    ) -> None:
        if period < 1:
            raise FaultModelError(f"intermittent period must be >= 1, got {period}")
        if not 1 <= on <= period:
            raise FaultModelError(
                f"intermittent on-cycles must be in [1, period={period}], got {on}"
            )
        if value not in (0, 1):
            raise FaultModelError(f"forced value must be 0 or 1, got {value}")
        self.period = int(period)
        self.on = int(on)
        self.value = int(value)
        self.seed = int(seed)

    def params(self) -> Dict[str, int]:
        return {
            "period": self.period,
            "on": self.on,
            "value": self.value,
            "seed": self.seed,
        }

    def bind(self, netlist: Netlist) -> BoundFaultModel:
        n_ffs = len(netlist.flip_flops())

        def plan(ff_index: int, cycle: int) -> InjectionPlan:
            if not 0 <= ff_index < n_ffs:
                raise IndexError(f"flip-flop index {ff_index} out of range")
            rng = random.Random(f"intermittent:{self.seed}:{ff_index}:{cycle}")
            return InjectionPlan(
                forces=((ff_index, self.value),),
                period=self.period,
                on_cycles=self.on,
                phase=rng.randrange(self.period),
            )

        return BoundFaultModel(self, netlist, plan)


class SetSweepModel(FaultModel):
    """Single-Event Transients — the sweep-path-only registry entry.

    SETs live on combinational nets, not in registers, so the statistical
    flip-flop campaign cannot execute them; the supported path is
    :meth:`~repro.faultinjection.injector.FaultInjector.run_set_batch`,
    which forces nets during one cycle's settle and classifies latched
    corruption.  This entry exists so the registry documents *and
    enforces* that contract: :meth:`enumerate_sites` lists the sweepable
    nets, while :meth:`bind` (the campaign entry point) raises.
    """

    name = "set"
    supports_ff_campaign = False

    def enumerate_sites(self, netlist: Netlist) -> List[str]:
        """Combinational cell outputs — the nets ``run_set_batch`` sweeps."""
        ff_outputs = {ff.output_net() for ff in netlist.flip_flops()}
        return [
            cell.output_net()
            for cell in netlist.cells.values()
            if not cell.is_sequential and cell.output_net() not in ff_outputs
        ]

    def bind(self, netlist: Netlist) -> BoundFaultModel:
        raise FaultModelError(
            "the 'set' model describes combinational transients swept by "
            "FaultInjector.run_set_batch(); it cannot drive a flip-flop "
            "campaign — pick one of "
            f"{[n for n in available_fault_models() if n != 'set']}"
        )


# ----------------------------------------------------------------- registry


_REGISTRY: Dict[str, Callable[..., FaultModel]] = {}


def register_fault_model(name: str):
    """Class/factory decorator adding a model to the registry under *name*."""

    def decorate(factory: Callable[..., FaultModel]):
        _REGISTRY[name] = factory
        return factory

    return decorate


register_fault_model("seu")(SeuModel)
register_fault_model("mbu")(MbuModel)
register_fault_model("stuck0")(lambda: StuckAtModel(0))
register_fault_model("stuck1")(lambda: StuckAtModel(1))
register_fault_model("intermittent")(IntermittentModel)
register_fault_model("set")(SetSweepModel)


def available_fault_models() -> Tuple[str, ...]:
    """Registered model names, sorted."""
    return tuple(sorted(_REGISTRY))


def parse_fault_model(
    spec: Union[str, FaultModel, None]
) -> FaultModel:
    """Resolve a ``name[:key=value,...]`` spec string to a model instance.

    Accepts an already-constructed :class:`FaultModel` (returned as-is) and
    ``None`` (the default SEU model).  Parameter values are integers; keys
    must match the factory's keyword arguments.
    """
    if isinstance(spec, FaultModel):
        return spec
    if spec is None:
        return SeuModel()
    name, _, body = str(spec).partition(":")
    factory = _REGISTRY.get(name.strip())
    if factory is None:
        raise FaultModelError(
            f"unknown fault model {name!r}; available: {list(available_fault_models())}"
        )
    kwargs: Dict[str, int] = {}
    if body:
        for item in body.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise FaultModelError(
                    f"malformed fault-model parameter {item!r} in {spec!r} "
                    "(expected key=value)"
                )
            try:
                kwargs[key.strip()] = int(value)
            except ValueError:
                raise FaultModelError(
                    f"fault-model parameter {key.strip()!r} must be an integer, "
                    f"got {value!r}"
                ) from None
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise FaultModelError(
            f"invalid parameters for fault model {name!r}: {exc}"
        ) from None


def canonical_fault_model(spec: Union[str, FaultModel, None]) -> str:
    """The canonical spec string for *spec* — the cache-identity form."""
    return parse_fault_model(spec).spec_string()
