"""Fault models.

The paper's campaign injects Single-Event Upsets: "the fault injection
mechanism is implemented by inverting the value stored in a flip-flop using
a simulator function", at random times "during the active phase of the
simulation".  :class:`SeuFault` captures one such injection; SETs (transients
in combinational logic) are out of the campaign's scope, as in the paper,
but are described by :class:`SetFault` for completeness of the model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SeuFault", "SetFault"]


@dataclass(frozen=True)
class SeuFault:
    """A Single-Event Upset: invert flip-flop *ff_name* at *cycle*.

    The flip is applied to the flip-flop's Q output at the start of the
    cycle, before the cycle's combinational settle — equivalent to the
    upset having corrupted the latched state on the preceding edge.
    """

    ff_name: str
    cycle: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SEU({self.ff_name} @ {self.cycle})"


@dataclass(frozen=True)
class SetFault:
    """A Single-Event Transient on a combinational net (documented model).

    Transients are subject to electrical and temporal de-rating before ever
    being latched; the paper (and this reproduction) evaluates Functional
    De-Rating for latched upsets, so this model is not exercised by the
    campaign engine.
    """

    net_name: str
    cycle: int
